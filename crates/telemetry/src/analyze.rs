//! Critical-path trace analysis: turns a recorded event stream (from a
//! [`crate::RecordingProbe`] or a parsed JSONL file) into the bottleneck
//! answers a human otherwise squints out of a Chrome trace.
//!
//! The analysis is split in two deliberately:
//!
//! * [`Counts`] — everything derived from event *counts*: speculation
//!   accounting, Newton breakdown, cache hit rates, per-lane solve tallies.
//!   For a fixed seed and thread count these are bit-reproducible, so the
//!   [`TraceAnalysis::stable_report`] rendering is **byte-stable** across
//!   identical runs — the auditability hook the determinism tests pin.
//! * [`Timing`] — everything derived from timestamps: per-lane
//!   busy/idle/blocked fractions and the critical-path decomposition of
//!   wall time. Real nanoseconds differ run to run, so this section is
//!   rendered separately and never enters the stable report.
//!
//! Ratios in the stable report are quantized to 0.1% by *integer*
//! arithmetic (per-mille, truncated), so no floating-point formatting
//! variance can leak into the stable bytes.

use crate::event::{Event, EventKind};
use crate::histogram::Histogram;
use crate::json;
use crate::metrics::Snapshot;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Count-derived run statistics (byte-reproducible for a fixed seed and
/// thread count).
#[derive(Debug, Clone, PartialEq)]
pub struct Counts {
    /// Pipelined rounds (RoundStart events).
    pub rounds: u64,
    /// Committed points.
    pub points_accepted: u64,
    /// Point-solves finished (SolveEnd events).
    pub solves: u64,
    /// Solves that ended unconverged.
    pub solves_unconverged: u64,
    /// `(lane, solves)` per lane, ascending by lane.
    pub lane_solves: Vec<(u32, u64)>,
    /// Newton iterations per solve (from SolveEnd).
    pub newton_iters: Histogram,
    /// Total Newton iterations across all solves.
    pub newton_total: u64,
    /// LTE rejections.
    pub lte_rejects: u64,
    /// Backward leads committed / discarded.
    pub lead_accepted: u64,
    /// Backward leads discarded.
    pub lead_discarded: u64,
    /// Forward speculations committed / discarded.
    pub speculation_accepted: u64,
    /// Forward speculations discarded.
    pub speculation_discarded: u64,
    /// Discard reasons across leads and speculations, descending by count
    /// then name.
    pub discard_reasons: Vec<(String, u64)>,
    /// Numeric factorization passes of any kind.
    pub factorizations: u64,
    /// Frozen-pivot refactorizations (subset of `factorizations`).
    pub refactorizations: u64,
    /// Chord iterations that reused the previous LU.
    pub jacobian_reuses: u64,
    /// Nonlinear device evaluations skipped by the bypass.
    pub bypassed_devices: u64,
    /// Linear stamps replayed from the companion cache.
    pub companion_hits: u64,
    /// Adaptive rounds that chose forward pipelining.
    pub adaptive_forward: u64,
    /// Adaptive rounds that chose backward pipelining.
    pub adaptive_backward: u64,
    /// Stamp color groups accumulated by the parallel stamp path.
    pub stamp_color_groups: u64,
    /// Worker threads lost to panics.
    pub workers_lost: u64,
    /// Serial-fallback transitions.
    pub serial_fallbacks: u64,
    /// Wall-clock budget expirations.
    pub deadline_hits: u64,
    /// Convergence recovery ladders engaged.
    pub recovery_attempts: u64,
    /// Recovery rungs that produced a converged point.
    pub recovery_rescues: u64,
    /// Solver-cache invalidations forced by the recovery ladder.
    pub cache_rollbacks: u64,
    /// Linear solves through the Krylov (GMRES) path.
    pub krylov_solves: u64,
    /// GMRES iterations summed over those solves.
    pub krylov_iterations: u64,
    /// Preconditioner (re)builds on the Krylov path.
    pub precond_refreshes: u64,
    /// Krylov solves completed by the direct-LU fallback.
    pub solver_fallbacks: u64,
}

impl Counts {
    /// Solves whose result was thrown away (discarded leads plus discarded
    /// speculations).
    pub fn wasted_solves(&self) -> u64 {
        self.lead_discarded + self.speculation_discarded
    }
}

/// Per-lane wall-time accounting, nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneTiming {
    /// Lane id.
    pub lane: u32,
    /// Sum of solve spans (execution start → end; queue wait excluded).
    pub busy_ns: u64,
    /// Sum of dispatch-to-execution gaps (a task was assigned but had not
    /// started running — the lane was blocked on scheduling).
    pub blocked_ns: u64,
}

/// Timestamp-derived run statistics. **Not** byte-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Timing {
    /// First-to-last event timestamp, nanoseconds.
    pub wall_ns: u64,
    /// Per-lane busy/blocked accounting, ascending by lane.
    pub lanes: Vec<LaneTiming>,
    /// Busy time on lane 0 — the lead/commit lane that also runs base
    /// solves and speculative refinements.
    pub lead_ns: u64,
    /// Busy time on lanes 1.. — the speculative pool solves.
    pub speculative_ns: u64,
    /// Sum over rounds of the solve-phase span (first solve start to last
    /// solve end): the parallel part of the critical path.
    pub solve_phase_ns: u64,
    /// Sum over rounds of the tail between the last solve end and the
    /// round end: commit, LTE bookkeeping, and scheduling.
    pub commit_ns: u64,
    /// Sum over rounds of the head between the round start and the first
    /// solve start: task construction and dispatch.
    pub launch_ns: u64,
    /// Wall time inside rounds altogether.
    pub rounds_ns: u64,
    /// Wall time inside parallel stamp color spans (all lanes summed).
    pub stamp_span_ns: u64,
}

impl Timing {
    /// The dominant wall-time component as a `(label, fraction)` pair —
    /// the headline of a doctor report.
    pub fn dominant(&self) -> (&'static str, f64) {
        let wall = self.wall_ns.max(1) as f64;
        let outside = self.wall_ns.saturating_sub(self.rounds_ns);
        let cands = [
            ("solve phase", self.solve_phase_ns),
            ("commit tail", self.commit_ns),
            ("round launch", self.launch_ns),
            ("outside rounds", outside),
        ];
        let (label, ns) = cands.iter().max_by_key(|(_, ns)| *ns).copied().unwrap_or(("idle", 0));
        (label, ns as f64 / wall)
    }
}

/// The full analysis: stable counts plus unstable timing.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Count-derived statistics (byte-reproducible).
    pub counts: Counts,
    /// Timestamp-derived statistics (vary run to run).
    pub timing: Timing,
}

/// Truncating per-mille ratio rendered as `"12.3%"` — integer arithmetic
/// only, so equal counts always render equal bytes.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        return "n/a".to_string();
    }
    let pm = num.saturating_mul(1000) / den;
    format!("{}.{}%", pm / 10, pm % 10)
}

/// Analyzes a recorded event stream (in record order, as produced by
/// [`crate::RecordingProbe::events`] or [`crate::jsonl::parse_jsonl`]).
pub fn analyze(events: &[Event]) -> TraceAnalysis {
    let mut c = Counts {
        rounds: 0,
        points_accepted: 0,
        solves: 0,
        solves_unconverged: 0,
        lane_solves: Vec::new(),
        newton_iters: Histogram::integer(20),
        newton_total: 0,
        lte_rejects: 0,
        lead_accepted: 0,
        lead_discarded: 0,
        speculation_accepted: 0,
        speculation_discarded: 0,
        discard_reasons: Vec::new(),
        factorizations: 0,
        refactorizations: 0,
        jacobian_reuses: 0,
        bypassed_devices: 0,
        companion_hits: 0,
        adaptive_forward: 0,
        adaptive_backward: 0,
        stamp_color_groups: 0,
        workers_lost: 0,
        serial_fallbacks: 0,
        deadline_hits: 0,
        recovery_attempts: 0,
        recovery_rescues: 0,
        cache_rollbacks: 0,
        krylov_solves: 0,
        krylov_iterations: 0,
        precond_refreshes: 0,
        solver_fallbacks: 0,
    };
    let mut lane_solves: HashMap<u32, u64> = HashMap::new();
    let mut reasons: HashMap<&'static str, u64> = HashMap::new();

    // Timing state. Solve spans use last-start-wins (dispatch stamps a
    // SolveStart, execution stamps another; busy time must exclude the
    // queue wait, which is tracked separately as `blocked`).
    #[derive(Default, Clone, Copy)]
    struct RoundAgg {
        start: u64,
        end: u64,
        first_solve_start: u64,
        last_solve_end: u64,
    }
    let mut open_solve: HashMap<u32, (u64, u64)> = HashMap::new(); // lane -> (first, last) start
    let mut lane_busy: HashMap<u32, u64> = HashMap::new();
    let mut lane_blocked: HashMap<u32, u64> = HashMap::new();
    let mut open_stamp: HashMap<u32, u64> = HashMap::new();
    let mut rounds: HashMap<u64, RoundAgg> = HashMap::new();
    let mut stamp_span_ns = 0u64;
    let (mut ts_min, mut ts_max) = (u64::MAX, 0u64);

    for ev in events {
        ts_min = ts_min.min(ev.ts_ns);
        ts_max = ts_max.max(ev.ts_ns);
        match ev.kind {
            EventKind::RoundStart { .. } => {
                c.rounds += 1;
                let agg = rounds.entry(ev.round).or_default();
                agg.start = ev.ts_ns;
                agg.first_solve_start = u64::MAX;
            }
            EventKind::RoundEnd { .. } => {
                rounds.entry(ev.round).or_default().end = ev.ts_ns;
            }
            EventKind::SolveStart { .. } => {
                let entry = open_solve.entry(ev.lane).or_insert((ev.ts_ns, ev.ts_ns));
                entry.1 = ev.ts_ns;
                let agg = rounds.entry(ev.round).or_default();
                if agg.first_solve_start == 0 {
                    agg.first_solve_start = u64::MAX;
                }
                agg.first_solve_start = agg.first_solve_start.min(ev.ts_ns);
            }
            EventKind::SolveEnd { iterations, converged } => {
                c.solves += 1;
                if !converged {
                    c.solves_unconverged += 1;
                }
                c.newton_total += u64::from(iterations);
                c.newton_iters.observe(f64::from(iterations));
                *lane_solves.entry(ev.lane).or_insert(0) += 1;
                if let Some((first, last)) = open_solve.remove(&ev.lane) {
                    *lane_busy.entry(ev.lane).or_insert(0) += ev.ts_ns.saturating_sub(last);
                    *lane_blocked.entry(ev.lane).or_insert(0) += last.saturating_sub(first);
                    let agg = rounds.entry(ev.round).or_default();
                    agg.last_solve_end = agg.last_solve_end.max(ev.ts_ns);
                }
            }
            EventKind::NewtonIter { .. } | EventKind::StepSizeChosen { .. } => {}
            EventKind::Factorization => c.factorizations += 1,
            EventKind::Refactorization => c.refactorizations += 1,
            EventKind::JacobianReuse => c.jacobian_reuses += 1,
            EventKind::BypassedDevices { devices } => c.bypassed_devices += u64::from(devices),
            EventKind::CompanionHit => c.companion_hits += 1,
            EventKind::LteReject { .. } => c.lte_rejects += 1,
            EventKind::PointAccepted { .. } => c.points_accepted += 1,
            EventKind::LeadAccepted => c.lead_accepted += 1,
            EventKind::LeadDiscarded { reason } => {
                c.lead_discarded += 1;
                *reasons.entry(reason.name()).or_insert(0) += 1;
            }
            EventKind::SpeculationAccepted => c.speculation_accepted += 1,
            EventKind::SpeculationDiscarded { reason } => {
                c.speculation_discarded += 1;
                *reasons.entry(reason.name()).or_insert(0) += 1;
            }
            EventKind::AdaptiveChoice { forward } => {
                if forward {
                    c.adaptive_forward += 1;
                } else {
                    c.adaptive_backward += 1;
                }
            }
            EventKind::StampColorStart { .. } => {
                open_stamp.insert(ev.lane, ev.ts_ns);
            }
            EventKind::StampColorEnd { .. } => {
                c.stamp_color_groups += 1;
                if let Some(start) = open_stamp.remove(&ev.lane) {
                    stamp_span_ns += ev.ts_ns.saturating_sub(start);
                }
            }
            EventKind::WorkerLost { .. } => c.workers_lost += 1,
            EventKind::FallbackSerial => c.serial_fallbacks += 1,
            EventKind::DeadlineHit => c.deadline_hits += 1,
            EventKind::RecoveryAttempt { .. } => c.recovery_attempts += 1,
            EventKind::RecoveryRung { success, .. } => {
                if success {
                    c.recovery_rescues += 1;
                }
            }
            EventKind::CachePoisonRollback => c.cache_rollbacks += 1,
            EventKind::KrylovSolve { iterations, precond_refreshes, fallback, .. } => {
                c.krylov_solves += 1;
                c.krylov_iterations += u64::from(iterations);
                c.precond_refreshes += u64::from(precond_refreshes);
                if fallback {
                    c.solver_fallbacks += 1;
                }
            }
        }
    }

    let mut ls: Vec<(u32, u64)> = lane_solves.into_iter().collect();
    ls.sort_unstable();
    c.lane_solves = ls;
    let mut reasons: Vec<(String, u64)> =
        reasons.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    reasons.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    c.discard_reasons = reasons;

    // Fold the per-round spans into the wall-time decomposition.
    let (mut solve_phase, mut commit, mut launch, mut rounds_ns) = (0u64, 0u64, 0u64, 0u64);
    for agg in rounds.values() {
        if agg.end <= agg.start {
            continue; // round never closed (e.g. truncated stream)
        }
        rounds_ns += agg.end - agg.start;
        if agg.first_solve_start != u64::MAX && agg.last_solve_end > 0 {
            let first = agg.first_solve_start.max(agg.start);
            let last = agg.last_solve_end.clamp(first, agg.end);
            launch += first - agg.start;
            solve_phase += last - first;
            commit += agg.end - last;
        }
    }
    let mut lanes: Vec<LaneTiming> = lane_busy
        .iter()
        .map(|(&lane, &busy_ns)| LaneTiming {
            lane,
            busy_ns,
            blocked_ns: lane_blocked.get(&lane).copied().unwrap_or(0),
        })
        .collect();
    lanes.sort_unstable_by_key(|l| l.lane);
    let lead_ns = lanes.iter().filter(|l| l.lane == 0).map(|l| l.busy_ns).sum();
    let speculative_ns = lanes.iter().filter(|l| l.lane != 0).map(|l| l.busy_ns).sum();
    let timing = Timing {
        wall_ns: if ts_min == u64::MAX { 0 } else { ts_max - ts_min },
        lanes,
        lead_ns,
        speculative_ns,
        solve_phase_ns: solve_phase,
        commit_ns: commit,
        launch_ns: launch,
        rounds_ns,
        stamp_span_ns,
    };
    TraceAnalysis { counts: c, timing }
}

impl TraceAnalysis {
    /// The count-derived report: byte-stable across identical seeded runs
    /// at a fixed thread count. `title` names the run (circuit, scheme,
    /// threads) and must itself be deterministic.
    pub fn stable_report(&self, title: &str) -> String {
        let c = &self.counts;
        let mut out = String::new();
        let _ = writeln!(out, "wavepipe-doctor: {title}");
        let _ = writeln!(out, "== stable (count-derived; byte-reproducible) ==");
        let _ = writeln!(out, "  rounds                    {:>10}", c.rounds);
        let _ = writeln!(out, "  points accepted           {:>10}", c.points_accepted);
        let _ = writeln!(
            out,
            "  solves                    {:>10}  ({} unconverged)",
            c.solves, c.solves_unconverged
        );
        for &(lane, n) in &c.lane_solves {
            let _ = writeln!(
                out,
                "    lane {lane:<3} solves         {:>10}  ({} of all solves)",
                n,
                pct(n, c.solves)
            );
        }
        let _ = writeln!(
            out,
            "  newton iterations         {:>10}  (p50 {} / p99 {} per solve)",
            c.newton_total,
            quant(&c.newton_iters, 0.5),
            quant(&c.newton_iters, 0.99)
        );
        let _ = writeln!(out, "  lte rejects               {:>10}", c.lte_rejects);
        let lead_issued = c.lead_accepted + c.lead_discarded;
        let spec_issued = c.speculation_accepted + c.speculation_discarded;
        let _ = writeln!(
            out,
            "  leads issued              {:>10}  (accepted {}, discarded {})",
            lead_issued, c.lead_accepted, c.lead_discarded
        );
        let _ = writeln!(
            out,
            "  speculations issued       {:>10}  (accepted {}, discarded {})",
            spec_issued, c.speculation_accepted, c.speculation_discarded
        );
        let _ = writeln!(
            out,
            "  speculation waste         {:>10}  of all solves ({} wasted)",
            pct(c.wasted_solves(), c.solves),
            c.wasted_solves()
        );
        if !c.discard_reasons.is_empty() {
            let _ = write!(out, "  discard reasons          ");
            for (name, n) in &c.discard_reasons {
                let _ = write!(out, " {name}={n}");
            }
            let _ = writeln!(out);
        }
        if c.adaptive_forward + c.adaptive_backward > 0 {
            let _ = writeln!(
                out,
                "  adaptive choices          {:>10}  forward / {} backward",
                c.adaptive_forward, c.adaptive_backward
            );
        }
        let _ = writeln!(out, "  -- solver caches --");
        let _ = writeln!(
            out,
            "  chord LU reuse            {:>10}  of linear solves ({} reuses / {} factor)",
            pct(c.jacobian_reuses, c.jacobian_reuses + c.factorizations),
            c.jacobian_reuses,
            c.factorizations
        );
        let _ = writeln!(
            out,
            "  frozen-pivot refactor     {:>10}  of factorizations ({} of {})",
            pct(c.refactorizations, c.factorizations),
            c.refactorizations,
            c.factorizations
        );
        let _ = writeln!(
            out,
            "  companion replay          {:>10}  of newton stamps ({} hits)",
            pct(c.companion_hits, c.newton_total),
            c.companion_hits
        );
        let _ = writeln!(out, "  bypassed device evals     {:>10}", c.bypassed_devices);
        if c.krylov_solves > 0 {
            let _ = writeln!(
                out,
                "  krylov solves             {:>10}  ({} iterations / {} precond refreshes)",
                c.krylov_solves, c.krylov_iterations, c.precond_refreshes
            );
            let _ = writeln!(
                out,
                "  krylov direct fallback    {:>10}  of krylov solves ({} fallbacks)",
                pct(c.solver_fallbacks, c.krylov_solves),
                c.solver_fallbacks
            );
        }
        if c.stamp_color_groups > 0 {
            let _ = writeln!(out, "  stamp color groups        {:>10}", c.stamp_color_groups);
        }
        if c.workers_lost + c.serial_fallbacks + c.deadline_hits > 0 {
            let _ = writeln!(
                out,
                "  faults                    {:>10}  workers lost / {} fallbacks / {} deadlines",
                c.workers_lost, c.serial_fallbacks, c.deadline_hits
            );
        }
        if c.recovery_attempts + c.cache_rollbacks > 0 {
            let _ = writeln!(
                out,
                "  recovery                  {:>10}  ladders / {} rescued / {} cache rollbacks",
                c.recovery_attempts, c.recovery_rescues, c.cache_rollbacks
            );
        }
        out
    }

    /// The timestamp-derived report: per-lane utilization and the
    /// critical-path decomposition. **Not** byte-stable across runs.
    pub fn timing_report(&self) -> String {
        let t = &self.timing;
        let wall = t.wall_ns.max(1) as f64;
        let mut out = String::new();
        let _ = writeln!(out, "== timing (wall-clock; varies run to run) ==");
        let (label, frac) = t.dominant();
        let _ = writeln!(
            out,
            "  bottleneck: {} is {:.0}% of wall time ({:.3} ms total)",
            label,
            frac * 100.0,
            t.wall_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  critical path: launch {:.1}%  solve phase {:.1}%  commit tail {:.1}%  \
             outside rounds {:.1}%",
            t.launch_ns as f64 / wall * 100.0,
            t.solve_phase_ns as f64 / wall * 100.0,
            t.commit_ns as f64 / wall * 100.0,
            t.wall_ns.saturating_sub(t.rounds_ns) as f64 / wall * 100.0,
        );
        let _ = writeln!(
            out,
            "  solve time: lead lane {:.3} ms, speculative lanes {:.3} ms",
            t.lead_ns as f64 / 1e6,
            t.speculative_ns as f64 / 1e6
        );
        if t.stamp_span_ns > 0 {
            let _ = writeln!(
                out,
                "  stamp worker spans: {:.3} ms accumulated",
                t.stamp_span_ns as f64 / 1e6
            );
        }
        for l in &t.lanes {
            let busy = l.busy_ns as f64 / wall;
            let blocked = l.blocked_ns as f64 / wall;
            let idle = (1.0 - busy - blocked).max(0.0);
            let _ = writeln!(
                out,
                "  lane {:<3} busy {:>5.1}%  blocked {:>5.1}%  idle {:>5.1}%",
                l.lane,
                busy * 100.0,
                blocked * 100.0,
                idle * 100.0
            );
        }
        out
    }

    /// Both sections.
    pub fn report(&self, title: &str) -> String {
        let mut out = self.stable_report(title);
        out.push_str(&self.timing_report());
        out
    }

    /// JSON encoding: a `stable` object always, plus a `timing` object
    /// unless `stable_only` is set.
    pub fn to_json(&self, stable_only: bool) -> String {
        let c = &self.counts;
        let mut out = String::from("{\"stable\":{");
        let scalars: [(&str, u64); 25] = [
            ("rounds", c.rounds),
            ("points_accepted", c.points_accepted),
            ("solves", c.solves),
            ("solves_unconverged", c.solves_unconverged),
            ("newton_iterations", c.newton_total),
            ("lte_rejects", c.lte_rejects),
            ("lead_accepted", c.lead_accepted),
            ("lead_discarded", c.lead_discarded),
            ("speculation_accepted", c.speculation_accepted),
            ("speculation_discarded", c.speculation_discarded),
            ("factorizations", c.factorizations),
            ("refactorizations", c.refactorizations),
            ("jacobian_reuses", c.jacobian_reuses),
            ("bypassed_devices", c.bypassed_devices),
            ("companion_hits", c.companion_hits),
            ("stamp_color_groups", c.stamp_color_groups),
            ("workers_lost", c.workers_lost),
            ("deadline_hits", c.deadline_hits),
            ("recovery_attempts", c.recovery_attempts),
            ("recovery_rescues", c.recovery_rescues),
            ("cache_rollbacks", c.cache_rollbacks),
            ("krylov_solves", c.krylov_solves),
            ("krylov_iterations", c.krylov_iterations),
            ("precond_refreshes", c.precond_refreshes),
            ("solver_fallbacks", c.solver_fallbacks),
        ];
        for (i, (name, v)) in scalars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str(",\"lane_solves\":[");
        for (i, &(lane, n)) in c.lane_solves.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"lane\":{lane},\"solves\":{n}}}");
        }
        out.push_str("],\"discard_reasons\":[");
        for (i, (name, n)) in c.discard_reasons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"reason\":\"{}\",\"count\":{n}}}", json::escape(name));
        }
        out.push_str("]}");
        if !stable_only {
            let t = &self.timing;
            let _ = write!(
                out,
                ",\"timing\":{{\"wall_ns\":{},\"solve_phase_ns\":{},\"commit_ns\":{},\
                 \"launch_ns\":{},\"rounds_ns\":{},\"lead_ns\":{},\"speculative_ns\":{},\
                 \"stamp_span_ns\":{},\"lanes\":[",
                t.wall_ns,
                t.solve_phase_ns,
                t.commit_ns,
                t.launch_ns,
                t.rounds_ns,
                t.lead_ns,
                t.speculative_ns,
                t.stamp_span_ns
            );
            for (i, l) in t.lanes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"lane\":{},\"busy_ns\":{},\"blocked_ns\":{}}}",
                    l.lane, l.busy_ns, l.blocked_ns
                );
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Renders the per-device-class and per-cache-layer families of a metrics
/// [`Snapshot`] as a stable table (counts only, deterministic): the piece
/// of the doctor report the event stream alone cannot provide.
pub fn class_cache_table(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let classes: Vec<&str> = snapshot
        .labeled
        .iter()
        .filter(|lv| lv.family == "class_evals" || lv.family == "class_bypassed")
        .map(|lv| lv.label.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    if !classes.is_empty() {
        let _ = writeln!(out, "  -- per device class --");
        for class in classes {
            let evals = snapshot.labeled_value("class_evals", class);
            let byp = snapshot.labeled_value("class_bypassed", class);
            let _ = writeln!(
                out,
                "  {class:<10} evals {evals:>10}  bypassed {byp:>10}  ({} bypass rate)",
                pct(byp, byp + evals)
            );
        }
    }
    let caches: Vec<&str> = snapshot
        .labeled
        .iter()
        .filter(|lv| lv.family == "cache_hits" || lv.family == "cache_misses")
        .map(|lv| lv.label.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    if !caches.is_empty() {
        let _ = writeln!(out, "  -- per cache layer --");
        for cache in caches {
            let hits = snapshot.labeled_value("cache_hits", cache);
            let misses = snapshot.labeled_value("cache_misses", cache);
            let _ = writeln!(
                out,
                "  {cache:<10} hits  {hits:>10}  misses   {misses:>10}  ({} hit rate)",
                pct(hits, hits + misses)
            );
        }
    }
    out
}

/// Deterministic rendering of a histogram quantile for the stable report:
/// the quantile interpolation is pure arithmetic on counts, so equal count
/// vectors give equal strings.
fn quant(h: &Histogram, q: f64) -> String {
    match h.quantile(q) {
        Some(v) => format!("{v:.1}"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DiscardReason;

    fn ev(ts_ns: u64, round: u64, lane: u32, kind: EventKind) -> Event {
        Event { ts_ns, round, lane, t_sim: 0.0, kind }
    }

    /// A two-round synthetic stream with dispatch+execution SolveStarts.
    fn sample_stream() -> Vec<Event> {
        vec![
            ev(0, 1, 0, EventKind::RoundStart { width: 2 }),
            ev(5, 1, 1, EventKind::SolveStart { h: 1e-9 }), // dispatch
            ev(10, 1, 0, EventKind::SolveStart { h: 1e-9 }),
            ev(15, 1, 1, EventKind::SolveStart { h: 2e-9 }), // execution
            ev(50, 1, 0, EventKind::SolveEnd { iterations: 3, converged: true }),
            ev(80, 1, 1, EventKind::SolveEnd { iterations: 5, converged: true }),
            ev(85, 1, 0, EventKind::PointAccepted { h: 1e-9 }),
            ev(88, 1, 0, EventKind::LeadAccepted),
            ev(95, 1, 0, EventKind::LeadDiscarded { reason: DiscardReason::LteRejected }),
            ev(100, 1, 0, EventKind::RoundEnd { committed: 1 }),
            ev(110, 2, 0, EventKind::RoundStart { width: 1 }),
            ev(112, 2, 0, EventKind::SolveStart { h: 1e-9 }),
            ev(160, 2, 0, EventKind::SolveEnd { iterations: 4, converged: false }),
            ev(170, 2, 0, EventKind::RoundEnd { committed: 0 }),
        ]
    }

    #[test]
    fn counts_aggregate_and_lane_tables_sort() {
        let a = analyze(&sample_stream());
        let c = &a.counts;
        assert_eq!(c.rounds, 2);
        assert_eq!(c.points_accepted, 1);
        assert_eq!(c.solves, 3);
        assert_eq!(c.solves_unconverged, 1);
        assert_eq!(c.newton_total, 12);
        assert_eq!(c.lane_solves, vec![(0, 2), (1, 1)]);
        assert_eq!(c.lead_accepted, 1);
        assert_eq!(c.lead_discarded, 1);
        assert_eq!(c.wasted_solves(), 1);
        assert_eq!(c.discard_reasons, vec![("lte_rejected".to_string(), 1)]);
    }

    #[test]
    fn timing_decomposes_rounds_and_tracks_blocked_time() {
        let a = analyze(&sample_stream());
        let t = &a.timing;
        assert_eq!(t.wall_ns, 170);
        // Round 1: launch 5 (start 0 -> first solve start 5), solve phase
        // 75 (5 -> 80), commit 20 (80 -> 100). Round 2: launch 2, solve
        // phase 48, commit 10.
        assert_eq!(t.launch_ns, 7);
        assert_eq!(t.solve_phase_ns, 123);
        assert_eq!(t.commit_ns, 30);
        assert_eq!(t.rounds_ns, 160);
        // Lane 1 was dispatched at 5 and started at 15: 10 ns blocked,
        // 65 ns busy. Lane 0 never re-started: no blocked time.
        let lane1 = t.lanes.iter().find(|l| l.lane == 1).unwrap();
        assert_eq!(lane1.blocked_ns, 10);
        assert_eq!(lane1.busy_ns, 65);
        let lane0 = t.lanes.iter().find(|l| l.lane == 0).unwrap();
        assert_eq!(lane0.blocked_ns, 0);
        assert_eq!(lane0.busy_ns, 40 + 48);
        assert_eq!(t.lead_ns, 88);
        assert_eq!(t.speculative_ns, 65);
    }

    #[test]
    fn stable_report_is_identical_for_identical_counts() {
        let a = analyze(&sample_stream());
        let b = analyze(&sample_stream());
        assert_eq!(a.stable_report("test"), b.stable_report("test"));
        // Shifting every timestamp changes timing but not the stable bytes.
        let shifted: Vec<Event> = sample_stream()
            .into_iter()
            .map(|mut e| {
                e.ts_ns = e.ts_ns * 3 + 17;
                e
            })
            .collect();
        let s = analyze(&shifted);
        assert_eq!(a.stable_report("test"), s.stable_report("test"));
        assert_ne!(a.timing, s.timing);
    }

    #[test]
    fn reports_render_expected_lines() {
        let a = analyze(&sample_stream());
        let stable = a.stable_report("rc_ladder, backward x2");
        assert!(stable.contains("wavepipe-doctor: rc_ladder, backward x2"));
        assert!(stable.contains("speculation waste"));
        assert!(stable.contains("33.3%"), "1 wasted of 3 solves: {stable}");
        let timing = a.timing_report();
        assert!(timing.contains("bottleneck:"));
        assert!(timing.contains("lane 0"));
        let json_doc = a.to_json(false);
        let parsed = json::parse(&json_doc).expect("doctor json parses");
        assert_eq!(
            parsed.get("stable").and_then(|s| s.get("solves")).and_then(|v| v.as_f64()),
            Some(3.0)
        );
        assert!(parsed.get("timing").is_some());
        let stable_only = json::parse(&a.to_json(true)).expect("stable json parses");
        assert!(stable_only.get("timing").is_none());
    }

    #[test]
    fn pct_is_integer_quantized() {
        assert_eq!(pct(1, 3), "33.3%");
        assert_eq!(pct(2, 3), "66.6%"); // truncated, never rounded up
        assert_eq!(pct(0, 5), "0.0%");
        assert_eq!(pct(5, 5), "100.0%");
        assert_eq!(pct(1, 0), "n/a");
    }

    #[test]
    fn class_cache_table_renders_families() {
        let reg = crate::metrics::MetricsRegistry::shared();
        reg.add_labeled(crate::metrics::Family::EvalsByClass, "mos", 90);
        reg.add_labeled(crate::metrics::Family::BypassByClass, "mos", 10);
        reg.add_labeled(crate::metrics::Family::CacheHits, "chord", 3);
        reg.add_labeled(crate::metrics::Family::CacheMisses, "chord", 1);
        let table = class_cache_table(&reg.snapshot());
        assert!(table.contains("mos"));
        assert!(table.contains("10.0% bypass rate"), "{table}");
        assert!(table.contains("75.0% hit rate"), "{table}");
    }
}
