//! Intra-step parallel device evaluation: the colored stamp executor.
//!
//! [`MnaSystem::compile`] level-colors the device conflict graph (two
//! devices conflict iff they write a shared matrix slot or RHS entry). The
//! executor built here parallelises the *nonlinear* device evaluations (the
//! expensive part): the master stamps the linear phase itself (optionally
//! replayed from the step-size-keyed companion cache), while nonlinear
//! chunks are evaluated concurrently on a small persistent worker set —
//! evaluation is pure apart from device-owned junction state, so chunks
//! from *different* colors can be in flight at once — and then accumulated
//! into the workspace serially, in the fixed color-then-element order the
//! coloring guarantees matches the serial per-slot addition order. Device
//! bypass is decided on the master before dispatch (one mask per stamp
//! call), so workers skip exactly the devices the serial path skips. The
//! result is bit-identical to [`MnaSystem::stamp_with`], independent of
//! worker count, scheduling, and cache knob settings.
//!
//! Timing: [`SimStats::stamp_ns`] gets the actual wall time of each call,
//! while [`SimStats::stamp_modeled_ns`] gets the critical-path model (the
//! busiest worker's evaluation time plus the master-serial snapshot and
//! accumulation overhead) — what an otherwise-idle machine with enough cores
//! would realise. The repo's speedup reports are built from the model, per
//! the convention documented in EXPERIMENTS.md.
//!
//! Fault tolerance: worker evaluation runs under `catch_unwind`. A panic in
//! a worker (organic or injected via [`crate::fault::FaultPlan`]) retires
//! that worker; the master evaluates the affected chunks inline from the
//! retained snapshot — same devices, same order, bit-identical results —
//! and then degrades the executor permanently to the serial
//! [`MnaSystem::stamp`] path, emitting [`EventKind::WorkerLost`] and
//! [`EventKind::FallbackSerial`] once.

use crate::fault::FaultHandle;
use crate::integrate::IntegCoeffs;
use crate::mna::{MnaSystem, MnaWorkspace, StampInput, StampResult};
use crate::options::CacheCtl;
use crate::stats::SimStats;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use wavepipe_telemetry::{Counter, EventKind, MetricsHandle, ProbeHandle};

/// Per-chunk scratch buffers, recycled across stamp calls.
#[derive(Debug, Default)]
struct ChunkBufs {
    mat: Vec<f64>,
    rhs: Vec<f64>,
    jct: Vec<(u32, f64)>,
    /// Devices (in chunk order) whose junction limiter fired.
    limited_devs: Vec<u32>,
}

/// One dispatched evaluation job: a contiguous span of the nonlinear replay
/// order.
struct Job {
    ctx: Arc<CallCtx>,
    chunk_id: u32,
    /// `[start, end)` into `StampPlan::nl_order`.
    start: u32,
    end: u32,
    bufs: ChunkBufs,
}

/// A finished chunk, sent back to the master.
struct ChunkOut {
    chunk_id: u32,
    bufs: ChunkBufs,
    eval_ns: u64,
    /// The worker panicked evaluating this chunk; `bufs` is empty and the
    /// worker has retired. The master re-evaluates the chunk inline.
    failed: bool,
}

/// Owned snapshot of one stamp call's borrowed inputs. Workers hold it via
/// `Arc`; the buffers are recycled call-to-call to avoid reallocation.
#[derive(Default)]
struct CallCtx {
    time: f64,
    coeffs: Option<IntegCoeffs>,
    x_prev: Vec<f64>,
    x_prev2: Vec<f64>,
    cap_currents: Vec<f64>,
    gmin: f64,
    gshunt: f64,
    source_scale: f64,
    ic_mode: bool,
    x_iter: Vec<f64>,
    junction: Vec<f64>,
    /// Per-device bypass decisions for this stamp call, computed once on the
    /// master so every worker skips exactly the serial path's devices.
    mask: Vec<bool>,
}

impl CallCtx {
    fn capture(&mut self, input: &StampInput<'_>, x_iter: &[f64], junction: &[f64], mask: &[bool]) {
        self.time = input.time;
        self.coeffs = input.coeffs;
        self.x_prev.clear();
        self.x_prev.extend_from_slice(input.x_prev);
        self.x_prev2.clear();
        self.x_prev2.extend_from_slice(input.x_prev2);
        self.cap_currents.clear();
        self.cap_currents.extend_from_slice(input.cap_currents);
        self.gmin = input.gmin;
        self.gshunt = input.gshunt;
        self.source_scale = input.source_scale;
        self.ic_mode = input.ic_mode;
        self.x_iter.clear();
        self.x_iter.extend_from_slice(x_iter);
        self.junction.clear();
        self.junction.extend_from_slice(junction);
        self.mask.clear();
        self.mask.extend_from_slice(mask);
    }

    fn input(&self) -> StampInput<'_> {
        StampInput {
            time: self.time,
            coeffs: self.coeffs,
            x_prev: &self.x_prev,
            x_prev2: &self.x_prev2,
            cap_currents: &self.cap_currents,
            gmin: self.gmin,
            gshunt: self.gshunt,
            source_scale: self.source_scale,
            ic_mode: self.ic_mode,
        }
    }
}

/// One precomputed chunk of the nonlinear replay order.
#[derive(Debug, Clone, Copy)]
struct ChunkSpec {
    /// `[start, end)` into `StampPlan::nl_order`.
    start: u32,
    end: u32,
    /// Worker the chunk is pinned to (round-robin at plan time).
    worker: u32,
}

/// Persistent worker set evaluating stamp chunks concurrently.
///
/// Created once per solver (the workers and all buffers are reused across
/// every Newton iteration); dropped workers shut down when their job channel
/// closes. The executor snapshots the system at construction via `Arc`, so
/// the system must not be mutated afterwards (use the serial path for
/// workflows like DC sweeps that edit sources between solves).
pub struct StampExecutor {
    sys: Arc<MnaSystem>,
    n_workers: usize,
    chunks: Vec<ChunkSpec>,
    job_txs: Vec<Sender<Job>>,
    result_rx: Receiver<ChunkOut>,
    handles: Vec<JoinHandle<()>>,
    /// Reorder buffer: finished chunks land here until their turn.
    pending: Vec<Option<ChunkOut>>,
    /// Recycled per-chunk buffers, indexed by chunk id.
    spare: Vec<Option<ChunkBufs>>,
    /// Recycled snapshot (taken back from workers each call via `Arc`
    /// reference-count collapse; re-allocated only if a worker still holds it).
    ctx: Option<Arc<CallCtx>>,
    /// Per-worker busy nanoseconds within the current call.
    worker_busy: Vec<u64>,
    /// Fault-injection handle shared with the owning solver (inert outside
    /// tests unless `WAVEPIPE_FAULT_SEED` is set).
    faults: FaultHandle,
    /// Workers observed dead (send failed or a failed [`ChunkOut`] arrived).
    worker_dead: Vec<bool>,
    /// Permanently degraded: every future call takes the serial path.
    broken: bool,
    /// `WorkerLost`/`FallbackSerial` have been emitted (once per executor).
    fallback_logged: bool,
    /// Calibration mode (`WAVEPIPE_STAMP_SEQUENTIAL=1`): dispatch chunks one
    /// at a time so each chunk's evaluation is timed without the other
    /// workers competing for cores. Results are bit-identical either way —
    /// only the timing quality changes. Benchmarks use this on oversubscribed
    /// hosts, where concurrent chunk wall times would overstate the critical
    /// path that [`SimStats::stamp_modeled_ns`] models.
    sequential: bool,
}

impl fmt::Debug for StampExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StampExecutor")
            .field("workers", &self.n_workers)
            .field("chunks", &self.chunks.len())
            .field("colors", &self.sys.stamp_color_count())
            .finish()
    }
}

/// Rough per-device evaluation cost used to balance chunks (model
/// evaluations dominate; linear stamps are almost free).
fn device_cost(sys: &MnaSystem, d: u32) -> u64 {
    sys.device_eval_weight(d as usize)
}

impl StampExecutor {
    /// Spawns `workers` evaluation threads for `sys`. Returns `None` when
    /// `workers == 0` (serial stamping) or the system has no devices.
    /// `faults` is the owning solver's fault-injection handle; pass
    /// [`FaultHandle::none`] outside a simulation context.
    pub fn new(sys: &Arc<MnaSystem>, workers: usize, faults: &FaultHandle) -> Option<Self> {
        if workers == 0 || sys.plan().order.is_empty() {
            return None;
        }
        let n_workers = workers;
        // Only nonlinear devices are worth shipping to workers: linear
        // stamps are almost free (and companion-cacheable), so the master
        // keeps them. One contiguous span of the nonlinear replay order per
        // worker, balanced by estimated cost. A single chunk per worker
        // minimises the per-stamp channel round-trips, which dominate
        // overhead on small circuits; the cost weights keep the spans even
        // enough without work stealing. All-linear circuits get an empty
        // chunk list: the executor still exists, the master just does
        // everything itself.
        let nl_len = sys.plan().nl_order.len();
        let mut chunks: Vec<ChunkSpec> = Vec::new();
        if nl_len > 0 {
            let n_chunks = n_workers.min(nl_len);
            let order = &sys.plan().nl_order;
            let total_cost: u64 = order.iter().map(|&d| device_cost(sys, d)).sum();
            let target = total_cost.max(1).div_ceil(n_chunks as u64);
            let mut start = 0usize;
            let mut acc = 0u64;
            for (i, &d) in order.iter().enumerate() {
                acc += device_cost(sys, d);
                let remaining_chunks = n_chunks - chunks.len();
                let remaining_items = nl_len - i - 1;
                if (acc >= target || remaining_items < remaining_chunks) && i + 1 > start {
                    chunks.push(ChunkSpec {
                        start: start as u32,
                        end: (i + 1) as u32,
                        worker: (chunks.len() % n_workers) as u32,
                    });
                    start = i + 1;
                    acc = 0;
                    if chunks.len() == n_chunks {
                        break;
                    }
                }
            }
            if start < nl_len {
                // Fold any tail into the last chunk.
                match chunks.last_mut() {
                    Some(last) => last.end = nl_len as u32,
                    None => chunks.push(ChunkSpec { start: 0, end: nl_len as u32, worker: 0 }),
                }
            }
        }
        let (result_tx, result_rx) = channel::<ChunkOut>();
        let mut job_txs = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for widx in 0..n_workers {
            let (tx, rx) = channel::<Job>();
            job_txs.push(tx);
            let out = result_tx.clone();
            let sys = Arc::clone(sys);
            let faults = faults.clone();
            handles.push(std::thread::spawn(move || {
                let mut calls = 0u64;
                while let Ok(mut job) = rx.recv() {
                    let t0 = Instant::now();
                    let call = calls;
                    calls += 1;
                    let chunk_id = job.chunk_id;
                    // Contain panics (organic or injected) to this worker:
                    // evaluation writes only job-private buffers, so a caught
                    // unwind leaves no shared state to corrupt.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if faults.stamp_panic(widx, call) {
                            panic!("injected fault: stamp worker {widx} panics at call {call}");
                        }
                        let devices = &sys.plan().nl_order[job.start as usize..job.end as usize];
                        sys.eval_devices(
                            &job.ctx.input(),
                            &job.ctx.x_iter,
                            &job.ctx.junction,
                            devices,
                            &job.ctx.mask,
                            &mut job.bufs.mat,
                            &mut job.bufs.rhs,
                            &mut job.bufs.jct,
                            &mut job.bufs.limited_devs,
                        );
                        drop(job.ctx);
                        job.bufs
                    }));
                    let eval_ns = t0.elapsed().as_nanos() as u64;
                    match result {
                        Ok(bufs) => {
                            if out
                                .send(ChunkOut { chunk_id, bufs, eval_ns, failed: false })
                                .is_err()
                            {
                                break;
                            }
                        }
                        Err(_) => {
                            // Report the failure (best effort) and retire so
                            // the master falls back to serial evaluation.
                            let _ = out.send(ChunkOut {
                                chunk_id,
                                bufs: ChunkBufs::default(),
                                eval_ns,
                                failed: true,
                            });
                            break;
                        }
                    }
                }
            }));
        }
        let n_chunks = chunks.len();
        Some(StampExecutor {
            sys: Arc::clone(sys),
            n_workers,
            chunks,
            job_txs,
            result_rx,
            handles,
            pending: (0..n_chunks).map(|_| None).collect(),
            spare: (0..n_chunks).map(|_| Some(ChunkBufs::default())).collect(),
            ctx: Some(Arc::new(CallCtx::default())),
            worker_busy: vec![0; n_workers],
            faults: faults.clone(),
            worker_dead: vec![false; n_workers],
            broken: false,
            fallback_logged: false,
            sequential: std::env::var_os("WAVEPIPE_STAMP_SEQUENTIAL").is_some_and(|v| v != "0"),
        })
    }

    /// The system this executor was built for.
    pub fn system(&self) -> &Arc<MnaSystem> {
        &self.sys
    }

    /// Number of evaluation workers.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Parallel equivalent of [`MnaSystem::stamp_with`]: bit-identical
    /// results, concurrent nonlinear device evaluation. Records actual and
    /// critical-path-modeled stamp time into `stats`, emits per-color spans
    /// through `probe` when enabled, and mirrors worker-loss / fallback
    /// transitions into `metrics`.
    #[allow(clippy::too_many_arguments)] // mirrors the serial stamp context plus observability handles
    pub fn stamp(
        &mut self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x_iter: &[f64],
        ctl: &CacheCtl,
        probe: &ProbeHandle,
        metrics: &MetricsHandle,
        stats: &mut SimStats,
    ) -> StampResult {
        if self.broken {
            return self.stamp_serial(ws, input, x_iter, ctl, stats);
        }
        let t_call = Instant::now();
        // Decide bypass on the master (exactly as the serial path does),
        // then snapshot the borrowed inputs — mask included — so they can
        // cross into the workers.
        self.sys.compute_bypass_mask(&mut ws.caches, input, x_iter, ctl);
        let mut ctx_arc = self.ctx.take().and_then(|a| Arc::try_unwrap(a).ok()).unwrap_or_default();
        ctx_arc.capture(input, x_iter, &ws.junction_state, &ws.caches.mask);
        let ctx = Arc::new(ctx_arc);

        // Dispatch every chunk up-front: evaluation is safe across colors
        // (workers write only private buffers and device-owned junction
        // entries); only the *accumulation* below is ordered. In calibration
        // mode each dispatch waits for its result so chunk evaluations are
        // timed one at a time (same results, uncontended timing).
        for (id, chunk) in self.chunks.iter().enumerate() {
            let w = chunk.worker as usize;
            if self.worker_dead[w] {
                continue; // evaluated inline during accumulation
            }
            let bufs = self.spare[id].take().unwrap_or_default();
            let job = Job {
                ctx: Arc::clone(&ctx),
                chunk_id: id as u32,
                start: chunk.start,
                end: chunk.end,
                bufs,
            };
            if let Err(returned) = self.job_txs[w].send(job) {
                // Channel closed: the worker died earlier. Reclaim the
                // buffers; the accumulation pass evaluates the chunk inline.
                self.worker_dead[w] = true;
                self.spare[id] = Some(returned.0.bufs);
                continue;
            }
            if self.sequential {
                match self.result_rx.recv() {
                    Ok(out) => {
                        let id = out.chunk_id as usize;
                        if out.failed {
                            self.worker_dead[self.chunks[id].worker as usize] = true;
                        }
                        self.pending[id] = Some(out);
                    }
                    Err(_) => self.worker_dead.iter_mut().for_each(|d| *d = true),
                }
            }
        }
        self.ctx = Some(ctx);

        // The master stamps the linear phase itself while the workers chew
        // on the nonlinear chunks.
        let companion_hit = self.sys.stamp_linear_phase(ws, input, x_iter, ctl);
        let serial_ns = t_call.elapsed().as_nanos() as u64;

        // Accumulate strictly in chunk order (= color-then-element order
        // over the nonlinear devices), emitting a span per color group as it
        // is folded in.
        self.worker_busy.fill(0);
        let mut acc_ns = 0u64;
        let mut evals = self.sys.linear_device_count();
        let mut bypassed = 0usize;
        let plan = self.sys.plan();
        let mut open_color: Option<(u32, u32)> = None;
        for next in 0..self.chunks.len() {
            let chunk = self.chunks[next];
            let w = chunk.worker as usize;
            while self.pending[next].is_none() && !self.worker_dead[w] {
                match self.result_rx.recv() {
                    Ok(out) => {
                        let id = out.chunk_id as usize;
                        if out.failed {
                            self.worker_dead[self.chunks[id].worker as usize] = true;
                        }
                        self.pending[id] = Some(out);
                    }
                    Err(_) => self.worker_dead.iter_mut().for_each(|d| *d = true),
                }
            }
            let devices = &plan.nl_order[chunk.start as usize..chunk.end as usize];
            let out = match self.pending[next].take() {
                Some(out) if !out.failed => out,
                lost => {
                    // Worker lost: evaluate the chunk inline from the
                    // retained snapshot. Same devices, same inputs, same
                    // mask, same order — the accumulated result stays
                    // bit-identical.
                    if !self.fallback_logged {
                        self.fallback_logged = true;
                        probe.emit(input.time, EventKind::WorkerLost { lane: self.faults.lane() });
                        probe.emit(input.time, EventKind::FallbackSerial);
                        metrics.inc(Counter::WorkersLost);
                        metrics.inc(Counter::SerialFallbacks);
                    }
                    let mut bufs = lost.map(|o| o.bufs).unwrap_or_default();
                    let t0 = Instant::now();
                    let ctx_ref: &CallCtx = self.ctx.as_deref().expect("snapshot retained");
                    self.sys.eval_devices(
                        &ctx_ref.input(),
                        &ctx_ref.x_iter,
                        &ctx_ref.junction,
                        devices,
                        &ctx_ref.mask,
                        &mut bufs.mat,
                        &mut bufs.rhs,
                        &mut bufs.jct,
                        &mut bufs.limited_devs,
                    );
                    // Inline evaluation runs on the master thread, so it
                    // belongs to the serial critical path, not worker time.
                    acc_ns += t0.elapsed().as_nanos() as u64;
                    ChunkOut { chunk_id: next as u32, bufs, eval_ns: 0, failed: false }
                }
            };
            self.worker_busy[w] += out.eval_ns;
            let t_acc = Instant::now();
            if probe.enabled() {
                for &d in devices {
                    let c = plan.color[d as usize];
                    match open_color {
                        Some((open, n)) if open == c => open_color = Some((open, n + 1)),
                        Some((open, n)) => {
                            probe.emit(
                                input.time,
                                EventKind::StampColorEnd { color: open, devices: n },
                            );
                            probe.emit(input.time, EventKind::StampColorStart { color: c });
                            open_color = Some((c, 1));
                        }
                        None => {
                            probe.emit(input.time, EventKind::StampColorStart { color: c });
                            open_color = Some((c, 1));
                        }
                    }
                }
            }
            let (ev, byp) = self.sys.accumulate_devices(
                ws,
                devices,
                &out.bufs.mat,
                &out.bufs.rhs,
                &out.bufs.jct,
                &out.bufs.limited_devs,
                x_iter,
            );
            evals += ev;
            bypassed += byp;
            acc_ns += t_acc.elapsed().as_nanos() as u64;
            self.spare[next] = Some(out.bufs);
        }
        if let Some((open, n)) = open_color {
            probe.emit(input.time, EventKind::StampColorEnd { color: open, devices: n });
        }

        if self.worker_dead.iter().any(|&d| d) {
            // Degrade permanently: close the job channels so the surviving
            // workers exit, and take the serial path from now on. Keeping a
            // half-dead pool would re-balance chunks and change timing for no
            // benefit — correctness is already guaranteed by the serial path.
            self.broken = true;
            self.job_txs.clear();
        }

        let busiest = self.worker_busy.iter().copied().max().unwrap_or(0);
        stats.stamp_ns += t_call.elapsed().as_nanos();
        stats.stamp_modeled_ns += u128::from(busiest + serial_ns + acc_ns);
        StampResult { evals, bypassed, companion_hit }
    }

    /// Serial fallback once a worker has been lost: delegates to
    /// [`MnaSystem::stamp_with`] with the *same* cache controls, the very
    /// path parallel stamping is bit-identical to, so degradation never
    /// changes results.
    fn stamp_serial(
        &mut self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x_iter: &[f64],
        ctl: &CacheCtl,
        stats: &mut SimStats,
    ) -> StampResult {
        let t0 = Instant::now();
        let res = self.sys.stamp_with(ws, input, x_iter, ctl);
        let ns = t0.elapsed().as_nanos();
        stats.stamp_ns += ns;
        stats.stamp_modeled_ns += ns;
        res
    }

    /// True once a worker has been lost and the executor has fallen back to
    /// serial stamping for good.
    pub fn is_degraded(&self) -> bool {
        self.broken
    }
}

impl Drop for StampExecutor {
    fn drop(&mut self) {
        self.job_txs.clear(); // close channels: workers exit their recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
