//! DC sensitivity analysis by the adjoint method (`.sens`).
//!
//! For an output node voltage `V_out`, one *adjoint* solve
//! `A^T λ = e_out` at the operating point yields the sensitivity of `V_out`
//! to **every** circuit parameter simultaneously:
//!
//! * resistor `R` between `p`,`n` (conductance `g = 1/R`):
//!   `dV/dg = -(λ_p - λ_n)(x_p - x_n)`, so `dV/dR = (λ_p - λ_n)(x_p - x_n)/R²`;
//! * voltage source value: `dV/dE = λ_branch`;
//! * current source value: `dV/dI = -(λ_p - λ_n)`.
//!
//! Nonlinear devices are handled exactly by linearising at the operating
//! point: the adjoint system uses the same Jacobian Newton converged with.

use crate::error::{EngineError, Result};
use crate::mna::{Dev, MnaSystem, StampInput};
use crate::newton::LinearCache;
use crate::options::SimOptions;
use crate::stats::SimStats;
use wavepipe_circuit::Circuit;
use wavepipe_sparse::{LuOptions, SparseLu};

/// Sensitivity of the output to one circuit parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Element name.
    pub element: String,
    /// Parameter kind (`"resistance"`, `"voltage"`, `"current"`).
    pub parameter: &'static str,
    /// Absolute sensitivity `dV_out / dp` (V per parameter unit).
    pub absolute: f64,
    /// Normalised sensitivity `dV_out / d(ln p)` = `p * dV/dp`
    /// (volts per relative parameter change); 0 when `p = 0`.
    pub normalized: f64,
}

/// Result of a DC sensitivity analysis at one output node.
#[derive(Debug, Clone)]
pub struct SensitivityResult {
    /// Output node name.
    pub output: String,
    /// Output's DC value.
    pub value: f64,
    /// Per-parameter sensitivities, in netlist order.
    pub entries: Vec<Sensitivity>,
}

impl SensitivityResult {
    /// Looks up the sensitivity entry of a named element.
    pub fn of(&self, element: &str) -> Option<&Sensitivity> {
        self.entries.iter().find(|e| e.element.eq_ignore_ascii_case(element))
    }

    /// Entries sorted by descending |normalized| — the "what matters most"
    /// view.
    pub fn ranked(&self) -> Vec<&Sensitivity> {
        let mut v: Vec<&Sensitivity> = self.entries.iter().collect();
        v.sort_by(|a, b| {
            b.normalized.abs().partial_cmp(&a.normalized.abs()).expect("finite sensitivities")
        });
        v
    }
}

/// Computes the DC sensitivity of `output_node`'s voltage to every
/// resistor and independent-source value in the circuit.
///
/// ```
/// use wavepipe_circuit::{Circuit, Waveform};
/// use wavepipe_engine::{run_dc_sensitivity, SimOptions};
///
/// # fn main() -> Result<(), wavepipe_engine::EngineError> {
/// let mut ckt = Circuit::new("divider");
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(10.0))?;
/// ckt.add_resistor("R1", a, b, 2e3)?;
/// ckt.add_resistor("R2", b, Circuit::GROUND, 3e3)?;
/// let sens = run_dc_sensitivity(&ckt, "b", &SimOptions::default())?;
/// // V_b = 6 V; dV/dE = R2/(R1+R2) = 0.6.
/// assert!((sens.of("V1").expect("entry").absolute - 0.6).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`EngineError::UnknownSource`] if `output_node` does not exist.
/// * Operating-point and linear-solver failures.
pub fn run_dc_sensitivity(
    circuit: &Circuit,
    output_node: &str,
    opts: &SimOptions,
) -> Result<SensitivityResult> {
    let sys = MnaSystem::compile(circuit)?;
    let Some(out_idx) = sys.node_unknown(output_node) else {
        return Err(EngineError::UnknownSource { name: output_node.to_string() });
    };
    let mut ws = sys.new_workspace();
    let mut cache = LinearCache::for_options(opts);
    let mut stats = SimStats::new();
    let x = crate::dcop::dc_operating_point(&sys, &mut ws, &mut cache, None, opts, &mut stats)?;

    // Re-stamp the Jacobian at the converged operating point and factor it.
    let n = sys.n_unknowns();
    let zeros = vec![0.0; n];
    let caps = vec![0.0; sys.cap_state_count()];
    let input = StampInput {
        time: 0.0,
        coeffs: None,
        x_prev: &zeros,
        x_prev2: &zeros,
        cap_currents: &caps,
        gmin: opts.gmin,
        gshunt: 0.0,
        source_scale: 1.0,
        ic_mode: false,
    };
    sys.stamp(&mut ws, &input, &x);
    let lu = SparseLu::factor(&ws.matrix, &LuOptions::default())?;

    // Adjoint solve: A^T lambda = e_out.
    let mut e = vec![0.0; n];
    e[out_idx] = 1.0;
    let lambda = lu.solve_transpose(&e)?;

    const GND: usize = usize::MAX;
    let at = |v: &[f64], u: usize| if u == GND { 0.0 } else { v[u] };

    // Walk the circuit elements in netlist order, pairing them with the
    // compiled devices for index information.
    let mut entries = Vec::new();
    let mut dev_iter = sys.devices().iter();
    for el in circuit.elements() {
        // Each element consumed one or more compiled devices; the first one
        // carries the primary parameter.
        let dev = dev_iter.next().expect("device per element");
        // Skip the extra compiled devices (model capacitances).
        let extra = match el {
            wavepipe_circuit::Element::Mosfet { model, .. } => {
                usize::from(model.cgs > 0.0) + usize::from(model.cgd > 0.0)
            }
            wavepipe_circuit::Element::Diode { model, .. } => usize::from(model.cj0 > 0.0),
            _ => 0,
        };
        for _ in 0..extra {
            dev_iter.next();
        }
        match (el, dev) {
            (
                wavepipe_circuit::Element::Resistor { name, resistance, .. },
                Dev::Conductance { p, n, .. },
            ) => {
                let dl = at(&lambda, *p) - at(&lambda, *n);
                let dx = at(&x, *p) - at(&x, *n);
                let d_dg = -dl * dx;
                let d_dr = -d_dg / (resistance * resistance);
                entries.push(Sensitivity {
                    element: name.clone(),
                    parameter: "resistance",
                    absolute: d_dr,
                    normalized: d_dr * resistance,
                });
            }
            (wavepipe_circuit::Element::VoltageSource { name, .. }, Dev::Vsrc { branch, .. }) => {
                let d = lambda[*branch];
                let v0 = match el {
                    wavepipe_circuit::Element::VoltageSource { waveform, .. } => {
                        waveform.dc_value()
                    }
                    _ => unreachable!(),
                };
                entries.push(Sensitivity {
                    element: name.clone(),
                    parameter: "voltage",
                    absolute: d,
                    normalized: d * v0,
                });
            }
            (wavepipe_circuit::Element::CurrentSource { name, .. }, Dev::Isrc { p, n, .. }) => {
                // RHS contribution of I: -I at p, +I at n, so
                // dV/dI = -(lambda_p - lambda_n).
                let d = -(at(&lambda, *p) - at(&lambda, *n));
                let i0 = match el {
                    wavepipe_circuit::Element::CurrentSource { waveform, .. } => {
                        waveform.dc_value()
                    }
                    _ => unreachable!(),
                };
                entries.push(Sensitivity {
                    element: name.clone(),
                    parameter: "current",
                    absolute: d,
                    normalized: d * i0,
                });
            }
            _ => {}
        }
    }

    Ok(SensitivityResult { output: output_node.to_string(), value: x[out_idx], entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::{DiodeModel, Waveform};

    fn divider() -> Circuit {
        let mut ckt = Circuit::new("div");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(10.0)).unwrap();
        ckt.add_resistor("R1", a, b, 2e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 3e3).unwrap();
        ckt
    }

    #[test]
    fn divider_sensitivities_match_closed_form() {
        // V_b = E * R2/(R1+R2) = 6 V.
        // dV/dR1 = -E*R2/(R1+R2)^2 = -10*3k/25e6 = -1.2e-3
        // dV/dR2 = +E*R1/(R1+R2)^2 = +0.8e-3
        // dV/dE  = R2/(R1+R2) = 0.6
        let res = run_dc_sensitivity(&divider(), "b", &SimOptions::default()).unwrap();
        assert!((res.value - 6.0).abs() < 1e-6);
        let r1 = res.of("R1").unwrap();
        let r2 = res.of("R2").unwrap();
        let v1 = res.of("V1").unwrap();
        assert!((r1.absolute + 1.2e-3).abs() < 1e-8, "dV/dR1 {}", r1.absolute);
        assert!((r2.absolute - 0.8e-3).abs() < 1e-8, "dV/dR2 {}", r2.absolute);
        assert!((v1.absolute - 0.6).abs() < 1e-8, "dV/dE {}", v1.absolute);
        // Normalised: R1 -2.4 V per 100%, R2 +2.4 V per 100%.
        assert!((r1.normalized + 2.4).abs() < 1e-6);
        assert!((r2.normalized - 2.4).abs() < 1e-6);
    }

    #[test]
    fn adjoint_matches_finite_difference_on_nonlinear_circuit() {
        // Diode-loaded divider: sensitivities through the linearised OP must
        // match brute-force finite differences.
        let build = |r1: f64| {
            let mut ckt = Circuit::new("dio");
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
            ckt.add_resistor("R1", a, b, r1).unwrap();
            ckt.add_diode("D1", b, Circuit::GROUND, DiodeModel::default()).unwrap();
            ckt
        };
        // Chord/bypass pinned off: the adjoint is exact only at a fully
        // polished Newton point, and this test checks it beyond `reltol`.
        let opts = SimOptions::default().with_chord_newton(false).with_bypass(false);
        let res = run_dc_sensitivity(&build(1e3), "b", &opts).unwrap();
        let s_adj = res.of("R1").unwrap().absolute;
        // Finite difference.
        let vb = |r1: f64| {
            let ckt = build(r1);
            let res = run_dc_sensitivity(&ckt, "b", &opts).unwrap();
            res.value
        };
        let h = 0.1;
        let fd = (vb(1e3 + h) - vb(1e3 - h)) / (2.0 * h);
        assert!((s_adj - fd).abs() < 1e-3 * fd.abs().max(1e-9), "adjoint {s_adj} vs fd {fd}");
    }

    #[test]
    fn current_source_sensitivity() {
        // I into R: V = I*R, dV/dI = R.
        let mut ckt = Circuit::new("ir");
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, Waveform::dc(1e-3)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 4e3).unwrap();
        let res = run_dc_sensitivity(&ckt, "a", &SimOptions::default()).unwrap();
        let i1 = res.of("I1").unwrap();
        assert!((i1.absolute - 4e3).abs() < 1.0, "dV/dI {}", i1.absolute);
        let r1 = res.of("R1").unwrap();
        assert!((r1.absolute - 1e-3).abs() < 1e-9, "dV/dR {}", r1.absolute);
    }

    #[test]
    fn ranked_orders_by_impact() {
        let res = run_dc_sensitivity(&divider(), "b", &SimOptions::default()).unwrap();
        let ranked = res.ranked();
        // The source dominates (6 V per 100%), then the resistors (2.4).
        assert_eq!(ranked[0].element, "V1");
        assert!(ranked[0].normalized.abs() > ranked[1].normalized.abs() - 1e-12);
    }

    #[test]
    fn device_pairing_survives_multi_device_elements() {
        // A MOSFET compiles to 3 devices (channel + 2 caps); the element/
        // device walk must stay aligned so the resistor AFTER it still gets
        // the right sensitivity.
        use wavepipe_circuit::MosModel;
        let mut ckt = Circuit::new("pair");
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(3.3)).unwrap();
        ckt.add_vsource("Vg", g, Circuit::GROUND, Waveform::dc(0.9)).unwrap();
        ckt.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            MosModel { kp: 2e-4, w: 50e-6, ..MosModel::nmos() },
        )
        .unwrap();
        ckt.add_resistor("Rd", vdd, d, 5e3).unwrap();
        let opts = SimOptions::default();
        let res = run_dc_sensitivity(&ckt, "d", &opts).unwrap();
        let rd = res.of("Rd").unwrap().absolute;
        // Finite difference on Rd.
        let vb = |r: f64| {
            let mut ckt = Circuit::new("pair");
            let vdd = ckt.node("vdd");
            let g = ckt.node("g");
            let d = ckt.node("d");
            ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(3.3)).unwrap();
            ckt.add_vsource("Vg", g, Circuit::GROUND, Waveform::dc(0.9)).unwrap();
            ckt.add_mosfet(
                "M1",
                d,
                g,
                Circuit::GROUND,
                MosModel { kp: 2e-4, w: 50e-6, ..MosModel::nmos() },
            )
            .unwrap();
            ckt.add_resistor("Rd", vdd, d, r).unwrap();
            run_dc_sensitivity(&ckt, "d", &opts).unwrap().value
        };
        let h = 0.5;
        let fd = (vb(5e3 + h) - vb(5e3 - h)) / (2.0 * h);
        assert!((rd - fd).abs() < 1e-3 * fd.abs().max(1e-9), "adjoint {rd} vs fd {fd}");
        // Gate-source sensitivity reflects -gm*Rd/(1+...) ~ -10.
        let vgs = res.of("Vg").unwrap().absolute;
        assert!(vgs < -5.0 && vgs > -20.0, "dVd/dVg = {vgs}");
    }

    #[test]
    fn unknown_output_node_is_an_error() {
        assert!(matches!(
            run_dc_sensitivity(&divider(), "nope", &SimOptions::default()),
            Err(EngineError::UnknownSource { .. })
        ));
    }
}
