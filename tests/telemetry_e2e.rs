//! End-to-end telemetry: a recorded WavePipe run exported through both
//! consumers, validated against the acceptance criteria — the Chrome trace
//! must make the pipelining overlap visible on multiple lanes, and the JSONL
//! stream must survive a round trip.

use std::sync::Arc;
use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::telemetry::{chrome, json, jsonl, EventKind, Probe, ProbeHandle, RecordingProbe};

fn traced_run(
    scheme: Scheme,
    threads: usize,
) -> (Arc<RecordingProbe>, wavepipe::core::WavePipeReport) {
    let b = generators::rc_ladder(8);
    let probe = RecordingProbe::shared();
    let opts = WavePipeOptions::new(scheme, threads).with_probe(ProbeHandle::new(probe.clone()));
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    (probe, rep)
}

#[test]
fn combined_chrome_trace_shows_overlapping_lanes() {
    let (probe, _rep) = traced_run(Scheme::Combined, 4);
    let events = probe.events();
    let text = chrome::chrome_trace_string(&events);

    // Valid JSON with the trace-event structure.
    let doc = json::parse(&text).expect("chrome trace must be valid JSON");
    let trace_events = doc.get("traceEvents").and_then(json::JsonValue::as_array).unwrap();

    // Solve spans ("X" phase, real lanes — not the synthetic rounds track).
    let spans: Vec<(f64, f64, f64)> = trace_events
        .iter()
        .filter(|e| e.get("ph").and_then(json::JsonValue::as_str) == Some("X"))
        .filter(|e| {
            e.get("tid").and_then(json::JsonValue::as_f64).unwrap() < f64::from(chrome::ROUNDS_TID)
        })
        .map(|e| {
            let tid = e.get("tid").unwrap().as_f64().unwrap();
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let dur = e.get("dur").unwrap().as_f64().unwrap();
            (tid, ts, ts + dur)
        })
        .collect();

    let mut lanes: Vec<u64> = spans.iter().map(|&(tid, _, _)| tid as u64).collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert!(lanes.len() >= 2, "expected spans on >= 2 lanes, got {lanes:?}");

    // Pipelining visible: at least one pair of spans on distinct lanes with
    // overlapping time ranges (worker spans start at dispatch, so this holds
    // even on a single-core host).
    let overlap = spans.iter().enumerate().any(|(i, &(la, s1, e1))| {
        spans[i + 1..].iter().any(|&(lb, s2, e2)| la != lb && s1 < e2 && s2 < e1)
    });
    assert!(overlap, "no overlapping spans on distinct lanes");
}

#[test]
fn jsonl_stream_round_trips() {
    let (probe, rep) = traced_run(Scheme::Backward, 2);
    let events = probe.events();
    assert!(!events.is_empty());

    let mut buf = Vec::new();
    jsonl::write_jsonl(&events, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let parsed = jsonl::parse_jsonl(&text).expect("exported JSONL must parse back");
    assert_eq!(parsed, events, "JSONL round trip must be lossless");

    // The stream carries the run's accepted points.
    let accepted =
        events.iter().filter(|e| matches!(e.kind, EventKind::PointAccepted { .. })).count();
    assert_eq!(accepted, rep.total.steps_accepted);
}

#[test]
fn serial_engine_emits_balanced_solve_spans() {
    // The probe also works below the pipelining layer: a plain serial run
    // emits paired SolveStart/SolveEnd and per-point accept events.
    let b = generators::rc_ladder(6);
    let probe = RecordingProbe::shared();
    let opts = wavepipe::engine::SimOptions::default().with_probe(ProbeHandle::new(probe.clone()));
    let res = wavepipe::engine::run_transient(&b.circuit, b.tstep, b.tstop, &opts).unwrap();

    let events = probe.events();
    let starts = events.iter().filter(|e| matches!(e.kind, EventKind::SolveStart { .. })).count();
    let ends = events.iter().filter(|e| matches!(e.kind, EventKind::SolveEnd { .. })).count();
    assert_eq!(starts, ends, "every solve span must close");
    assert!(starts > 0);
    let accepted =
        events.iter().filter(|e| matches!(e.kind, EventKind::PointAccepted { .. })).count();
    assert_eq!(accepted, res.stats().steps_accepted);
    // Everything on lane 0, and the summary agrees.
    assert!(events.iter().all(|e| e.lane == 0));
    let summary = probe.summary().unwrap();
    assert_eq!(summary.points_accepted as usize, accepted);
    assert_eq!(summary.active_lanes(), 1);
}
