//! WavePipe — parallel transient simulation of analog and digital circuits
//! on multi-core shared-memory machines (Dong, Li & Ye, DAC 2008).
//!
//! This facade crate re-exports the full WavePipe stack:
//!
//! * [`sparse`] — sparse LU substrate (Gilbert–Peierls with KLU-style
//!   refactorization, fill-reducing orderings).
//! * [`circuit`] — netlists, device models, source waveforms, SPICE-style
//!   parser, benchmark generators.
//! * [`engine`] — the serial SPICE engine: MNA, Newton–Raphson, DC operating
//!   point, variable-step integration with LTE control.
//! * [`core`] — the paper's contribution: backward/forward/combined waveform
//!   pipelining with critical-path work accounting.
//! * [`telemetry`] — zero-overhead-when-disabled instrumentation: typed
//!   event probes, JSONL and Chrome-trace exporters, run summaries.
//!
//! # Quickstart
//!
//! The [`prelude`] brings the everyday names into scope in one line:
//!
//! ```
//! use wavepipe::prelude::*;
//!
//! # fn main() -> Result<(), EngineError> {
//! let mut ckt = Circuit::new("rc lowpass");
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource("V1", inp, Circuit::GROUND,
//!     Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 40e-9, 80e-9))?;
//! ckt.add_resistor("R1", inp, out, 1e3)?;
//! ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-12)?;
//!
//! let opts = WavePipeOptions::new(Scheme::Backward, 2);
//! let report = run_wavepipe(&ckt, 0.1e-9, 200e-9, &opts)?;
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `wavepipe-bench` for the
//! harness regenerating every table and figure of the paper's evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Sparse linear algebra substrate (re-export of `wavepipe-sparse`).
pub use wavepipe_sparse as sparse;

/// Circuit description substrate (re-export of `wavepipe-circuit`).
pub use wavepipe_circuit as circuit;

/// Serial SPICE engine and analysis toolbox — transient, AC, DC sweep,
/// sensitivity, measurements, spectra, rawfiles (re-export of
/// `wavepipe-engine`).
pub use wavepipe_engine as engine;

/// WavePipe parallel schemes (re-export of `wavepipe-core`).
pub use wavepipe_core as core;

/// Batched many-scenario simulation: compile once, run many parameter
/// instances over a shared pattern, ordering, and stamp plan (re-export of
/// `wavepipe-batch`).
pub use wavepipe_batch as batch;

/// Structured event tracing, histograms, and trace exporters (re-export of
/// `wavepipe-telemetry`).
pub use wavepipe_telemetry as telemetry;

/// The everyday names, importable in one line: `use wavepipe::prelude::*;`.
///
/// Covers building a circuit ([`Circuit`], [`Waveform`]), configuring a run
/// ([`SimOptions`], [`WavePipeOptions`], [`Scheme`]), running it
/// ([`run_transient`], [`run_wavepipe`]), handling failures
/// ([`EngineError`]), and the fault-tolerant entry points that keep the
/// accepted waveform prefix on deadline/cancellation
/// ([`run_transient_recoverable`], [`run_wavepipe_recoverable`],
/// [`CancelToken`], [`FaultPlan`]), and batched many-scenario sweeps over a
/// pluggable solver backend with per-instance fault isolation
/// ([`BatchSim`], [`BatchRun`], [`BatchOutcome`], [`QuarantineReport`],
/// [`ParamKind`], [`SolverBackend`], [`SolverHandle`]), plus the iterative
/// Krylov solver path ([`GmresBackend`], [`GmresConfig`]).
///
/// [`Circuit`]: prelude::Circuit
/// [`Waveform`]: prelude::Waveform
/// [`SimOptions`]: prelude::SimOptions
/// [`WavePipeOptions`]: prelude::WavePipeOptions
/// [`Scheme`]: prelude::Scheme
/// [`run_transient`]: prelude::run_transient
/// [`run_wavepipe`]: prelude::run_wavepipe
/// [`EngineError`]: prelude::EngineError
/// [`run_transient_recoverable`]: prelude::run_transient_recoverable
/// [`run_wavepipe_recoverable`]: prelude::run_wavepipe_recoverable
/// [`CancelToken`]: prelude::CancelToken
/// [`FaultPlan`]: prelude::FaultPlan
/// [`BatchSim`]: prelude::BatchSim
/// [`BatchRun`]: prelude::BatchRun
/// [`BatchOutcome`]: prelude::BatchOutcome
/// [`QuarantineReport`]: prelude::QuarantineReport
/// [`ParamKind`]: prelude::ParamKind
/// [`SolverBackend`]: prelude::SolverBackend
/// [`SolverHandle`]: prelude::SolverHandle
/// [`GmresBackend`]: prelude::GmresBackend
/// [`GmresConfig`]: prelude::GmresConfig
pub mod prelude {
    pub use wavepipe_batch::{
        BatchError, BatchOutcome, BatchRun, BatchSim, ParamKind, QuarantineReport,
    };
    pub use wavepipe_circuit::{Circuit, Waveform};
    pub use wavepipe_core::{
        run_wavepipe, run_wavepipe_recoverable, RunOutcome, Scheme, WavePipeOptions,
    };
    pub use wavepipe_engine::{
        run_transient, run_transient_recoverable, CancelToken, EngineError, FaultPlan,
        GmresBackend, GmresConfig, KrylovStats, SimOptions, SolverBackend, SolverHandle,
        TransientOutcome,
    };
}
