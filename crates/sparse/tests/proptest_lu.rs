//! Property-based tests: the sparse LU must agree with the dense oracle on
//! arbitrary well-conditioned sparse systems, and refactorization must be
//! numerically indistinguishable from a fresh factorization.

use proptest::prelude::*;
use wavepipe_sparse::{CooMatrix, CscMatrix, DenseMatrix, LuOptions, OrderingKind, SparseLu};

/// Strategy: a random diagonally dominant sparse matrix of dimension 2..=24.
///
/// Diagonal dominance keeps the system well-conditioned so solution
/// comparisons are meaningful at tight tolerances.
fn dominant_matrix() -> impl Strategy<Value = CscMatrix> {
    (2usize..=24).prop_flat_map(|n| {
        let offdiag = proptest::collection::vec((0usize..n, 0usize..n, -1.0f64..1.0), 0..(3 * n));
        offdiag.prop_map(move |entries| {
            let mut t = CooMatrix::new(n, n);
            let mut rowsum = vec![0.0f64; n];
            for (r, c, v) in entries {
                if r != c {
                    t.push(r, c, v).expect("in bounds");
                    rowsum[r] += v.abs();
                }
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                // Strictly dominant diagonal.
                t.push(i, i, rowsum[i] + 1.0 + (i as f64) * 0.01).expect("in bounds");
            }
            t.to_csc()
        })
    })
}

fn dense_of(a: &CscMatrix) -> DenseMatrix {
    a.to_dense()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_solve_matches_dense_oracle(a in dominant_matrix()) {
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let lu = SparseLu::factor(&a, &LuOptions::default()).expect("dominant => nonsingular");
        let xs = lu.solve(&b).expect("solve");
        let xd = dense_of(&a).solve(&b).expect("dense solve");
        for (s, d) in xs.iter().zip(&xd) {
            prop_assert!((s - d).abs() < 1e-8, "sparse {} vs dense {}", s, d);
        }
    }

    #[test]
    fn all_orderings_give_same_solution(a in dominant_matrix()) {
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut sols = Vec::new();
        for kind in [OrderingKind::Natural, OrderingKind::MinDegree, OrderingKind::ReverseCuthillMcKee] {
            let opts = LuOptions { ordering: kind, ..LuOptions::default() };
            let lu = SparseLu::factor(&a, &opts).expect("factor");
            sols.push(lu.solve(&b).expect("solve"));
        }
        for s in &sols[1..] {
            for (x, y) in s.iter().zip(&sols[0]) {
                prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn refactor_equals_fresh_factor(a in dominant_matrix(), scale in 0.5f64..2.0) {
        let n = a.ncols();
        // Build a same-pattern matrix with scaled values.
        let mut t = CooMatrix::new(n, n);
        for (r, c, v) in a.iter() {
            let nv = if r == c { v * scale + 0.1 } else { v * scale };
            t.push(r, c, nv).expect("in bounds");
        }
        let a2 = t.to_csc();
        prop_assume!(a2.nnz() == a.nnz());

        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut lu = SparseLu::factor(&a, &LuOptions::default()).expect("factor");
        lu.refactor(&a2).expect("refactor");
        let x_re = lu.solve(&b).expect("solve refactored");
        let x_fresh = SparseLu::factor(&a2, &LuOptions::default())
            .expect("fresh factor")
            .solve(&b)
            .expect("solve fresh");
        for (x, y) in x_re.iter().zip(&x_fresh) {
            prop_assert!((x - y).abs() < 1e-8, "refactor {} vs fresh {}", x, y);
        }
    }

    #[test]
    fn solve_residual_is_small(a in dominant_matrix()) {
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let lu = SparseLu::factor(&a, &LuOptions::default()).expect("factor");
        let x = lu.solve(&b).expect("solve");
        let mut r = vec![0.0; n];
        a.residual_into(&x, &b, &mut r).expect("residual");
        let rel = wavepipe_sparse::vector::norm_inf(&r)
            / (1.0 + wavepipe_sparse::vector::norm_inf(&b));
        prop_assert!(rel < 1e-9, "relative residual {}", rel);
    }

    #[test]
    fn transpose_involution(a in dominant_matrix()) {
        prop_assert_eq!(&a, &a.transpose().transpose());
    }

    #[test]
    fn matvec_linear(a in dominant_matrix(), alpha in -3.0f64..3.0) {
        let n = a.ncols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let ax = a.matvec(&x).expect("matvec");
        let sx: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let asx = a.matvec(&sx).expect("matvec scaled");
        for (y, z) in asx.iter().zip(&ax) {
            prop_assert!((y - alpha * z).abs() < 1e-9 * (1.0 + z.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_solve_solves_the_transpose(a in dominant_matrix()) {
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let lu = SparseLu::factor(&a, &LuOptions::default()).expect("factor");
        let x = lu.solve_transpose(&b).expect("transpose solve");
        let r = a.transpose().matvec(&x).expect("matvec");
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual {} vs {}", ri, bi);
        }
    }

    #[test]
    fn condest_at_least_one_and_finite(a in dominant_matrix()) {
        let lu = SparseLu::factor(&a, &LuOptions::default()).expect("factor");
        let est = lu.condest_1(&a).expect("condest");
        prop_assert!(est.is_finite());
        prop_assert!(est >= 0.99, "condition number below 1: {}", est);
    }
}
