//! Chrome trace-event export (`chrome://tracing` / [Perfetto](https://ui.perfetto.dev)).
//!
//! Point-solves become complete (`"ph":"X"`) duration spans on one timeline
//! track per solver lane, rounds become spans on a dedicated `rounds` track,
//! and commit decisions (LTE rejections, lead/speculation outcomes) become
//! instant events — so the pipelining overlap of a WavePipe run is literally
//! visible as stacked spans on concurrent lanes.
//!
//! Three counter tracks (`"ph":"C"`) plot run health over time next to the
//! spans: the speculation accept-rate EMA, the number of concurrently
//! in-flight point-solves, and the device-bypass hit rate.

use crate::event::{Event, EventKind};
use crate::json;
use std::io::{self, Write};

/// Synthetic track id for round spans (real lanes are small integers).
pub const ROUNDS_TID: u32 = 1000;

/// Base of the synthetic track ids carrying per-color stamp spans: lane `n`'s
/// stamp activity renders on track `STAMPS_TID_BASE + n`, directly below its
/// solve track in the timeline.
pub const STAMPS_TID_BASE: u32 = 2000;

fn us(ns: u64) -> String {
    // Trace-event timestamps are microseconds; keep nanosecond resolution
    // with a fractional part.
    json::fmt_f64(ns as f64 / 1000.0)
}

fn meta(out: &mut Vec<String>, tid: u32, name: &str) {
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        json::escape(name)
    ));
}

fn complete(out: &mut Vec<String>, tid: u32, name: &str, start_ns: u64, end_ns: u64, args: &str) {
    out.push(format!(
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"{}\",\"ts\":{},\"dur\":{},\
         \"args\":{{{args}}}}}",
        json::escape(name),
        us(start_ns),
        us(end_ns.saturating_sub(start_ns))
    ));
}

fn instant(out: &mut Vec<String>, tid: u32, name: &str, ts_ns: u64, args: &str) {
    out.push(format!(
        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"name\":\"{}\",\"ts\":{},\"s\":\"t\",\
         \"args\":{{{args}}}}}",
        json::escape(name),
        us(ts_ns)
    ));
}

fn counter(out: &mut Vec<String>, name: &str, ts_ns: u64, series: &str, value: f64) {
    out.push(format!(
        "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"name\":\"{}\",\"ts\":{},\
         \"args\":{{\"{}\":{}}}}}",
        json::escape(name),
        us(ts_ns),
        json::escape(series),
        json::fmt_f64(value)
    ));
}

/// Smoothing factor of the accept-rate counter track: each lead/speculation
/// outcome moves the EMA 8% of the way toward 1 (accepted) or 0 (discarded).
const ACCEPT_EMA_ALPHA: f64 = 0.08;

/// Renders the event stream as a Chrome trace-event JSON document.
///
/// # Errors
///
/// Propagates I/O failures from `out`.
pub fn write_chrome_trace<W: Write>(events: &[Event], out: &mut W) -> io::Result<()> {
    let mut objs: Vec<String> = Vec::with_capacity(events.len() + 8);
    objs.push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"wavepipe\"}}"
            .to_string(),
    );
    let max_lane = events.iter().map(|e| e.lane).max().unwrap_or(0);
    for lane in 0..=max_lane {
        let name =
            if lane == 0 { "lane 0 (lead)".to_string() } else { format!("lane {lane} (worker)") };
        meta(&mut objs, lane, &name);
    }
    meta(&mut objs, ROUNDS_TID, "rounds");
    for lane in 0..=max_lane {
        if events
            .iter()
            .any(|e| e.lane == lane && matches!(e.kind, EventKind::StampColorStart { .. }))
        {
            meta(&mut objs, STAMPS_TID_BASE + lane, &format!("lane {lane} stamps"));
        }
    }

    // Open spans: one solve slot per lane, one stamp-color slot per lane,
    // one round slot.
    let mut open_solve: Vec<Option<(u64, f64, f64)>> = vec![None; max_lane as usize + 1];
    let mut open_stamp: Vec<Option<(u64, u32)>> = vec![None; max_lane as usize + 1];
    let mut open_round: Option<(u64, u64, u32)> = None;
    // Counter-track state: accept-rate EMA over lead/speculation outcomes,
    // concurrently in-flight solves, and the bypass hit-rate proxy (total
    // bypassed over bypass opportunities, taking the largest observed batch
    // as the per-iteration nonlinear device count).
    let mut accept_ema = 1.0f64;
    let mut active_solves = 0u32;
    let mut bypassed_total = 0u64;
    let mut bypass_events = 0u64;
    let mut max_bypass_batch = 0u64;
    for ev in events {
        match ev.kind {
            EventKind::SolveStart { h } => {
                // First start wins: the round executor stamps a worker task's
                // lane at dispatch, the solver stamps it again at execution
                // start. Keeping the earliest renders the task's full
                // in-flight lifetime, so pipelining overlap stays visible
                // even on hosts with fewer cores than lanes.
                let slot = &mut open_solve[ev.lane as usize];
                if slot.is_none() {
                    *slot = Some((ev.ts_ns, ev.t_sim, h));
                    active_solves += 1;
                    counter(
                        &mut objs,
                        "active solves",
                        ev.ts_ns,
                        "solves",
                        f64::from(active_solves),
                    );
                }
            }
            EventKind::SolveEnd { iterations, converged } => {
                if let Some((start, t_sim, h)) = open_solve[ev.lane as usize].take() {
                    let args = format!(
                        "\"t_sim\":{},\"h\":{},\"iterations\":{iterations},\
                         \"converged\":{converged},\"round\":{}",
                        json::fmt_f64(t_sim),
                        json::fmt_f64(h),
                        ev.round
                    );
                    let name = format!("solve t={t_sim:.4e}");
                    complete(&mut objs, ev.lane, &name, start, ev.ts_ns, &args);
                    active_solves = active_solves.saturating_sub(1);
                    counter(
                        &mut objs,
                        "active solves",
                        ev.ts_ns,
                        "solves",
                        f64::from(active_solves),
                    );
                }
            }
            EventKind::RoundStart { width } => {
                open_round = Some((ev.ts_ns, ev.round, width));
            }
            EventKind::RoundEnd { committed } => {
                if let Some((start, round, width)) = open_round.take() {
                    let args = format!("\"width\":{width},\"committed\":{committed}");
                    let name = format!("round {round}");
                    complete(&mut objs, ROUNDS_TID, &name, start, ev.ts_ns, &args);
                }
            }
            EventKind::LteReject { ratio, h_retry } => {
                let args = format!(
                    "\"t_sim\":{},\"ratio\":{},\"h_retry\":{}",
                    json::fmt_f64(ev.t_sim),
                    json::fmt_f64(ratio),
                    json::fmt_f64(h_retry)
                );
                instant(&mut objs, ev.lane, "lte_reject", ev.ts_ns, &args);
            }
            EventKind::LeadAccepted | EventKind::SpeculationAccepted => {
                let args = format!("\"t_sim\":{}", json::fmt_f64(ev.t_sim));
                instant(&mut objs, ev.lane, ev.kind.name(), ev.ts_ns, &args);
                accept_ema += ACCEPT_EMA_ALPHA * (1.0 - accept_ema);
                counter(&mut objs, "accept rate (ema)", ev.ts_ns, "rate", accept_ema);
            }
            EventKind::LeadDiscarded { reason } | EventKind::SpeculationDiscarded { reason } => {
                let args = format!(
                    "\"t_sim\":{},\"reason\":\"{}\"",
                    json::fmt_f64(ev.t_sim),
                    reason.name()
                );
                instant(&mut objs, ev.lane, ev.kind.name(), ev.ts_ns, &args);
                accept_ema -= ACCEPT_EMA_ALPHA * accept_ema;
                counter(&mut objs, "accept rate (ema)", ev.ts_ns, "rate", accept_ema);
            }
            EventKind::AdaptiveChoice { forward } => {
                let args = format!("\"forward\":{forward}");
                instant(&mut objs, ROUNDS_TID, "adaptive_choice", ev.ts_ns, &args);
            }
            EventKind::StampColorStart { color } => {
                open_stamp[ev.lane as usize] = Some((ev.ts_ns, color));
            }
            EventKind::StampColorEnd { color, devices } => {
                if let Some((start, c0)) = open_stamp[ev.lane as usize].take() {
                    if c0 == color {
                        let args = format!("\"color\":{color},\"devices\":{devices}");
                        let name = format!("color {color}");
                        complete(
                            &mut objs,
                            STAMPS_TID_BASE + ev.lane,
                            &name,
                            start,
                            ev.ts_ns,
                            &args,
                        );
                    }
                }
            }
            EventKind::WorkerLost { lane } => {
                let args = format!("\"lost_lane\":{lane}");
                instant(&mut objs, ev.lane, "worker_lost", ev.ts_ns, &args);
            }
            EventKind::FallbackSerial => {
                instant(&mut objs, ev.lane, "fallback_serial", ev.ts_ns, "");
            }
            EventKind::DeadlineHit => {
                instant(&mut objs, ROUNDS_TID, "deadline_hit", ev.ts_ns, "");
            }
            EventKind::RecoveryAttempt { h } => {
                let args =
                    format!("\"t_sim\":{},\"h\":{}", json::fmt_f64(ev.t_sim), json::fmt_f64(h));
                instant(&mut objs, ev.lane, "recovery_attempt", ev.ts_ns, &args);
            }
            EventKind::RecoveryRung { rung, success } => {
                let args = format!("\"rung\":{rung},\"success\":{success}");
                instant(&mut objs, ev.lane, "recovery_rung", ev.ts_ns, &args);
            }
            EventKind::CachePoisonRollback => {
                instant(&mut objs, ev.lane, "cache_poison_rollback", ev.ts_ns, "");
            }
            EventKind::KrylovSolve { iterations, restarts, precond_refreshes, fallback } => {
                let args = format!(
                    "\"iterations\":{iterations},\"restarts\":{restarts},\
                     \"precond_refreshes\":{precond_refreshes},\"fallback\":{fallback}"
                );
                instant(&mut objs, ev.lane, "krylov_solve", ev.ts_ns, &args);
            }
            EventKind::BypassedDevices { devices } => {
                // No span — just the hit-rate counter. The largest batch seen
                // so far stands in for the circuit's nonlinear device count
                // (the stream itself never carries it), so early samples may
                // underestimate the denominator and start near 1.
                bypassed_total += u64::from(devices);
                bypass_events += 1;
                max_bypass_batch = max_bypass_batch.max(u64::from(devices));
                let denom = bypass_events * max_bypass_batch;
                if denom > 0 {
                    let rate = bypassed_total as f64 / denom as f64;
                    counter(&mut objs, "bypass hit rate", ev.ts_ns, "rate", rate);
                }
            }
            // Per-iteration and per-factorization events are deliberately not
            // rendered: they are summary/JSONL material and would swamp the
            // timeline.
            EventKind::NewtonIter { .. }
            | EventKind::Factorization
            | EventKind::Refactorization
            | EventKind::JacobianReuse
            | EventKind::CompanionHit
            | EventKind::StepSizeChosen { .. }
            | EventKind::PointAccepted { .. } => {}
        }
    }

    out.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")?;
    for (i, o) in objs.iter().enumerate() {
        out.write_all(o.as_bytes())?;
        if i + 1 < objs.len() {
            out.write_all(b",\n")?;
        } else {
            out.write_all(b"\n")?;
        }
    }
    out.write_all(b"]}\n")?;
    Ok(())
}

/// Renders the trace to a string (convenience for tests and small runs).
pub fn chrome_trace_string(events: &[Event]) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(events, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DiscardReason;
    use crate::json::JsonValue;

    fn ev(ts_ns: u64, round: u64, lane: u32, kind: EventKind) -> Event {
        Event { ts_ns, round, lane, t_sim: 1e-9, kind }
    }

    fn spans(doc: &JsonValue) -> Vec<&JsonValue> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect()
    }

    #[test]
    fn output_is_valid_json_with_matched_x_spans() {
        let events = vec![
            ev(0, 1, 0, EventKind::RoundStart { width: 2 }),
            ev(5, 1, 0, EventKind::SolveStart { h: 1e-9 }),
            ev(6, 1, 1, EventKind::SolveStart { h: 2e-9 }),
            ev(50, 1, 1, EventKind::SolveEnd { iterations: 3, converged: true }),
            ev(60, 1, 0, EventKind::SolveEnd { iterations: 2, converged: true }),
            ev(70, 1, 0, EventKind::LteReject { ratio: 2.0, h_retry: 0.5e-9 }),
            ev(80, 1, 0, EventKind::RoundEnd { committed: 1 }),
        ];
        let text = chrome_trace_string(&events);
        let doc = crate::json::parse(&text).expect("valid JSON");
        let xs = spans(&doc);
        // Two solve spans plus one round span, every one with ts and dur.
        assert_eq!(xs.len(), 3);
        for x in &xs {
            assert!(x.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(x.get("dur").and_then(JsonValue::as_f64).unwrap() >= 0.0);
        }
        // The two solve spans sit on distinct lanes and overlap in time.
        let solve: Vec<_> = xs
            .iter()
            .filter(|x| x.get("tid").and_then(JsonValue::as_f64).unwrap() < ROUNDS_TID as f64)
            .collect();
        assert_eq!(solve.len(), 2);
        let tid0 = solve[0].get("tid").unwrap().as_f64().unwrap();
        let tid1 = solve[1].get("tid").unwrap().as_f64().unwrap();
        assert_ne!(tid0, tid1);
        let range = |x: &JsonValue| {
            let ts = x.get("ts").unwrap().as_f64().unwrap();
            (ts, ts + x.get("dur").unwrap().as_f64().unwrap())
        };
        let (a0, a1) = range(solve[0]);
        let (b0, b1) = range(solve[1]);
        assert!(a0 < b1 && b0 < a1, "solve spans should overlap");
    }

    #[test]
    fn first_solve_start_wins_on_a_lane() {
        // Dispatch stamp at t=10, execution stamp at t=40: the span must run
        // from the dispatch (task lifetime), not the execution start.
        let events = vec![
            ev(10, 1, 1, EventKind::SolveStart { h: 1e-9 }),
            ev(40, 1, 1, EventKind::SolveStart { h: 1e-9 }),
            ev(90, 1, 1, EventKind::SolveEnd { iterations: 2, converged: true }),
        ];
        let text = chrome_trace_string(&events);
        let doc = crate::json::parse(&text).expect("valid JSON");
        let xs = spans(&doc);
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].get("ts").unwrap().as_f64().unwrap(), 0.01);
        assert_eq!(xs[0].get("dur").unwrap().as_f64().unwrap(), 0.08);
    }

    #[test]
    fn unbalanced_streams_do_not_panic() {
        // A SolveEnd without a start, a dangling RoundStart.
        let events = vec![
            ev(10, 1, 2, EventKind::SolveEnd { iterations: 1, converged: false }),
            ev(20, 2, 0, EventKind::RoundStart { width: 1 }),
        ];
        let text = chrome_trace_string(&events);
        let doc = crate::json::parse(&text).expect("valid JSON");
        assert!(spans(&doc).is_empty());
    }

    #[test]
    fn stamp_color_spans_render_on_their_own_track() {
        let events = vec![
            ev(5, 1, 1, EventKind::SolveStart { h: 1e-9 }),
            ev(10, 1, 1, EventKind::StampColorStart { color: 0 }),
            ev(20, 1, 1, EventKind::StampColorEnd { color: 0, devices: 6 }),
            ev(20, 1, 1, EventKind::StampColorStart { color: 1 }),
            ev(35, 1, 1, EventKind::StampColorEnd { color: 1, devices: 2 }),
            ev(50, 1, 1, EventKind::SolveEnd { iterations: 2, converged: true }),
        ];
        let text = chrome_trace_string(&events);
        let doc = crate::json::parse(&text).expect("valid JSON");
        let xs = spans(&doc);
        // One solve span plus two stamp-color spans.
        assert_eq!(xs.len(), 3);
        let stamp_tid = (STAMPS_TID_BASE + 1) as f64;
        let stamps: Vec<_> = xs
            .iter()
            .filter(|x| x.get("tid").and_then(JsonValue::as_f64) == Some(stamp_tid))
            .collect();
        assert_eq!(stamps.len(), 2);
        assert!(text.contains("lane 1 stamps"));
        assert!(text.contains("\"color\":1"));
    }

    #[test]
    fn mismatched_stamp_colors_are_dropped() {
        let events = vec![
            ev(10, 1, 0, EventKind::StampColorStart { color: 0 }),
            ev(20, 1, 0, EventKind::StampColorEnd { color: 7, devices: 1 }),
        ];
        let text = chrome_trace_string(&events);
        let doc = crate::json::parse(&text).expect("valid JSON");
        assert!(spans(&doc).is_empty());
    }

    #[test]
    fn fault_events_render_as_instants() {
        let events = vec![
            ev(10, 1, 2, EventKind::WorkerLost { lane: 2 }),
            ev(15, 1, 0, EventKind::FallbackSerial),
            ev(20, 1, 0, EventKind::DeadlineHit),
            ev(25, 1, 0, EventKind::RecoveryAttempt { h: 1e-15 }),
            ev(26, 1, 0, EventKind::CachePoisonRollback),
            ev(30, 1, 0, EventKind::RecoveryRung { rung: 1, success: true }),
        ];
        let text = chrome_trace_string(&events);
        let doc = crate::json::parse(&text).expect("valid JSON");
        let instants: Vec<_> = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 6);
        assert!(text.contains("worker_lost"));
        assert!(text.contains("fallback_serial"));
        assert!(text.contains("deadline_hit"));
        assert!(text.contains("recovery_attempt"));
        assert!(text.contains("recovery_rung"));
        assert!(text.contains("cache_poison_rollback"));
    }

    fn counters<'a>(doc: &'a JsonValue, name: &str) -> Vec<&'a JsonValue> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("C")
                    && e.get("name").and_then(JsonValue::as_str) == Some(name)
            })
            .collect()
    }

    #[test]
    fn active_solve_counter_tracks_inflight_solves() {
        let events = vec![
            ev(5, 1, 0, EventKind::SolveStart { h: 1e-9 }),
            ev(10, 1, 1, EventKind::SolveStart { h: 1e-9 }),
            ev(12, 1, 1, EventKind::SolveStart { h: 1e-9 }), // execution re-stamp
            ev(50, 1, 1, EventKind::SolveEnd { iterations: 3, converged: true }),
            ev(60, 1, 0, EventKind::SolveEnd { iterations: 2, converged: true }),
        ];
        let doc = crate::json::parse(&chrome_trace_string(&events)).expect("valid JSON");
        let cs = counters(&doc, "active solves");
        // Two starts (the re-stamp does not count) plus two ends.
        let values: Vec<f64> = cs
            .iter()
            .map(|c| c.get("args").unwrap().get("solves").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(values, vec![1.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn accept_rate_counter_moves_with_outcomes() {
        let events = vec![
            ev(10, 1, 0, EventKind::LeadAccepted),
            ev(20, 1, 0, EventKind::LeadDiscarded { reason: DiscardReason::LteRejected }),
            ev(30, 1, 0, EventKind::SpeculationAccepted),
            ev(40, 1, 0, EventKind::SpeculationDiscarded { reason: DiscardReason::ChainBroken }),
        ];
        let doc = crate::json::parse(&chrome_trace_string(&events)).expect("valid JSON");
        let cs = counters(&doc, "accept rate (ema)");
        let values: Vec<f64> = cs
            .iter()
            .map(|c| c.get("args").unwrap().get("rate").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(values.len(), 4);
        // Starts at 1.0, so the first accept keeps it there; every sample
        // stays a valid rate and discards pull it strictly down.
        assert!(values.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(values[1] < values[0]);
        assert!(values[2] > values[1]);
        assert!(values[3] < values[2]);
    }

    #[test]
    fn bypass_rate_counter_uses_largest_batch_as_denominator() {
        let events = vec![
            ev(10, 1, 0, EventKind::BypassedDevices { devices: 50 }),
            ev(20, 1, 0, EventKind::BypassedDevices { devices: 100 }),
            ev(30, 1, 0, EventKind::BypassedDevices { devices: 30 }),
        ];
        let doc = crate::json::parse(&chrome_trace_string(&events)).expect("valid JSON");
        let cs = counters(&doc, "bypass hit rate");
        let values: Vec<f64> = cs
            .iter()
            .map(|c| c.get("args").unwrap().get("rate").unwrap().as_f64().unwrap())
            .collect();
        // 50/50, then 150/200, then 180/300.
        assert_eq!(values, vec![1.0, 0.75, 0.6]);
    }

    #[test]
    fn metadata_names_every_lane() {
        let events = vec![ev(0, 0, 3, EventKind::Factorization)];
        let text = chrome_trace_string(&events);
        for lane in 0..=3 {
            assert!(text.contains(&format!("\"tid\":{lane},")), "lane {lane} unnamed");
        }
        assert!(text.contains("rounds"));
    }
}
