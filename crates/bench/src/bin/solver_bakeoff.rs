//! Solver bake-off: direct sparse LU versus preconditioned GMRES on the
//! 2-D power-grid mesh family, plus the RCM versus min-degree ordering
//! fill comparison, swept over grid sizes.
//!
//! Each row times a *fresh-linearization* solve — the cost the transient
//! loop pays whenever chord Newton must refactor — for both paths:
//!
//! * **direct**: Gilbert–Peierls LU factorization (min-degree ordering)
//!   plus one triangular solve;
//! * **gmres**: ILU(0) factorization plus one restarted-GMRES solve to
//!   the backend's default relative tolerance (1e-10).
//!
//! Ladder/line matrices are banded and the direct path is unbeatable
//! there; on the 2-D mesh fill-in grows superlinearly with grid size and
//! the iterative path crosses over. The emitted `BENCH_solver.json` records
//! `gmres_speedup` (direct/gmres wall ratio, >1 past the crossover) and
//! `mindeg_over_rcm_fill` (min-degree fill ÷ RCM fill, deterministic) per
//! size; both are gated by `perf-gate` against the committed baseline.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin solver_bakeoff [-- --small]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use wavepipe_sparse::{
    gmres, CooMatrix, CscMatrix, GmresOptions, Ilu0, LuOptions, OrderingKind, SparseLu,
};

const REPS: usize = 9;

/// Conductance matrix of an `n × n` resistive power-delivery mesh: unit
/// branch conductances to the four neighbours plus a small load/leak term
/// on the diagonal — the same structure `generators::power_grid` stamps,
/// without the source rows.
fn mesh(n: usize) -> CscMatrix {
    let id = |i: usize, j: usize| i * n + j;
    let mut t = CooMatrix::new(n * n, n * n);
    for i in 0..n {
        for j in 0..n {
            let mut diag = 0.1; // via/load conductance to the supply
            let mut couple = |a: usize, b: usize| {
                t.push_unchecked(a, b, -1.0);
                t.push_unchecked(b, a, -1.0);
            };
            if i + 1 < n {
                couple(id(i, j), id(i + 1, j));
            }
            if j + 1 < n {
                couple(id(i, j), id(i, j + 1));
            }
            diag += [i > 0, i + 1 < n, j > 0, j + 1 < n].iter().filter(|&&x| x).count() as f64;
            t.push_unchecked(id(i, j), id(i, j), diag);
        }
    }
    t.to_csc()
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 11) as f64) * 0.25 - 1.0).collect()
}

fn fill_nnz(a: &CscMatrix, ordering: OrderingKind) -> usize {
    let lu = SparseLu::factor(a, &LuOptions { ordering, ..LuOptions::default() })
        .expect("mesh matrices are nonsingular");
    lu.nnz_l() + lu.nnz_u()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let sizes: &[usize] = if small { &[4, 8] } else { &[2, 4, 8, 16, 24, 32, 48] };

    let mut doc = String::from("[");
    let mut first = true;
    for &n in sizes {
        let a = mesh(n);
        let dim = a.ncols();
        let b = rhs(dim);

        let mindeg_nnz = fill_nnz(&a, OrderingKind::MinDegree);
        let rcm_nnz = fill_nnz(&a, OrderingKind::ReverseCuthillMcKee);
        let fill_ratio = mindeg_nnz as f64 / rcm_nnz as f64;

        // Warm-up both paths once, then best-of-REPS each.
        let direct_opts = LuOptions::default();
        black_box(SparseLu::factor(&a, &direct_opts)?.solve(&b)?);
        let mut direct_ns = u128::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let lu = SparseLu::factor(&a, &direct_opts)?;
            black_box(lu.solve(&b)?);
            direct_ns = direct_ns.min(t0.elapsed().as_nanos());
        }

        let gopts = GmresOptions::default();
        let mut x = vec![0.0; dim];
        let mut iterations = 0usize;
        black_box(Ilu0::factor(&a)?);
        let mut gmres_ns = u128::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let ilu = Ilu0::factor(&a)?;
            x.fill(0.0);
            let out = gmres(&a, &ilu, &b, &mut x, &gopts)?;
            gmres_ns = gmres_ns.min(t0.elapsed().as_nanos());
            assert!(out.converged, "GMRES must converge on the mesh family (n={n})");
            iterations = out.iterations;
            black_box(&x);
        }

        let direct_us = direct_ns as f64 / 1e3;
        let gmres_us = gmres_ns as f64 / 1e3;
        let speedup = direct_us / gmres_us;
        let name = format!("power_grid({n},{n})");
        println!(
            "{name}: unknowns {dim} direct {direct_us:.1}us gmres {gmres_us:.1}us \
             ({iterations} iters) speedup {speedup:.2}{} | fill mindeg {mindeg_nnz} \
             rcm {rcm_nnz} (mindeg/rcm {fill_ratio:.3})",
            if speedup >= 1.0 { " <- crossover" } else { "" },
        );

        if !first {
            doc.push(',');
        }
        first = false;
        let _ = write!(
            doc,
            "\n  {{\"circuit\":\"{}\",\"unknowns\":{dim},\"nnz\":{},\
             \"mindeg_fill_nnz\":{mindeg_nnz},\"rcm_fill_nnz\":{rcm_nnz},\
             \"mindeg_over_rcm_fill\":{},\"direct_us\":{},\"gmres_us\":{},\
             \"gmres_iterations\":{iterations},\"gmres_speedup\":{},\
             \"crossover\":{}}}",
            wavepipe_telemetry::json::escape(&name),
            a.nnz(),
            wavepipe_telemetry::json::fmt_f64(fill_ratio),
            wavepipe_telemetry::json::fmt_f64(direct_us),
            wavepipe_telemetry::json::fmt_f64(gmres_us),
            wavepipe_telemetry::json::fmt_f64(speedup),
            speedup >= 1.0,
        );
    }
    doc.push_str("\n]\n");
    std::fs::write("BENCH_solver.json", doc)?;
    println!("wrote BENCH_solver.json");
    Ok(())
}
