//! Determinism and reporting invariants of the parallel schemes.

use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::run_transient;
use wavepipe::telemetry::{ProbeHandle, RecordingProbe};

#[test]
fn wavepipe_runs_are_bitwise_deterministic() {
    // Real threads, but commits are ordered: two runs must agree exactly.
    let b = generators::power_grid(4, 4);
    for scheme in [Scheme::Backward, Scheme::Forward, Scheme::Combined] {
        let opts = WavePipeOptions::new(scheme, 3);
        let r1 = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
        let r2 = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
        assert_eq!(r1.result.times(), r2.result.times(), "{scheme}: time grids differ");
        for k in 0..r1.result.len() {
            assert_eq!(r1.result.solution(k), r2.result.solution(k), "{scheme}: point {k} differs");
        }
        assert_eq!(r1.rounds, r2.rounds);
        assert_eq!(r1.lead_accepted, r2.lead_accepted);
        assert_eq!(r1.speculation_accepted, r2.speculation_accepted);
    }
}

#[test]
fn recording_probe_never_perturbs_the_run() {
    // Telemetry must only observe: a run with a RecordingProbe attached has
    // to produce bit-identical waveforms and identical work counters to the
    // default NullProbe run, for every scheme.
    let b = generators::diode_rectifier();
    for scheme in
        [Scheme::Serial, Scheme::Backward, Scheme::Forward, Scheme::Combined, Scheme::Adaptive]
    {
        let plain = WavePipeOptions::new(scheme, 3);
        let r_plain = run_wavepipe(&b.circuit, b.tstep, b.tstop, &plain).unwrap();

        let probe = RecordingProbe::shared();
        let traced = WavePipeOptions::new(scheme, 3).with_probe(ProbeHandle::new(probe.clone()));
        let r_traced = run_wavepipe(&b.circuit, b.tstep, b.tstop, &traced).unwrap();

        assert_eq!(
            r_plain.result.times(),
            r_traced.result.times(),
            "{scheme}: time grids differ under recording"
        );
        for k in 0..r_plain.result.len() {
            assert_eq!(
                r_plain.result.solution(k),
                r_traced.result.solution(k),
                "{scheme}: point {k} differs under recording"
            );
        }
        // Work counters (everything except the wall-clock measurement).
        let (a, b2) = (r_plain.total, r_traced.total);
        assert_eq!(a.steps_accepted, b2.steps_accepted, "{scheme}");
        assert_eq!(a.steps_rejected_lte, b2.steps_rejected_lte, "{scheme}");
        assert_eq!(a.steps_rejected_newton, b2.steps_rejected_newton, "{scheme}");
        assert_eq!(a.newton_iterations, b2.newton_iterations, "{scheme}");
        assert_eq!(a.factorizations, b2.factorizations, "{scheme}");
        assert_eq!(a.refactorizations, b2.refactorizations, "{scheme}");
        assert_eq!(a.solves, b2.solves, "{scheme}");
        assert_eq!(a.device_evals, b2.device_evals, "{scheme}");
        assert_eq!(r_plain.rounds, r_traced.rounds, "{scheme}");
        assert_eq!(r_plain.lead_accepted, r_traced.lead_accepted, "{scheme}");
        assert_eq!(r_plain.lead_rejected, r_traced.lead_rejected, "{scheme}");
        assert_eq!(r_plain.speculation_accepted, r_traced.speculation_accepted, "{scheme}");
        assert_eq!(r_plain.speculation_rejected, r_traced.speculation_rejected, "{scheme}");

        // The traced run actually recorded something, and its summary mirrors
        // the run's own counters; the plain run carries no summary.
        assert!(!probe.is_empty(), "{scheme}: probe recorded nothing");
        assert!(r_plain.telemetry.is_none());
        let summary = r_traced.telemetry.expect("recording run embeds a summary");
        assert_eq!(summary.points_accepted as usize, b2.steps_accepted, "{scheme}");
        assert_eq!(summary.factorizations as usize, b2.factorizations, "{scheme}");
        assert_eq!(summary.refactorizations as usize, b2.refactorizations, "{scheme}");
        assert_eq!(summary.lead_accepted as usize, r_traced.lead_accepted, "{scheme}");
        assert_eq!(summary.lead_discarded as usize, r_traced.lead_rejected, "{scheme}");
        assert_eq!(
            summary.speculation_accepted as usize, r_traced.speculation_accepted,
            "{scheme}"
        );
        assert_eq!(
            summary.speculation_discarded as usize, r_traced.speculation_rejected,
            "{scheme}"
        );
    }
}

#[test]
fn serial_scheme_equals_engine_run() {
    let b = generators::rc_ladder(8);
    let opts = WavePipeOptions::new(Scheme::Serial, 1);
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    let eng = run_transient(&b.circuit, b.tstep, b.tstop, &opts.sim).unwrap();
    assert_eq!(rep.result.times(), eng.times());
    assert_eq!(rep.critical_work, eng.stats().work_units());
}

#[test]
fn critical_path_never_exceeds_total_work() {
    for b in [generators::rc_ladder(8), generators::inverter_chain(3)] {
        for (scheme, threads) in
            [(Scheme::Backward, 3), (Scheme::Forward, 2), (Scheme::Combined, 4)]
        {
            let rep =
                run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(scheme, threads))
                    .unwrap();
            assert!(
                rep.critical_work <= rep.total.work_units(),
                "{}: {scheme} critical {} > total {}",
                b.name,
                rep.critical_work,
                rep.total.work_units()
            );
            assert!(rep.rounds > 0);
            assert!(rep.accept_rate() >= 0.0 && rep.accept_rate() <= 1.0);
        }
    }
}

#[test]
fn reports_count_all_accepted_points() {
    let b = generators::amp_chain(1);
    let rep =
        run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(Scheme::Backward, 2))
            .unwrap();
    // Points = accepted steps + the DC operating point.
    assert_eq!(rep.result.len(), rep.total.steps_accepted + 1);
    // Time grid is strictly increasing and ends at tstop.
    let times = rep.result.times();
    for w in times.windows(2) {
        assert!(w[0] < w[1]);
    }
    let last = *times.last().unwrap();
    assert!((last - b.tstop).abs() < 1e-3 * b.tstop, "ends at {last:e}, want {:e}", b.tstop);
}
