//! SPICE-style netlist parser.
//!
//! Supports the classic deck subset the benchmark circuits need:
//!
//! ```text
//! demo circuit          <- first line is the title
//! V1 in 0 PULSE(0 5 0 1n 1n 10n 20n)
//! R1 in out 1k
//! C1 out 0 10p
//! D1 out 0 DFAST
//! M1 vdd a out NTYPE
//! .model DFAST D (IS=1e-14 N=1.05 CJ0=1p)
//! .model NTYPE NMOS (VTO=0.7 KP=100u W=10u L=1u)
//! .tran 1n 100n
//! .end
//! ```
//!
//! Comment lines start with `*`; `;` begins a trailing comment; a leading
//! `+` continues the previous line. Everything is case-insensitive.

use crate::circuit::{Circuit, CircuitError};
use crate::element::{BjtModel, DiodeModel, MosModel, MosPolarity, Node};
use crate::units::parse_value;
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;

/// `.tran tstep tstop [tstart]` analysis request found in a deck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranSpec {
    /// Suggested output/reporting step (also the initial step hint).
    pub tstep: f64,
    /// Stop time.
    pub tstop: f64,
    /// Start of output recording (simulation always starts at 0).
    pub tstart: f64,
}

/// `.ac dec|lin n fstart fstop` analysis request found in a deck.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSpec {
    /// `true` for logarithmic (`dec`) spacing, `false` for linear.
    pub decade: bool,
    /// Points per decade (`dec`) or total points (`lin`).
    pub points: usize,
    /// Start frequency (Hz).
    pub fstart: f64,
    /// Stop frequency (Hz).
    pub fstop: f64,
}

impl AcSpec {
    /// Expands the sweep specification into a frequency list.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.decade {
            let decades = (self.fstop / self.fstart).log10();
            let n = ((decades * self.points as f64).ceil() as usize).max(1);
            (0..=n).map(|k| self.fstart * 10f64.powf(decades * k as f64 / n as f64)).collect()
        } else {
            let n = self.points.max(2);
            (0..n)
                .map(|k| self.fstart + (self.fstop - self.fstart) * k as f64 / (n - 1) as f64)
                .collect()
        }
    }
}

/// `.dc source start stop step` analysis request found in a deck.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSpec {
    /// Name of the swept independent source.
    pub source: String,
    /// Sweep start value.
    pub start: f64,
    /// Sweep stop value.
    pub stop: f64,
    /// Sweep increment (sign is normalised to match start->stop).
    pub step: f64,
}

impl DcSpec {
    /// Expands the sweep specification into the value list.
    pub fn values(&self) -> Vec<f64> {
        let step = if (self.stop - self.start).signum() == self.step.signum() {
            self.step
        } else {
            -self.step
        };
        let mut out = Vec::new();
        let mut v = self.start;
        let n = ((self.stop - self.start) / step).abs();
        for _ in 0..=(n.round() as usize) {
            out.push(v);
            v += step;
        }
        out
    }
}

/// Result of parsing a deck: the circuit plus any analysis directives.
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// The parsed circuit.
    pub circuit: Circuit,
    /// The `.tran` directive, if present.
    pub tran: Option<TranSpec>,
    /// The `.ac` directive, if present.
    pub ac: Option<AcSpec>,
    /// The `.dc` directive, if present.
    pub dc: Option<DcSpec>,
}

/// Error raised while parsing a netlist, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetlistError {
    line: usize,
    message: String,
}

impl ParseNetlistError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseNetlistError { line, message: message.into() }
    }

    /// 1-based line number of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetlistError {}

impl From<CircuitError> for ParseNetlistError {
    fn from(e: CircuitError) -> Self {
        ParseNetlistError { line: 0, message: e.to_string() }
    }
}

#[derive(Debug, Clone)]
enum ModelCard {
    Diode(DiodeModel),
    Mos(MosModel),
    Bjt(BjtModel),
}

/// Parses a SPICE-style netlist into a circuit and analysis spec.
///
/// ```
/// # fn main() -> Result<(), wavepipe_circuit::ParseNetlistError> {
/// let deck = "\
/// rc divider
/// V1 in 0 5
/// R1 in out 1k
/// R2 out 0 1k
/// .tran 1n 10n
/// .end";
/// let parsed = wavepipe_circuit::parse_netlist(deck)?;
/// assert_eq!(parsed.circuit.element_count(), 3);
/// assert!(parsed.tran.is_some());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line on any syntax or
/// semantic problem (unknown element letter, missing nodes, bad value,
/// undefined model, duplicate names).
pub fn parse_netlist(text: &str) -> Result<ParsedDeck, ParseNetlistError> {
    // --- Physical-line preprocessing: comments and continuations. ---
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find(';') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = line.trim();
        if lineno == 1 {
            // Title line (ignored content-wise).
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest);
                }
                None => {
                    return Err(ParseNetlistError::new(
                        lineno,
                        "continuation with no previous line",
                    ))
                }
            }
        } else {
            logical.push((lineno, trimmed.to_string()));
        }
    }

    // --- Partition `.subckt` ... `.ends` definitions from top-level lines.
    let mut subckts: HashMap<String, SubcktDef> = HashMap::new();
    let mut top: Vec<(usize, String)> = Vec::new();
    let mut current: Option<SubcktDef> = None;
    for (lineno, line) in &logical {
        let toks = tokenize(line);
        match toks.first().map(String::as_str) {
            Some(".subckt") => {
                if current.is_some() {
                    return Err(ParseNetlistError::new(
                        *lineno,
                        "nested .subckt definitions are not supported (nested X instances are)",
                    ));
                }
                if toks.len() < 3 {
                    return Err(ParseNetlistError::new(*lineno, ".subckt needs a name and ports"));
                }
                current = Some(SubcktDef {
                    name: toks[1].clone(),
                    ports: toks[2..].to_vec(),
                    body: Vec::new(),
                });
            }
            Some(".ends") => match current.take() {
                Some(def) => {
                    subckts.insert(def.name.clone(), def);
                }
                None => return Err(ParseNetlistError::new(*lineno, ".ends without .subckt")),
            },
            _ => match &mut current {
                Some(def) => def.body.push((*lineno, line.clone())),
                None => top.push((*lineno, line.clone())),
            },
        }
    }
    if let Some(def) = current {
        return Err(ParseNetlistError::new(0, format!("unterminated .subckt {}", def.name)));
    }

    // --- Pass 1: model cards (global, including inside subcircuits). ---
    let mut models: HashMap<String, ModelCard> = HashMap::new();
    for (lineno, line) in logical.iter() {
        let toks = tokenize(line);
        if toks.first().map(String::as_str) == Some(".model") {
            let (name, card) = parse_model(*lineno, &toks)?;
            models.insert(name, card);
        }
    }

    // --- Pass 2: elements and directives. ---
    let title = text.lines().next().unwrap_or("untitled").trim().to_string();
    let mut circuit = Circuit::new(if title.is_empty() { "untitled".to_string() } else { title });
    let mut tran = None;
    let mut ac = None;
    let mut dc = None;

    let root_scope = Scope::root();
    for (lineno, line) in &top {
        let lineno = *lineno;
        let toks = tokenize(line);
        let Some(head) = toks.first() else { continue };
        if head.starts_with('.') {
            match head.as_str() {
                ".model" => {} // handled in pass 1
                ".end" => break,
                ".tran" => {
                    if toks.len() < 3 {
                        return Err(ParseNetlistError::new(lineno, ".tran needs tstep and tstop"));
                    }
                    let tstep = num(lineno, &toks[1])?;
                    let tstop = num(lineno, &toks[2])?;
                    let tstart = if toks.len() > 3 { num(lineno, &toks[3])? } else { 0.0 };
                    tran = Some(TranSpec { tstep, tstop, tstart });
                }
                ".ac" => {
                    if toks.len() < 5 {
                        return Err(ParseNetlistError::new(
                            lineno,
                            ".ac needs dec|lin n fstart fstop",
                        ));
                    }
                    let decade = match toks[1].as_str() {
                        "dec" => true,
                        "lin" => false,
                        other => {
                            return Err(ParseNetlistError::new(
                                lineno,
                                format!("unsupported .ac spacing `{other}` (dec or lin)"),
                            ))
                        }
                    };
                    let points = num(lineno, &toks[2])? as usize;
                    let fstart = num(lineno, &toks[3])?;
                    let fstop = num(lineno, &toks[4])?;
                    if !(fstart > 0.0 && fstop >= fstart) {
                        return Err(ParseNetlistError::new(
                            lineno,
                            ".ac needs 0 < fstart <= fstop",
                        ));
                    }
                    ac = Some(AcSpec { decade, points: points.max(1), fstart, fstop });
                }
                ".dc" => {
                    if toks.len() < 5 {
                        return Err(ParseNetlistError::new(
                            lineno,
                            ".dc needs source start stop step",
                        ));
                    }
                    let step = num(lineno, &toks[4])?;
                    if step == 0.0 {
                        return Err(ParseNetlistError::new(lineno, ".dc step must be nonzero"));
                    }
                    dc = Some(DcSpec {
                        source: toks[1].clone(),
                        start: num(lineno, &toks[2])?,
                        stop: num(lineno, &toks[3])?,
                        step,
                    });
                }
                ".ic" | ".options" | ".op" | ".print" | ".plot" | ".probe" => {
                    // Recognised but intentionally ignored directives.
                }
                other => {
                    return Err(ParseNetlistError::new(
                        lineno,
                        format!("unknown directive {other}"),
                    ));
                }
            }
            continue;
        }
        parse_element(lineno, &toks, &mut circuit, &models, &subckts, &root_scope, 0)
            .map_err(|e| if e.line == 0 { ParseNetlistError::new(lineno, e.message) } else { e })?;
    }

    Ok(ParsedDeck { circuit, tran, ac, dc })
}

/// Lowercases and splits a line on whitespace, commas, and parentheses.
fn tokenize(line: &str) -> Vec<String> {
    line.to_ascii_lowercase()
        .replace(['(', ')', ','], " ")
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

fn num(line: usize, tok: &str) -> Result<f64, ParseNetlistError> {
    parse_value(tok).map_err(|e| ParseNetlistError::new(line, e.to_string()))
}

/// Parses `key=value` pairs from tokens (already split so `key=val` is one token).
fn params(line: usize, toks: &[String]) -> Result<HashMap<String, f64>, ParseNetlistError> {
    let mut out = HashMap::new();
    for t in toks {
        let Some((k, v)) = t.split_once('=') else {
            return Err(ParseNetlistError::new(line, format!("expected key=value, got `{t}`")));
        };
        out.insert(k.to_string(), num(line, v)?);
    }
    Ok(out)
}

fn parse_model(line: usize, toks: &[String]) -> Result<(String, ModelCard), ParseNetlistError> {
    if toks.len() < 3 {
        return Err(ParseNetlistError::new(line, ".model needs a name and a type"));
    }
    let name = toks[1].clone();
    let kind = toks[2].as_str();
    let p = params(line, &toks[3..])?;
    let get = |key: &str, default: f64| p.get(key).copied().unwrap_or(default);
    let card = match kind {
        "d" => ModelCard::Diode(DiodeModel {
            is: get("is", 1e-14),
            n: get("n", 1.0),
            cj0: get("cj0", 0.0),
            vj: get("vj", 1.0),
            m: get("m", 0.5),
            fc: get("fc", 0.5),
            temp_c: get("temp", 27.0),
        }),
        "nmos" | "pmos" => {
            let polarity = if kind == "nmos" { MosPolarity::Nmos } else { MosPolarity::Pmos };
            let default_vt0 = if kind == "nmos" { 0.7 } else { -0.7 };
            ModelCard::Mos(MosModel {
                polarity,
                vt0: get("vto", default_vt0),
                kp: get("kp", 2e-5),
                lambda: get("lambda", 0.0),
                w: get("w", 10e-6),
                l: get("l", 1e-6),
                cgs: get("cgs", 1e-15),
                cgd: get("cgd", 1e-15),
                gamma: get("gamma", 0.0),
                phi: get("phi", 0.65),
            })
        }
        "npn" | "pnp" => ModelCard::Bjt(BjtModel {
            npn: kind == "npn",
            is: get("is", 1e-16),
            bf: get("bf", 100.0),
            br: get("br", 1.0),
        }),
        other => {
            return Err(ParseNetlistError::new(line, format!("unknown model type {other}")));
        }
    };
    Ok((name, card))
}

/// Splits off an `AC <magnitude>` pair from source tokens, returning the
/// remaining waveform tokens and the AC magnitude (0 if absent).
fn extract_ac(line: usize, toks: &[String]) -> Result<(Vec<String>, f64), ParseNetlistError> {
    let mut rest = Vec::with_capacity(toks.len());
    let mut ac = 0.0;
    let mut i = 0;
    while i < toks.len() {
        if toks[i] == "ac" {
            let Some(mag) = toks.get(i + 1) else {
                return Err(ParseNetlistError::new(line, "ac needs a magnitude"));
            };
            ac = num(line, mag)?;
            i += 2;
        } else {
            rest.push(toks[i].clone());
            i += 1;
        }
    }
    Ok((rest, ac))
}

/// Parses the waveform tokens after the node list of a V/I source.
fn parse_waveform(line: usize, toks: &[String]) -> Result<Waveform, ParseNetlistError> {
    if toks.is_empty() {
        return Err(ParseNetlistError::new(line, "source needs a value or waveform"));
    }
    match toks[0].as_str() {
        "dc" => {
            if toks.len() < 2 {
                return Err(ParseNetlistError::new(line, "dc needs a value"));
            }
            Ok(Waveform::Dc(num(line, &toks[1])?))
        }
        "pulse" => {
            let v: Vec<f64> = toks[1..].iter().map(|t| num(line, t)).collect::<Result<_, _>>()?;
            if v.len() < 2 {
                return Err(ParseNetlistError::new(line, "pulse needs at least v1 v2"));
            }
            let g = |i: usize| v.get(i).copied().unwrap_or(0.0);
            Ok(Waveform::Pulse {
                v1: v[0],
                v2: v[1],
                td: g(2),
                tr: g(3),
                tf: g(4),
                pw: g(5),
                per: g(6),
            })
        }
        "sin" => {
            let v: Vec<f64> = toks[1..].iter().map(|t| num(line, t)).collect::<Result<_, _>>()?;
            if v.len() < 3 {
                return Err(ParseNetlistError::new(line, "sin needs vo va freq"));
            }
            let g = |i: usize| v.get(i).copied().unwrap_or(0.0);
            Ok(Waveform::Sin { vo: v[0], va: v[1], freq: v[2], td: g(3), theta: g(4) })
        }
        "exp" => {
            let v: Vec<f64> = toks[1..].iter().map(|t| num(line, t)).collect::<Result<_, _>>()?;
            if v.len() < 6 {
                return Err(ParseNetlistError::new(line, "exp needs v1 v2 td1 tau1 td2 tau2"));
            }
            Ok(Waveform::Exp { v1: v[0], v2: v[1], td1: v[2], tau1: v[3], td2: v[4], tau2: v[5] })
        }
        "sffm" => {
            let v: Vec<f64> = toks[1..].iter().map(|t| num(line, t)).collect::<Result<_, _>>()?;
            if v.len() < 5 {
                return Err(ParseNetlistError::new(line, "sffm needs vo va fc mdi fs"));
            }
            Ok(Waveform::Sffm { vo: v[0], va: v[1], fc: v[2], mdi: v[3], fs: v[4] })
        }
        "pwl" => {
            let v: Vec<f64> = toks[1..].iter().map(|t| num(line, t)).collect::<Result<_, _>>()?;
            if v.len() < 2 || !v.len().is_multiple_of(2) {
                return Err(ParseNetlistError::new(line, "pwl needs t,v pairs"));
            }
            let pts: Vec<(f64, f64)> = v.chunks(2).map(|c| (c[0], c[1])).collect();
            for w in pts.windows(2) {
                if w[0].0 >= w[1].0 {
                    return Err(ParseNetlistError::new(line, "pwl times must increase"));
                }
            }
            Ok(Waveform::Pwl(pts))
        }
        _ => Ok(Waveform::Dc(num(line, &toks[0])?)),
    }
}

/// A `.subckt` definition: interface ports and raw body lines.
#[derive(Debug, Clone)]
struct SubcktDef {
    name: String,
    ports: Vec<String>,
    body: Vec<(usize, String)>,
}

/// Name-resolution scope for hierarchical flattening: instance prefix plus
/// the port-name -> parent-node bindings.
#[derive(Debug, Clone)]
struct Scope {
    prefix: String,
    ports: HashMap<String, Node>,
}

impl Scope {
    fn root() -> Self {
        Scope { prefix: String::new(), ports: HashMap::new() }
    }

    /// Resolves a node token within this scope: ground stays ground, ports
    /// map to the parent's nodes, everything else becomes an instance-local
    /// node (`x1.node`).
    fn node(&self, ckt: &mut Circuit, tok: &str) -> Node {
        if tok == "0" || tok.eq_ignore_ascii_case("gnd") {
            return Circuit::GROUND;
        }
        if let Some(&n) = self.ports.get(tok) {
            return n;
        }
        if self.prefix.is_empty() {
            ckt.node(tok)
        } else {
            ckt.node(&format!("{}{}", self.prefix, tok))
        }
    }

    /// Instance-qualifies an element name (`x1.r3`).
    fn elem(&self, raw: &str) -> String {
        format!("{}{}", self.prefix, raw)
    }
}

/// Hard limit on instantiation depth (catches recursive subcircuits).
const MAX_SUBCKT_DEPTH: usize = 32;

/// Flattens one `X` instance: binds its ports and parses the definition
/// body into the parent circuit under an instance-qualified scope.
#[allow(clippy::too_many_arguments)] // flattening context is deliberately explicit
fn expand_subckt(
    line: usize,
    inst_name: &str,
    node_toks: &[String],
    def: &SubcktDef,
    ckt: &mut Circuit,
    models: &HashMap<String, ModelCard>,
    subckts: &HashMap<String, SubcktDef>,
    parent: &Scope,
    depth: usize,
) -> Result<(), ParseNetlistError> {
    if depth >= MAX_SUBCKT_DEPTH {
        return Err(ParseNetlistError::new(
            line,
            format!("subcircuit nesting deeper than {MAX_SUBCKT_DEPTH} (recursive definition?)"),
        ));
    }
    if node_toks.len() != def.ports.len() {
        return Err(ParseNetlistError::new(
            line,
            format!(
                "{inst_name}: subckt {} has {} ports, {} nodes given",
                def.name,
                def.ports.len(),
                node_toks.len()
            ),
        ));
    }
    let mut ports = HashMap::new();
    for (port, tok) in def.ports.iter().zip(node_toks) {
        ports.insert(port.clone(), parent.node(ckt, tok));
    }
    let scope = Scope { prefix: format!("{}{}.", parent.prefix, inst_name), ports };
    for (body_line, text) in &def.body {
        let toks = tokenize(text);
        if toks.is_empty() || toks[0].starts_with('.') {
            // Directives inside subcircuits (other than models, which were
            // collected globally) are ignored.
            continue;
        }
        parse_element(*body_line, &toks, ckt, models, subckts, &scope, depth + 1)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // flattening context is deliberately explicit
fn parse_element(
    line: usize,
    toks: &[String],
    ckt: &mut Circuit,
    models: &HashMap<String, ModelCard>,
    subckts: &HashMap<String, SubcktDef>,
    scope: &Scope,
    depth: usize,
) -> Result<(), ParseNetlistError> {
    let name = scope.elem(&toks[0]);
    // Dispatch on the RAW instance letter — the scope prefix (`x1.`) must
    // not influence the element kind.
    let letter = toks[0].chars().next().expect("non-empty token");
    let need = |count: usize| -> Result<(), ParseNetlistError> {
        if toks.len() < count {
            Err(ParseNetlistError::new(line, format!("{name}: expected at least {} fields", count)))
        } else {
            Ok(())
        }
    };
    let node = |ckt: &mut Circuit, tok: &String| -> Node { scope.node(ckt, tok) };
    match letter {
        'r' => {
            need(4)?;
            let (p, n) = (node(ckt, &toks[1]), node(ckt, &toks[2]));
            ckt.add_resistor(&name, p, n, num(line, &toks[3])?)?;
        }
        'c' => {
            need(4)?;
            let (p, n) = (node(ckt, &toks[1]), node(ckt, &toks[2]));
            let c = num(line, &toks[3])?;
            // Optional IC=v0.
            let ic = toks[4..]
                .iter()
                .find_map(|t| t.strip_prefix("ic=").map(|v| num(line, v)))
                .transpose()?;
            match ic {
                Some(v0) => ckt.add_capacitor_ic(&name, p, n, c, v0)?,
                None => ckt.add_capacitor(&name, p, n, c)?,
            }
        }
        'l' => {
            need(4)?;
            let (p, n) = (node(ckt, &toks[1]), node(ckt, &toks[2]));
            ckt.add_inductor(&name, p, n, num(line, &toks[3])?)?;
        }
        'v' => {
            need(4)?;
            let (p, n) = (node(ckt, &toks[1]), node(ckt, &toks[2]));
            let (wave_toks, ac) = extract_ac(line, &toks[3..])?;
            let wave = if wave_toks.is_empty() {
                crate::waveform::Waveform::Dc(0.0)
            } else {
                parse_waveform(line, &wave_toks)?
            };
            ckt.add_vsource_ac(&name, p, n, wave, ac)?;
        }
        'i' => {
            need(4)?;
            let (p, n) = (node(ckt, &toks[1]), node(ckt, &toks[2]));
            let (wave_toks, ac) = extract_ac(line, &toks[3..])?;
            let wave = if wave_toks.is_empty() {
                crate::waveform::Waveform::Dc(0.0)
            } else {
                parse_waveform(line, &wave_toks)?
            };
            ckt.add_isource_ac(&name, p, n, wave, ac)?;
        }
        'd' => {
            need(4)?;
            let (p, n) = (node(ckt, &toks[1]), node(ckt, &toks[2]));
            let model = match models.get(&toks[3]) {
                Some(ModelCard::Diode(m)) => m.clone(),
                Some(_) => {
                    return Err(ParseNetlistError::new(
                        line,
                        format!("{}: model is not a diode", toks[3]),
                    ))
                }
                None => {
                    return Err(ParseNetlistError::new(
                        line,
                        format!("undefined model {}", toks[3]),
                    ))
                }
            };
            ckt.add_diode(&name, p, n, model)?;
        }
        'm' => {
            need(5)?;
            // `M d g s model` (3-terminal, bulk tied to source) or
            // `M d g s b model` (explicit bulk).
            let four_terminal = toks.len() >= 6;
            let model_tok = if four_terminal { &toks[5] } else { &toks[4] };
            let model = match models.get(model_tok) {
                Some(ModelCard::Mos(m)) => m.clone(),
                Some(_) => {
                    return Err(ParseNetlistError::new(
                        line,
                        format!("{model_tok}: model is not a mosfet"),
                    ))
                }
                None => {
                    return Err(ParseNetlistError::new(
                        line,
                        format!("undefined model {model_tok}"),
                    ))
                }
            };
            let (d, g, s) = (node(ckt, &toks[1]), node(ckt, &toks[2]), node(ckt, &toks[3]));
            if four_terminal {
                let b = node(ckt, &toks[4]);
                ckt.add_mosfet4(&name, d, g, s, b, model)?;
            } else {
                ckt.add_mosfet(&name, d, g, s, model)?;
            }
        }
        'q' => {
            need(5)?;
            let (c, b, e) = (node(ckt, &toks[1]), node(ckt, &toks[2]), node(ckt, &toks[3]));
            let model = match models.get(&toks[4]) {
                Some(ModelCard::Bjt(m)) => m.clone(),
                Some(_) => {
                    return Err(ParseNetlistError::new(
                        line,
                        format!("{}: model is not a bjt", toks[4]),
                    ))
                }
                None => {
                    return Err(ParseNetlistError::new(
                        line,
                        format!("undefined model {}", toks[4]),
                    ))
                }
            };
            ckt.add_bjt(&name, c, b, e, model)?;
        }
        'e' => {
            need(6)?;
            let (p, n, cp, cn) = (
                node(ckt, &toks[1]),
                node(ckt, &toks[2]),
                node(ckt, &toks[3]),
                node(ckt, &toks[4]),
            );
            ckt.add_vcvs(&name, p, n, cp, cn, num(line, &toks[5])?)?;
        }
        'g' => {
            need(6)?;
            let (p, n, cp, cn) = (
                node(ckt, &toks[1]),
                node(ckt, &toks[2]),
                node(ckt, &toks[3]),
                node(ckt, &toks[4]),
            );
            ckt.add_vccs(&name, p, n, cp, cn, num(line, &toks[5])?)?;
        }
        'x' => {
            need(3)?;
            // `X<name> node1 ... nodeN subcktname` — the last token names
            // the definition.
            let subckt_name = toks.last().expect("need(3) checked");
            let Some(def) = subckts.get(subckt_name) else {
                return Err(ParseNetlistError::new(
                    line,
                    format!("undefined subcircuit {subckt_name}"),
                ));
            };
            let node_toks = &toks[1..toks.len() - 1];
            expand_subckt(line, &toks[0], node_toks, def, ckt, models, subckts, scope, depth)?;
        }
        other => {
            return Err(ParseNetlistError::new(line, format!("unknown element letter `{other}`")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn parses_rc_divider() {
        let deck = "divider\nV1 in 0 5\nR1 in out 1k\nR2 out 0 2k\n.tran 1n 10n\n.end";
        let d = parse_netlist(deck).unwrap();
        assert_eq!(d.circuit.element_count(), 3);
        assert_eq!(d.circuit.node_count(), 2);
        let t = d.tran.unwrap();
        assert_eq!(t.tstep, 1e-9);
        assert_eq!(t.tstop, 10e-9);
    }

    #[test]
    fn parses_pulse_source() {
        let deck = "t\nV1 a 0 PULSE(0 5 1n 2n 2n 10n 30n)\nR1 a 0 1k\n.end";
        let d = parse_netlist(deck).unwrap();
        match &d.circuit.elements()[0] {
            Element::VoltageSource { waveform: Waveform::Pulse { v2, td, per, .. }, .. } => {
                assert_eq!(*v2, 5.0);
                assert!((*td - 1e-9).abs() < 1e-18);
                assert!((*per - 30e-9).abs() < 1e-18);
            }
            other => panic!("expected pulse source, got {other:?}"),
        }
    }

    #[test]
    fn parses_models_and_devices() {
        let deck = "\
mixed
V1 vdd 0 3.3
D1 vdd mid DX
M1 mid g 0 NX
Q1 vdd g mid QX
R1 g 0 1k
.model DX D (IS=2e-14 N=1.1 CJ0=1p)
.model NX NMOS (VTO=0.6 KP=50u W=20u L=2u)
.model QX NPN (IS=1e-15 BF=80)
.end";
        let d = parse_netlist(deck).unwrap();
        assert_eq!(d.circuit.nonlinear_count(), 3);
        match &d.circuit.elements()[1] {
            Element::Diode { model, .. } => {
                assert_eq!(model.is, 2e-14);
                assert!((model.cj0 - 1e-12).abs() < 1e-21);
            }
            other => panic!("expected diode, got {other:?}"),
        }
        match &d.circuit.elements()[2] {
            Element::Mosfet { model, .. } => {
                assert_eq!(model.vt0, 0.6);
                assert!((model.w - 20e-6).abs() < 1e-15);
            }
            other => panic!("expected mosfet, got {other:?}"),
        }
    }

    #[test]
    fn continuation_lines_join() {
        let deck = "t\nV1 a 0 PULSE(0 5\n+ 1n 2n 2n 10n 30n)\nR1 a 0 1k\n.end";
        let d = parse_netlist(deck).unwrap();
        assert_eq!(d.circuit.element_count(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let deck = "t\n* a comment\nR1 a 0 1k ; trailing\nV1 a 0 1\n.end";
        let d = parse_netlist(deck).unwrap();
        assert_eq!(d.circuit.element_count(), 2);
    }

    #[test]
    fn undefined_model_is_an_error() {
        let deck = "t\nD1 a 0 NOPE\n.end";
        let e = parse_netlist(deck).unwrap_err();
        assert!(e.message().contains("undefined model"));
        assert_eq!(e.line(), 2);
    }

    #[test]
    fn unknown_element_letter_rejected() {
        let deck = "t\nX1 a 0 thing\n.end";
        assert!(parse_netlist(deck).is_err());
    }

    #[test]
    fn pwl_source_parses() {
        let deck = "t\nI1 0 a PWL(0 0 1n 1m 2n 0)\nR1 a 0 1k\n.end";
        let d = parse_netlist(deck).unwrap();
        match &d.circuit.elements()[0] {
            Element::CurrentSource { waveform: Waveform::Pwl(pts), .. } => {
                assert_eq!(pts.len(), 3);
                assert_eq!(pts[1], (1e-9, 1e-3));
            }
            other => panic!("expected pwl isource, got {other:?}"),
        }
    }

    #[test]
    fn sffm_source_parses() {
        let deck = "t\nV1 a 0 SFFM(0 1 1meg 2 100k)\nR1 a 0 50\n.end";
        let d = parse_netlist(deck).unwrap();
        match &d.circuit.elements()[0] {
            Element::VoltageSource { waveform: Waveform::Sffm { fc, mdi, .. }, .. } => {
                assert_eq!(*fc, 1e6);
                assert_eq!(*mdi, 2.0);
            }
            other => panic!("expected sffm source, got {other:?}"),
        }
    }

    #[test]
    fn capacitor_ic_parses() {
        let deck = "t\nC1 a 0 1n IC=2.5\nR1 a 0 1k\n.end";
        let d = parse_netlist(deck).unwrap();
        match &d.circuit.elements()[0] {
            Element::Capacitor { initial_voltage, .. } => {
                assert_eq!(*initial_voltage, Some(2.5));
            }
            other => panic!("expected capacitor, got {other:?}"),
        }
    }

    #[test]
    fn bad_value_reports_line() {
        let deck = "t\nR1 a 0 1k\nR2 a 0 zzz\n.end";
        let e = parse_netlist(deck).unwrap_err();
        assert_eq!(e.line(), 3);
    }

    #[test]
    fn stops_at_end_directive() {
        let deck = "t\nR1 a 0 1k\nV1 a 0 1\n.end\ngarbage that would fail";
        assert!(parse_netlist(deck).is_ok());
    }

    #[test]
    fn ac_directive_and_source_parse() {
        let deck = "t\nV1 in 0 DC 1 AC 1\nR1 in out 1k\nC1 out 0 1n\n.ac dec 10 1k 1meg\n.end";
        let d = parse_netlist(deck).unwrap();
        let ac = d.ac.expect("ac spec");
        assert!(ac.decade);
        assert_eq!(ac.points, 10);
        let freqs = ac.frequencies();
        assert!((freqs[0] - 1e3).abs() < 1e-9);
        assert!((freqs.last().unwrap() - 1e6).abs() < 1e-3);
        match &d.circuit.elements()[0] {
            Element::VoltageSource { ac_magnitude, waveform, .. } => {
                assert_eq!(*ac_magnitude, 1.0);
                assert_eq!(*waveform, Waveform::Dc(1.0));
            }
            other => panic!("expected vsource, got {other:?}"),
        }
    }

    #[test]
    fn ac_only_source_defaults_to_quiet_dc() {
        let deck = "t\nV1 in 0 AC 0.5\nR1 in 0 1k\n.end";
        let d = parse_netlist(deck).unwrap();
        match &d.circuit.elements()[0] {
            Element::VoltageSource { ac_magnitude, waveform, .. } => {
                assert_eq!(*ac_magnitude, 0.5);
                assert_eq!(*waveform, Waveform::Dc(0.0));
            }
            other => panic!("expected vsource, got {other:?}"),
        }
    }

    #[test]
    fn dc_directive_parses_and_expands() {
        let deck = "t\nV1 in 0 0\nR1 in 0 1k\n.dc V1 0 3.3 0.3\n.end";
        let d = parse_netlist(deck).unwrap();
        let dc = d.dc.expect("dc spec");
        assert_eq!(dc.source, "v1");
        let vals = dc.values();
        assert_eq!(vals.len(), 12);
        assert!((vals[0] - 0.0).abs() < 1e-12);
        assert!((vals[11] - 3.3).abs() < 1e-9);
    }

    #[test]
    fn dc_directive_handles_descending_sweeps() {
        let deck = "t\nV1 in 0 0\nR1 in 0 1k\n.dc V1 2 0 0.5\n.end";
        let d = parse_netlist(deck).unwrap();
        let vals = d.dc.expect("dc").values();
        assert_eq!(vals.len(), 5);
        assert!(vals[0] > vals[4]);
    }

    #[test]
    fn four_terminal_mosfet_parses() {
        let deck = "t\nV1 d 0 1\nM1 d g s b NX\nR1 g 0 1k\nR2 s 0 1k\nR3 b 0 1k\nR4 d g 1k\n.model NX NMOS (GAMMA=0.4 PHI=0.7)\n.end";
        let d = parse_netlist(deck).unwrap();
        match &d.circuit.elements()[1] {
            Element::Mosfet { b, s, model, .. } => {
                assert_ne!(b, s, "bulk is its own node");
                assert_eq!(model.gamma, 0.4);
                assert_eq!(model.phi, 0.7);
            }
            other => panic!("expected mosfet, got {other:?}"),
        }
    }

    #[test]
    fn diode_depletion_parameters_parse() {
        let deck =
            "t\nD1 a 0 DX\nR1 a 0 1k\nV1 a 0 1\n.model DX D (CJ0=2p VJ=0.8 M=0.33 FC=0.4)\n.end";
        let d = parse_netlist(deck).unwrap();
        match &d.circuit.elements()[0] {
            Element::Diode { model, .. } => {
                assert!((model.cj0 - 2e-12).abs() < 1e-21);
                assert_eq!(model.vj, 0.8);
                assert_eq!(model.m, 0.33);
                assert_eq!(model.fc, 0.4);
            }
            other => panic!("expected diode, got {other:?}"),
        }
    }

    #[test]
    fn controlled_sources_parse() {
        let deck = "t\nV1 in 0 1\nE1 o 0 in 0 2.5\nG1 o2 0 in 0 1m\nR1 o 0 1k\nR2 o2 0 1k\nR3 in o 1k\n.end";
        let d = parse_netlist(deck).unwrap();
        assert_eq!(d.circuit.element_count(), 6);
        d.circuit.validate().unwrap();
    }
}

#[cfg(test)]
mod subckt_tests {
    use super::*;

    #[test]
    fn flat_subcircuit_instantiates() {
        let deck = "\
divider as subckt
.subckt DIV top out bot
R1 top out 1k
R2 out bot 1k
.ends
V1 in 0 10
X1 in mid 0 DIV
R3 mid 0 1meg
.end";
        let d = parse_netlist(deck).unwrap();
        d.circuit.validate().unwrap();
        // V1, x1.r1, x1.r2, R3.
        assert_eq!(d.circuit.element_count(), 4);
        assert!(d.circuit.find_node("mid").is_some());
        assert!(d.circuit.find_node("x1.out").is_none(), "port mapped, not local");
        assert!(d.circuit.elements().iter().any(|e| e.name() == "x1.r1"));
    }

    #[test]
    fn internal_nodes_are_instance_scoped() {
        let deck = "\
two instances with internal nodes
.subckt RCSTAGE a b
R1 a m 1k
C1 m 0 1p
R2 m b 1k
.ends
V1 in 0 1
X1 in n1 RCSTAGE
X2 n1 out RCSTAGE
R9 out 0 1k
.end";
        let d = parse_netlist(deck).unwrap();
        d.circuit.validate().unwrap();
        assert!(d.circuit.find_node("x1.m").is_some());
        assert!(d.circuit.find_node("x2.m").is_some());
        assert_ne!(d.circuit.find_node("x1.m"), d.circuit.find_node("x2.m"));
    }

    #[test]
    fn nested_instantiation_flattens() {
        let deck = "\
nested
.subckt INNER p q
R1 p q 100
.ends
.subckt OUTER a b
X1 a m INNER
X2 m b INNER
.ends
V1 top 0 1
X9 top 0 OUTER
.end";
        let d = parse_netlist(deck).unwrap();
        d.circuit.validate().unwrap();
        assert!(d.circuit.elements().iter().any(|e| e.name() == "x9.x1.r1"));
        assert!(d.circuit.elements().iter().any(|e| e.name() == "x9.x2.r1"));
        assert!(d.circuit.find_node("x9.m").is_some());
    }

    #[test]
    fn models_inside_subckts_are_global() {
        let deck = "\
model in subckt
.subckt CLAMP a
D1 a 0 DX
.model DX D (IS=3e-14)
.ends
V1 n 0 1
R1 n 0 1k
X1 n CLAMP
D9 n 0 DX
.end";
        let d = parse_netlist(deck).unwrap();
        assert_eq!(d.circuit.nonlinear_count(), 2);
    }

    #[test]
    fn port_count_mismatch_reports() {
        let deck = "t\n.subckt S a b\nR1 a b 1\n.ends\nV1 x 0 1\nX1 x S\n.end";
        let e = parse_netlist(deck).unwrap_err();
        assert!(e.message().contains("ports"), "{e}");
    }

    #[test]
    fn undefined_subckt_reports() {
        let deck = "t\nV1 a 0 1\nX1 a NOPE\n.end";
        let e = parse_netlist(deck).unwrap_err();
        assert!(e.message().contains("undefined subcircuit"));
    }

    #[test]
    fn unterminated_subckt_reports() {
        let deck = "t\n.subckt S a\nR1 a 0 1\nV1 a 0 1\n.end";
        assert!(parse_netlist(deck).is_err());
    }

    #[test]
    fn ground_inside_subckt_stays_global() {
        let deck = "\
gnd passthrough
.subckt G a
R1 a 0 1k
.ends
V1 n 0 1
X1 n G
.end";
        let d = parse_netlist(deck).unwrap();
        d.circuit.validate().unwrap();
        // Only node `n` exists besides ground.
        assert_eq!(d.circuit.node_count(), 1);
    }

    #[test]
    fn duplicate_instance_names_rejected() {
        let deck = "t\n.subckt S a\nR1 a 0 1\n.ends\nV1 n 0 1\nX1 n S\nX1 n S\n.end";
        let e = parse_netlist(deck).unwrap_err();
        assert!(e.message().contains("duplicate"), "{e}");
    }

    #[test]
    fn subckt_with_sources_and_fets() {
        // A full inverter cell instantiated twice.
        let deck = "\
inverter cell library
.subckt INV in out vdd
Mp out in vdd P1
Mn out in 0 N1
CL out 0 10f
.ends
.model P1 PMOS (VTO=-0.7 KP=50u W=20u)
.model N1 NMOS (VTO=0.7 KP=100u W=10u)
Vdd vdd 0 3.3
Vin a 0 PULSE(0 3.3 1n 0.1n 0.1n 5n 12n)
X1 a b vdd INV
X2 b c vdd INV
.tran 0.05n 25n
.end";
        let d = parse_netlist(deck).unwrap();
        d.circuit.validate().unwrap();
        assert_eq!(d.circuit.nonlinear_count(), 4);
        assert!(d.tran.is_some());
    }
}
