//! WavePipe configuration.

use wavepipe_engine::SimOptions;

/// Which waveform-pipelining scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Plain serial simulation (the baseline; single thread).
    Serial,
    /// Backward pipelining: concurrent solves at the leading point and the
    /// backward intermediate points, enlarging the per-round time stride.
    #[default]
    Backward,
    /// Forward pipelining: speculative Newton at future points from
    /// predicted history, refined once the true history lands.
    Forward,
    /// Backward pipelining plus one forward speculative point.
    Combined,
    /// Per-round choice between backward and forward pipelining, driven by
    /// their measured efficiency (extension beyond the paper's fixed
    /// schemes).
    Adaptive,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Serial => write!(f, "serial"),
            Scheme::Backward => write!(f, "backward"),
            Scheme::Forward => write!(f, "forward"),
            Scheme::Combined => write!(f, "combined"),
            Scheme::Adaptive => write!(f, "adaptive"),
        }
    }
}

/// Options controlling a WavePipe run.
///
/// The embedded [`SimOptions`] are shared verbatim with the serial baseline,
/// which is what makes the accuracy-equivalence property meaningful: every
/// scheme applies the same Newton tolerances and LTE test to every accepted
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct WavePipeOptions {
    /// Pipelining scheme.
    pub scheme: Scheme,
    /// Worker threads (including the coordinating thread). Clamped to at
    /// least 1; `Serial` ignores it.
    pub threads: usize,
    /// Forward pipelining: pre-filter — multiplier on the Newton tolerance
    /// (node voltages only) above which a prediction is considered hopeless
    /// and the speculative solve is discarded without a refinement attempt.
    /// Predictions at LTE-chosen steps are routinely 10–50x the Newton
    /// tolerance, so this is deliberately loose; the *real* gate is
    /// [`WavePipeOptions::fp_refine_iters`]. Default `200.0`.
    pub fp_accept_factor: f64,
    /// Forward pipelining: Newton iteration budget for refining a
    /// speculative solve against the true history. If the warm start cannot
    /// converge within this budget it was not close enough to pay off, and
    /// the speculation is discarded. Default `4`.
    pub fp_refine_iters: usize,
    /// Forward pipelining: ratio of the speculative stride to the current
    /// stride. `1.0` (default) speculates at the same step size; values up
    /// to `rmax` speculate more aggressively.
    pub fp_stride_factor: f64,
    /// Backward pipelining: use the recent LTE growth prediction to place
    /// the leading point (`true`, default) instead of always stretching by
    /// the full `rmax`.
    pub bp_adaptive_lead: bool,
    /// Backward pipelining: minimum predicted growth factor below which
    /// lead points are not launched. The default `0.0` disables the gate:
    /// measured across the benchmark suite, launching leads even at low
    /// accept rates is a net win (a rejected lead only stretches the round's
    /// critical path by the lead/base cost difference, while an accepted one
    /// saves a whole serial step). Kept as an ablation knob — see Figure D2.
    pub bp_growth_gate: f64,
    /// Backward pipelining: slack multiplier on the LTE stride budget when
    /// deciding how many lead tasks to launch. `1.0` launches only leads
    /// predicted to pass; larger values also buy "lottery" leads whose
    /// rejection costs nothing but critical-path stretch. Default
    /// `infinity` (always launch the full ladder) — see Figure D2 for the
    /// measured trade-off.
    pub bp_budget_slack: f64,
    /// Engine options (tolerances, method, step limits).
    pub sim: SimOptions,
}

impl Default for WavePipeOptions {
    fn default() -> Self {
        WavePipeOptions {
            scheme: Scheme::default(),
            threads: 2,
            fp_accept_factor: 200.0,
            fp_refine_iters: 4,
            fp_stride_factor: 1.0,
            bp_adaptive_lead: true,
            bp_growth_gate: 0.0,
            bp_budget_slack: f64::INFINITY,
            sim: SimOptions::default(),
        }
    }
}

impl WavePipeOptions {
    /// Convenience constructor for a scheme at a thread count.
    pub fn new(scheme: Scheme, threads: usize) -> Self {
        WavePipeOptions { scheme, threads: threads.max(1), ..WavePipeOptions::default() }
    }

    /// Number of concurrent point-solves a round may issue.
    pub fn width(&self) -> usize {
        match self.scheme {
            Scheme::Serial => 1,
            _ => self.threads.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_backward_two_threads() {
        let o = WavePipeOptions::default();
        assert_eq!(o.scheme, Scheme::Backward);
        assert_eq!(o.threads, 2);
    }

    #[test]
    fn new_clamps_threads() {
        let o = WavePipeOptions::new(Scheme::Forward, 0);
        assert_eq!(o.threads, 1);
    }

    #[test]
    fn width_is_one_for_serial() {
        let o = WavePipeOptions::new(Scheme::Serial, 8);
        assert_eq!(o.width(), 1);
        assert_eq!(WavePipeOptions::new(Scheme::Backward, 3).width(), 3);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::Backward.to_string(), "backward");
        assert_eq!(Scheme::Combined.to_string(), "combined");
    }
}
