//! Shared machinery for the pipelining schemes: the run driver (history,
//! breakpoints, step control, commit logic identical to the serial engine)
//! and the concurrent round executor.

use crate::options::{Scheme, WavePipeOptions};
use crate::report::WavePipeReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use wavepipe_circuit::Circuit;
use wavepipe_engine::lte::lte_step_control;
use wavepipe_engine::{
    EngineError, HistoryWindow, MnaSystem, PointSolution, PointSolver, Result, SimOptions,
    SimStats, TransientResult,
};
use wavepipe_telemetry::{Counter, DiscardReason, EventKind, Family, Gauge, Series};

/// Static label for a scheme, for metric families (avoids a per-point
/// `to_string` allocation on the accept path).
pub(crate) fn scheme_label(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Serial => "serial",
        Scheme::Backward => "backward",
        Scheme::Forward => "forward",
        Scheme::Combined => "combined",
        Scheme::Adaptive => "adaptive",
    }
}

/// Renders a `catch_unwind` payload as a human-readable cause string.
pub(crate) fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// One concurrent point-solve request.
pub(crate) struct Task {
    /// History window the solve integrates from (true or speculative).
    pub hw: HistoryWindow,
    /// Target time.
    pub t: f64,
    /// Optional Newton initial guess (defaults to the window's predictor).
    pub guess: Option<Vec<f64>>,
}

/// A solve request shipped to a pool worker.
struct Job {
    task: Task,
    max_iters: usize,
    /// Position in the round's result vector.
    slot: usize,
}

/// One pool lane: the job channel and thread handle, plus the remaining
/// respawn budget. `sender` is `None` while the worker is dead.
struct WorkerSlot {
    sender: Option<std::sync::mpsc::Sender<Job>>,
    handle: Option<std::thread::JoinHandle<()>>,
    respawns_left: usize,
}

/// A pool of persistent worker threads, each owning its own [`PointSolver`]
/// (matrix values, LU factors, junction state survive across rounds, so the
/// refactorization fast path stays warm). Compared to spawning scoped
/// threads per round, this removes thread-creation latency from every
/// round's wall time.
///
/// Fault tolerance: each worker runs its solves under `catch_unwind` and
/// *always* replies to a received job — a panic is reported as
/// [`EngineError::WorkerLost`] before the worker retires — so the master's
/// result collection can never hang on a dead lane. Lost workers are
/// respawned up to [`WavePipeOptions::worker_respawns`] times per slot;
/// past that budget the pool shrinks and the driver runs narrower rounds,
/// degrading ultimately to the serial single-lane schedule.
pub(crate) struct WorkerPool {
    slots: Vec<WorkerSlot>,
    results: std::sync::mpsc::Receiver<(usize, Result<PointSolution>)>,
    /// Kept so the result channel can never disconnect (workers hold clones)
    /// and so respawned workers can be handed a sender.
    result_tx: std::sync::mpsc::Sender<(usize, Result<PointSolution>)>,
    sys: Arc<MnaSystem>,
    lane_sim: SimOptions,
}

impl WorkerPool {
    /// Spawns `n` workers for the given compiled system, each with a respawn
    /// budget of `respawns`.
    fn new(sys: &Arc<MnaSystem>, sim: &SimOptions, n: usize, respawns: usize) -> Self {
        let (result_tx, results) = std::sync::mpsc::channel();
        let mut pool = WorkerPool {
            slots: Vec::with_capacity(n),
            results,
            result_tx,
            sys: Arc::clone(sys),
            lane_sim: sim.clone(),
        };
        for i in 0..n {
            let (tx, handle) = pool.spawn_worker(i);
            pool.slots.push(WorkerSlot {
                sender: Some(tx),
                handle: Some(handle),
                respawns_left: respawns,
            });
        }
        pool
    }

    /// Spawns the thread for pool slot `i` (fresh solver, lane `i + 1`).
    fn spawn_worker(
        &self,
        i: usize,
    ) -> (std::sync::mpsc::Sender<Job>, std::thread::JoinHandle<()>) {
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let out = self.result_tx.clone();
        // Worker i solves the (i+1)-th task of every round; tag its probe
        // (and fault handle) with that lane so traces show the pipelining
        // overlap and injected faults can target individual lanes.
        let lane = i as u32 + 1;
        let mut worker_sim = self.lane_sim.clone();
        worker_sim.probe = self.lane_sim.probe.with_lane(lane);
        worker_sim.metrics = self.lane_sim.metrics.with_lane(lane);
        worker_sim.faults = self.lane_sim.faults.with_lane(lane);
        let mut solver = PointSolver::new(Arc::clone(&self.sys), worker_sim);
        let handle = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                // Contain panics (organic or injected): always reply, then
                // retire — the solver's internal state cannot be trusted
                // after an unwind through it.
                let solved = catch_unwind(AssertUnwindSafe(|| {
                    solver.solve_point(
                        &job.task.hw,
                        job.task.t,
                        job.task.guess.as_deref(),
                        job.max_iters,
                    )
                }));
                match solved {
                    Ok(r) => {
                        if out.send((job.slot, r)).is_err() {
                            break;
                        }
                    }
                    Err(payload) => {
                        let cause = panic_cause(payload);
                        let _ = out.send((job.slot, Err(EngineError::WorkerLost { lane, cause })));
                        break;
                    }
                }
            }
        });
        (tx, handle)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    /// Number of workers currently accepting jobs.
    fn alive(&self) -> usize {
        self.slots.iter().filter(|s| s.sender.is_some()).count()
    }

    /// Respawns every dead slot that still has respawn budget. Returns how
    /// many workers were brought back.
    fn respawn_dead(&mut self) -> usize {
        let mut respawned = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].sender.is_some() || self.slots[i].respawns_left == 0 {
                continue;
            }
            self.slots[i].respawns_left -= 1;
            // The retired thread exited after replying; reap it first.
            if let Some(h) = self.slots[i].handle.take() {
                let _ = h.join();
            }
            let (tx, handle) = self.spawn_worker(i);
            self.slots[i].sender = Some(tx);
            self.slots[i].handle = Some(handle);
            respawned += 1;
        }
        respawned
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels lets every worker's recv() fail and the
        // thread exit; join to avoid leaking threads across runs. A panic
        // payload escaping a worker (outside the per-solve catch) is
        // surfaced rather than silently dropped.
        for s in &mut self.slots {
            s.sender = None;
        }
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(h) = s.handle.take() {
                if let Err(payload) = h.join() {
                    let lane = i as u32 + 1;
                    self.lane_sim.probe.with_lane(lane).emit(0.0, EventKind::WorkerLost { lane });
                    eprintln!(
                        "wavepipe: worker lane {lane} panicked outside a solve: {}",
                        panic_cause(payload)
                    );
                }
            }
        }
    }
}

/// Outcome of attempting to commit one candidate point.
pub(crate) enum Commit {
    /// Point accepted; `h_next` is the LTE-proposed next step.
    Accepted {
        /// Proposed next step size.
        h_next: f64,
    },
    /// Rejected by the LTE test; retry with `h_retry`.
    RejectedLte {
        /// Suggested retry step.
        h_retry: f64,
    },
    /// Newton did not converge (or produced non-finite values).
    RejectedNewton,
}

/// The per-run driver: everything the scheme loops share.
pub(crate) struct Driver {
    pub sys: Arc<MnaSystem>,
    /// Solver used by the coordinating thread (round base points,
    /// speculative refinements).
    pub lead: PointSolver,
    pool: WorkerPool,
    pub wp: WavePipeOptions,
    pub tstep: f64,
    pub tstop: f64,
    pub hmin: f64,
    pub hmax: f64,
    bps: Vec<f64>,
    next_bp: usize,
    pub hw: HistoryWindow,
    /// Current base step proposal.
    pub h: f64,
    /// LTE growth factor observed at the last accepted point (used by the
    /// adaptive backward-lead placement).
    pub last_growth: f64,
    /// LTE error ratio observed at the last accepted point (<= 1).
    pub last_ratio: f64,
    /// Exponential moving average of the lead-point accept rate; drives the
    /// self-tuning backward budget slack.
    pub lead_ema: f64,
    /// Hysteresis state: whether deep ladders / speculation are currently
    /// enabled (flips at lead-EMA 0.45 up / 0.25 down).
    deep_mode: bool,
    /// Consecutive base-point LTE rejections (escape hatch for error floors,
    /// mirroring the serial engine's backward-Euler restart).
    lte_reject_streak: usize,
    pub result: TransientResult,
    pub total: SimStats,
    pub critical_work: u64,
    pub critical_ns: u128,
    pub rounds: usize,
    pub lead_accepted: usize,
    pub lead_rejected: usize,
    pub spec_accepted: usize,
    pub spec_rejected: usize,
    /// Worker-loss events observed (a respawned-then-lost worker counts
    /// each time).
    pub workers_lost: usize,
    /// `FallbackSerial` has been emitted (the pool shrank to nothing).
    serial_fallback_emitted: bool,
    run_start: Instant,
}

impl Driver {
    /// Compiles the circuit, solves the operating point (counted on the
    /// critical path — it is inherently sequential), and prepares the run.
    pub fn new(circuit: &Circuit, tstep: f64, tstop: f64, wp: &WavePipeOptions) -> Result<Self> {
        if !(tstop > 0.0 && tstop.is_finite()) {
            return Err(EngineError::BadParameter { name: "tstop", value: tstop });
        }
        if !(tstep > 0.0 && tstep.is_finite()) {
            return Err(EngineError::BadParameter { name: "tstep", value: tstep });
        }
        let run_start = Instant::now();
        let sys = Arc::new(MnaSystem::compile(circuit)?);
        let width = wp.width();
        // Each lane (lead + pool workers) gets the per-lane engine options,
        // so the thread budget splits lanes x stamp workers.
        let lane_sim = wp.lane_sim();
        let mut lead = PointSolver::new(Arc::clone(&sys), lane_sim.clone());
        let pool = WorkerPool::new(&sys, &lane_sim, width.saturating_sub(1), wp.worker_respawns);
        let node_names: Vec<String> = sys.node_names().to_vec();
        let mut result = TransientResult::new(sys.n_unknowns(), node_names);
        result.set_branch_names(sys.branch_names().to_vec());

        let mut dc_stats = SimStats::new();
        let dc_start = Instant::now();
        let x0 = lead.initial_state(&mut dc_stats)?;
        dc_stats.wall_ns = dc_start.elapsed().as_nanos();
        result.push(0.0, &x0);
        // Arm the deadline only now, after the DC solve, mirroring the serial
        // engine: a zero budget still yields the `t = 0` point.
        wp.sim.arm_deadline();
        let hw = HistoryWindow::start(x0, sys.cap_state_count());

        let bps = sys.breakpoints(tstop);
        let hmin = wp.sim.hmin(tstop);
        let hmax = wp.sim.hmax(tstop);
        let h = tstep.min(hmax).min(tstop / 100.0).max(hmin);
        let critical_work = dc_stats.work_units();
        let critical_ns = dc_stats.wall_ns;

        Ok(Driver {
            sys,
            lead,
            pool,
            wp: wp.clone(),
            tstep,
            tstop,
            hmin,
            hmax,
            bps,
            next_bp: 0,
            hw,
            h,
            last_growth: 1.0,
            last_ratio: 0.5,
            lead_ema: 0.5,
            deep_mode: true,
            lte_reject_streak: 0,
            result,
            total: dc_stats,
            critical_work,
            critical_ns,
            rounds: 0,
            lead_accepted: 0,
            lead_rejected: 0,
            spec_accepted: 0,
            spec_rejected: 0,
            workers_lost: 0,
            serial_fallback_emitted: false,
            run_start,
        })
    }

    /// Solves up to `1 + pool_size` tasks concurrently: task 0 on the
    /// coordinating thread, the rest on the persistent workers. Results are
    /// returned in task order; a task whose worker was lost (panic, dead
    /// channel) yields [`EngineError::WorkerLost`] in its slot instead of
    /// tearing the run down. Dead workers are respawned afterwards while
    /// their budget lasts.
    ///
    /// # Errors
    ///
    /// [`EngineError::Internal`] when more tasks are submitted than the pool
    /// has solver lanes (a scheme bug, not a simulation failure).
    pub fn solve_round(
        &mut self,
        tasks: Vec<Task>,
        max_iters: usize,
    ) -> Result<Vec<Result<PointSolution>>> {
        if tasks.len() > 1 + self.pool.len() {
            return Err(EngineError::Internal {
                context: format!(
                    "round of {} tasks exceeds {} solver lanes",
                    tasks.len(),
                    1 + self.pool.len()
                ),
            });
        }
        let n = tasks.len();
        let mut out: Vec<Option<Result<PointSolution>>> = (0..n).map(|_| None).collect();
        // Which pool slot each task slot went to, for marking dead workers
        // when their reply says they are gone.
        let mut slot_worker: Vec<Option<usize>> = vec![None; n];
        let mut iter = tasks.into_iter().enumerate();
        let first = iter.next();
        let mut dispatched = 0usize;
        let mut cursor = 0usize;
        for (slot, task) in iter {
            // Stamp the task's lane span at *dispatch*: the worker's own
            // SolveStart marks execution start, but the Chrome exporter keeps
            // the earliest start per lane, so traces show the round's tasks
            // in flight concurrently even when the host has fewer cores than
            // lanes (queue wait is part of the task's lifetime there).
            self.wp
                .sim
                .probe
                .with_lane(slot as u32)
                .emit(task.t, EventKind::SolveStart { h: task.t - task.hw.t() });
            let mut job = Job { task, max_iters, slot };
            let mut placed = false;
            while cursor < self.pool.slots.len() {
                let w = cursor;
                cursor += 1;
                let Some(tx) = self.pool.slots[w].sender.as_ref() else {
                    continue;
                };
                match tx.send(job) {
                    Ok(()) => {
                        slot_worker[slot] = Some(w);
                        dispatched += 1;
                        placed = true;
                        break;
                    }
                    Err(returned) => {
                        // Channel closed: the worker died since last round.
                        job = returned.0;
                        self.note_worker_lost(w, job.task.t);
                    }
                }
            }
            if !placed {
                out[slot] = Some(Err(EngineError::WorkerLost {
                    lane: slot as u32,
                    cause: "worker pool exhausted".to_string(),
                }));
            }
        }
        if let Some((slot, task)) = first {
            out[slot] = Some(self.lead_solve(&task.hw, task.t, task.guess.as_deref(), max_iters));
        }
        for _ in 0..dispatched {
            let received = self.pool.results.recv();
            match received {
                Ok((slot, r)) => {
                    if matches!(r, Err(EngineError::WorkerLost { .. })) {
                        if let Some(w) = slot_worker[slot] {
                            self.note_worker_lost(w, 0.0);
                        }
                    }
                    out[slot] = Some(r);
                }
                Err(_) => break, // cannot happen (pool holds a sender); stop waiting
            }
        }
        // Bring lost workers back while their respawn budget lasts, so a
        // transient fault costs one narrow round rather than the whole run.
        self.pool.respawn_dead();
        if self.pool.len() > 0 && self.pool.alive() == 0 && !self.serial_fallback_emitted {
            self.serial_fallback_emitted = true;
            self.wp.sim.probe.emit(self.hw.t(), EventKind::FallbackSerial);
            self.wp.sim.metrics.inc(Counter::SerialFallbacks);
        }
        Ok(out
            .into_iter()
            .map(|o| {
                o.unwrap_or_else(|| {
                    Err(EngineError::Internal {
                        context: "round task produced no result".to_string(),
                    })
                })
            })
            .collect())
    }

    /// Records one observed worker loss: marks the pool slot dead, counts
    /// it, and emits [`EventKind::WorkerLost`] for the lane.
    fn note_worker_lost(&mut self, w: usize, t: f64) {
        self.pool.slots[w].sender = None;
        self.workers_lost += 1;
        let lane = w as u32 + 1;
        self.wp.sim.probe.with_lane(lane).emit(t, EventKind::WorkerLost { lane });
        self.wp.sim.metrics.inc(Counter::WorkersLost);
    }

    /// Runs a solve on the coordinating thread's solver with panic isolation:
    /// an unwind out of the solver surfaces as [`EngineError::WorkerLost`]
    /// on lane 0 (terminal for the run — the lead solver's state cannot be
    /// trusted afterwards) instead of aborting the process.
    pub fn lead_solve(
        &mut self,
        hw: &HistoryWindow,
        t: f64,
        guess: Option<&[f64]>,
        max_iters: usize,
    ) -> Result<PointSolution> {
        match catch_unwind(AssertUnwindSafe(|| self.lead.solve_point(hw, t, guess, max_iters))) {
            Ok(r) => r,
            Err(payload) => Err(EngineError::WorkerLost { lane: 0, cause: panic_cause(payload) }),
        }
    }

    /// [`Driver::lead_solve`] against the driver's own (true) history —
    /// the case of speculative refinements, which always integrate from it.
    ///
    /// # Errors
    ///
    /// Engine solve failures, or [`EngineError::WorkerLost`] (lane 0) when
    /// the solve panicked.
    pub fn refine_solve(
        &mut self,
        t: f64,
        guess: &[f64],
        max_iters: usize,
    ) -> Result<PointSolution> {
        match catch_unwind(AssertUnwindSafe(|| {
            self.lead.solve_point(&self.hw, t, Some(guess), max_iters)
        })) {
            Ok(r) => r,
            Err(payload) => Err(EngineError::WorkerLost { lane: 0, cause: panic_cause(payload) }),
        }
    }

    /// Clamps a requested round width to what the pool can still serve:
    /// the coordinating lane plus the live workers. Shrinks to 1 (serial
    /// schedule) once every worker is gone.
    pub fn round_width(&self, requested: usize) -> usize {
        requested.min(1 + self.pool.alive()).max(1)
    }

    /// Checks the run's cancellation token / deadline at a round boundary.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cancelled`] or [`EngineError::DeadlineExceeded`].
    pub fn check_budget(&self) -> Result<()> {
        self.wp.sim.check_budget(self.hw.t())
    }

    /// `true` once the simulation reached `tstop`.
    pub fn done(&self) -> bool {
        self.hw.t() >= self.tstop - 0.5 * self.hmin
    }

    /// The next un-passed breakpoint (or `tstop`). Also advances past any
    /// breakpoints the history has already crossed.
    pub fn horizon(&mut self) -> f64 {
        while self.next_bp < self.bps.len()
            && self.bps[self.next_bp] <= self.hw.t() + 0.5 * self.hmin
        {
            self.next_bp += 1;
        }
        self.bps.get(self.next_bp).copied().unwrap_or(self.tstop).min(self.tstop)
    }

    /// Clips an ascending target list at the horizon: targets beyond it are
    /// dropped and the last kept target snaps onto it. Returns the clipped
    /// list and whether the final target sits on the horizon (a breakpoint
    /// or `tstop`).
    pub fn clip_targets(&mut self, raw: &[f64]) -> (Vec<f64>, bool) {
        let limit = self.horizon();
        let mut out = Vec::with_capacity(raw.len());
        let mut hit = false;
        for &t in raw {
            if t >= limit - 0.5 * self.hmin {
                out.push(limit);
                hit = true;
                break;
            }
            out.push(t);
        }
        (out, hit)
    }

    /// Serial-identical commit test for a candidate: Newton convergence,
    /// finiteness, and the LTE accept/reject with the *actual* integration
    /// stride the candidate used.
    pub fn try_commit(&mut self, sol: &PointSolution) -> Commit {
        if !sol.converged || !wavepipe_sparse::vector::all_finite(&sol.x) {
            return Commit::RejectedNewton;
        }
        let needed = sol.method.order() + 1;
        let h_used = sol.coeffs.h;
        if self.hw.usable_for_lte() >= needed {
            let refs: Vec<&[f64]> =
                self.hw.solutions()[..needed].iter().map(|v| v.as_slice()).collect();
            let d = lte_step_control(
                sol.method,
                sol.t,
                &sol.x,
                h_used,
                &self.hw.times()[..needed],
                &refs,
                &self.wp.sim,
            );
            if !d.accept && h_used > self.hmin * 1.01 {
                return Commit::RejectedLte { h_retry: d.h_new };
            }
            self.lte_reject_streak = 0;
            self.last_growth = (d.h_new / h_used).max(0.1);
            self.last_ratio = d.ratio.max(1e-9);
            self.accept(sol);
            Commit::Accepted { h_next: d.h_new }
        } else {
            self.last_growth = self.wp.sim.rmax;
            self.last_ratio = 1e-9;
            self.accept(sol);
            Commit::Accepted { h_next: h_used * self.wp.sim.rmax }
        }
    }

    fn accept(&mut self, sol: &PointSolution) {
        self.wp.sim.probe.emit(sol.t, EventKind::PointAccepted { h: sol.coeffs.h });
        let m = &self.wp.sim.metrics;
        if m.enabled() {
            m.inc(Counter::PointsAccepted);
            m.add_lane(Family::PointsByLane, 1);
            m.add_labeled(Family::PointsByScheme, scheme_label(self.wp.scheme), 1);
            m.observe(Series::StepSize, sol.coeffs.h);
            m.set_gauge(Gauge::CurrentH, sol.coeffs.h);
        }
        self.hw.accept(sol);
        self.result.push(sol.t, &sol.x);
        self.total.steps_accepted += 1;
    }

    /// Handles landing on the horizon: if it was a real breakpoint, restart
    /// integration and shrink the step for the corner.
    pub fn handle_breakpoint_landing(&mut self) {
        let t = self.hw.t();
        if self.next_bp < self.bps.len() && (self.bps[self.next_bp] - t).abs() <= 0.5 * self.hmin {
            self.next_bp += 1;
            self.hw.mark_discontinuity();
            let to_next =
                self.bps.get(self.next_bp).map_or(self.tstop - t, |&b| b - t).max(self.hmin);
            self.h = self.h.min(self.tstep * 0.25).min((to_next * 0.25).max(self.hmin));
        }
    }

    /// Adds a round's concurrent task costs: everything into `total`, the
    /// maximum into the critical path.
    pub fn account_parallel(&mut self, task_stats: &[SimStats]) {
        let mut max_work = 0u64;
        let mut max_ns = 0u128;
        for s in task_stats {
            self.total += *s;
            max_work = max_work.max(s.work_units());
            max_ns = max_ns.max(s.wall_ns);
        }
        self.critical_work += max_work;
        self.critical_ns += max_ns;
        self.rounds += 1;
        let m = &self.wp.sim.metrics;
        if m.enabled() {
            m.inc(Counter::Rounds);
            m.add_labeled(Family::RoundsByScheme, scheme_label(self.wp.scheme), 1);
            m.set_gauge(Gauge::RoundWidth, task_stats.len() as f64);
        }
    }

    /// Adds inherently sequential work (speculation refinement, serial
    /// fix-up solves) to both totals and the critical path.
    pub fn account_sequential(&mut self, s: &SimStats) {
        self.total += *s;
        self.critical_work += s.work_units();
        self.critical_ns += s.wall_ns;
    }

    /// Lead-placement growth factor: aim the backward lead at the *LTE
    /// boundary* predicted by the last accepted point's error ratio (a step
    /// grown by `f` scales the ratio by `f^(order+1)`; target 0.9), rather
    /// than at the deliberately conservative base-step proposal. In rapid
    /// growth phases (ratio ~ 0) this saturates at `rmax`.
    pub fn lead_growth(&self) -> f64 {
        if !self.wp.bp_adaptive_lead {
            return self.wp.sim.rmax;
        }
        let order = self.wp.sim.method.order() as f64;
        (0.9 / self.last_ratio).powf(1.0 / (order + 1.0)).clamp(1.0, self.wp.sim.rmax)
    }

    /// Builds the backward target ladder from the current time: gaps start
    /// at the base step and stretch by [`Driver::lead_growth`], but any lead
    /// whose *total integration stride* would exceed the LTE-boundary budget
    /// is not launched at all — in error-bound phases it would fail its LTE
    /// test with certainty, and an un-launched task keeps the round's
    /// critical path at the base solve. In growth phases (tiny error ratio)
    /// the budget is huge and the full ladder width is used.
    pub fn backward_ladder(&self, width: usize) -> Vec<f64> {
        let growth = self.lead_growth();
        let order = self.wp.sim.method.order() as f64;
        // Total stride budget from the last accepted point. Not clamped to
        // rmax: the budget is about error, not about per-gap stretching.
        // The slack is self-tuning: on circuits where launched leads keep
        // failing (LTE-bound operation), a failed lead still stretches the
        // round's critical path — its solve is the most expensive concurrent
        // task — so the budget contracts toward "only near-certain leads";
        // where leads keep paying, the full configured slack applies.
        let budget = if self.wp.bp_adaptive_lead && self.wp.bp_budget_slack.is_finite() {
            let slack = 1.0 + (self.wp.bp_budget_slack - 1.0) * (self.lead_ema / 0.3).min(1.0);
            self.h * (0.95 / self.last_ratio).powf(1.0 / (order + 1.0)) * slack
        } else {
            f64::INFINITY
        };
        // Optional gating (ablation knobs, both off by default — measured
        // across the suite, launching leads even at low accept rates is a
        // net win): a growth-phase gate on the predicted stretch factor,
        // with periodic probing so a regime change re-enables leads.
        let leads_enabled = !self.wp.bp_adaptive_lead
            || self.lead_growth() >= self.wp.bp_growth_gate
            || self.rounds % 16 == 15;
        let width = if leads_enabled { width } else { 1 };
        // Ladder depth scales with how well leads have been paying: one
        // lottery lead is near-free on the critical path, but deep ladders
        // only earn their keep in sustained growth phases (hysteresis on
        // the lead-EMA avoids flapping at the threshold).
        let width =
            if self.wp.bp_adaptive_lead && !self.deep_mode() { width.min(2) } else { width };
        let mut targets = Vec::with_capacity(width);
        let t0 = self.hw.t();
        let mut t = t0;
        let mut gap = self.h;
        for i in 0..width {
            t += gap;
            if i > 0 && t - t0 > budget {
                break;
            }
            targets.push(t);
            gap = (gap * growth).min(self.hmax);
        }
        targets
    }

    /// Handles an LTE rejection of the round's *base* point: mirrors the
    /// serial engine exactly, including the backward-Euler restart escape
    /// when the error estimate stops responding to step shrinks
    /// (trapezoidal ringing / noise-dominated divided differences).
    pub fn base_lte_reject(&mut self, h_attempt: f64, h_retry: f64) {
        self.total.steps_rejected_lte += 1;
        self.wp.sim.metrics.inc(Counter::LteRejects);
        self.lte_reject_streak += 1;
        let crawling = h_attempt < self.hmin * 1e3;
        if self.lte_reject_streak >= 3 || crawling {
            self.hw.mark_discontinuity();
            self.lte_reject_streak = 0;
            self.h = h_attempt;
        } else {
            self.h = h_retry;
        }
    }

    /// Records a lead-point outcome in the accept-rate EMA.
    pub fn note_lead(&mut self, accepted: bool) {
        const ALPHA: f64 = 0.08;
        let x = if accepted { 1.0 } else { 0.0 };
        self.lead_ema = (1.0 - ALPHA) * self.lead_ema + ALPHA * x;
        if self.lead_ema > 0.45 {
            self.deep_mode = true;
        } else if self.lead_ema < 0.25 {
            self.deep_mode = false;
        }
        let m = &self.wp.sim.metrics;
        if m.enabled() {
            m.set_gauge(Gauge::LeadAcceptEma, self.lead_ema);
            m.set_gauge(Gauge::DeepMode, if self.deep_mode { 1.0 } else { 0.0 });
        }
    }

    /// Whether sustained lead success currently justifies deep ladders and
    /// forward speculation past the lead.
    pub fn deep_mode(&self) -> bool {
        self.deep_mode
    }

    /// Newton failure on the base point: shrink and retry — and when the
    /// step has already collapsed to the floor, run the engine's convergence
    /// recovery ladder on the *lead* lane (speculation was already discarded
    /// by the caller; a rescued point commits through the same accept
    /// machinery and restarts integration exactly as the serial loop does,
    /// preserving waveform bit-identity with the serial recovery path).
    /// `failed_iters` is the iteration count of the failing base solve, for
    /// the failure report. Returns `true` when a rescued point was committed
    /// (so callers can count it in the round's committed total).
    ///
    /// # Errors
    ///
    /// * [`EngineError::TimestepTooSmall`] when the retry step would go
    ///   below `hmin` and recovery is disabled.
    /// * [`EngineError::NoConvergence`] when every recovery rung failed.
    /// * Budget errors propagating out of a rescue solve.
    pub fn newton_backoff(&mut self, h_attempt: f64, failed_iters: usize) -> Result<bool> {
        self.total.steps_rejected_newton += 1;
        self.wp.sim.metrics.inc(Counter::NewtonRejects);
        self.h = h_attempt * self.wp.sim.nr_shrink;
        if self.h < self.hmin {
            if !self.wp.sim.recovery {
                return Err(EngineError::TimestepTooSmall {
                    time: self.hw.t(),
                    step: self.h,
                    hmin: self.hmin,
                });
            }
            // The ladder is inherently sequential work on the lead lane.
            let mut rstats = SimStats::new();
            let rescued = self.lead.rescue_point(
                &self.hw,
                h_attempt,
                self.hmin,
                failed_iters,
                &mut rstats,
            )?;
            self.account_sequential(&rstats);
            self.accept(&rescued);
            self.hw.mark_discontinuity();
            self.lte_reject_streak = 0;
            self.h = self.hmin;
            return Ok(true);
        }
        Ok(false)
    }

    /// Packages the run into a report.
    pub fn finish(mut self, scheme: Scheme) -> WavePipeReport {
        self.total.wall_ns = self.run_start.elapsed().as_nanos();
        let mut result = self.result;
        result.set_stats(self.total);
        WavePipeReport {
            result,
            scheme,
            threads: self.wp.threads,
            lanes: self.wp.lanes(),
            stamp_workers: self.wp.stamp_workers,
            rounds: self.rounds,
            total: self.total,
            critical_work: self.critical_work,
            critical_ns: self.critical_ns,
            lead_accepted: self.lead_accepted,
            lead_rejected: self.lead_rejected,
            speculation_accepted: self.spec_accepted,
            speculation_rejected: self.spec_rejected,
            workers_lost: self.workers_lost,
            telemetry: self.wp.sim.probe.summary(),
        }
    }
}

/// Splits a round's per-slot results into the usable prefix of solutions,
/// accounting every completed solve's cost. A slot-0 error is structural
/// (the base solve is not speculative) and propagates; an error at slot
/// `i > 0` truncates the round there — every pool task is speculative, so
/// discarding it and everything after is always safe; the committed prefix
/// stays serial-identical. Returns the solutions and whether truncation
/// happened. Slots below `spec_from` emit [`EventKind::LeadDiscarded`],
/// the rest [`EventKind::SpeculationDiscarded`].
///
/// # Errors
///
/// The slot-0 error, when the round's base solve itself failed.
pub(crate) fn usable_prefix(
    drv: &mut Driver,
    sols: Vec<Result<PointSolution>>,
    spec_from: usize,
) -> Result<(Vec<PointSolution>, bool)> {
    let mut costs: Vec<SimStats> = Vec::with_capacity(sols.len());
    let mut solutions: Vec<PointSolution> = Vec::with_capacity(sols.len());
    let mut truncated = false;
    for (i, s) in sols.into_iter().enumerate() {
        match s {
            Ok(sol) => {
                costs.push(sol.stats);
                if truncated {
                    // Solved fine, but an earlier slot is missing and commits
                    // walk left to right — the chain is broken here.
                    emit_discard(drv, sol.t, i, spec_from, DiscardReason::ChainBroken);
                } else {
                    solutions.push(sol);
                }
            }
            Err(e) if i == 0 => return Err(e),
            Err(_) => {
                emit_discard(drv, drv.hw.t(), i, spec_from, DiscardReason::WorkerLost);
                truncated = true;
            }
        }
    }
    drv.account_parallel(&costs);
    Ok((solutions, truncated))
}

fn emit_discard(drv: &Driver, t: f64, slot: usize, spec_from: usize, reason: DiscardReason) {
    let kind = if slot >= spec_from {
        drv.wp.sim.metrics.inc(Counter::SpeculationDiscarded);
        EventKind::SpeculationDiscarded { reason }
    } else {
        drv.wp.sim.metrics.inc(Counter::LeadDiscarded);
        EventKind::LeadDiscarded { reason }
    };
    drv.wp.sim.probe.emit(t, kind);
}

/// The shared scheme loop: rounds until `tstop`, checking the deadline /
/// cancellation token at every round boundary and narrowing the round width
/// to what the worker pool can still serve. Returns the terminal error of a
/// partial run, or `None` when the run completed.
pub(crate) fn drive(
    drv: &mut Driver,
    width: usize,
    mut round: impl FnMut(&mut Driver, usize) -> Result<usize>,
) -> Option<EngineError> {
    while !drv.done() {
        if let Err(e) = drv.check_budget() {
            return Some(e);
        }
        let w = drv.round_width(width);
        if let Err(e) = round(drv, w) {
            return Some(e);
        }
    }
    None
}
