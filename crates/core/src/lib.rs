//! **WavePipe** — coarse-grained parallel transient circuit simulation via
//! waveform pipelining, after Dong, Li & Ye, *"WavePipe: parallel transient
//! simulation of analog and digital circuits on multi-core shared-memory
//! machines"*, DAC 2008.
//!
//! A SPICE transient loop is sequential: each time point's integration
//! history is the previous points. WavePipe extracts parallelism *across
//! adjacent time points* without relaxation-style accuracy loss:
//!
//! * [`Scheme::Backward`] — concurrent solves at the leading point and the
//!   backward intermediate points behind it, all integrating from the shared
//!   accepted history; the round advances simulated time further than a
//!   serial step while its critical path is a single solve.
//! * [`Scheme::Forward`] — speculative Newton at future points using
//!   *predicted* history, refined in a couple of warm-start iterations once
//!   the true history lands.
//! * [`Scheme::Combined`] — a backward ladder plus one forward speculative
//!   point.
//! * [`Scheme::Adaptive`] — per-round selection between backward and
//!   forward based on measured efficiency (an extension beyond the paper).
//!
//! Every accepted point passes the **same** Newton tolerance and
//! local-truncation-error test as the serial engine (the code is literally
//! shared), so convergence and accuracy are never compromised — misprediction
//! and over-ambitious leads only cost discarded work.
//!
//! # Example
//!
//! ```
//! use wavepipe_circuit::generators;
//! use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
//!
//! # fn main() -> Result<(), wavepipe_engine::EngineError> {
//! let bench = generators::rc_ladder(8);
//! let opts = WavePipeOptions::new(Scheme::Backward, 2);
//! let report = run_wavepipe(&bench.circuit, bench.tstep, bench.tstop, &opts)?;
//! assert!(report.result.len() > 10);
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod backward;
pub mod combined;
pub mod forward;
mod options;
mod pipeline;
mod report;
pub mod verify;

pub use options::{Scheme, WavePipeOptions};
pub use report::{RunOutcome, WavePipeReport};
pub use wavepipe_telemetry as telemetry;
pub use wavepipe_telemetry::{MetricsHandle, MetricsRegistry};

use wavepipe_circuit::Circuit;
use wavepipe_engine::{run_transient_recoverable, Result};

/// Runs a transient analysis with the configured pipelining scheme.
///
/// For [`Scheme::Serial`] this wraps the plain serial engine (the critical
/// path then equals the total work).
///
/// # Errors
///
/// Same failure modes as [`wavepipe_engine::run_transient`].
pub fn run_wavepipe(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    opts: &WavePipeOptions,
) -> Result<WavePipeReport> {
    run_wavepipe_recoverable(circuit, tstep, tstop, opts)?.into_result()
}

/// Fault-tolerant variant of [`run_wavepipe`]: instead of discarding the
/// whole analysis on a mid-run failure (deadline, cancellation, lead-solver
/// panic), the returned [`RunOutcome`] carries the report over every point
/// accepted before the run ended alongside the terminal error.
///
/// Worker-lane panics and injected faults are *not* terminal — they are
/// absorbed (the pool respawns or shrinks, ultimately to a serial schedule)
/// and only show up as [`WavePipeReport::workers_lost`].
///
/// # Errors
///
/// Pre-run failures only: bad parameters, circuit compilation, or the DC
/// operating-point solve — before there is any partial result to keep.
pub fn run_wavepipe_recoverable(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    opts: &WavePipeOptions,
) -> Result<RunOutcome> {
    match opts.scheme {
        Scheme::Serial => {
            // Serial in the lane dimension only: stamp_workers still applies.
            let outcome = run_transient_recoverable(circuit, tstep, tstop, &opts.lane_sim())?;
            let result = outcome.result;
            let total = *result.stats();
            let report = WavePipeReport {
                scheme: Scheme::Serial,
                threads: 1 + opts.stamp_workers,
                lanes: 1,
                stamp_workers: opts.stamp_workers,
                rounds: total.steps_accepted + total.steps_rejected(),
                critical_work: total.work_units(),
                critical_ns: total.wall_ns,
                total,
                result,
                lead_accepted: 0,
                lead_rejected: 0,
                speculation_accepted: 0,
                speculation_rejected: 0,
                workers_lost: 0,
                telemetry: opts.sim.probe.summary(),
            };
            Ok(RunOutcome { report, error: outcome.error })
        }
        Scheme::Backward => backward::run_backward_recoverable(circuit, tstep, tstop, opts),
        Scheme::Forward => forward::run_forward_recoverable(circuit, tstep, tstop, opts),
        Scheme::Combined => combined::run_combined_recoverable(circuit, tstep, tstop, opts),
        Scheme::Adaptive => adaptive::run_adaptive_recoverable(circuit, tstep, tstop, opts),
    }
}
