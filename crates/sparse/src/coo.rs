//! Coordinate-format (triplet) matrix builder.
//!
//! [`CooMatrix`] is the entry point for assembling a sparse matrix: push
//! `(row, col, value)` triplets in any order (duplicates are summed, the MNA
//! "stamping" convention) and convert to [`CscMatrix`] for numerical work.

use crate::csc::CscMatrix;
use crate::error::{Result, SparseError};

/// A sparse matrix under construction, stored as unsorted triplets.
///
/// Duplicate `(row, col)` entries are *summed* during conversion, which is
/// exactly the stamping semantics used by modified nodal analysis.
///
/// ```
/// use wavepipe_sparse::CooMatrix;
///
/// # fn main() -> Result<(), wavepipe_sparse::SparseError> {
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 0, 1.0)?;
/// a.push(0, 0, 2.0)?; // summed with the previous entry
/// a.push(1, 1, 4.0)?;
/// let csc = a.to_csc();
/// assert_eq!(csc.get(0, 0), 3.0);
/// assert_eq!(csc.get(1, 1), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` triplet matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty matrix with capacity for `nnz` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn triplet_count(&self) -> usize {
        self.vals.len()
    }

    /// Appends the triplet `(row, col, value)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `row` or `col` exceeds the
    /// matrix dimensions.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
        Ok(())
    }

    /// Appends a triplet without bounds checking in release builds.
    ///
    /// # Panics
    ///
    /// Debug builds assert the indices are in range.
    pub fn push_unchecked(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Iterates over the stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows.iter().zip(&self.cols).zip(&self.vals).map(|((&r, &c), &v)| (r, c, v))
    }

    /// Removes all triplets, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Converts to compressed sparse column format, summing duplicates.
    ///
    /// Entries that sum to exactly zero are *kept* in the pattern: MNA
    /// matrices are restamped every Newton iteration, so the symbolic pattern
    /// must be the union of all possible nonzeros.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_triplets(self.nrows, self.ncols, &self.rows, &self.cols, &self.vals)
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("extend: triplet out of bounds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut a = CooMatrix::new(2, 3);
        assert!(a.push(2, 0, 1.0).is_err());
        assert!(a.push(0, 3, 1.0).is_err());
        assert!(a.push(1, 2, 1.0).is_ok());
    }

    #[test]
    fn duplicates_are_summed_in_csc() {
        let mut a = CooMatrix::new(3, 3);
        a.push(1, 1, 2.0).unwrap();
        a.push(1, 1, -0.5).unwrap();
        a.push(0, 2, 1.0).unwrap();
        let m = a.to_csc();
        assert_eq!(m.get(1, 1), 1.5);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn zero_sum_entries_stay_in_pattern() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 1, 5.0).unwrap();
        a.push(0, 1, -5.0).unwrap();
        let m = a.to_csc();
        assert_eq!(m.nnz(), 1, "cancelled entry must remain symbolically");
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn clear_keeps_dimensions() {
        let mut a = CooMatrix::new(4, 4);
        a.push(0, 0, 1.0).unwrap();
        a.clear();
        assert_eq!(a.triplet_count(), 0);
        assert_eq!(a.nrows(), 4);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut a = CooMatrix::new(2, 2);
        a.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(a.triplet_count(), 2);
    }

    #[test]
    fn iter_returns_insertion_order() {
        let mut a = CooMatrix::new(2, 2);
        a.push(1, 0, 3.0).unwrap();
        a.push(0, 1, 4.0).unwrap();
        let v: Vec<_> = a.iter().collect();
        assert_eq!(v, vec![(1, 0, 3.0), (0, 1, 4.0)]);
    }
}
