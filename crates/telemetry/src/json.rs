//! A minimal JSON writer/reader — just enough for the exporters and their
//! round-trip tests, with no external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for embedding in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it parses back to the same value and is valid JSON
/// (no bare `inf`/`NaN` — they are clamped to large magnitudes / zero, which
/// the telemetry stream never produces anyway).
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "0".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "1e308".to_string() } else { "-1e308".to_string() };
    }
    let s = format!("{v}");
    // `Display` prints integral floats without a dot; that is still valid
    // JSON and round-trips, so keep it.
    s
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(JsonError { at: p.i, msg: "trailing characters" });
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal(b"true", JsonValue::Bool(true)),
            b'f' => self.literal(b"false", JsonValue::Bool(false)),
            b'n' => self.literal(b"null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn literal(&mut self, word: &[u8], v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.b[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError { at: start, msg: "invalid number" })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("short unicode escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad unicode escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let s = &self.b[self.i - 1..];
                    let len = utf8_len(c);
                    if len == 1 {
                        out.push(c as char);
                    } else {
                        if self.i - 1 + len > self.b.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let chunk = std::str::from_utf8(&s[..len])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(chunk);
                        self.i += len - 1;
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':', "expected ':'")?;
            self.ws();
            let val = self.value()?;
            out.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\"y", "d": true}, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-0.03));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\nquote\" back\\slash\ttab\u{1}unicode é";
        let parsed = parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn f64_formatting_round_trips() {
        for v in [0.0, 1.5, -2.25e-12, 1e300, 123456789.0, std::f64::consts::PI] {
            let s = fmt_f64(v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "{s}");
        }
        assert_eq!(parse(&fmt_f64(f64::NAN)).unwrap().as_f64(), Some(0.0));
        assert!(parse(&fmt_f64(f64::INFINITY)).unwrap().as_f64().unwrap() > 1e307);
    }
}
