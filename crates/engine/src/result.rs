//! Transient simulation results: waveform storage, probing, and comparison.

use crate::stats::SimStats;

/// The recorded outcome of a transient analysis: every accepted time point
/// with its full solution vector, plus run statistics.
///
/// Storage is a flat row-major array (`n_points x n_unknowns`), with node
/// names carried along so results are self-describing.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    data: Vec<f64>,
    n_unknowns: usize,
    node_names: Vec<String>,
    branch_names: Vec<(String, usize)>,
    stats: SimStats,
}

impl TransientResult {
    /// Creates an empty result for a system with the given unknown layout.
    pub fn new(n_unknowns: usize, node_names: Vec<String>) -> Self {
        TransientResult {
            times: Vec::new(),
            data: Vec::new(),
            n_unknowns,
            node_names,
            branch_names: Vec::new(),
            stats: SimStats::new(),
        }
    }

    /// Attaches the branch-current name map (element name -> unknown index)
    /// so currents are addressable by element name.
    pub fn set_branch_names(&mut self, branch_names: Vec<(String, usize)>) {
        self.branch_names = branch_names;
    }

    /// Iterates the node names in unknown order.
    pub fn node_names_iter(&self) -> impl Iterator<Item = &str> {
        self.node_names.iter().map(String::as_str)
    }

    /// Iterates the branch-current `(element name, unknown index)` pairs.
    pub fn branch_names_iter(&self) -> impl Iterator<Item = (String, usize)> + '_ {
        self.branch_names.iter().cloned()
    }

    /// Unknown index of the branch current of a named element (voltage
    /// source, inductor, or VCVS), if present.
    pub fn branch_of(&self, element_name: &str) -> Option<usize> {
        self.branch_names
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(element_name))
            .map(|&(_, u)| u)
    }

    /// Appends an accepted point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the unknown count, or `t` does not
    /// increase.
    pub fn push(&mut self, t: f64, x: &[f64]) {
        assert_eq!(x.len(), self.n_unknowns);
        if let Some(&last) = self.times.last() {
            assert!(t > last, "time must increase: {t} after {last}");
        }
        self.times.push(t);
        self.data.extend_from_slice(x);
    }

    /// Replaces the run statistics.
    pub fn set_stats(&mut self, stats: SimStats) {
        self.stats = stats;
    }

    /// Run statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of unknowns per point.
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// Number of node-voltage unknowns (indices `0..node_count()`); the
    /// remaining unknowns are branch currents.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// The accepted time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Full solution vector at point `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn solution(&self, k: usize) -> &[f64] {
        &self.data[k * self.n_unknowns..(k + 1) * self.n_unknowns]
    }

    /// Unknown index of a node name, if present.
    pub fn unknown_of(&self, node_name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == node_name)
    }

    /// Step sizes between consecutive accepted points.
    pub fn step_sizes(&self) -> Vec<f64> {
        self.times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The `(time, value)` trace of one unknown.
    ///
    /// # Panics
    ///
    /// Panics if `unknown` is out of range.
    pub fn trace(&self, unknown: usize) -> Vec<(f64, f64)> {
        assert!(unknown < self.n_unknowns);
        self.times
            .iter()
            .enumerate()
            .map(|(k, &t)| (t, self.data[k * self.n_unknowns + unknown]))
            .collect()
    }

    /// Linearly interpolated value of an unknown at time `t` (clamped to the
    /// stored range).
    ///
    /// # Panics
    ///
    /// Panics if the result is empty or `unknown` out of range.
    pub fn sample(&self, unknown: usize, t: f64) -> f64 {
        assert!(!self.is_empty());
        assert!(unknown < self.n_unknowns);
        let at = |k: usize| self.data[k * self.n_unknowns + unknown];
        if t <= self.times[0] {
            return at(0);
        }
        let last = self.times.len() - 1;
        if t >= self.times[last] {
            return at(last);
        }
        let k = self.times.partition_point(|&tt| tt <= t);
        let (t0, t1) = (self.times[k - 1], self.times[k]);
        let (v0, v1) = (at(k - 1), at(k));
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Maximum absolute deviation of one unknown between two results,
    /// evaluated on the union of both time grids (linear interpolation).
    ///
    /// # Panics
    ///
    /// Panics if either result is empty.
    pub fn max_deviation(&self, other: &TransientResult, unknown: usize) -> f64 {
        let mut worst = 0.0_f64;
        for &t in self.times.iter().chain(other.times.iter()) {
            let d = (self.sample(unknown, t) - other.sample(unknown, t)).abs();
            worst = worst.max(d);
        }
        worst
    }

    /// Maximum deviation across all *node voltage* unknowns (indices
    /// `0..node_names.len()`), the waveform-accuracy metric of experiment E5.
    pub fn max_deviation_all_nodes(&self, other: &TransientResult) -> f64 {
        (0..self.node_names.len()).map(|u| self.max_deviation(other, u)).fold(0.0, f64::max)
    }

    /// Peak absolute value of one unknown over the run.
    pub fn peak(&self, unknown: usize) -> f64 {
        self.trace(unknown).iter().fold(0.0_f64, |m, &(_, v)| m.max(v.abs()))
    }

    /// Writes the traces of the named unknowns as CSV (`t,name1,name2,...`).
    pub fn to_csv(&self, unknowns: &[(String, usize)]) -> String {
        let mut out = String::from("t");
        for (name, _) in unknowns {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (k, &t) in self.times.iter().enumerate() {
            out.push_str(&format!("{t:.6e}"));
            for &(_, u) in unknowns {
                out.push_str(&format!(",{:.6e}", self.data[k * self.n_unknowns + u]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_result() -> TransientResult {
        let mut r = TransientResult::new(2, vec!["a".into(), "b".into()]);
        for k in 0..=10 {
            let t = k as f64 * 0.1;
            r.push(t, &[t, 2.0 * t]);
        }
        r
    }

    #[test]
    fn push_and_probe() {
        let r = ramp_result();
        assert_eq!(r.len(), 11);
        assert_eq!(r.unknown_of("b"), Some(1));
        assert_eq!(r.solution(5), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "time must increase")]
    fn non_monotone_time_rejected() {
        let mut r = TransientResult::new(1, vec!["a".into()]);
        r.push(1.0, &[0.0]);
        r.push(0.5, &[0.0]);
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let r = ramp_result();
        assert!((r.sample(0, 0.55) - 0.55).abs() < 1e-12);
        assert_eq!(r.sample(0, -1.0), 0.0);
        assert_eq!(r.sample(0, 99.0), 1.0);
    }

    #[test]
    fn deviation_of_identical_is_zero() {
        let r = ramp_result();
        assert_eq!(r.max_deviation(&r.clone(), 0), 0.0);
        assert_eq!(r.max_deviation_all_nodes(&r.clone()), 0.0);
    }

    #[test]
    fn deviation_detects_offset() {
        let a = ramp_result();
        let mut b = TransientResult::new(2, vec!["a".into(), "b".into()]);
        for k in 0..=10 {
            let t = k as f64 * 0.1;
            b.push(t, &[t + 0.25, 2.0 * t]);
        }
        assert!((a.max_deviation(&b, 0) - 0.25).abs() < 1e-12);
        assert_eq!(a.max_deviation(&b, 1), 0.0);
    }

    #[test]
    fn deviation_handles_different_grids() {
        // Same linear waveform sampled on different grids: deviation ~ 0.
        let a = ramp_result();
        let mut b = TransientResult::new(2, vec!["a".into(), "b".into()]);
        for k in 0..=7 {
            let t = k as f64 * 1.0 / 7.0;
            b.push(t, &[t, 2.0 * t]);
        }
        assert!(a.max_deviation(&b, 0) < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = ramp_result();
        let csv = r.to_csv(&[("a".into(), 0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,a");
        assert_eq!(lines.len(), 12);
    }

    #[test]
    fn step_sizes_and_peak() {
        let r = ramp_result();
        let hs = r.step_sizes();
        assert_eq!(hs.len(), 10);
        assert!((hs[0] - 0.1).abs() < 1e-12);
        assert!((r.peak(1) - 2.0).abs() < 1e-12);
    }
}
