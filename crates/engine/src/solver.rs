//! Pluggable linear-solver backends behind the Newton loop.
//!
//! Historically [`crate::newton::LinearCache`] called [`SparseLu`] directly;
//! that coupling is now behind the [`SolverBackend`] trait — the seam that
//! lets batched sweeps share symbolic work across instances today and later
//! admits SIMD/iterative/offloaded backends without touching the Newton
//! iteration itself.
//!
//! # Determinism contract
//!
//! Every backend shipped by this crate is **bit-deterministic**: given the
//! same sequence of `factor`/`refactor`/`solve` calls on the same matrices,
//! it produces bitwise-identical solution vectors on every run. [`DirectLu`]
//! is additionally pinned to be bit-identical to the historical direct
//! `SparseLu` calls (same ordering, same pivoting, same triangular solves),
//! so swapping the seam in changed no waveform anywhere. [`BatchedDirectLu`]
//! shares one precomputed fill-reducing ordering across instances; because
//! the orderings in [`wavepipe_sparse::ordering`] are pure functions of the
//! matrix *pattern* — they never read values — an instance factored through
//! it is bit-identical to the same instance factored through [`DirectLu`],
//! which computes the identical permutation from the identical shared
//! pattern. Custom backends that cannot honour bit-determinism must say so
//! in their documentation: WavePipe's accuracy-equivalence tests pin the
//! default paths bitwise.

use std::fmt;
use std::sync::Arc;
use wavepipe_sparse::{CscMatrix, LuOptions, Permutation, Result, SparseError, SparseLu};

/// A linear-solver backend for the Newton loop: numeric factorization and
/// triangular solves over a fixed sparsity pattern.
///
/// The Newton cache drives a backend through a strict protocol:
///
/// 1. [`factor`](SolverBackend::factor) — full factorization with a fresh
///    pivot search;
/// 2. [`refactor`](SolverBackend::refactor) — numeric re-factorization
///    replaying the frozen pivot order of the last `factor`, failing with
///    [`SparseError::PivotDegraded`] when that order went numerically bad
///    (the caller then falls back to `factor`);
/// 3. [`solve`](SolverBackend::solve) — triangular solves against the most
///    recent successful factorization.
///
/// See the [module docs](self) for the determinism contract.
pub trait SolverBackend: fmt::Debug + Send {
    /// Full numeric factorization of `a` with a fresh pivot search.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures ([`SparseError::Singular`],
    /// non-finite entries, shape mismatches). After an error the backend is
    /// unfactored.
    fn factor(&mut self, a: &CscMatrix) -> Result<()>;

    /// Numeric refactorization of `a` replaying the frozen pivot order.
    ///
    /// # Errors
    ///
    /// [`SparseError::PivotDegraded`] when the frozen order lost stability —
    /// the caller should retry via [`SolverBackend::factor`]. Any other
    /// error is terminal for this matrix.
    fn refactor(&mut self, a: &CscMatrix) -> Result<()>;

    /// Solves `A x = b` against the current factors using `scratch` as
    /// intermediate storage.
    ///
    /// # Errors
    ///
    /// [`SparseError::DimensionMismatch`] when no factorization is present
    /// or the vector lengths disagree with it.
    fn solve(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) -> Result<()>;

    /// Whether a usable factorization is currently held.
    fn factored(&self) -> bool;

    /// Drops the current factorization (forces a fresh pivot search next).
    fn invalidate(&mut self);

    /// Clones the backend, factors and all (backends are per-solver state;
    /// WavePipe lanes clone their point solvers).
    fn clone_box(&self) -> Box<dyn SolverBackend>;

    /// Cumulative Krylov statistics, for backends with an iterative path.
    ///
    /// Direct backends return `None` (the default); the Newton cache uses
    /// the before/after delta of this snapshot to charge iteration counts,
    /// preconditioner refreshes, and direct-solve fallbacks to
    /// [`crate::SimStats`] and telemetry.
    fn krylov_stats(&self) -> Option<crate::krylov::KrylovStats> {
        None
    }

    /// Takes the current [`SparseLu`] factors out of the backend, leaving it
    /// unfactored — the hand-off that seeds a lane of the packed batch tier
    /// (see [`crate::lane`]) from a scalar solve. Backends without extractable
    /// direct factors return `None` (the default); such backends simply make
    /// their instances ineligible for lane packing.
    fn take_lu(&mut self) -> Option<SparseLu> {
        None
    }
}

/// The solve-layer error for operating on an unfactored backend.
fn unfactored(n: usize) -> SparseError {
    SparseError::DimensionMismatch { expected: n, found: 0 }
}

/// The default backend: one [`SparseLu`] per solver, exactly as the Newton
/// loop historically used it. Bit-identical to the pre-trait direct calls —
/// `factor` runs the default fill-reducing ordering and threshold pivoting,
/// `refactor` replays frozen pivots KLU-style.
#[derive(Debug, Default, Clone)]
pub struct DirectLu {
    lu: Option<SparseLu>,
    opts: LuOptions,
}

impl DirectLu {
    /// A fresh, unfactored backend with default [`LuOptions`].
    pub fn new() -> Self {
        DirectLu::default()
    }

    /// A fresh backend with explicit LU options.
    pub fn with_options(opts: LuOptions) -> Self {
        DirectLu { lu: None, opts }
    }

    /// The current factorization, if one is held.
    ///
    /// [`crate::krylov::GmresBackend`] uses this to reuse frozen
    /// chord-Newton LU factors as a Krylov preconditioner (a complete —
    /// possibly stale — factorization satisfies
    /// [`wavepipe_sparse::Preconditioner`]).
    pub fn factors(&self) -> Option<&SparseLu> {
        self.lu.as_ref()
    }
}

impl SolverBackend for DirectLu {
    fn factor(&mut self, a: &CscMatrix) -> Result<()> {
        self.lu = None;
        self.lu = Some(SparseLu::factor(a, &self.opts)?);
        Ok(())
    }

    fn refactor(&mut self, a: &CscMatrix) -> Result<()> {
        let lu = self.lu.as_mut().ok_or_else(|| unfactored(a.ncols()))?;
        lu.refactor(a)
    }

    fn solve(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        let lu = self.lu.as_ref().ok_or_else(|| unfactored(b.len()))?;
        lu.solve_with_scratch(b, x, scratch)
    }

    fn factored(&self) -> bool {
        self.lu.is_some()
    }

    fn invalidate(&mut self) {
        self.lu = None;
    }

    fn clone_box(&self) -> Box<dyn SolverBackend> {
        Box::new(self.clone())
    }

    fn take_lu(&mut self) -> Option<SparseLu> {
        self.lu.take()
    }
}

/// The batched-sweep backend: like [`DirectLu`] but factoring through a
/// *shared, precomputed* fill-reducing ordering instead of re-deriving one
/// per fresh factorization.
///
/// Many sweep instances share one compiled MNA pattern; the symbolic
/// ordering is a pure function of that pattern, so computing it once and
/// handing an `Arc` of it to every instance's backend removes the
/// per-instance symbolic cost while staying bit-identical to [`DirectLu`]
/// (which would compute the same permutation from the same pattern — see
/// the [module docs](self)).
#[derive(Debug, Clone)]
pub struct BatchedDirectLu {
    ordering: Arc<Permutation>,
    lu: Option<SparseLu>,
    opts: LuOptions,
}

impl BatchedDirectLu {
    /// A fresh backend factoring through the shared `ordering` (as computed
    /// by [`wavepipe_sparse::ordering::order`] on the shared pattern).
    pub fn new(ordering: Arc<Permutation>) -> Self {
        BatchedDirectLu { ordering, lu: None, opts: LuOptions::default() }
    }
}

impl SolverBackend for BatchedDirectLu {
    fn factor(&mut self, a: &CscMatrix) -> Result<()> {
        self.lu = None;
        self.lu = Some(SparseLu::factor_with_ordering(a, &self.opts, (*self.ordering).clone())?);
        Ok(())
    }

    fn refactor(&mut self, a: &CscMatrix) -> Result<()> {
        let lu = self.lu.as_mut().ok_or_else(|| unfactored(a.ncols()))?;
        lu.refactor(a)
    }

    fn solve(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        let lu = self.lu.as_ref().ok_or_else(|| unfactored(b.len()))?;
        lu.solve_with_scratch(b, x, scratch)
    }

    fn factored(&self) -> bool {
        self.lu.is_some()
    }

    fn invalidate(&mut self) {
        self.lu = None;
    }

    fn clone_box(&self) -> Box<dyn SolverBackend> {
        Box::new(self.clone())
    }

    fn take_lu(&mut self) -> Option<SparseLu> {
        self.lu.take()
    }
}

/// Factory for [`SolverBackend`] instances, shareable across solver threads.
pub trait SolverFactory: fmt::Debug + Send + Sync {
    /// Creates one fresh, unfactored backend.
    fn make(&self) -> Box<dyn SolverBackend>;
}

#[derive(Debug)]
struct BatchedFactory {
    ordering: Arc<Permutation>,
}

impl SolverFactory for BatchedFactory {
    fn make(&self) -> Box<dyn SolverBackend> {
        Box::new(BatchedDirectLu::new(Arc::clone(&self.ordering)))
    }
}

#[derive(Debug)]
struct DirectFactory {
    opts: LuOptions,
}

impl SolverFactory for DirectFactory {
    fn make(&self) -> Box<dyn SolverBackend> {
        Box::new(DirectLu::with_options(self.opts.clone()))
    }
}

/// Handle selecting the linear-solver backend for an analysis, carried by
/// [`crate::SimOptions`] like the probe/metrics/fault handles.
///
/// The default handle builds [`DirectLu`] — the classic serial behaviour.
/// [`SolverHandle::batched`] builds [`BatchedDirectLu`] instances sharing
/// one precomputed ordering; [`SolverHandle::new`] accepts any custom
/// factory. Equality is identity-based (two handles are equal when they
/// share the same factory allocation), mirroring the other handles on
/// `SimOptions`.
#[derive(Clone, Default)]
pub struct SolverHandle {
    factory: Option<Arc<dyn SolverFactory>>,
}

impl SolverHandle {
    /// The default backend selection: a fresh [`DirectLu`] per solver.
    pub fn direct() -> Self {
        SolverHandle { factory: None }
    }

    /// Backends sharing one precomputed fill-reducing `ordering` (the
    /// batched-sweep path; see [`BatchedDirectLu`]).
    pub fn batched(ordering: Arc<Permutation>) -> Self {
        SolverHandle { factory: Some(Arc::new(BatchedFactory { ordering })) }
    }

    /// [`DirectLu`] backends with explicit [`LuOptions`] — the hook behind
    /// the `WAVEPIPE_ORDERING` knob (direct solves through a non-default
    /// fill-reducing ordering).
    pub fn direct_with_options(opts: LuOptions) -> Self {
        SolverHandle { factory: Some(Arc::new(DirectFactory { opts })) }
    }

    /// A handle around a custom factory.
    pub fn new(factory: Arc<dyn SolverFactory>) -> Self {
        SolverHandle { factory: Some(factory) }
    }

    /// Builds one fresh backend according to this handle's selection.
    pub fn make(&self) -> Box<dyn SolverBackend> {
        match &self.factory {
            None => Box::new(DirectLu::new()),
            Some(f) => f.make(),
        }
    }

    /// Whether this is the default (direct) selection.
    pub fn is_direct(&self) -> bool {
        self.factory.is_none()
    }
}

impl fmt::Debug for SolverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.factory {
            None => f.write_str("SolverHandle(direct)"),
            Some(inner) => write!(f, "SolverHandle({inner:?})"),
        }
    }
}

impl PartialEq for SolverHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.factory, &other.factory) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_sparse::ordering::order;
    use wavepipe_sparse::CooMatrix;

    fn small_matrix(scale: f64) -> CscMatrix {
        // A 4x4 asymmetric pattern with enough structure for the orderings
        // to do something non-trivial.
        let mut t = CooMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 4.0 * scale).unwrap();
        }
        t.push(0, 1, -scale).unwrap();
        t.push(1, 0, -2.0 * scale).unwrap();
        t.push(1, 2, -scale).unwrap();
        t.push(2, 3, -1.5 * scale).unwrap();
        t.push(3, 0, -0.5 * scale).unwrap();
        t.to_csc()
    }

    fn solve_through(backend: &mut dyn SolverBackend, a: &CscMatrix, b: &[f64]) -> Vec<f64> {
        backend.factor(a).unwrap();
        let mut x = vec![0.0; b.len()];
        let mut scratch = vec![0.0; b.len()];
        backend.solve(b, &mut x, &mut scratch).unwrap();
        x
    }

    #[test]
    fn direct_lu_matches_raw_sparse_lu_bitwise() {
        let a = small_matrix(1.0);
        let b = [1.0, -2.0, 0.5, 3.0];
        let raw = SparseLu::factor(&a, &LuOptions::default()).unwrap().solve(&b).unwrap();
        let mut backend = DirectLu::new();
        let x = solve_through(&mut backend, &a, &b);
        assert_eq!(x, raw, "DirectLu must be bit-identical to direct SparseLu use");
    }

    #[test]
    fn batched_lu_with_shared_ordering_matches_direct_bitwise() {
        let a = small_matrix(1.0);
        let b = [1.0, -2.0, 0.5, 3.0];
        let q = Arc::new(order(&a, LuOptions::default().ordering).unwrap());
        let mut direct = DirectLu::new();
        let mut batched = BatchedDirectLu::new(q);
        // Two "instances" with different values over the same pattern.
        for scale in [1.0, 3.5] {
            let ai = small_matrix(scale);
            let xd = solve_through(&mut direct, &ai, &b);
            let xb = solve_through(&mut batched, &ai, &b);
            assert_eq!(xb, xd, "shared-ordering factorization diverged at scale {scale}");
        }
    }

    #[test]
    fn refactor_and_invalidate_protocol() {
        let a = small_matrix(1.0);
        let b = [1.0, 0.0, 0.0, 0.0];
        let mut backend = DirectLu::new();
        assert!(!backend.factored());
        let mut x = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        // Solving or refactoring before any factorization is an error, not a panic.
        assert!(backend.solve(&b, &mut x, &mut scratch).is_err());
        assert!(backend.refactor(&a).is_err());
        backend.factor(&a).unwrap();
        assert!(backend.factored());
        // Refactor against new values over the same pattern.
        let a2 = small_matrix(2.0);
        backend.refactor(&a2).unwrap();
        backend.solve(&b, &mut x, &mut scratch).unwrap();
        let direct = SparseLu::factor(&a2, &LuOptions::default()).unwrap().solve(&b).unwrap();
        // Frozen-pivot refactor of a uniformly scaled matrix keeps the same
        // pivot sequence, so even this path is bitwise reproducible.
        assert_eq!(x, direct);
        backend.invalidate();
        assert!(!backend.factored());
    }

    #[test]
    fn handle_equality_is_identity_based() {
        assert_eq!(SolverHandle::direct(), SolverHandle::direct());
        assert_eq!(SolverHandle::default(), SolverHandle::direct());
        let a = small_matrix(1.0);
        let q = Arc::new(order(&a, LuOptions::default().ordering).unwrap());
        let h = SolverHandle::batched(Arc::clone(&q));
        assert_eq!(h, h.clone());
        assert_ne!(h, SolverHandle::batched(q));
        assert_ne!(h, SolverHandle::direct());
        assert!(SolverHandle::direct().is_direct());
        assert!(!h.is_direct());
    }

    #[test]
    fn clone_box_preserves_factors() {
        let a = small_matrix(1.0);
        let b = [0.5, 1.5, -1.0, 2.0];
        let mut backend = DirectLu::new();
        backend.factor(&a).unwrap();
        let cloned = backend.clone_box();
        let mut x1 = vec![0.0; 4];
        let mut x2 = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        backend.solve(&b, &mut x1, &mut scratch).unwrap();
        cloned.solve(&b, &mut x2, &mut scratch).unwrap();
        assert_eq!(x1, x2);
    }
}
