//! Fill-reduction quality checks: the orderings must actually earn their
//! keep on the matrix shapes the simulator produces.

use wavepipe_sparse::{CooMatrix, CscMatrix, LuOptions, OrderingKind, SparseLu};

fn grid_laplacian(nx: usize, ny: usize) -> CscMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut t = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            t.push(idx(i, j), idx(i, j), 4.0).unwrap();
            if i + 1 < nx {
                t.push(idx(i, j), idx(i + 1, j), -1.0).unwrap();
                t.push(idx(i + 1, j), idx(i, j), -1.0).unwrap();
            }
            if j + 1 < ny {
                t.push(idx(i, j), idx(i, j + 1), -1.0).unwrap();
                t.push(idx(i, j + 1), idx(i, j), -1.0).unwrap();
            }
        }
    }
    t.to_csc()
}

/// An "arrow" matrix: dense last row/column — the worst case for natural
/// ordering (eliminating the hub first fills everything).
fn arrow(n: usize) -> CscMatrix {
    let mut t = CooMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 4.0).unwrap();
    }
    for i in 0..n - 1 {
        t.push(i, n - 1, 1.0).unwrap();
        t.push(n - 1, i, 1.0).unwrap();
    }
    t.to_csc()
}

fn fill_of(a: &CscMatrix, kind: OrderingKind) -> usize {
    let opts = LuOptions { ordering: kind, ..LuOptions::default() };
    let lu = SparseLu::factor(a, &opts).expect("factor");
    lu.nnz_l() + lu.nnz_u()
}

#[test]
fn min_degree_keeps_arrow_matrices_sparse() {
    // Reversed arrow: hub first in natural order would fill O(n^2); the
    // min-degree ordering must keep fill linear.
    let n = 60;
    let mut t = CooMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 4.0).unwrap();
    }
    // Hub at index 0.
    for i in 1..n {
        t.push(i, 0, 1.0).unwrap();
        t.push(0, i, 1.0).unwrap();
    }
    let a = t.to_csc();
    let natural = fill_of(&a, OrderingKind::Natural);
    let mindeg = fill_of(&a, OrderingKind::MinDegree);
    assert!(
        mindeg * 3 < natural,
        "min-degree fill {mindeg} must crush natural {natural} on a hub-first arrow"
    );
    // Linear bound: ~3 nnz per column.
    assert!(mindeg < 4 * n, "fill {mindeg} not linear in n");
}

#[test]
fn orderings_do_not_blow_up_on_grids() {
    let a = grid_laplacian(12, 12);
    let natural = fill_of(&a, OrderingKind::Natural);
    let mindeg = fill_of(&a, OrderingKind::MinDegree);
    let rcm = fill_of(&a, OrderingKind::ReverseCuthillMcKee);
    // Min-degree should be no worse than ~natural on a banded grid and
    // usually better.
    assert!(mindeg <= natural * 11 / 10, "mindeg {mindeg} vs natural {natural}");
    assert!(rcm <= natural * 3 / 2, "rcm {rcm} vs natural {natural}");
}

#[test]
fn tail_arrow_is_fine_for_everyone() {
    let a = arrow(50);
    for kind in [OrderingKind::Natural, OrderingKind::MinDegree, OrderingKind::ReverseCuthillMcKee]
    {
        let fill = fill_of(&a, kind);
        assert!(fill < 260, "{kind:?}: fill {fill}");
        // And the factorization still solves correctly.
        let opts = LuOptions { ordering: kind, ..LuOptions::default() };
        let lu = SparseLu::factor(&a, &opts).unwrap();
        let xt: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + i as f64 * 0.1).collect();
        let b = a.matvec(&xt).unwrap();
        let x = lu.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&xt) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}

/// A band whose width alternates between wide and narrow runs — cascaded
/// circuit sections with locally denser coupling. Min-degree's greedy
/// choice eliminates the narrow-run vertices first, splitting the band and
/// paying fill at the seams; RCM keeps the elimination front contiguous.
fn lumpy_band(n: usize) -> CscMatrix {
    let mut t = CooMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 10.0).unwrap();
        let w = if (i / 8) % 2 == 0 { 4 } else { 1 };
        for d in 1..=w {
            if i + d < n {
                let v = if d == 1 { -1.0 } else { -0.3 };
                t.push(i, i + d, v).unwrap();
                t.push(i + d, i, v).unwrap();
            }
        }
    }
    t.to_csc()
}

#[test]
fn rcm_beats_min_degree_on_alternating_band_structures() {
    // The band-structure advantage the ordering bake-off banks on: on
    // matrices that *are* bands (ladder/line cascades), the band-preserving
    // ordering must win the fill count outright, not just tie. Fill counts
    // are deterministic, so the pinned inequalities cannot flake.
    for (n, a) in [(64, lumpy_band(64)), (96, lumpy_band(96))] {
        let mindeg = fill_of(&a, OrderingKind::MinDegree);
        let rcm = fill_of(&a, OrderingKind::ReverseCuthillMcKee);
        assert!(
            rcm < mindeg,
            "lumpy_band({n}): RCM fill {rcm} must beat min-degree {mindeg} on a band structure"
        );
    }
    // Recorded fill counts, pinned exactly: a change to either ordering's
    // tie-breaking shows up here first, with the numbers in the assert.
    let a = lumpy_band(64);
    let (mindeg, rcm) =
        (fill_of(&a, OrderingKind::MinDegree), fill_of(&a, OrderingKind::ReverseCuthillMcKee));
    assert_eq!((mindeg, rcm), (418, 414), "lumpy_band(64) fill counts moved");
}

#[test]
fn refactor_preserves_ordering_benefits() {
    // The recorded pattern of a min-degree factorization must keep its size
    // across refactorizations (no hidden re-symbolic work or growth).
    let a = grid_laplacian(8, 8);
    let opts = LuOptions { ordering: OrderingKind::MinDegree, ..LuOptions::default() };
    let mut lu = SparseLu::factor(&a, &opts).unwrap();
    let fill_before = lu.nnz_l() + lu.nnz_u();
    for _ in 0..5 {
        lu.refactor(&a).unwrap();
    }
    assert_eq!(lu.nnz_l() + lu.nnz_u(), fill_before);
}
