//! Transient convergence recovery ladder.
//!
//! When Newton fails at a time point and the controller has already shrunk
//! the step to the floor, the classic engine gives up with
//! [`EngineError::TimestepTooSmall`]. This module mirrors the DC
//! continuation ladder ([`crate::dcop`]) at transient time: before the error
//! escapes, the failing point is retried through a sequence of increasingly
//! aggressive rungs —
//!
//! 1. **Cache-poisoning rollback**: every solver cache (bypass masks, chord
//!    LU key, companion matrix) is invalidated and the point is re-solved at
//!    the step floor with the caches *disabled*, so a stale cached stamp
//!    cannot have been the reason Newton diverged.
//! 2. **Deep step cuts**: the step is cut in quarters below the LTE floor
//!    for a bounded budget ([`crate::SimOptions::recovery_deep_cuts`]) — a
//!    few points of order-1 crawl through a violent corner costs far less
//!    than losing the run.
//! 3. **Local gmin ramp**: the failing point is solved under a large node
//!    shunt conductance which is then relaxed decade by decade (the same
//!    machinery as DC gmin stepping, warm-started stage to stage), finishing
//!    with a polish solve of the true system (`gshunt = 0`).
//! 4. Only then does a typed [`EngineError::NoConvergence`] escape, enriched
//!    with the worst-residual node, the per-attempt iteration history, and
//!    the rungs tried.
//!
//! **Determinism.** The ladder only engages where the classic loop would
//! have *errored*, so a run that never fails is bit-identical with recovery
//! on or off (the zero-overhead invariant, pinned by proptests). Rescue
//! solves are exempt from deterministic fault injection and do not advance
//! the per-solver solve counter, so a fault plan addresses exactly the same
//! (lane, solve) coordinates whether or not a ladder ran in between — and a
//! forced-non-convergence fault cannot chase its own rescue.

use crate::error::{ConvergenceReport, EngineError, RecoveryRung, Result};
use crate::fault::FaultHandle;
use crate::integrate::IntegCoeffs;
use crate::mna::{MnaSystem, MnaWorkspace, StampInput};
use crate::newton::{newton_solve, NewtonOutcome};
use crate::options::SimOptions;
use crate::stats::SimStats;
use crate::transient::{state_coeffs, HistoryWindow, PointSolution, PointSolver};
use wavepipe_telemetry::{Counter, EventKind};

/// Initial shunt conductance of the local gmin ramp (matches the DC ladder).
const RAMP_GSHUNT0: f64 = 1e-2;

/// Options used for every rescue solve: solver caches pinned off (the stamp
/// re-evaluates every device and reassembles the full matrix), and fault
/// injection detached so a rescue cannot be re-faulted.
fn rescue_options(opts: &SimOptions) -> SimOptions {
    SimOptions {
        bypass: false,
        chord_newton: false,
        companion_cache: false,
        faults: FaultHandle::none(),
        ..opts.clone()
    }
}

/// Worst-residual forensics for a failed Newton solve: evaluates
/// `rhs - A x` against the workspace's last stamped system and names the
/// unknown where it is largest (node name, or `i(<element>)` for branch
/// currents). Non-finite residual entries rank above everything finite.
pub(crate) fn residual_report(sys: &MnaSystem, ws: &MnaWorkspace, x: &[f64]) -> ConvergenceReport {
    let mut report = ConvergenceReport::default();
    let n = ws.rhs.len();
    if x.len() != n || n == 0 {
        return report;
    }
    let mut resid = vec![0.0; n];
    if ws.matrix.residual_into(x, &ws.rhs, &mut resid).is_err() {
        return report;
    }
    let mag = |v: f64| if v.is_nan() { f64::INFINITY } else { v.abs() };
    let mut worst = 0usize;
    for (i, &r) in resid.iter().enumerate() {
        if mag(r) > mag(resid[worst]) {
            worst = i;
        }
    }
    let name = if worst < sys.n_nodes() {
        sys.node_name_of(worst).to_string()
    } else {
        sys.branch_names()
            .iter()
            .find(|(_, idx)| *idx == worst)
            .map_or_else(|| format!("unknown#{worst}"), |(n, _)| format!("i({n})"))
    };
    report.worst_node = Some(name);
    report.residual = Some(mag(resid[worst]));
    report
}

impl PointSolver {
    /// Runs the recovery ladder at the point after `hw.t()` that the step
    /// controller just gave up on (`h_failed` was the failing stride, `hmin`
    /// the controller's floor, `failed_iters` the iterations the final
    /// regular attempt burned).
    ///
    /// On success returns a fully converged [`PointSolution`] of the *true*
    /// system (never a shunted intermediate) at `hw.t() + h` for some
    /// `h <= hmin`; the caller commits it through the normal accept
    /// machinery and restarts integration. Emits
    /// [`EventKind::RecoveryAttempt`], one [`EventKind::RecoveryRung`] per
    /// rung, and [`EventKind::CachePoisonRollback`] for the rollback.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NoConvergence`] — every rung failed; the report
    ///   carries the worst-residual node, iteration history, and rungs
    ///   tried.
    /// * [`EngineError::Cancelled`] / [`EngineError::DeadlineExceeded`] —
    ///   budget expiry propagates immediately from inside any rung.
    pub fn rescue_point(
        &mut self,
        hw: &HistoryWindow,
        h_failed: f64,
        hmin: f64,
        failed_iters: usize,
        stats: &mut SimStats,
    ) -> Result<PointSolution> {
        let t0 = hw.t();
        self.opts.probe.emit(t0, EventKind::RecoveryAttempt { h: h_failed });
        self.opts.metrics.inc(Counter::RecoveryAttempts);
        let ropts = rescue_options(&self.opts);
        let mut report = ConvergenceReport::default();
        report.iterations_history.push(failed_iters);

        // --- Rung 1: cache-poisoning rollback. ---
        report.rungs_tried.push(RecoveryRung::CacheRollback);
        self.opts.probe.emit(t0, EventKind::CachePoisonRollback);
        self.opts.metrics.inc(Counter::CacheRollbacks);
        self.cache.invalidate();
        self.ws.reset_caches();
        let t_new = t0 + hmin;
        let out = self.rescue_solve(hw, t_new, 0.0, None, &ropts, stats)?;
        report.iterations_history.push(out.iterations);
        let ok = converged_finite(&out);
        self.emit_rung(t0, 1, ok);
        if ok {
            return Ok(self.rescued_solution(hw, t_new, out));
        }

        // --- Rung 2: deep step cuts below the LTE floor. ---
        report.rungs_tried.push(RecoveryRung::DeepCut);
        let mut rescued = None;
        let mut h = hmin;
        for _ in 0..self.opts.recovery_deep_cuts {
            h *= 0.25;
            let t_new = t0 + h;
            let out = self.rescue_solve(hw, t_new, 0.0, None, &ropts, stats)?;
            report.iterations_history.push(out.iterations);
            if converged_finite(&out) {
                rescued = Some((t_new, out));
                break;
            }
        }
        self.emit_rung(t0, 2, rescued.is_some());
        if let Some((t_new, out)) = rescued {
            return Ok(self.rescued_solution(hw, t_new, out));
        }

        // --- Rung 3: local gmin/gshunt ramp at the step floor. ---
        report.rungs_tried.push(RecoveryRung::GminRamp);
        let t_new = t0 + hmin;
        let mut x = hw.x().to_vec();
        let mut gshunt = RAMP_GSHUNT0;
        let mut last_failed: Option<NewtonOutcome> = None;
        while gshunt >= self.opts.gmin * 0.99 {
            let out = self.rescue_solve(hw, t_new, gshunt, Some(&x), &ropts, stats)?;
            report.iterations_history.push(out.iterations);
            if converged_finite(&out) {
                x = out.x;
            } else {
                last_failed = Some(out);
                break;
            }
            gshunt /= 10.0;
        }
        if last_failed.is_none() {
            // Final polish: the true system, warm-started from the ramp.
            let out = self.rescue_solve(hw, t_new, 0.0, Some(&x), &ropts, stats)?;
            report.iterations_history.push(out.iterations);
            let ok = converged_finite(&out);
            self.emit_rung(t0, 3, ok);
            if ok {
                return Ok(self.rescued_solution(hw, t_new, out));
            }
            last_failed = Some(out);
        } else {
            self.emit_rung(t0, 3, false);
        }

        // --- Rung 4: give up, with forensics. ---
        if let Some(out) = &last_failed {
            let detail = residual_report(&self.sys, &self.ws, &out.x);
            report.worst_node = detail.worst_node;
            report.residual = detail.residual;
        }
        Err(EngineError::NoConvergence {
            time: t0,
            iterations: failed_iters,
            report: Box::new(report),
        })
    }

    /// One rescue solve: a companion-integrated Newton solve of the point at
    /// `t_new` under shunt `gshunt`, with all caches disabled and no fault
    /// injection (the solve counter is *not* advanced — see the module docs'
    /// determinism argument).
    fn rescue_solve(
        &mut self,
        hw: &HistoryWindow,
        t_new: f64,
        gshunt: f64,
        guess: Option<&[f64]>,
        ropts: &SimOptions,
        stats: &mut SimStats,
    ) -> Result<NewtonOutcome> {
        let h = t_new - hw.t();
        self.opts.probe.emit(t_new, EventKind::SolveStart { h });
        let method = hw.effective_method(self.opts.method);
        let h_prev = hw.h_prev().unwrap_or(h);
        let coeffs = IntegCoeffs::new(method, h, h_prev);
        let xs = hw.solutions();
        let x_prev2 = if xs.len() >= 2 { &xs[1] } else { &xs[0] };
        let input = StampInput {
            time: t_new,
            coeffs: Some(coeffs),
            x_prev: &xs[0],
            x_prev2,
            cap_currents: hw.cap_currents(),
            gmin: self.opts.gmin,
            gshunt,
            source_scale: 1.0,
            ic_mode: false,
        };
        let guess = match guess {
            Some(g) => g.to_vec(),
            None => hw.predict(t_new),
        };
        let out = newton_solve(
            &self.sys,
            &mut self.ws,
            &mut self.cache,
            self.exec.as_mut(),
            &input,
            &guess,
            self.opts.max_newton_iters,
            ropts,
            stats,
        )?;
        self.opts.probe.emit(
            t_new,
            EventKind::SolveEnd { iterations: out.iterations as u32, converged: out.converged },
        );
        Ok(out)
    }

    /// Packages a converged rescue solve as a committable [`PointSolution`],
    /// computing capacitor currents against the same history the companion
    /// integration used (exactly as [`PointSolver::solve_point`] does).
    fn rescued_solution(
        &self,
        hw: &HistoryWindow,
        t_new: f64,
        out: NewtonOutcome,
    ) -> PointSolution {
        let method = hw.effective_method(self.opts.method);
        let h = t_new - hw.t();
        let h_prev = hw.h_prev().unwrap_or(h);
        let coeffs = IntegCoeffs::new(method, h, h_prev);
        let sc = state_coeffs(hw, t_new);
        let xs = hw.solutions();
        let x_prev2 = if xs.len() >= 2 { &xs[1] } else { &xs[0] };
        let cap_currents =
            self.sys.cap_currents_after(&sc, &out.x, &xs[0], x_prev2, hw.cap_currents());
        PointSolution {
            t: t_new,
            x: out.x,
            method,
            coeffs,
            converged: true,
            iterations: out.iterations,
            cap_currents,
            stats: SimStats::new(),
        }
    }

    fn emit_rung(&self, t: f64, rung: u32, success: bool) {
        self.opts.probe.emit(t, EventKind::RecoveryRung { rung, success });
        if success {
            self.opts.metrics.inc(Counter::RecoveryRescues);
        }
    }
}

fn converged_finite(out: &NewtonOutcome) -> bool {
    out.converged && wavepipe_sparse::vector::all_finite(&out.x)
}
