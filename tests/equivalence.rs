//! Cross-crate integration test: the paper's central claim.
//!
//! "Unlike existing relaxation methods, WavePipe facilitates parallel
//! circuit simulation without jeopardising convergence and accuracy."
//!
//! Every scheme, on every benchmark circuit class, must produce a waveform
//! whose deviation from the serial reference is comparable to the deviation
//! *between two valid serial integration methods* (the noise floor) — not a
//! relaxation-style error.

use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, verify, Scheme, WavePipeOptions};
use wavepipe::engine::{run_transient, Method, SimOptions};

/// Benchmarks with periodic/autonomous switching accumulate phase error
/// between any two valid integrations, so their pointwise noise floor is
/// large; the RMS metric with a floor-relative band handles all classes
/// uniformly.
fn assert_equivalent(bench: &generators::Benchmark, scheme: Scheme, threads: usize) {
    let serial = run_transient(&bench.circuit, bench.tstep, bench.tstop, &SimOptions::default())
        .unwrap_or_else(|e| panic!("{}: serial failed: {e}", bench.name));
    let gear = run_transient(
        &bench.circuit,
        bench.tstep,
        bench.tstop,
        &SimOptions::default().with_method(Method::Gear2),
    )
    .unwrap_or_else(|e| panic!("{}: gear2 failed: {e}", bench.name));
    let floor = verify::compare(&serial, &gear).rms_rel();

    let opts = WavePipeOptions::new(scheme, threads);
    let report = run_wavepipe(&bench.circuit, bench.tstep, bench.tstop, &opts)
        .unwrap_or_else(|e| panic!("{}: {scheme} failed: {e}", bench.name));
    let eq = verify::compare(&serial, &report.result);

    let band = (2.0 * floor).max(0.02);
    assert!(
        eq.rms_rel() <= band,
        "{} under {scheme} x{threads}: rms deviation {:.3e} exceeds band {:.3e} (noise floor {:.3e})",
        bench.name,
        eq.rms_rel(),
        band,
        floor
    );
}

#[test]
fn backward_is_serial_equivalent_on_all_classes() {
    for bench in generators::small_suite() {
        assert_equivalent(&bench, Scheme::Backward, 2);
    }
}

#[test]
fn forward_is_serial_equivalent_on_all_classes() {
    for bench in generators::small_suite() {
        assert_equivalent(&bench, Scheme::Forward, 2);
    }
}

#[test]
fn combined_is_serial_equivalent_on_all_classes() {
    for bench in generators::small_suite() {
        assert_equivalent(&bench, Scheme::Combined, 4);
    }
}

#[test]
fn wider_backward_stays_equivalent() {
    // 4-deep backward ladders take the most aggressive strides.
    for bench in [generators::power_grid(4, 4), generators::rc_ladder(10)] {
        assert_equivalent(&bench, Scheme::Backward, 4);
    }
}

#[test]
fn schemes_preserve_energy_decay_on_source_free_rc() {
    // A charged RC network with no sources must decay monotonically under
    // every scheme (no relaxation-style energy injection).
    use wavepipe::circuit::{Circuit, Waveform};
    let mut ckt = Circuit::new("decay");
    let a = ckt.node("a");
    let b = ckt.node("b");
    // Charge node a through a source that shuts off immediately.
    ckt.add_isource(
        "Ik",
        Circuit::GROUND,
        a,
        Waveform::pulse(0.0, 1e-3, 0.0, 1e-10, 1e-10, 2e-9, 0.0),
    )
    .unwrap();
    ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-12).unwrap();
    ckt.add_resistor("R1", a, b, 1e3).unwrap();
    ckt.add_capacitor("C2", b, Circuit::GROUND, 1e-12).unwrap();
    ckt.add_resistor("R2", b, Circuit::GROUND, 10e3).unwrap();

    for scheme in [Scheme::Serial, Scheme::Backward, Scheme::Forward, Scheme::Combined] {
        let opts = WavePipeOptions::new(scheme, 3);
        let rep = run_wavepipe(&ckt, 0.05e-9, 40e-9, &opts).unwrap();
        let a_idx = rep.result.unknown_of("a").unwrap();
        let trace = rep.result.trace(a_idx);
        // After the kick ends (t > 2.5 ns), v(a) must decay monotonically to
        // within solver tolerance.
        let mut prev = f64::INFINITY;
        for &(t, v) in &trace {
            if t < 2.5e-9 {
                continue;
            }
            assert!(
                v <= prev + 1e-5,
                "{scheme}: non-monotone decay at t={t:.3e}: {v} after {prev}"
            );
            prev = v;
        }
        // And must actually decay substantially.
        let final_v = trace.last().unwrap().1;
        let peak = rep.result.peak(a_idx);
        assert!(final_v < 0.2 * peak, "{scheme}: v={final_v} vs peak {peak}");
    }
}

#[test]
fn thread_count_does_not_change_accuracy_class() {
    let bench = generators::diode_rectifier();
    let serial =
        run_transient(&bench.circuit, bench.tstep, bench.tstop, &SimOptions::default()).unwrap();
    let mut devs = Vec::new();
    for threads in 1..=4 {
        let opts = WavePipeOptions::new(Scheme::Backward, threads);
        let rep = run_wavepipe(&bench.circuit, bench.tstep, bench.tstop, &opts).unwrap();
        devs.push(verify::compare(&serial, &rep.result).rms_rel());
    }
    for (i, d) in devs.iter().enumerate() {
        assert!(*d < 0.02, "threads={}: rms dev {d}", i + 1);
    }
}
