//! Parameterised benchmark-circuit generators.
//!
//! These span the analog and digital circuit classes of the WavePipe
//! evaluation: linear interconnect (RC ladder, RLC line), a nonlinear power
//! grid, digital CMOS (inverter chain, ring oscillator), and analog blocks
//! (diode rectifier, common-source amplifier chain). Every generator returns
//! a [`Benchmark`] carrying the circuit plus its native transient window, so
//! the experiment harness can regenerate every table row at any scale.

use crate::circuit::Circuit;
use crate::element::{BjtModel, DiodeModel, MosModel};
use crate::waveform::Waveform;

/// Coarse class of a benchmark circuit, reported in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitClass {
    /// Linear or weakly nonlinear analog network.
    Analog,
    /// CMOS switching logic.
    Digital,
    /// Both kinds of behaviour.
    Mixed,
}

impl std::fmt::Display for CircuitClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitClass::Analog => write!(f, "analog"),
            CircuitClass::Digital => write!(f, "digital"),
            CircuitClass::Mixed => write!(f, "mixed"),
        }
    }
}

/// A generated benchmark: circuit plus its native transient window.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short identifier used in tables (e.g. `rc_ladder(200)`).
    pub name: String,
    /// The circuit.
    pub circuit: Circuit,
    /// Suggested initial/reporting step.
    pub tstep: f64,
    /// Simulation stop time.
    pub tstop: f64,
    /// Circuit class for Table 1.
    pub class: CircuitClass,
    /// Names of the most interesting nodes to probe.
    pub probes: Vec<String>,
}

/// Supply voltage used by the digital benchmarks.
pub const VDD: f64 = 3.3;

/// A stronger-than-default switching MOSFET used by the digital benchmarks.
fn logic_nmos() -> MosModel {
    MosModel {
        kp: 1e-4,
        w: 20e-6,
        l: 1e-6,
        cgs: 5e-15,
        cgd: 5e-15,
        lambda: 0.02,
        ..MosModel::nmos()
    }
}

fn logic_pmos() -> MosModel {
    MosModel {
        kp: 5e-5,
        w: 40e-6,
        l: 1e-6,
        cgs: 5e-15,
        cgd: 5e-15,
        lambda: 0.02,
        ..MosModel::pmos()
    }
}

/// Panics with a clear message on builder errors — generators construct
/// well-formed circuits by design, so any failure is an internal bug.
macro_rules! ok {
    ($e:expr) => {
        $e.expect("generator produced an invalid element")
    };
}

/// RC ladder (interconnect line): `n` identical R–C sections driven by a
/// periodic pulse through the first resistor.
///
/// Purely linear; exercises the step-control path without Newton iteration
/// noise. One node per section plus the input node.
pub fn rc_ladder(n: usize) -> Benchmark {
    assert!(n >= 1, "rc_ladder needs at least one section");
    let mut ckt = Circuit::new(format!("rc ladder x{n}"));
    let inp = ckt.node("in");
    ok!(ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, 1.0, 0.0, 0.5e-9, 0.5e-9, 9e-9, 20e-9),
    ));
    let mut prev = inp;
    for i in 0..n {
        let node = ckt.node(&format!("l{i}"));
        ok!(ckt.add_resistor(&format!("R{i}"), prev, node, 100.0));
        ok!(ckt.add_capacitor(&format!("C{i}"), node, Circuit::GROUND, 1e-12));
        prev = node;
    }
    Benchmark {
        name: format!("rc_ladder({n})"),
        circuit: ckt,
        tstep: 0.1e-9,
        tstop: 60e-9,
        class: CircuitClass::Analog,
        probes: vec![format!("l{}", n - 1)],
    }
}

/// Power-distribution grid: a `rows x cols` resistive mesh with node
/// decoupling capacitance, VDD taps at the four corners, diode clamps and
/// pulsed current loads at interior nodes.
///
/// The classic "large weakly-nonlinear network" workload: thousands of
/// linear elements with localised nonlinearity.
pub fn power_grid(rows: usize, cols: usize) -> Benchmark {
    assert!(rows >= 2 && cols >= 2, "power_grid needs at least a 2x2 mesh");
    let mut ckt = Circuit::new(format!("power grid {rows}x{cols}"));
    let name = |r: usize, c: usize| format!("g{r}_{c}");
    // Mesh resistors and node capacitors.
    for r in 0..rows {
        for c in 0..cols {
            let here = ckt.node(&name(r, c));
            ok!(ckt.add_capacitor(&format!("C{r}_{c}"), here, Circuit::GROUND, 5e-13));
            if c + 1 < cols {
                let right = ckt.node(&name(r, c + 1));
                ok!(ckt.add_resistor(&format!("Rh{r}_{c}"), here, right, 1.0));
            }
            if r + 1 < rows {
                let down = ckt.node(&name(r + 1, c));
                ok!(ckt.add_resistor(&format!("Rv{r}_{c}"), here, down, 1.0));
            }
        }
    }
    // Supply taps at the corners through small series resistance.
    for (k, (r, c)) in
        [(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)].into_iter().enumerate()
    {
        let pad = ckt.node(&format!("pad{k}"));
        let corner = ckt.node(&name(r, c));
        ok!(ckt.add_vsource(&format!("Vdd{k}"), pad, Circuit::GROUND, Waveform::dc(1.8)));
        ok!(ckt.add_resistor(&format!("Rpad{k}"), pad, corner, 0.1));
    }
    // Pulsed switching loads + clamp diodes on a diagonal band of nodes.
    for (load_idx, r) in (1..rows - 1).enumerate() {
        let c = (r * (cols - 2)) / rows.max(1) + 1;
        let node = ckt.node(&name(r, c));
        let phase = (load_idx as f64) * 1.3e-9;
        ok!(ckt.add_isource(
            &format!("Iload{load_idx}"),
            node,
            Circuit::GROUND,
            Waveform::pulse(0.0, 0.02, phase, 0.2e-9, 0.2e-9, 2e-9, 8e-9),
        ));
        // Clamp: conducts only if the node droops below ground.
        ok!(ckt.add_diode(
            &format!("Dclamp{load_idx}"),
            Circuit::GROUND,
            node,
            DiodeModel { is: 1e-14, n: 1.0, cj0: 1e-13, ..DiodeModel::default() },
        ));
    }
    let probe = name(rows / 2, cols / 2);
    Benchmark {
        name: format!("power_grid({rows}x{cols})"),
        circuit: ckt,
        tstep: 0.05e-9,
        tstop: 24e-9,
        class: CircuitClass::Mixed,
        probes: vec![probe],
    }
}

/// Adds one CMOS inverter driving `out` from `in`, returns nothing; helper
/// for the digital generators.
fn add_inverter(
    ckt: &mut Circuit,
    tag: &str,
    inp: crate::element::Node,
    out: crate::element::Node,
    vdd: crate::element::Node,
) {
    ok!(ckt.add_mosfet(&format!("Mp{tag}"), out, inp, vdd, logic_pmos()));
    ok!(ckt.add_mosfet(&format!("Mn{tag}"), out, inp, Circuit::GROUND, logic_nmos()));
    ok!(ckt.add_capacitor(&format!("Cl{tag}"), out, Circuit::GROUND, 20e-15));
}

/// CMOS inverter chain of `stages` inverters driven by a pulse.
///
/// Sharp rail-to-rail switching: the canonical digital workload with strong
/// step-size variation (tiny steps at edges, large steps between).
pub fn inverter_chain(stages: usize) -> Benchmark {
    assert!(stages >= 1);
    let mut ckt = Circuit::new(format!("inverter chain x{stages}"));
    let vdd = ckt.node("vdd");
    ok!(ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(VDD)));
    let inp = ckt.node("in");
    ok!(ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, VDD, 1e-9, 0.2e-9, 0.2e-9, 6e-9, 14e-9),
    ));
    let mut prev = inp;
    for i in 0..stages {
        let out = ckt.node(&format!("s{i}"));
        add_inverter(&mut ckt, &format!("{i}"), prev, out, vdd);
        prev = out;
    }
    Benchmark {
        name: format!("inverter_chain({stages})"),
        circuit: ckt,
        tstep: 0.02e-9,
        tstop: 30e-9,
        class: CircuitClass::Digital,
        probes: vec![format!("s{}", stages - 1)],
    }
}

/// CMOS ring oscillator with an odd number of `stages`.
///
/// Autonomous (no input): a brief startup current kick pushes the ring out
/// of its metastable DC point, after which it oscillates indefinitely —
/// the hardest workload for step control because activity never stops.
pub fn ring_oscillator(stages: usize) -> Benchmark {
    assert!(stages >= 3 && stages % 2 == 1, "ring oscillator needs an odd stage count >= 3");
    let mut ckt = Circuit::new(format!("ring oscillator x{stages}"));
    let vdd = ckt.node("vdd");
    ok!(ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(VDD)));
    let nodes: Vec<_> = (0..stages).map(|i| ckt.node(&format!("r{i}"))).collect();
    for i in 0..stages {
        let inp = nodes[i];
        let out = nodes[(i + 1) % stages];
        add_inverter(&mut ckt, &format!("{i}"), inp, out, vdd);
    }
    // Startup kick: one-shot current pulse into stage 0.
    ok!(ckt.add_isource(
        "Ikick",
        nodes[0],
        Circuit::GROUND,
        Waveform::pulse(0.0, 2e-3, 0.1e-9, 0.1e-9, 0.1e-9, 0.5e-9, 0.0),
    ));
    Benchmark {
        name: format!("ring_oscillator({stages})"),
        circuit: ckt,
        tstep: 0.02e-9,
        tstop: 20e-9,
        class: CircuitClass::Digital,
        probes: vec!["r0".to_string()],
    }
}

/// Half-wave diode rectifier with RC smoothing, driven by a sine.
///
/// Strongly nonlinear analog behaviour with two sharply different regimes
/// (diode on / diode off) per input cycle.
pub fn diode_rectifier() -> Benchmark {
    let mut ckt = Circuit::new("diode rectifier");
    let ac = ckt.node("ac");
    ok!(ckt.add_vsource("Vac", ac, Circuit::GROUND, Waveform::sin(0.0, 5.0, 1e6)));
    let rect = ckt.node("rect");
    ok!(ckt.add_diode(
        "D1",
        ac,
        rect,
        DiodeModel { is: 1e-12, n: 1.5, cj0: 5e-12, ..DiodeModel::default() },
    ));
    ok!(ckt.add_capacitor("Cf", rect, Circuit::GROUND, 2e-9));
    ok!(ckt.add_resistor("Rl", rect, Circuit::GROUND, 2e3));
    Benchmark {
        name: "diode_rectifier".to_string(),
        circuit: ckt,
        tstep: 5e-9,
        tstop: 6e-6,
        class: CircuitClass::Analog,
        probes: vec!["rect".to_string()],
    }
}

/// Lumped RLC transmission line of `sections` L–C segments with matched
/// termination, driven by a fast pulse through the source impedance.
///
/// Oscillatory linear dynamics (wave propagation and reflection) that punish
/// low-order integration — the classic accuracy stress test.
pub fn rlc_line(sections: usize) -> Benchmark {
    assert!(sections >= 1);
    let mut ckt = Circuit::new(format!("rlc line x{sections}"));
    let src = ckt.node("src");
    ok!(ckt.add_vsource(
        "Vin",
        src,
        Circuit::GROUND,
        Waveform::pulse(0.0, 2.0, 0.2e-9, 0.1e-9, 0.1e-9, 3e-9, 0.0),
    ));
    // Source impedance ~ line impedance sqrt(L/C) ~= 31.6 ohm.
    let z0 = (1e-9_f64 / 1e-12).sqrt();
    let inp = ckt.node("t0");
    ok!(ckt.add_resistor("Rs", src, inp, z0));
    let mut prev = inp;
    for i in 0..sections {
        let node = ckt.node(&format!("t{}", i + 1));
        ok!(ckt.add_inductor(&format!("L{i}"), prev, node, 1e-9));
        ok!(ckt.add_capacitor(&format!("C{i}"), node, Circuit::GROUND, 1e-12));
        prev = node;
    }
    ok!(ckt.add_resistor("Rt", prev, Circuit::GROUND, z0));
    Benchmark {
        name: format!("rlc_line({sections})"),
        circuit: ckt,
        tstep: 0.02e-9,
        tstop: 12e-9,
        class: CircuitClass::Analog,
        probes: vec![format!("t{sections}")],
    }
}

/// Chain of resistively loaded common-source NMOS amplifier stages with AC
/// coupling, driven by a small sine — a smooth analog workload where the
/// step size is limited by signal curvature rather than switching events.
pub fn amp_chain(stages: usize) -> Benchmark {
    assert!(stages >= 1);
    let mut ckt = Circuit::new(format!("cs amplifier chain x{stages}"));
    let vdd = ckt.node("vdd");
    ok!(ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(VDD)));
    let sig = ckt.node("sig");
    ok!(ckt.add_vsource("Vsig", sig, Circuit::GROUND, Waveform::sin(0.0, 0.05, 20e6)));
    let mut prev_out = sig;
    for i in 0..stages {
        let gate = ckt.node(&format!("gate{i}"));
        let drain = ckt.node(&format!("out{i}"));
        // AC coupling into a resistive bias divider.
        ok!(ckt.add_capacitor(&format!("Cc{i}"), prev_out, gate, 1e-9));
        ok!(ckt.add_resistor(&format!("Rb1_{i}"), vdd, gate, 200e3));
        ok!(ckt.add_resistor(&format!("Rb2_{i}"), gate, Circuit::GROUND, 100e3));
        // Common-source stage with drain resistor and source degeneration.
        let src = ckt.node(&format!("src{i}"));
        ok!(ckt.add_mosfet(
            &format!("M{i}"),
            drain,
            gate,
            src,
            MosModel {
                kp: 2e-4,
                w: 50e-6,
                l: 1e-6,
                lambda: 0.01,
                cgs: 20e-15,
                cgd: 10e-15,
                ..MosModel::nmos()
            },
        ));
        ok!(ckt.add_resistor(&format!("Rd{i}"), vdd, drain, 5e3));
        ok!(ckt.add_resistor(&format!("Rsrc{i}"), src, Circuit::GROUND, 500.0));
        ok!(ckt.add_capacitor(&format!("Cs{i}"), src, Circuit::GROUND, 1e-10));
        prev_out = drain;
    }
    Benchmark {
        name: format!("amp_chain({stages})"),
        circuit: ckt,
        tstep: 0.2e-9,
        tstop: 300e-9,
        class: CircuitClass::Analog,
        probes: vec![format!("out{}", stages - 1)],
    }
}

/// Chain of AC-coupled common-emitter BJT amplifier stages with resistive
/// bias — the bipolar analog workload (exponential device nonlinearity with
/// smooth large-signal behaviour).
pub fn bjt_amp_chain(stages: usize) -> Benchmark {
    assert!(stages >= 1);
    let mut ckt = Circuit::new(format!("bjt ce chain x{stages}"));
    let vcc = ckt.node("vcc");
    ok!(ckt.add_vsource("Vcc", vcc, Circuit::GROUND, Waveform::dc(9.0)));
    let sig = ckt.node("sig");
    ok!(ckt.add_vsource("Vsig", sig, Circuit::GROUND, Waveform::sin(0.0, 0.01, 5e6)));
    let mut prev_out = sig;
    for i in 0..stages {
        let base = ckt.node(&format!("b{i}"));
        let coll = ckt.node(&format!("c{i}"));
        let emit = ckt.node(&format!("e{i}"));
        ok!(ckt.add_capacitor(&format!("Cc{i}"), prev_out, base, 1e-8));
        ok!(ckt.add_resistor(&format!("Rb1_{i}"), vcc, base, 47e3));
        ok!(ckt.add_resistor(&format!("Rb2_{i}"), base, Circuit::GROUND, 10e3));
        ok!(ckt.add_bjt(&format!("Q{i}"), coll, base, emit, BjtModel::default()));
        ok!(ckt.add_resistor(&format!("Rc{i}"), vcc, coll, 2.2e3));
        ok!(ckt.add_resistor(&format!("Re{i}"), emit, Circuit::GROUND, 1e3));
        ok!(ckt.add_capacitor(&format!("Ce{i}"), emit, Circuit::GROUND, 1e-7));
        ok!(ckt.add_capacitor(&format!("Cp{i}"), coll, Circuit::GROUND, 5e-12));
        prev_out = coll;
    }
    Benchmark {
        name: format!("bjt_amp_chain({stages})"),
        circuit: ckt,
        tstep: 1e-9,
        tstop: 1.2e-6,
        class: CircuitClass::Analog,
        probes: vec![format!("c{}", stages - 1)],
    }
}

/// Chain of 2-input CMOS NAND gates (second input tied high, so the chain
/// inverts) — exercises stacked series NMOS devices, where the internal
/// stack node has no DC path except through the transistors.
pub fn nand_chain(stages: usize) -> Benchmark {
    assert!(stages >= 1);
    let mut ckt = Circuit::new(format!("nand chain x{stages}"));
    let vdd = ckt.node("vdd");
    ok!(ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(VDD)));
    let inp = ckt.node("in");
    ok!(ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, VDD, 1e-9, 0.2e-9, 0.2e-9, 6e-9, 14e-9),
    ));
    let mut prev = inp;
    for i in 0..stages {
        let out = ckt.node(&format!("n{i}"));
        let stack = ckt.node(&format!("x{i}"));
        // Pull-up pair in parallel: gate A = signal, gate B = vdd (off).
        ok!(ckt.add_mosfet(&format!("MpA{i}"), out, prev, vdd, logic_pmos()));
        ok!(ckt.add_mosfet(&format!("MpB{i}"), out, vdd, vdd, logic_pmos()));
        // Pull-down stack in series: signal on top, tied-high below. The
        // bulk of the upper device stays at ground (body effect when
        // gamma > 0 in the model).
        ok!(ckt.add_mosfet4(&format!("MnA{i}"), out, prev, stack, Circuit::GROUND, logic_nmos()));
        ok!(ckt.add_mosfet(&format!("MnB{i}"), stack, vdd, Circuit::GROUND, logic_nmos()));
        ok!(ckt.add_capacitor(&format!("Cl{i}"), out, Circuit::GROUND, 20e-15));
        prev = out;
    }
    Benchmark {
        name: format!("nand_chain({stages})"),
        circuit: ckt,
        tstep: 0.02e-9,
        tstop: 30e-9,
        class: CircuitClass::Digital,
        probes: vec![format!("n{}", stages - 1)],
    }
}

/// The benchmark suite at the scale used by the paper-style tables.
pub fn table_suite() -> Vec<Benchmark> {
    vec![
        rc_ladder(200),
        power_grid(12, 12),
        inverter_chain(40),
        ring_oscillator(9),
        diode_rectifier(),
        rlc_line(60),
        amp_chain(5),
        bjt_amp_chain(4),
        nand_chain(20),
    ]
}

/// A reduced-size suite for fast tests and CI.
pub fn small_suite() -> Vec<Benchmark> {
    vec![
        rc_ladder(12),
        power_grid(4, 4),
        inverter_chain(4),
        ring_oscillator(3),
        diode_rectifier(),
        rlc_line(8),
        amp_chain(1),
        bjt_amp_chain(1),
        nand_chain(3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_small_benchmarks_validate() {
        for b in small_suite() {
            b.circuit.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", b.name));
            assert!(b.tstop > 0.0 && b.tstep > 0.0 && b.tstep < b.tstop);
            for p in &b.probes {
                assert!(b.circuit.find_node(p).is_some(), "{}: probe {p} missing", b.name);
            }
        }
    }

    #[test]
    fn all_table_benchmarks_validate() {
        for b in table_suite() {
            b.circuit.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", b.name));
        }
    }

    #[test]
    fn rc_ladder_counts() {
        let b = rc_ladder(10);
        // 10 R + 10 C + 1 V.
        assert_eq!(b.circuit.element_count(), 21);
        assert_eq!(b.circuit.node_count(), 11);
        assert_eq!(b.circuit.unknown_count(), 12);
    }

    #[test]
    fn power_grid_scales_quadratically() {
        let b = power_grid(6, 6);
        assert!(b.circuit.node_count() >= 36);
        assert!(b.circuit.nonlinear_count() >= 4, "wants clamp diodes");
    }

    #[test]
    fn inverter_chain_is_digital_and_nonlinear() {
        let b = inverter_chain(5);
        assert_eq!(b.class, CircuitClass::Digital);
        assert_eq!(b.circuit.nonlinear_count(), 10); // 2 FETs per stage
    }

    #[test]
    fn ring_oscillator_rejects_even_stages() {
        let r = std::panic::catch_unwind(|| ring_oscillator(4));
        assert!(r.is_err());
    }

    #[test]
    fn ring_oscillator_structure() {
        let b = ring_oscillator(5);
        assert_eq!(b.circuit.nonlinear_count(), 10);
        b.circuit.validate().unwrap();
    }

    #[test]
    fn rlc_line_has_branch_unknowns() {
        let b = rlc_line(10);
        // 10 inductors + 1 vsource = 11 branch unknowns.
        assert_eq!(b.circuit.unknown_count(), b.circuit.node_count() + 11);
    }

    #[test]
    fn bjt_amp_chain_structure() {
        let b = bjt_amp_chain(3);
        b.circuit.validate().unwrap();
        assert_eq!(b.circuit.nonlinear_count(), 3);
        assert!(b.circuit.unknown_count() > 9);
    }

    #[test]
    fn nand_chain_has_stack_nodes() {
        let b = nand_chain(4);
        b.circuit.validate().unwrap();
        // 4 FETs per stage.
        assert_eq!(b.circuit.nonlinear_count(), 16);
        assert!(b.circuit.find_node("x0").is_some(), "stack node exists");
    }

    #[test]
    fn class_display() {
        assert_eq!(CircuitClass::Analog.to_string(), "analog");
        assert_eq!(CircuitClass::Digital.to_string(), "digital");
        assert_eq!(CircuitClass::Mixed.to_string(), "mixed");
    }
}
