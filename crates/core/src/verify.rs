//! Serial-equivalence verification: the paper's claim is that WavePipe
//! parallelises "without jeopardising convergence and accuracy". This module
//! quantifies that: every scheme's waveform is compared against the serial
//! reference on the union of both time grids.

use wavepipe_engine::TransientResult;

/// Waveform agreement metrics between a reference and a candidate result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Equivalence {
    /// Maximum absolute deviation over all node voltages and union times.
    pub max_abs: f64,
    /// Root-mean-square deviation over the same set.
    pub rms: f64,
    /// Peak absolute node voltage of the reference (for relative bands).
    pub ref_peak: f64,
}

impl Equivalence {
    /// Maximum deviation relative to the reference peak.
    pub fn max_rel(&self) -> f64 {
        if self.ref_peak == 0.0 {
            self.max_abs
        } else {
            self.max_abs / self.ref_peak
        }
    }

    /// RMS deviation relative to the reference peak.
    pub fn rms_rel(&self) -> f64 {
        if self.ref_peak == 0.0 {
            self.rms
        } else {
            self.rms / self.ref_peak
        }
    }
}

/// Compares two transient results over all node-voltage unknowns on the
/// union of their time grids (linear interpolation between points).
///
/// # Panics
///
/// Panics if either result is empty or the unknown layouts differ.
pub fn compare(reference: &TransientResult, candidate: &TransientResult) -> Equivalence {
    assert_eq!(reference.n_unknowns(), candidate.n_unknowns(), "layouts differ");
    assert!(!reference.is_empty() && !candidate.is_empty());
    let n_nodes = reference.node_count();
    // Union grid.
    let mut grid: Vec<f64> = reference.times().iter().chain(candidate.times()).copied().collect();
    grid.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    grid.dedup();

    let mut max_abs = 0.0_f64;
    let mut sumsq = 0.0_f64;
    let mut count = 0usize;
    let mut ref_peak = 0.0_f64;
    for u in 0..n_nodes {
        for &t in &grid {
            let r = reference.sample(u, t);
            let c = candidate.sample(u, t);
            let d = (r - c).abs();
            max_abs = max_abs.max(d);
            sumsq += d * d;
            count += 1;
            ref_peak = ref_peak.max(r.abs());
        }
    }
    Equivalence { max_abs, rms: (sumsq / count.max(1) as f64).sqrt(), ref_peak }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_of(f: impl Fn(f64) -> f64, ts: &[f64]) -> TransientResult {
        let mut r = TransientResult::new(1, vec!["a".into()]);
        for &t in ts {
            r.push(t, &[f(t)]);
        }
        r
    }

    #[test]
    fn identical_results_are_equivalent() {
        let ts: Vec<f64> = (0..20).map(|k| k as f64 * 0.1).collect();
        let a = result_of(|t| t.sin(), &ts);
        let e = compare(&a, &a.clone());
        assert_eq!(e.max_abs, 0.0);
        assert_eq!(e.rms, 0.0);
    }

    #[test]
    fn different_grids_same_linear_waveform_agree() {
        let ta: Vec<f64> = (0..=10).map(|k| k as f64 * 0.1).collect();
        let tb: Vec<f64> = (0..=7).map(|k| k as f64 / 7.0).collect();
        let a = result_of(|t| 3.0 * t, &ta);
        let b = result_of(|t| 3.0 * t, &tb);
        let e = compare(&a, &b);
        assert!(e.max_abs < 1e-12);
    }

    #[test]
    fn offset_is_measured() {
        let ts: Vec<f64> = (0..=10).map(|k| k as f64 * 0.1).collect();
        let a = result_of(|t| t, &ts);
        let b = result_of(|t| t + 0.1, &ts);
        let e = compare(&a, &b);
        assert!((e.max_abs - 0.1).abs() < 1e-12);
        assert!((e.rms - 0.1).abs() < 1e-12);
        assert!((e.ref_peak - 1.0).abs() < 1e-12);
        assert!((e.max_rel() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_uses_absolute() {
        let ts: Vec<f64> = (0..=3).map(|k| k as f64).collect();
        let a = result_of(|_| 0.0, &ts);
        let b = result_of(|_| 0.5, &ts);
        let e = compare(&a, &b);
        assert_eq!(e.max_rel(), 0.5);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use wavepipe_engine::TransientResult;

    #[test]
    fn rms_is_below_max() {
        let ts: Vec<f64> = (0..=20).map(|k| k as f64 * 0.05).collect();
        let mut a = TransientResult::new(1, vec!["n".into()]);
        let mut b = TransientResult::new(1, vec!["n".into()]);
        for &t in &ts {
            a.push(t, &[t.sin()]);
            b.push(t, &[t.sin() + if t > 0.5 { 0.3 } else { 0.0 }]);
        }
        let e = compare(&a, &b);
        assert!(e.rms <= e.max_abs + 1e-15);
        assert!(e.max_abs >= 0.3 - 1e-12);
        assert!(e.rms < 0.3, "localized error must average down");
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn mismatched_layouts_panic() {
        let mut a = TransientResult::new(1, vec!["n".into()]);
        let mut b = TransientResult::new(2, vec!["n".into(), "m".into()]);
        a.push(0.0, &[0.0]);
        b.push(0.0, &[0.0, 0.0]);
        let _ = compare(&a, &b);
    }
}
