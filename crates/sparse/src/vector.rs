//! Dense vector kernels used throughout the simulator.
//!
//! All kernels operate on `&[f64]` / `&mut [f64]` so callers keep full control
//! over allocation (buffers are reused heavily in the Newton loop).

/// Returns the infinity norm `max_i |x_i|` of `x` (0.0 for an empty slice).
///
/// ```
/// assert_eq!(wavepipe_sparse::vector::norm_inf(&[1.0, -3.0, 2.0]), 3.0);
/// ```
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Returns the Euclidean norm of `x`.
///
/// ```
/// assert!((wavepipe_sparse::vector::norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
/// ```
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum::<f64>().sqrt()
}

/// Returns the 1-norm `sum_i |x_i|` of `x`.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|&v| v.abs()).sum()
}

/// Returns the dot product of `x` and `y`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Computes `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Copies `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Fills `x` with zeros.
pub fn zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Returns the index and magnitude of the entry of maximum absolute value,
/// or `None` for an empty slice.
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        match best {
            Some((_, b)) if b >= a => {}
            _ => best = Some((i, a)),
        }
    }
    best
}

/// Returns the maximum over `i` of `|x_i - y_i|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter().zip(y).fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
}

/// Returns `true` if every entry of `x` is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Weighted root-mean-square norm used by LTE control:
/// `sqrt( mean_i ( x_i / (abstol + reltol * |ref_i|) )^2 )`.
///
/// This is the classic SPICE/ODE-solver error norm: a value of 1.0 means the
/// error is exactly at tolerance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn wrms_norm(x: &[f64], reference: &[f64], reltol: f64, abstol: f64) -> f64 {
    assert_eq!(x.len(), reference.len(), "wrms_norm: length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let sum: f64 = x
        .iter()
        .zip(reference)
        .map(|(&e, &r)| {
            let w = abstol + reltol * r.abs();
            let s = e / w;
            s * s
        })
        .sum();
    (sum / x.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_empty_are_zero() {
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm1(&[]), 0.0);
    }

    #[test]
    fn norm_inf_ignores_sign() {
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn dot_and_axpy_agree_with_manual() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn argmax_abs_picks_first_of_ties() {
        assert_eq!(argmax_abs(&[-2.0, 2.0, 1.0]), Some((0, 2.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn wrms_norm_is_one_at_tolerance() {
        // error exactly abstol with zero reference => ratio 1 per entry.
        let e = [1e-9, -1e-9];
        let r = [0.0, 0.0];
        let n = wrms_norm(&e, &r, 1e-3, 1e-9);
        assert!((n - 1.0).abs() < 1e-12, "n = {n}");
    }

    #[test]
    fn wrms_norm_scales_with_reference() {
        let e = [1e-3];
        let r = [1.0];
        // weight = 1e-9 + 1e-3*1 ~= 1e-3 so ratio ~= 1.
        let n = wrms_norm(&e, &r, 1e-3, 1e-9);
        assert!((n - 1.0).abs() < 1e-5, "n = {n}");
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
