//! Prints Tables 1–4 of the WavePipe evaluation.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin tables [-- --small]`

use wavepipe_bench::{table1, table2, table3, table4, table5, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Full };
    println!("{}", table1(scale));
    let (t2, _) = table2(scale);
    println!("{t2}");
    let (t3, _) = table3(scale);
    println!("{t3}");
    let (t4, _) = table4(scale);
    println!("{t4}");
    let (t5, _) = table5(scale);
    println!("{t5}");
    println!("Speedups are modeled critical-path speedups (see DESIGN.md: this container");
    println!("has one core, so wall-clock parallel gains cannot manifest; the critical");
    println!("path is what an otherwise-idle multi-core machine realises).");
}
