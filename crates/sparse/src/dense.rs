//! Dense matrix with LU solve — the correctness oracle for the sparse path
//! and the solver of choice for very small systems.

use crate::error::{Result, SparseError};

/// A row-major dense matrix of `f64`.
///
/// Used as a test oracle for the sparse LU and as a direct solver for tiny
/// systems (a handful of unknowns) where sparse bookkeeping costs more than it
/// saves.
///
/// ```
/// use wavepipe_sparse::DenseMatrix;
///
/// # fn main() -> Result<(), wavepipe_sparse::SparseError> {
/// let mut a = DenseMatrix::zeros(2, 2);
/// a.set(0, 0, 2.0);
/// a.set(1, 1, 4.0);
/// let x = a.solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Creates the `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a row-major nested slice.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Returns entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j]
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] = v;
    }

    /// Adds `v` to entry `(i, j)` (stamping convention).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] += v;
    }

    /// Computes `y = A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch { expected: self.ncols, found: x.len() });
        }
        let mut y = vec![0.0; self.nrows];
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.nrows {
            let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
            y[i] = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        Ok(y)
    }

    /// Solves `A x = b` by LU with partial pivoting. `A` is unchanged.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] if the matrix is not square.
    /// * [`SparseError::DimensionMismatch`] if `b.len() != nrows`.
    /// * [`SparseError::Singular`] if a pivot underflows.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare { nrows: self.nrows, ncols: self.ncols });
        }
        if b.len() != self.nrows {
            return Err(SparseError::DimensionMismatch { expected: self.nrows, found: b.len() });
        }
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        // LU with partial pivoting, factoring in place.
        for k in 0..n {
            // Pivot search in column k.
            let mut piv = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(SparseError::Singular { column: k });
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                x.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let l = a[i * n + k] / pivot;
                if l == 0.0 {
                    continue;
                }
                a[i * n + k] = l;
                for j in (k + 1)..n {
                    a[i * n + j] -= l * a[k * n + j];
                }
                x[i] -= l * x[k];
            }
        }
        // Back substitution with U.
        for k in (0..n).rev() {
            let mut s = x[k];
            for j in (k + 1)..n {
                s -= a[k * n + j] * x[j];
            }
            x[k] = s / a[k * n + k];
        }
        Ok(x)
    }

    /// Returns the infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|i| {
                self.data[i * self.ncols..(i + 1) * self.ncols].iter().map(|v| v.abs()).sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = DenseMatrix::identity(3);
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solve_general_3x3() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        // Known solution: x = 2, y = 3, z = -1.
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn matvec_basic() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn stamping_add_accumulates() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.add(0, 0, 1.0);
        a.add(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 3.5);
    }

    #[test]
    fn solve_matches_matvec_round_trip() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, -1.0, 0.0, 0.5],
            &[-1.0, 4.2, -1.0, 0.0],
            &[0.0, -1.0, 3.9, -1.0],
            &[0.3, 0.0, -1.0, 4.1],
        ]);
        let xt = [1.0, -2.0, 0.5, 3.0];
        let b = a.matvec(&xt).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&xt) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }
}
