//! Circuit substrate for the WavePipe simulator.
//!
//! This crate is the pure *description* layer: netlists, device elements and
//! their model parameters, independent-source waveforms, a SPICE-style
//! netlist parser, and parameterised benchmark-circuit generators. The
//! numerical semantics (MNA stamps, companion models, Newton linearisation)
//! live in `wavepipe-engine`.
//!
//! # Example
//!
//! Build an RC low-pass filter programmatically:
//!
//! ```
//! use wavepipe_circuit::{Circuit, Waveform};
//!
//! # fn main() -> Result<(), wavepipe_circuit::CircuitError> {
//! let mut ckt = Circuit::new("rc lowpass");
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource("V1", inp, Circuit::GROUND, Waveform::sin(0.0, 1.0, 1e6))?;
//! ckt.add_resistor("R1", inp, out, 1e3)?;
//! ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-9)?;
//! ckt.validate()?;
//! # Ok(())
//! # }
//! ```
//!
//! or parse the same thing from a SPICE deck with [`parse_netlist`]:
//!
//! ```
//! # fn main() -> Result<(), wavepipe_circuit::ParseNetlistError> {
//! let deck = "rc lowpass\nV1 in 0 SIN(0 1 1meg)\nR1 in out 1k\nC1 out 0 1n\n.tran 1n 5u\n.end";
//! let parsed = wavepipe_circuit::parse_netlist(deck)?;
//! assert_eq!(parsed.circuit.node_count(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod circuit;
mod element;
pub mod generators;
mod parser;
pub mod units;
mod waveform;

pub use circuit::{Circuit, CircuitError};
pub use element::{BjtModel, DiodeModel, Element, MosModel, MosPolarity, Node};
pub use parser::{parse_netlist, ParseNetlistError, ParsedDeck, TranSpec};
pub use waveform::Waveform;
