//! Run a SPICE-style netlist through WavePipe from the command line.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example netlist_runner -- <deck.sp> [scheme] [threads]
//! ```
//!
//! where `scheme` is one of `serial`, `backward`, `forward`, `combined`,
//! `adaptive` (default `backward`) and `threads` defaults to 2. `.dc` and
//! `.ac` directives in the deck are honoured before the transient. With no arguments, a
//! built-in demonstration deck (diode clipper) is simulated. The waveform of
//! every node is written next to the deck as `<deck>.csv`.

use std::path::PathBuf;
use wavepipe::circuit::parse_netlist;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{run_ac, run_dc_sweep, spectrum};

const DEMO_DECK: &str = "\
diode clipper demo
Vin in 0 SIN(0 3 2meg)
R1 in mid 1k
D1 mid 0 DCLIP
D2 0 mid DCLIP
C1 mid 0 100p
.model DCLIP D (IS=1e-14 N=1.2 CJ0=2p)
.tran 5n 2u
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let (deck_text, out_path) = match args.get(1) {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            (text, PathBuf::from(format!("{path}.csv")))
        }
        None => {
            println!("no deck given — using the built-in diode clipper demo\n");
            (DEMO_DECK.to_string(), PathBuf::from("clipper_demo.csv"))
        }
    };
    let scheme = match args.get(2).map(String::as_str) {
        None | Some("backward") => Scheme::Backward,
        Some("serial") => Scheme::Serial,
        Some("forward") => Scheme::Forward,
        Some("combined") => Scheme::Combined,
        Some("adaptive") => Scheme::Adaptive,
        Some(other) => return Err(format!("unknown scheme `{other}`").into()),
    };
    let threads: usize = args.get(3).map_or(Ok(2), |s| s.parse())?;

    let parsed = parse_netlist(&deck_text)?;

    // Secondary analyses first, if requested by the deck.
    if let Some(dc) = &parsed.dc {
        let sweep = run_dc_sweep(&parsed.circuit, &dc.source, &dc.values(), &Default::default())?;
        println!(".dc     : swept {} over {} points", dc.source, sweep.values().len());
    }
    if let Some(ac) = &parsed.ac {
        let res = run_ac(&parsed.circuit, &ac.frequencies(), &Default::default())?;
        println!(".ac     : {} frequency points from {:.3e} to {:.3e} Hz",
            res.frequencies().len(), ac.fstart, ac.fstop);
    }

    let tran = parsed
        .tran
        .ok_or("deck has no .tran directive — add `.tran tstep tstop`")?;
    println!("circuit : {}", parsed.circuit.summary());
    println!("analysis: .tran {:.3e} {:.3e} ({scheme}, {threads} threads)", tran.tstep, tran.tstop);

    let opts = WavePipeOptions::new(scheme, threads);
    let report = run_wavepipe(&parsed.circuit, tran.tstep, tran.tstop, &opts)?;
    println!("run     : {}", report.summary());

    // Distortion report when the deck has a sine-driven node (demo decks).
    if let Some(out) = report.result.unknown_of("mid") {
        let fa = spectrum::fourier(&report.result.trace(out), 2e6, 2, 5);
        println!("fourier : v(mid) fundamental {:.3} V, THD {:.1}%",
            fa.harmonics[0].amplitude, fa.thd * 100.0);
    }

    // Dump every signal node to CSV.
    let columns: Vec<(String, usize)> = parsed
        .circuit
        .signal_node_names()
        .filter_map(|n| report.result.unknown_of(n).map(|u| (n.to_string(), u)))
        .collect();
    std::fs::write(&out_path, report.result.to_csv(&columns))?;
    println!("wrote   : {} ({} points x {} nodes)", out_path.display(), report.result.len(), columns.len());
    Ok(())
}
