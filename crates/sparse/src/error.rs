//! Error types for sparse linear algebra operations.

use std::fmt;

/// Error produced by sparse-matrix construction and factorization.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a fallthrough
/// arm so new failure modes are not semver breaks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparseError {
    /// A row or column index was outside the matrix dimensions.
    ///
    /// Carries the offending `(row, col)` pair and the matrix `(nrows, ncols)`.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// Dimensions of two operands do not agree (e.g. matvec with a wrong-length vector).
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// The matrix is structurally or numerically singular.
    ///
    /// `column` is the factorization step at which no acceptable pivot was found.
    Singular {
        /// Column (factorization step) where the failure occurred.
        column: usize,
    },
    /// A refactorization with a frozen pivot order encountered a pivot whose
    /// magnitude collapsed below the stability floor; the caller should run a
    /// fresh factorization with pivoting re-enabled.
    PivotDegraded {
        /// Column whose pivot degraded.
        column: usize,
        /// Magnitude of the degraded pivot.
        magnitude: f64,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// A non-finite (NaN or infinite) value was produced or supplied.
    NotFinite {
        /// Human-readable location of the offending value.
        context: &'static str,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => write!(
                f,
                "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SparseError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SparseError::PivotDegraded { column, magnitude } => write!(
                f,
                "pivot at column {column} degraded to magnitude {magnitude:.3e}; refactor with pivoting"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::NotFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SparseError::Singular { column: 3 };
        let msg = e.to_string();
        assert!(msg.contains("singular"));
        assert!(msg.contains('3'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }

    #[test]
    fn display_pivot_degraded() {
        let e = SparseError::PivotDegraded { column: 7, magnitude: 1e-20 };
        assert!(e.to_string().contains("degraded"));
    }

    #[test]
    fn display_out_of_bounds_mentions_both_shapes() {
        let e = SparseError::IndexOutOfBounds { row: 9, col: 1, nrows: 4, ncols: 4 };
        let msg = e.to_string();
        assert!(msg.contains("(9, 1)"));
        assert!(msg.contains("4x4"));
    }
}
