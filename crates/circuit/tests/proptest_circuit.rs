//! Property-based tests of the circuit substrate: unit parsing round trips,
//! waveform invariants, and netlist formatting consistency.

use proptest::prelude::*;
use wavepipe_circuit::units::{format_eng, parse_value};
use wavepipe_circuit::Waveform;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn format_parse_round_trip(mantissa in 0.001f64..999.0, exp in -12i32..9) {
        let v = mantissa * 10f64.powi(exp);
        let s = format_eng(v);
        let back = parse_value(&s).expect("formatted value parses");
        // format_eng keeps 4 decimals of the scaled mantissa.
        prop_assert!((back - v).abs() <= 2e-4 * v.abs(), "{v:e} -> {s} -> {back:e}");
    }

    #[test]
    fn parse_plain_floats(v in -1e9f64..1e9) {
        let s = format!("{v}");
        let p = parse_value(&s).expect("plain float parses");
        prop_assert!((p - v).abs() <= 1e-12 * v.abs().max(1.0));
    }

    #[test]
    fn pulse_value_stays_within_levels(
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
        td in 0.0f64..1e-8,
        tr in 1e-12f64..1e-9,
        tf in 1e-12f64..1e-9,
        pw in 1e-10f64..1e-8,
        per in 0.0f64..3e-8,
        t in 0.0f64..1e-7,
    ) {
        let w = Waveform::pulse(v1, v2, td, tr, tf, pw, per);
        let v = w.value(t);
        let lo = v1.min(v2) - 1e-12;
        let hi = v1.max(v2) + 1e-12;
        prop_assert!(v >= lo && v <= hi, "pulse value {v} outside [{lo}, {hi}]");
    }

    #[test]
    fn pulse_is_continuous_between_breakpoints(
        v2 in 0.1f64..5.0,
        tr in 1e-11f64..1e-9,
        pw in 1e-10f64..1e-8,
    ) {
        let w = Waveform::pulse(0.0, v2, 1e-9, tr, tr, pw, 0.0);
        let tstop = 1e-9 + 2.0 * tr + pw + 1e-9;
        let bps = w.breakpoints(tstop);
        // Sample densely; the max slope is v2/tr, so |dv| <= slope * dt + eps
        // everywhere (continuity; corners only change the slope).
        let n = 2000;
        let dt = tstop / n as f64;
        let slope = v2 / tr;
        for k in 0..n {
            let (t0, t1) = (k as f64 * dt, (k + 1) as f64 * dt);
            let dv = (w.value(t1) - w.value(t0)).abs();
            prop_assert!(dv <= slope * dt * 1.01 + 1e-9, "jump {dv} at {t0:e}");
        }
        // Breakpoints must be sorted and within range.
        for wpair in bps.windows(2) {
            prop_assert!(wpair[0] < wpair[1]);
        }
        for &b in &bps {
            prop_assert!((0.0..=tstop).contains(&b));
        }
    }

    #[test]
    fn sin_amplitude_bounded(vo in -2.0f64..2.0, va in 0.0f64..3.0, f in 1e3f64..1e9, t in 0.0f64..1e-2) {
        let w = Waveform::sin(vo, va, f);
        let v = w.value(t);
        prop_assert!(v >= vo - va - 1e-12 && v <= vo + va + 1e-12);
    }

    #[test]
    fn pwl_passes_through_its_points(
        pts in proptest::collection::vec((0.0f64..1.0, -5.0f64..5.0), 2..8)
    ) {
        let mut sorted = pts;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        sorted.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        prop_assume!(sorted.len() >= 2);
        let w = Waveform::pwl(sorted.clone());
        for &(t, v) in &sorted {
            prop_assert!((w.value(t) - v).abs() < 1e-9, "pwl({t}) = {} want {v}", w.value(t));
        }
    }

    #[test]
    fn pwl_interpolation_is_bounded_by_neighbours(
        pts in proptest::collection::vec((0.0f64..1.0, -5.0f64..5.0), 3..6),
        frac in 0.0f64..1.0,
    ) {
        let mut sorted = pts;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        sorted.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        prop_assume!(sorted.len() >= 2);
        let w = Waveform::pwl(sorted.clone());
        // Pick a point inside some segment.
        let k = ((sorted.len() - 1) as f64 * frac * 0.999) as usize;
        let (t0, v0) = sorted[k];
        let (t1, v1) = sorted[k + 1];
        let tm = 0.5 * (t0 + t1);
        let vm = w.value(tm);
        let lo = v0.min(v1) - 1e-9;
        let hi = v0.max(v1) + 1e-9;
        prop_assert!(vm >= lo && vm <= hi);
    }
}

#[test]
fn generated_netlists_parse_back() {
    // Every generator family must survive a hand-written representative deck
    // round trip through the parser (pattern equivalence, not text identity).
    let deck = "\
representative elements
V1 a 0 PULSE(0 3.3 1n 0.1n 0.1n 4n 10n)
I1 0 b SIN(0 1m 10meg)
R1 a b 1k
C1 b 0 1p
L1 b c 1n
R2 c 0 50
D1 c 0 DD
M1 d a 0 MN
R3 vdd d 10k
V2 vdd 0 3.3
Q1 e a 0 QN
R4 vdd e 5k
E1 f 0 b 0 2.0
R5 f 0 1k
G1 g 0 b 0 1m
R6 g 0 1k
R7 b g 1meg
R8 b f 1meg
.model DD D (IS=1e-14)
.model MN NMOS (VTO=0.7 KP=100u)
.model QN NPN (BF=120)
.tran 0.01n 50n
.end";
    let parsed = wavepipe_circuit::parse_netlist(deck).expect("parse");
    parsed.circuit.validate().expect("validate");
    assert_eq!(parsed.circuit.element_count(), 18);
    assert_eq!(parsed.circuit.nonlinear_count(), 3);
}
