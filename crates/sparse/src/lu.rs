//! Sparse LU factorization (Gilbert–Peierls, left-looking, threshold partial
//! pivoting) with a KLU-style fast *refactorization* path.
//!
//! The factorization is split the way circuit simulators need it:
//!
//! * [`SparseLu::factor`] — full factorization with pivot search; run once
//!   when the matrix pattern is created (and whenever a pivot degrades).
//! * [`SparseLu::refactor`] — numeric-only refactorization that replays the
//!   recorded pivot sequence and elimination pattern. This is the per-Newton-
//!   iteration hot path: no graph traversal, no pivot search.
//! * [`SparseLu::solve`] / [`SparseLu::solve_with_scratch`] — triangular
//!   solves.

use crate::csc::CscMatrix;
use crate::error::{Result, SparseError};
use crate::ordering::{order, OrderingKind, Permutation};

/// Options controlling the sparse LU factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct LuOptions {
    /// Fill-reducing column ordering (default: minimum degree).
    pub ordering: OrderingKind,
    /// Threshold partial-pivoting parameter `tau` in `(0, 1]`.
    ///
    /// The natural (diagonal) candidate is accepted when its magnitude is at
    /// least `tau` times the largest candidate in the column; otherwise the
    /// largest candidate is chosen. `tau = 1.0` is strict partial pivoting;
    /// smaller values preserve the diagonal (and hence sparsity and pattern
    /// stability across refactorizations). Default `0.1`.
    pub pivot_threshold: f64,
    /// Absolute magnitude below which a pivot is considered numerically zero.
    /// Default `1e-13`.
    pub pivot_floor: f64,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions { ordering: OrderingKind::default(), pivot_threshold: 0.1, pivot_floor: 1e-13 }
    }
}

/// A computed sparse LU factorization `P * A * Q = L * U`.
///
/// `L` is unit lower triangular (unit diagonal implicit), `U` upper
/// triangular; `P` is the row permutation found by pivoting and `Q` the
/// fill-reducing column permutation chosen up front.
///
/// ```
/// use wavepipe_sparse::{CooMatrix, LuOptions, SparseLu};
///
/// # fn main() -> Result<(), wavepipe_sparse::SparseError> {
/// let mut t = CooMatrix::new(2, 2);
/// t.push(0, 0, 4.0)?;
/// t.push(0, 1, 1.0)?;
/// t.push(1, 0, 1.0)?;
/// t.push(1, 1, 3.0)?;
/// let a = t.to_csc();
/// let lu = SparseLu::factor(&a, &LuOptions::default())?;
/// let x = lu.solve(&[1.0, 2.0])?;
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    pub(crate) n: usize,
    pub(crate) opts: LuOptions,
    /// Column permutation (fill ordering), new-to-old.
    pub(crate) q: Permutation,
    /// Pivot-position -> original-row.
    pub(crate) p: Vec<usize>,
    /// Original-row -> pivot-position.
    pub(crate) pinv: Vec<usize>,
    // L: unit lower triangular, stored by factorization column; row indices
    // are ORIGINAL row ids (mapped through pinv when solving).
    pub(crate) l_colptr: Vec<usize>,
    pub(crate) l_rows: Vec<usize>,
    pub(crate) l_vals: Vec<f64>,
    // U: strictly upper part stored by column; row indices are PIVOT
    // POSITIONS (< column index), recorded in elimination (topological)
    // order so refactorization can replay updates directly.
    pub(crate) u_colptr: Vec<usize>,
    pub(crate) u_rows: Vec<usize>,
    pub(crate) u_vals: Vec<f64>,
    /// U diagonal (the pivots) by column.
    pub(crate) u_diag: Vec<f64>,
    /// nnz of the matrix this factorization was computed from (cheap pattern
    /// compatibility check for `refactor`).
    pub(crate) a_nnz: usize,
}

const UNASSIGNED: usize = usize::MAX;

impl SparseLu {
    /// Factors the square matrix `a`, choosing the column ordering and the
    /// pivot sequence.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] if `a` is not square.
    /// * [`SparseError::Singular`] if no acceptable pivot exists at some step.
    /// * [`SparseError::NotFinite`] if `a` contains NaN/inf.
    pub fn factor(a: &CscMatrix, opts: &LuOptions) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let q = order(a, opts.ordering)?;
        Self::factor_with_ordering(a, opts, q)
    }

    /// Factors `a` using a caller-supplied column permutation.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::factor`], plus
    /// [`SparseError::DimensionMismatch`] if `q.len() != a.ncols()`.
    pub fn factor_with_ordering(a: &CscMatrix, opts: &LuOptions, q: Permutation) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        if q.len() != a.ncols() {
            return Err(SparseError::DimensionMismatch { expected: a.ncols(), found: q.len() });
        }
        let n = a.ncols();
        let mut lu = SparseLu {
            n,
            opts: opts.clone(),
            q,
            p: vec![UNASSIGNED; n],
            pinv: vec![UNASSIGNED; n],
            l_colptr: vec![0; n + 1],
            l_rows: Vec::with_capacity(a.nnz() * 2),
            l_vals: Vec::with_capacity(a.nnz() * 2),
            u_colptr: vec![0; n + 1],
            u_rows: Vec::with_capacity(a.nnz() * 2),
            u_vals: Vec::with_capacity(a.nnz() * 2),
            u_diag: vec![0.0; n],
            a_nnz: a.nnz(),
        };
        lu.factor_numeric_with_pivoting(a)?;
        Ok(lu)
    }

    /// Gilbert–Peierls left-looking factorization with pivot search.
    fn factor_numeric_with_pivoting(&mut self, a: &CscMatrix) -> Result<()> {
        let n = self.n;
        // Dense workspace indexed by ORIGINAL row id.
        let mut x = vec![0.0_f64; n];
        // Visit marks for the reachability DFS: mark[i] == k+1 means row i
        // was reached while processing column k.
        let mut mark = vec![0usize; n];
        // Topologically ordered reach set (original row ids).
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        // Explicit DFS stack of (row, next-child-position).
        let mut dfs: Vec<(usize, usize)> = Vec::new();

        for k in 0..n {
            let j = self.q.perm()[k];
            let stamp = k + 1;
            topo.clear();

            // --- Symbolic: compute Reach(pattern(A(:,j))) over L's graph. ---
            let (a_rows, a_vals) = a.col(j);
            for &r0 in a_rows {
                if mark[r0] == stamp {
                    continue;
                }
                // Iterative DFS from r0.
                dfs.push((r0, 0));
                mark[r0] = stamp;
                while let Some(&(r, child_pos)) = dfs.last() {
                    let t = self.pinv[r];
                    if t == UNASSIGNED {
                        // Not yet pivoted: leaf node.
                        dfs.pop();
                        topo.push(r);
                        continue;
                    }
                    let (ls, le) = (self.l_colptr[t], self.l_colptr[t + 1]);
                    let mut c = child_pos;
                    let mut next_child = None;
                    while c < le - ls {
                        let rr = self.l_rows[ls + c];
                        c += 1;
                        if mark[rr] != stamp {
                            next_child = Some(rr);
                            break;
                        }
                    }
                    dfs.last_mut().expect("stack verified non-empty").1 = c;
                    if let Some(rr) = next_child {
                        mark[rr] = stamp;
                        dfs.push((rr, 0));
                    } else {
                        dfs.pop();
                        topo.push(r);
                    }
                }
            }
            // topo now holds the reach set with each node after its
            // dependencies' dependents... DFS post-order gives reverse
            // topological order; reverse it so parents come first.
            topo.reverse();

            // --- Numeric: scatter A(:,j) then apply updates in topo order. ---
            for &r in topo.iter() {
                x[r] = 0.0;
            }
            for (&r, &v) in a_rows.iter().zip(a_vals) {
                if !v.is_finite() {
                    return Err(SparseError::NotFinite {
                        context: "matrix entry during factorization",
                    });
                }
                x[r] = v;
            }
            for &r in topo.iter() {
                let t = self.pinv[r];
                if t == UNASSIGNED {
                    continue;
                }
                let xr = x[r];
                for pp in self.l_colptr[t]..self.l_colptr[t + 1] {
                    x[self.l_rows[pp]] -= self.l_vals[pp] * xr;
                }
            }

            // --- Pivot search among the not-yet-pivoted reach entries. ---
            let mut max_mag = 0.0_f64;
            let mut max_row = UNASSIGNED;
            let mut diag_mag = 0.0_f64;
            let diag_row = j; // natural diagonal of the permuted matrix
            for &r in topo.iter() {
                if self.pinv[r] == UNASSIGNED {
                    let m = x[r].abs();
                    if m > max_mag {
                        max_mag = m;
                        max_row = r;
                    }
                    if r == diag_row {
                        diag_mag = m;
                    }
                }
            }
            if max_row == UNASSIGNED || max_mag < self.opts.pivot_floor {
                return Err(SparseError::Singular { column: k });
            }
            let piv_row = if diag_mag >= self.opts.pivot_threshold * max_mag && diag_mag > 0.0 {
                diag_row
            } else {
                max_row
            };
            let pivot = x[piv_row];
            self.p[k] = piv_row;
            self.pinv[piv_row] = k;
            self.u_diag[k] = pivot;

            // --- Gather U column k (pivot positions, topo order) and L column k. ---
            for &r in topo.iter() {
                let t = self.pinv[r];
                if t != UNASSIGNED && t != k {
                    self.u_rows.push(t);
                    self.u_vals.push(x[r]);
                }
            }
            self.u_colptr[k + 1] = self.u_rows.len();
            for &r in topo.iter() {
                if self.pinv[r] == UNASSIGNED {
                    self.l_rows.push(r);
                    self.l_vals.push(x[r] / pivot);
                }
            }
            self.l_colptr[k + 1] = self.l_rows.len();
        }
        Ok(())
    }

    /// Recomputes the numeric factors for a matrix with the *same pattern*
    /// as the one originally factored, reusing the recorded pivot order and
    /// elimination pattern (no pivot search, no graph traversal).
    ///
    /// This is the per-Newton-iteration fast path.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] if `a`'s shape or nnz differs
    ///   from the originally factored matrix.
    /// * [`SparseError::PivotDegraded`] if a frozen pivot's magnitude falls
    ///   below the stability floor — the caller should run a fresh
    ///   [`SparseLu::factor`].
    /// * [`SparseError::NotFinite`] if `a` contains NaN/inf.
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<()> {
        if a.nrows() != self.n || a.ncols() != self.n {
            return Err(SparseError::DimensionMismatch { expected: self.n, found: a.nrows() });
        }
        if a.nnz() != self.a_nnz {
            return Err(SparseError::DimensionMismatch { expected: self.a_nnz, found: a.nnz() });
        }
        let n = self.n;
        let mut x = vec![0.0_f64; n];
        for k in 0..n {
            let j = self.q.perm()[k];
            let (us, ue) = (self.u_colptr[k], self.u_colptr[k + 1]);
            let (ls, le) = (self.l_colptr[k], self.l_colptr[k + 1]);

            // Scatter A(:,j). All pattern positions of this column's reach
            // were zeroed after the previous column (gather loop below), so
            // the workspace is clean.
            let (a_rows, a_vals) = a.col(j);
            for (&r, &v) in a_rows.iter().zip(a_vals) {
                if !v.is_finite() {
                    return Err(SparseError::NotFinite {
                        context: "matrix entry during refactorization",
                    });
                }
                x[r] = v;
            }
            // Replay updates: U rows are stored in elimination (topological)
            // order, so applying them front-to-back is exactly the original
            // update sequence.
            for up in us..ue {
                let t = self.u_rows[up];
                let xr = x[self.p[t]];
                self.u_vals[up] = xr;
                if xr != 0.0 {
                    for pp in self.l_colptr[t]..self.l_colptr[t + 1] {
                        x[self.l_rows[pp]] -= self.l_vals[pp] * xr;
                    }
                }
            }
            let piv_row = self.p[k];
            let pivot = x[piv_row];
            // Degradation check: the frozen pivot must not be tiny either
            // absolutely or RELATIVE to its column — values restamped with
            // very different magnitudes (e.g. a companion model at a much
            // smaller time step) can make a once-good pivot numerically
            // meaningless while still above any absolute floor, which would
            // silently produce garbage solutions.
            let mut col_max = pivot.abs();
            for up in us..ue {
                col_max = col_max.max(self.u_vals[up].abs());
            }
            for lp in ls..le {
                col_max = col_max.max(x[self.l_rows[lp]].abs());
            }
            if pivot.abs() < self.opts.pivot_floor || pivot.abs() < 1e-10 * col_max {
                // Clean the workspace before bailing so the factor object
                // can be refactored again after a fresh stamp.
                for up in us..ue {
                    x[self.p[self.u_rows[up]]] = 0.0;
                }
                for lp in ls..le {
                    x[self.l_rows[lp]] = 0.0;
                }
                x[piv_row] = 0.0;
                return Err(SparseError::PivotDegraded { column: k, magnitude: pivot.abs() });
            }
            self.u_diag[k] = pivot;
            // Gather (and zero) the L part.
            for lp in ls..le {
                let r = self.l_rows[lp];
                self.l_vals[lp] = x[r] / pivot;
                x[r] = 0.0;
            }
            // Zero the U part and the pivot.
            for up in us..ue {
                x[self.p[self.u_rows[up]]] = 0.0;
            }
            x[piv_row] = 0.0;
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored off-diagonal entries in `L`.
    pub fn nnz_l(&self) -> usize {
        self.l_rows.len()
    }

    /// Number of stored entries in `U` (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.u_rows.len() + self.n
    }

    /// Fill ratio: `(nnz(L) + nnz(U)) / nnz(A)`.
    pub fn fill_ratio(&self) -> f64 {
        if self.a_nnz == 0 {
            return 0.0;
        }
        (self.nnz_l() + self.nnz_u()) as f64 / self.a_nnz as f64
    }

    /// Crude reciprocal condition estimate: `min |u_kk| / max |u_kk|`.
    ///
    /// Cheap and good enough to flag ill-conditioning in step-size control.
    pub fn rcond_estimate(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for &d in &self.u_diag {
            let m = d.abs();
            lo = lo.min(m);
            hi = hi.max(m);
        }
        if hi == 0.0 {
            0.0
        } else {
            lo / hi
        }
    }

    /// Solves `A x = b`, allocating the result and scratch space.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n];
        let mut scratch = vec![0.0; self.n];
        self.solve_with_scratch(b, &mut x, &mut scratch)?;
        Ok(x)
    }

    /// Solves `A x = b` using caller-provided buffers (no allocation) —
    /// the Newton-loop hot path. `scratch` is clobbered.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if any buffer length
    /// differs from `dim()`.
    pub fn solve_with_scratch(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        if b.len() != self.n || x.len() != self.n || scratch.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: b.len().min(x.len()).min(scratch.len()),
            });
        }
        let y = scratch;
        // Forward solve L y = P b (unit diagonal), in pivot coordinates.
        for k in 0..self.n {
            y[k] = b[self.p[k]];
        }
        for k in 0..self.n {
            let yk = y[k];
            if yk != 0.0 {
                for pp in self.l_colptr[k]..self.l_colptr[k + 1] {
                    y[self.pinv[self.l_rows[pp]]] -= self.l_vals[pp] * yk;
                }
            }
        }
        // Backward solve U w = y, in pivot coordinates (columns right-to-left).
        for k in (0..self.n).rev() {
            let wk = y[k] / self.u_diag[k];
            y[k] = wk;
            if wk != 0.0 {
                for up in self.u_colptr[k]..self.u_colptr[k + 1] {
                    y[self.u_rows[up]] -= self.u_vals[up] * wk;
                }
            }
        }
        // Undo the column permutation: x[q[k]] = w[k].
        for k in 0..self.n {
            x[self.q.perm()[k]] = y[k];
        }
        Ok(())
    }

    /// Solves the *transposed* system `A^T x = b` using the same factors
    /// (`A^T = P^T L^T U^T Q^T` up to permutation transposes) — the adjoint
    /// solve needed by sensitivity analysis and the 1-norm condition
    /// estimator.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_transpose(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch { expected: self.n, found: b.len() });
        }
        let n = self.n;
        // From P A Q = L U:  A^T = Q U^T L^T P, so
        // x = A^-T b = P^T L^-T U^-T Q^T b.
        // w = Q^T b  (w[k] = b[q[k]]).
        let mut w: Vec<f64> = (0..n).map(|k| b[self.q.perm()[k]]).collect();
        // v = U^-T w: U^T is lower triangular; U's column k holds exactly
        // the entries U(t, k) with t < k, giving a dot-product forward
        // substitution.
        for k in 0..n {
            let mut s = w[k];
            for up in self.u_colptr[k]..self.u_colptr[k + 1] {
                s -= self.u_vals[up] * w[self.u_rows[up]];
            }
            w[k] = s / self.u_diag[k];
        }
        // u = L^-T v: L^T is unit upper triangular; L's column k holds
        // L(pinv[r], k) with pinv[r] > k.
        for k in (0..n).rev() {
            let mut s = w[k];
            for lp in self.l_colptr[k]..self.l_colptr[k + 1] {
                s -= self.l_vals[lp] * w[self.pinv[self.l_rows[lp]]];
            }
            w[k] = s;
        }
        // x = P^T u: x[p[k]] = u[k].
        let mut x = vec![0.0; n];
        for k in 0..n {
            x[self.p[k]] = w[k];
        }
        Ok(x)
    }

    /// Estimates the 1-norm condition number `||A||_1 * ||A^-1||_1` using
    /// Hager's algorithm (a handful of forward and transpose solves).
    ///
    /// The estimate is a lower bound that is almost always within a small
    /// factor of the truth — accurate enough to flag dangerous conditioning.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; `a` must be the factored matrix.
    pub fn condest_1(&self, a: &CscMatrix) -> Result<f64> {
        let n = self.n;
        if n == 0 {
            return Ok(0.0);
        }
        // Hager's estimator for ||A^-1||_1.
        let mut x = vec![1.0 / n as f64; n];
        let mut est = 0.0_f64;
        for _ in 0..5 {
            let y = self.solve(&x)?;
            let y1: f64 = y.iter().map(|v| v.abs()).sum();
            if y1 <= est {
                break;
            }
            est = y1;
            let xi: Vec<f64> = y.iter().map(|v| if *v >= 0.0 { 1.0 } else { -1.0 }).collect();
            let z = self.solve_transpose(&xi)?;
            // Next vertex: the unit vector at the largest |z| component.
            let (j, zmax) = z.iter().enumerate().fold((0, 0.0_f64), |acc, (i, &v)| {
                if v.abs() > acc.1 {
                    (i, v.abs())
                } else {
                    acc
                }
            });
            // Converged when z^T x >= |z|_inf (standard Hager test).
            let ztx: f64 = z.iter().zip(&x).map(|(&a, &b)| a * b).sum();
            if zmax <= ztx {
                break;
            }
            x = vec![0.0; n];
            x[j] = 1.0;
        }
        // 1-norm of A = max column abs sum.
        let mut a_norm = 0.0_f64;
        for j in 0..a.ncols() {
            let (_, vals) = a.col(j);
            a_norm = a_norm.max(vals.iter().map(|v| v.abs()).sum());
        }
        Ok(a_norm * est)
    }

    /// Solves `A x = b` and applies one step of iterative refinement using
    /// the original matrix `a` (which must be the matrix that was factored).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SparseLu::solve_with_scratch`] and
    /// [`CscMatrix::residual_into`].
    pub fn solve_refined(&self, a: &CscMatrix, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = self.solve(b)?;
        let mut r = vec![0.0; self.n];
        a.residual_into(&x, b, &mut r)?;
        let mut dx = vec![0.0; self.n];
        let mut scratch = vec![0.0; self.n];
        self.solve_with_scratch(&r, &mut dx, &mut scratch)?;
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::DenseMatrix;

    fn laplacian_2d(nx: usize, ny: usize) -> CscMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                t.push(idx(i, j), idx(i, j), 4.0 + 0.01 * (i + j) as f64).unwrap();
                if i + 1 < nx {
                    t.push(idx(i, j), idx(i + 1, j), -1.0).unwrap();
                    t.push(idx(i + 1, j), idx(i, j), -1.0).unwrap();
                }
                if j + 1 < ny {
                    t.push(idx(i, j), idx(i, j + 1), -1.0).unwrap();
                    t.push(idx(i, j + 1), idx(i, j), -1.0).unwrap();
                }
            }
        }
        t.to_csc()
    }

    fn assert_solves(a: &CscMatrix, lu: &SparseLu, tol: f64) {
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 1.5).collect();
        let b = a.matvec(&xt).unwrap();
        let x = lu.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&xt) {
            assert!((xi - ti).abs() < tol, "|{xi} - {ti}| >= {tol}");
        }
    }

    #[test]
    fn factor_solve_identity() {
        let a = CscMatrix::identity(5);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let x = lu.solve(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn factor_solve_laplacian_all_orderings() {
        let a = laplacian_2d(6, 7);
        for kind in
            [OrderingKind::Natural, OrderingKind::MinDegree, OrderingKind::ReverseCuthillMcKee]
        {
            let opts = LuOptions { ordering: kind, ..LuOptions::default() };
            let lu = SparseLu::factor(&a, &opts).unwrap();
            assert_solves(&a, &lu, 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] has no usable natural diagonal pivot at step 0.
        let mut t = CooMatrix::new(2, 2);
        t.push(0, 1, 1.0).unwrap();
        t.push(1, 0, 1.0).unwrap();
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_reported() {
        let mut t = CooMatrix::new(2, 2);
        t.push(0, 0, 1.0).unwrap();
        t.push(1, 0, 2.0).unwrap();
        // Column 1 is structurally empty.
        let a = t.to_csc();
        assert!(matches!(
            SparseLu::factor(&a, &LuOptions::default()),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn refactor_same_values_matches_solve() {
        let a = laplacian_2d(5, 5);
        let mut lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        lu.refactor(&a).unwrap();
        assert_solves(&a, &lu, 1e-10);
    }

    #[test]
    fn refactor_new_values_matches_fresh_factor() {
        let a = laplacian_2d(5, 6);
        let mut lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        // Same pattern, different values (scale + perturb diagonal).
        let mut t = CooMatrix::new(a.nrows(), a.ncols());
        for (r, c, v) in a.iter() {
            let nv = if r == c { v * 1.5 + 0.3 } else { v * 0.8 };
            t.push(r, c, nv).unwrap();
        }
        let a2 = t.to_csc();
        assert_eq!(a2.nnz(), a.nnz());
        lu.refactor(&a2).unwrap();
        assert_solves(&a2, &lu, 1e-10);
    }

    #[test]
    fn refactor_repeatedly_is_stable() {
        let a = laplacian_2d(4, 4);
        let mut lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        for iter in 0..10 {
            let mut t = CooMatrix::new(a.nrows(), a.ncols());
            for (r, c, v) in a.iter() {
                let nv = v * (1.0 + 0.05 * iter as f64);
                t.push(r, c, nv).unwrap();
            }
            let a2 = t.to_csc();
            lu.refactor(&a2).unwrap();
            assert_solves(&a2, &lu, 1e-9);
        }
    }

    #[test]
    fn refactor_detects_degraded_pivot() {
        let mut t = CooMatrix::new(2, 2);
        t.push(0, 0, 1.0).unwrap();
        t.push(1, 1, 1.0).unwrap();
        let a = t.to_csc();
        let mut lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let mut t2 = CooMatrix::new(2, 2);
        t2.push(0, 0, 0.0).unwrap(); // collapses the frozen pivot
        t2.push(1, 1, 1.0).unwrap();
        let a2 = t2.to_csc();
        assert!(matches!(lu.refactor(&a2), Err(SparseError::PivotDegraded { column: 0, .. })));
        // Factor object must remain usable: refactor back with good values.
        lu.refactor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn matches_dense_oracle_unsymmetric() {
        // Deliberately unsymmetric pattern and values.
        let rows: Vec<&[f64]> = vec![
            &[3.0, 0.0, 1.0, 0.0, -2.0],
            &[0.0, 2.5, 0.0, 0.0, 0.0],
            &[0.5, -1.0, 4.0, 0.0, 0.0],
            &[0.0, 0.0, -0.7, 1.8, 0.0],
            &[1.0, 0.0, 0.0, -0.2, 5.0],
        ];
        let d = DenseMatrix::from_rows(&rows);
        let mut t = CooMatrix::new(5, 5);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    t.push(i, j, v).unwrap();
                }
            }
        }
        let a = t.to_csc();
        let b = [1.0, -2.0, 3.0, 0.5, 4.0];
        let xd = d.solve(&b).unwrap();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let xs = lu.solve(&b).unwrap();
        for (s, dd) in xs.iter().zip(&xd) {
            assert!((s - dd).abs() < 1e-11, "sparse {s} vs dense {dd}");
        }
    }

    #[test]
    fn solve_refined_improves_or_matches() {
        let a = laplacian_2d(6, 6);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let b = a.matvec(&xt).unwrap();
        let x = lu.solve_refined(&a, &b).unwrap();
        let mut r = vec![0.0; n];
        a.residual_into(&x, &b, &mut r).unwrap();
        assert!(crate::vector::norm_inf(&r) < 1e-11);
    }

    #[test]
    fn fill_ratio_and_rcond_reasonable() {
        let a = laplacian_2d(8, 8);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        assert!(lu.fill_ratio() >= 1.0);
        let rc = lu.rcond_estimate();
        assert!(rc > 0.0 && rc <= 1.0);
    }

    #[test]
    fn non_finite_entries_rejected() {
        let mut t = CooMatrix::new(2, 2);
        t.push(0, 0, f64::NAN).unwrap();
        t.push(1, 1, 1.0).unwrap();
        let a = t.to_csc();
        assert!(matches!(
            SparseLu::factor(&a, &LuOptions::default()),
            Err(SparseError::NotFinite { .. })
        ));
    }

    #[test]
    fn transpose_solve_matches_dense_transpose() {
        let rows: Vec<&[f64]> = vec![
            &[3.0, 0.0, 1.0, 0.0, -2.0],
            &[0.0, 2.5, 0.0, 0.0, 0.0],
            &[0.5, -1.0, 4.0, 0.0, 0.0],
            &[0.0, 0.0, -0.7, 1.8, 0.0],
            &[1.0, 0.0, 0.0, -0.2, 5.0],
        ];
        let mut t = CooMatrix::new(5, 5);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    t.push(i, j, v).unwrap();
                }
            }
        }
        let a = t.to_csc();
        let b = [1.0, -2.0, 3.0, 0.5, 4.0];
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let xt = lu.solve_transpose(&b).unwrap();
        // Check A^T xt = b via the transpose matrix.
        let r = a.transpose().matvec(&xt).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-11, "residual {ri} vs {bi}");
        }
    }

    #[test]
    fn transpose_solve_on_symmetric_equals_forward() {
        let a = laplacian_2d(4, 5);
        // Make it exactly symmetric by symmetrizing the diagonal perturbation.
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let b: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.11).cos()).collect();
        let x1 = lu.solve(&b).unwrap();
        let x2 = lu.solve_transpose(&b).unwrap();
        // laplacian_2d is symmetric, so both solves agree.
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn condest_tracks_dense_condition_number() {
        // Well conditioned: laplacian.
        let a = laplacian_2d(5, 5);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let est = lu.condest_1(&a).unwrap();
        assert!(est > 1.0 && est < 1e3, "laplacian condest {est}");
        // Badly conditioned: nearly dependent columns.
        let mut t = CooMatrix::new(3, 3);
        t.push(0, 0, 1.0).unwrap();
        t.push(1, 1, 1.0).unwrap();
        t.push(2, 2, 1e-9).unwrap();
        t.push(0, 2, 1.0).unwrap();
        let b = t.to_csc();
        let lub = SparseLu::factor(&b, &LuOptions::default()).unwrap();
        let estb = lub.condest_1(&b).unwrap();
        assert!(estb > 1e8, "ill-conditioned condest {estb}");
    }

    #[test]
    fn strict_partial_pivoting_also_works() {
        let a = laplacian_2d(5, 5);
        let opts = LuOptions { pivot_threshold: 1.0, ..LuOptions::default() };
        let lu = SparseLu::factor(&a, &opts).unwrap();
        assert_solves(&a, &lu, 1e-10);
    }
}
