//! Configuration, RNG, and case outcome types used by the `proptest!`
//! macro expansion.

/// Per-block configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case ended without succeeding.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed (test fails).
    Fail(String),
    /// A `prop_assume!` precondition did not hold (case is skipped).
    Reject(&'static str),
}

/// A deterministic SplitMix64 generator seeded from the test name, so a
/// given test samples the same inputs on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
