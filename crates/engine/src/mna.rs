//! Modified nodal analysis: circuit compilation, pattern construction, and
//! per-iteration stamping.
//!
//! A [`Circuit`] is compiled once into an [`MnaSystem`]: a flat device list,
//! the fixed sparse matrix pattern, and a *slot table* mapping every stamp
//! emission to its position in the CSC value array. Each Newton iteration
//! then restamps values with zero symbolic work. The system itself is
//! immutable and shareable across threads; each solver owns an
//! [`MnaWorkspace`] (matrix values, RHS, junction-limiting state).

use crate::devices::{
    bjt_eval, depletion_charge, diode_eval, junction_vcrit, mos_eval, pnjlim, MosParams, VT,
};
use crate::error::Result;
use crate::integrate::IntegCoeffs;
use crate::options::CacheCtl;
use wavepipe_circuit::{Circuit, Element, MosPolarity, Node, Waveform};
use wavepipe_sparse::{CooMatrix, CscMatrix};

/// Sentinel unknown index for the ground node.
const GND: usize = usize::MAX;

/// Stiff conductance used to enforce capacitor initial conditions in `UIC`
/// solves (1 MS: a forced node reaches its IC to within microvolts against
/// any realistic surrounding network).
const GIC: f64 = 1e6;

fn unknown_of(node: Node) -> usize {
    if node.is_ground() {
        GND
    } else {
        node.index() - 1
    }
}

/// A device compiled to unknown indices and pre-derived model constants.
///
/// `pub(crate)` so the small-signal (AC) assembler can reuse the compiled
/// form.
#[derive(Debug, Clone)]
pub(crate) enum Dev {
    Conductance {
        p: usize,
        n: usize,
        g: f64,
    },
    Cap {
        p: usize,
        n: usize,
        c: f64,
        state: usize,
        ic: Option<f64>,
    },
    /// Nonlinear depletion capacitance (pn-junction): `q(v)` companion.
    Jcap {
        p: usize,
        n: usize,
        cj0: f64,
        vj: f64,
        m: f64,
        fc: f64,
        state: usize,
    },
    Ind {
        p: usize,
        n: usize,
        l: f64,
        branch: usize,
        ic: Option<f64>,
    },
    Vsrc {
        p: usize,
        n: usize,
        branch: usize,
        wave: Waveform,
        ac_mag: f64,
    },
    Isrc {
        p: usize,
        n: usize,
        wave: Waveform,
        ac_mag: f64,
    },
    Diode {
        p: usize,
        n: usize,
        is: f64,
        nvt: f64,
        vcrit: f64,
        jct: usize,
    },
    Mos {
        d: usize,
        g: usize,
        s: usize,
        b: usize,
        params: MosParams,
    },
    Bjt {
        c: usize,
        b: usize,
        e: usize,
        sign: f64,
        is: f64,
        bf: f64,
        br: f64,
        jct_be: usize,
        jct_bc: usize,
    },
    Vcvs {
        p: usize,
        n: usize,
        cp: usize,
        cn: usize,
        gain: f64,
        branch: usize,
    },
    Vccs {
        p: usize,
        n: usize,
        cp: usize,
        cn: usize,
        gm: f64,
    },
}

impl Dev {
    /// Whether this device's stamp depends on the Newton iterate `x` (and so
    /// must be emitted in the nonlinear phase).
    fn is_nonlinear(&self) -> bool {
        matches!(self, Dev::Diode { .. } | Dev::Mos { .. } | Dev::Bjt { .. } | Dev::Jcap { .. })
    }

    /// Whether two compiled devices share kind, terminals, and state slots —
    /// the structural identity under which they emit the *same* matrix/RHS
    /// position sequence (emission order and count are value-independent),
    /// so a system compiled from one can stamp values derived from the
    /// other. Waveforms, model constants, and initial conditions are
    /// deliberately ignored: those are the values a sweep varies.
    fn same_shape(a: &Dev, b: &Dev) -> bool {
        match (a, b) {
            (Dev::Conductance { p, n, .. }, Dev::Conductance { p: p2, n: n2, .. }) => {
                (p, n) == (p2, n2)
            }
            (Dev::Cap { p, n, state, .. }, Dev::Cap { p: p2, n: n2, state: s2, .. }) => {
                (p, n, state) == (p2, n2, s2)
            }
            (Dev::Jcap { p, n, state, .. }, Dev::Jcap { p: p2, n: n2, state: s2, .. }) => {
                (p, n, state) == (p2, n2, s2)
            }
            (Dev::Ind { p, n, branch, .. }, Dev::Ind { p: p2, n: n2, branch: b2, .. }) => {
                (p, n, branch) == (p2, n2, b2)
            }
            (Dev::Vsrc { p, n, branch, .. }, Dev::Vsrc { p: p2, n: n2, branch: b2, .. }) => {
                (p, n, branch) == (p2, n2, b2)
            }
            (Dev::Isrc { p, n, .. }, Dev::Isrc { p: p2, n: n2, .. }) => (p, n) == (p2, n2),
            (Dev::Diode { p, n, jct, .. }, Dev::Diode { p: p2, n: n2, jct: j2, .. }) => {
                (p, n, jct) == (p2, n2, j2)
            }
            (Dev::Mos { d, g, s, b, .. }, Dev::Mos { d: d2, g: g2, s: s2, b: b2, .. }) => {
                (d, g, s, b) == (d2, g2, s2, b2)
            }
            (
                Dev::Bjt { c, b, e, jct_be, jct_bc, .. },
                Dev::Bjt { c: c2, b: b2, e: e2, jct_be: be2, jct_bc: bc2, .. },
            ) => (c, b, e, jct_be, jct_bc) == (c2, b2, e2, be2, bc2),
            (
                Dev::Vcvs { p, n, cp, cn, branch, .. },
                Dev::Vcvs { p: p2, n: n2, cp: cp2, cn: cn2, branch: b2, .. },
            ) => (p, n, cp, cn, branch) == (p2, n2, cp2, cn2, b2),
            (Dev::Vccs { p, n, cp, cn, .. }, Dev::Vccs { p: p2, n: n2, cp: cp2, cn: cn2, .. }) => {
                (p, n, cp, cn) == (p2, n2, cp2, cn2)
            }
            _ => false,
        }
    }

    /// Stable device-class label for per-class metrics families.
    pub(crate) fn class_name(&self) -> &'static str {
        match self {
            Dev::Conductance { .. } => "resistor",
            Dev::Cap { .. } => "cap",
            Dev::Jcap { .. } => "jcap",
            Dev::Ind { .. } => "ind",
            Dev::Vsrc { .. } => "vsrc",
            Dev::Isrc { .. } => "isrc",
            Dev::Diode { .. } => "diode",
            Dev::Mos { .. } => "mos",
            Dev::Bjt { .. } => "bjt",
            Dev::Vcvs { .. } => "vcvs",
            Dev::Vccs { .. } => "vccs",
        }
    }

    /// Appends the controlling terminal unknowns of a *bypassable* device
    /// (ground encoded as `u32::MAX`) and reports whether the device is
    /// bypassable at all. `Jcap` is deliberately not bypassable: its stamp
    /// also depends on the integration coefficients and the charge history,
    /// not just the iterate.
    fn push_ctrl_terminals(&self, out: &mut Vec<u32>) -> bool {
        let enc = |u: usize| if u == GND { u32::MAX } else { u as u32 };
        match *self {
            Dev::Diode { p, n, .. } => {
                out.extend([enc(p), enc(n)]);
                true
            }
            Dev::Mos { d, g, s, b, .. } => {
                out.extend([enc(d), enc(g), enc(s), enc(b)]);
                true
            }
            Dev::Bjt { c, b, e, .. } => {
                out.extend([enc(c), enc(b), enc(e)]);
                true
            }
            _ => false,
        }
    }
}

/// Inputs to a stamping pass: the time point, discretisation, history, and
/// continuation knobs.
#[derive(Debug, Clone, Copy)]
pub struct StampInput<'a> {
    /// Time of the point being solved (0 for DC).
    pub time: f64,
    /// Integration coefficients, or `None` for DC (capacitors open,
    /// inductors short).
    pub coeffs: Option<IntegCoeffs>,
    /// Solution at the previous accepted time point.
    pub x_prev: &'a [f64],
    /// Solution two accepted points back (used by Gear2).
    pub x_prev2: &'a [f64],
    /// Capacitor currents at the previous accepted point (used by TRAP).
    pub cap_currents: &'a [f64],
    /// Junction minimum conductance.
    pub gmin: f64,
    /// Extra conductance from every node to ground (gmin-stepping
    /// continuation; 0 in normal operation).
    pub gshunt: f64,
    /// Scale factor on independent sources (source-stepping continuation;
    /// 1 in normal operation).
    pub source_scale: f64,
    /// Initial-condition (`UIC`) solve: capacitors with an `IC=` are forced
    /// to their initial voltage through a stiff Norton source, capacitors
    /// without are open, and inductor branch currents are pinned to their
    /// initial values. Only meaningful together with `coeffs: None`.
    pub ic_mode: bool,
}

/// Mutable per-solver state: matrix values, right-hand side, junction
/// voltage memory for `pnjlim`, and the solver caches.
#[derive(Debug, Clone)]
pub struct MnaWorkspace {
    /// The MNA matrix (fixed pattern, values restamped each call).
    pub matrix: CscMatrix,
    /// Right-hand side vector.
    pub rhs: Vec<f64>,
    /// Last-used junction voltages (NPN/diode-equivalent frame).
    pub junction_state: Vec<f64>,
    /// Whether the last stamp had to limit any junction voltage. While
    /// limiting is active the linearisation point differs from the iterate,
    /// so Newton must NOT declare convergence — otherwise bias circuits
    /// falsely converge with dead junctions (tiny currents below the delta
    /// tolerance while the limiter is still climbing).
    pub limited: bool,
    /// Device-bypass and companion caches (see [`StampCaches`]).
    pub(crate) caches: StampCaches,
}

impl MnaWorkspace {
    /// Invalidates every solver cache in this workspace: per-device bypass
    /// state, the current bypass mask, and the companion (linear-matrix)
    /// cache. The cache-poisoning rollback rung of the recovery ladder calls
    /// this so the retry solve cannot replay any possibly-corrupt cached
    /// stamp.
    pub(crate) fn reset_caches(&mut self) {
        self.caches.valid.fill(false);
        self.caches.mask.fill(false);
        self.caches.lin_key = None;
    }
}

/// Key identifying which assembled *linear* matrix (node shunts, resistors,
/// sources, reactive companion conductances) a cached copy corresponds to.
/// Everything else a linear stamp's matrix entries depend on is compile-time
/// constant; the RHS (time, history, `source_scale`) is always re-emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LinKey {
    /// DC stamp (capacitors open, inductors short).
    dc: bool,
    /// Bit pattern of the leading integration coefficient `a0` (the only
    /// coefficient that reaches matrix entries: `geq = c*a0`, `leq = l*a0`).
    a0: u64,
    /// Bit pattern of the continuation node shunt.
    gshunt: u64,
    /// `UIC` initial-condition stamp.
    ic: bool,
}

impl LinKey {
    /// The key the given stamp inputs select.
    pub(crate) fn of(input: &StampInput<'_>) -> Self {
        LinKey {
            dc: input.coeffs.is_none(),
            a0: input.coeffs.map_or(0, |c| c.a0.to_bits()),
            gshunt: input.gshunt.to_bits(),
            ic: input.ic_mode,
        }
    }
}

/// Per-workspace solver caches: SPICE3-style device bypass state plus the
/// step-size-keyed companion (linear-matrix) cache.
///
/// The bypass decision is a pure function of the iterate and this state, and
/// the state itself only changes on actual device evaluations — which the
/// serial and parallel stamp paths perform for exactly the same devices with
/// exactly the same inputs — so caching never breaks the parallel-vs-serial
/// bit-identity property.
#[derive(Debug, Clone)]
pub(crate) struct StampCaches {
    /// Per-device: the cached stamp may be replayed (the device was
    /// evaluated, its junction limiter did not fire, and `gmin` has not
    /// changed since).
    valid: Vec<bool>,
    /// Per-device bypass decision for the current stamp pass (recomputed
    /// from `valid` + the iterate by `compute_bypass_mask`).
    pub(crate) mask: Vec<bool>,
    /// Controlling terminal voltages at the last actual evaluation, flat in
    /// `MnaSystem::ctrl_span` order. Updated *only* on evaluation — updating
    /// on bypassed passes would silently drift the linearisation reference.
    ctrl: Vec<f64>,
    /// Cached matrix emissions of every device, dense in emission-cursor
    /// space (same length as the slot table).
    mat: Vec<f64>,
    /// Cached RHS emissions (same length as `StampPlan::rhs_targets`).
    rhs: Vec<f64>,
    /// Junction `gmin` the cached evaluations used.
    gmin: f64,
    /// Which assembled linear matrix `lin_mat` holds (`None` = invalid).
    lin_key: Option<LinKey>,
    /// Matrix values snapshot taken after the prologue + linear phase
    /// (nonlinear slots still zero), replayed on a key hit.
    lin_mat: Vec<f64>,
    /// RHS snapshot taken after the linear phase of the most recent
    /// [`MnaSystem::stamp_lane`] pass. Linear-device RHS contributions
    /// depend only on the companion key's inputs plus the previous-point
    /// solutions and capacitor currents — never on the Newton iterate — so
    /// within one Newton point the lane tier replays this snapshot on
    /// iterations after the first instead of re-walking the linear devices.
    lin_rhs: Vec<f64>,
}

/// What one stamping pass did, for work accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StampResult {
    /// Devices actually evaluated (linear + non-bypassed nonlinear).
    pub evals: usize,
    /// Nonlinear devices replayed from their bypass cache.
    pub bypassed: usize,
    /// Whether the linear matrix was replayed from the companion cache.
    pub companion_hit: bool,
}

/// A compiled circuit: fixed MNA structure ready for repeated stamping.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    devices: Vec<Dev>,
    n_nodes: usize,
    n_unknowns: usize,
    n_cap_states: usize,
    n_junctions: usize,
    pattern: CscMatrix,
    slots: Vec<usize>,
    node_names: Vec<String>,
    branch_names: Vec<(String, usize)>,
    /// Independent source name -> index into `devices`.
    source_names: Vec<(String, usize)>,
    source_waves: Vec<Waveform>,
    plan: StampPlan,
    /// Linear devices (stamp independent of the iterate), element order.
    lin_elem: Vec<u32>,
    /// Nonlinear devices, element order.
    nl_elem: Vec<u32>,
    /// Controlling terminal unknowns of bypassable devices, flat
    /// (`u32::MAX` = ground).
    ctrl_nodes: Vec<u32>,
    /// Per-device `[start, end)` into `ctrl_nodes` (empty span = device is
    /// not bypassable).
    ctrl_span: Vec<(u32, u32)>,
}

/// Compile-time plan for colored parallel stamping: per-device emission
/// spans plus a conflict coloring that fixes the accumulation order.
///
/// Two devices *conflict* iff they write a shared matrix slot or RHS entry.
/// Colors are assigned by *level*: a device's color is one more than the
/// highest color among earlier (lower-index) devices it conflicts with. This
/// is a proper coloring (conflicting devices never share a color), and it has
/// the stronger property that replaying devices in color-then-element order
/// visits every conflicting pair in element order — so each matrix slot and
/// RHS entry receives its floating-point contributions in exactly the serial
/// sequence, making parallel stamping bit-identical to serial.
#[derive(Debug, Clone, Default)]
pub(crate) struct StampPlan {
    /// Per-device `[start, end)` of matrix emissions, in emission-cursor
    /// space (indices into `MnaSystem::slots`; the node-shunt prologue
    /// occupies cursors `0..n_nodes`).
    pub mat_span: Vec<(u32, u32)>,
    /// Per-device `[start, end)` into `rhs_targets`.
    pub rhs_span: Vec<(u32, u32)>,
    /// Unknown index of every non-ground RHS emission, in emission order.
    pub rhs_targets: Vec<u32>,
    /// Per-device color (stamp group).
    pub color: Vec<u32>,
    /// Device indices sorted color-then-element: `order[group[c]..group[c+1]]`
    /// is color `c`'s group, ascending by element index within the group.
    pub order: Vec<u32>,
    /// Color group boundaries into `order` (`n_colors + 1` entries).
    pub group: Vec<u32>,
    /// `order` restricted to nonlinear devices — the subset the parallel
    /// path actually farms out (linear devices are stamped by the master's
    /// linear phase). Conflicting nonlinear pairs keep their strictly
    /// increasing colors from the full coloring, so replaying `nl_order`
    /// still visits them in element order.
    pub nl_order: Vec<u32>,
}

impl StampPlan {
    /// Number of stamp colors (conflict-free device groups).
    pub fn n_colors(&self) -> usize {
        self.group.len().saturating_sub(1)
    }
}

/// Where a stamping pass delivers its emissions. All three variants share the
/// same ground-skip rule, so the emission *sequence* (and hence the slot
/// table and the per-device spans) is identical across them.
pub(crate) enum Sink<'a> {
    /// Pattern pass: records matrix positions and RHS target unknowns.
    Record { mat: &'a mut Vec<(usize, usize)>, rhs: &'a mut Vec<u32> },
    /// Serial stamp: scatters through the slot table into the workspace.
    Write { values: &'a mut [f64], slots: &'a [usize], cursor: usize, rhs: &'a mut [f64] },
    /// Parallel evaluation: writes values densely in emission order into
    /// pre-sized buffers (the plan spans fix every count up-front, so plain
    /// cursor stores suffice — no `push` capacity checks on the hot path);
    /// the accumulator later scatters them through the slot table in the
    /// fixed color-then-element order.
    Buffer { mat: &'a mut [f64], mat_cursor: usize, rhs: &'a mut [f64], rhs_cursor: usize },
    /// Companion-cache hit: the matrix was already replayed wholesale, so
    /// matrix emissions are dropped and only the (time/history-dependent)
    /// RHS is re-emitted, exactly as `Write` would.
    RhsOnly { rhs: &'a mut [f64] },
}

/// Emission target for [`MnaSystem::emit_device`]. Every implementation
/// applies the same ground-skip rule, so the emission *sequence* (and hence
/// the slot table and the per-device spans) is identical across sinks. The
/// [`Sink`] enum serves the classic paths; the lane-packed stamp passes
/// dedicated concrete sinks instead, monomorphizing the whole device
/// evaluation so no per-emission variant dispatch survives inlining.
pub(crate) trait EmitSink {
    fn mat(&mut self, r: usize, c: usize, v: f64);
    fn rhs(&mut self, u: usize, v: f64);
}

impl EmitSink for Sink<'_> {
    #[inline]
    fn mat(&mut self, r: usize, c: usize, v: f64) {
        if r == GND || c == GND {
            return;
        }
        match self {
            Sink::Record { mat, .. } => mat.push((r, c)),
            Sink::Write { values, slots, cursor, .. } => {
                values[slots[*cursor]] += v;
                *cursor += 1;
            }
            Sink::Buffer { mat, mat_cursor, .. } => {
                mat[*mat_cursor] = v;
                *mat_cursor += 1;
            }
            Sink::RhsOnly { .. } => {}
        }
    }

    #[inline]
    fn rhs(&mut self, u: usize, v: f64) {
        if u == GND {
            return;
        }
        match self {
            Sink::Record { rhs, .. } => rhs.push(u as u32),
            Sink::Write { rhs, .. } => rhs[u] += v,
            Sink::Buffer { rhs, rhs_cursor, .. } => {
                rhs[*rhs_cursor] = v;
                *rhs_cursor += 1;
            }
            Sink::RhsOnly { rhs } => rhs[u] += v,
        }
    }
}

/// Monomorphized [`Sink::RhsOnly`]: companion-hit linear re-emission on the
/// lane path. Matrix emissions are dropped (the memcpy already restored
/// them), RHS adds land directly.
struct RhsOnlySink<'a> {
    rhs: &'a mut [f64],
}

impl EmitSink for RhsOnlySink<'_> {
    #[inline]
    fn mat(&mut self, _r: usize, _c: usize, _v: f64) {}

    #[inline]
    fn rhs(&mut self, u: usize, v: f64) {
        if u == GND {
            return;
        }
        self.rhs[u] += v;
    }
}

/// Monomorphized [`Sink::Write`]: full linear restamp on the lane path,
/// scattering through the slot table in emission-cursor order.
struct WriteSink<'a> {
    values: &'a mut [f64],
    slots: &'a [usize],
    cursor: usize,
    rhs: &'a mut [f64],
}

impl EmitSink for WriteSink<'_> {
    #[inline]
    fn mat(&mut self, r: usize, c: usize, v: f64) {
        if r == GND || c == GND {
            return;
        }
        self.values[self.slots[self.cursor]] += v;
        self.cursor += 1;
    }

    #[inline]
    fn rhs(&mut self, u: usize, v: f64) {
        if u == GND {
            return;
        }
        self.rhs[u] += v;
    }
}

/// Fresh nonlinear evaluation on the lane path: stores each emission into
/// the device's bypass-cache span (replay on a later bypass hit needs it)
/// and scatters it into the matrix/RHS in the same pass — fusing the
/// classic buffer-then-scatter into one sweep. The per-slot addition order
/// is unchanged because the classic scatter replays the cache span in
/// emission order; `slots`/`cmat` are pre-sliced to the device's span so
/// the cursor is span-relative.
struct FusedNlSink<'a> {
    cmat: &'a mut [f64],
    crhs: &'a mut [f64],
    slots: &'a [usize],
    values: &'a mut [f64],
    rhs: &'a mut [f64],
    mc: usize,
    rc: usize,
}

impl EmitSink for FusedNlSink<'_> {
    #[inline]
    fn mat(&mut self, r: usize, c: usize, v: f64) {
        if r == GND || c == GND {
            return;
        }
        self.cmat[self.mc] = v;
        self.values[self.slots[self.mc]] += v;
        self.mc += 1;
    }

    #[inline]
    fn rhs(&mut self, u: usize, v: f64) {
        if u == GND {
            return;
        }
        self.crhs[self.rc] = v;
        self.rhs[u] += v;
        self.rc += 1;
    }
}

/// How a stamping pass reads and writes the `pnjlim` junction memory.
///
/// Serial stamping updates the workspace in place. Parallel evaluation reads
/// an immutable pre-stamp snapshot and records its writes so the accumulator
/// can replay them; every junction slot is owned by exactly one device, so
/// the replay order across devices is irrelevant.
pub(crate) enum Junction<'a> {
    /// Serial stamp: the workspace's junction state, updated in place.
    InPlace(&'a mut [f64]),
    /// Parallel evaluation: snapshot reads, recorded writes.
    Buffered { snapshot: &'a [f64], writes: &'a mut Vec<(u32, f64)> },
}

impl Junction<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            Junction::InPlace(j) => j[i],
            Junction::Buffered { snapshot, .. } => snapshot[i],
        }
    }

    #[inline]
    fn set(&mut self, i: usize, v: f64) {
        match self {
            Junction::InPlace(j) => j[i] = v,
            Junction::Buffered { writes, .. } => writes.push((i as u32, v)),
        }
    }
}

#[inline]
fn volt(x: &[f64], u: usize) -> f64 {
    if u == GND {
        0.0
    } else {
        x[u]
    }
}

/// The value-bearing half of a compiled system: everything `compile` derives
/// from element parameters, separated from the frozen structural half
/// (pattern, slot table, coloring) so a parameter sweep can rebuild only
/// this part. Built by [`MnaSystem::build_devices`], the single derivation
/// path shared by [`MnaSystem::compile`] and
/// [`MnaSystem::with_values_from`] — sharing the code is what makes the
/// derived constants (`g = 1/R`, `beta`, `vt0_eq`, ...) bit-identical
/// between a fresh compile and a value-only rebuild.
struct DeviceTables {
    devices: Vec<Dev>,
    branch_names: Vec<(String, usize)>,
    source_names: Vec<(String, usize)>,
    source_waves: Vec<Waveform>,
    n_unknowns: usize,
    n_cap_states: usize,
    n_junctions: usize,
    lin_elem: Vec<u32>,
    nl_elem: Vec<u32>,
    ctrl_nodes: Vec<u32>,
    ctrl_span: Vec<(u32, u32)>,
}

impl MnaSystem {
    /// Compiles a circuit into a stamping-ready MNA system.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::Circuit`] if the netlist fails validation.
    pub fn compile(circuit: &Circuit) -> Result<Self> {
        circuit.validate()?;
        let n_nodes = circuit.node_count();
        let t = Self::build_devices(circuit);
        let node_names: Vec<String> = circuit.signal_node_names().map(str::to_string).collect();
        let mut sys = MnaSystem {
            devices: t.devices,
            n_nodes,
            n_unknowns: t.n_unknowns,
            n_cap_states: t.n_cap_states,
            n_junctions: t.n_junctions,
            pattern: CscMatrix::zeros(0, 0),
            slots: Vec::new(),
            node_names,
            branch_names: t.branch_names,
            source_names: t.source_names,
            source_waves: t.source_waves,
            plan: StampPlan::default(),
            lin_elem: t.lin_elem,
            nl_elem: t.nl_elem,
            ctrl_nodes: t.ctrl_nodes,
            ctrl_span: t.ctrl_span,
        };
        sys.build_pattern();
        Ok(sys)
    }

    /// Lowers every element of a validated circuit into the compiled device
    /// tables (unknown indices, derived model constants, name maps, the
    /// linear/nonlinear partition, and the bypass control-terminal table).
    fn build_devices(circuit: &Circuit) -> DeviceTables {
        let n_nodes = circuit.node_count();
        let mut devices = Vec::new();
        let mut branch_names = Vec::new();
        let mut source_names: Vec<(String, usize)> = Vec::new();
        let mut source_waves = Vec::new();
        let mut next_branch = n_nodes;
        let mut next_cap = 0usize;
        let mut next_jct = 0usize;

        for el in circuit.elements() {
            match el {
                Element::Resistor { p, n, resistance, .. } => {
                    devices.push(Dev::Conductance {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        g: 1.0 / resistance,
                    });
                }
                Element::Capacitor { p, n, capacitance, initial_voltage, .. } => {
                    devices.push(Dev::Cap {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        c: *capacitance,
                        state: next_cap,
                        ic: *initial_voltage,
                    });
                    next_cap += 1;
                }
                Element::Inductor { name, p, n, inductance, initial_current, .. } => {
                    branch_names.push((name.clone(), next_branch));
                    devices.push(Dev::Ind {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        l: *inductance,
                        branch: next_branch,
                        ic: *initial_current,
                    });
                    next_branch += 1;
                }
                Element::VoltageSource { name, p, n, waveform, ac_magnitude } => {
                    branch_names.push((name.clone(), next_branch));
                    source_names.push((name.clone(), devices.len()));
                    source_waves.push(waveform.clone());
                    devices.push(Dev::Vsrc {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        branch: next_branch,
                        wave: waveform.clone(),
                        ac_mag: *ac_magnitude,
                    });
                    next_branch += 1;
                }
                Element::CurrentSource { name, p, n, waveform, ac_magnitude } => {
                    source_names.push((name.clone(), devices.len()));
                    source_waves.push(waveform.clone());
                    devices.push(Dev::Isrc {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        wave: waveform.clone(),
                        ac_mag: *ac_magnitude,
                    });
                }
                Element::Diode { p, n, model, .. } => {
                    // Thermal voltage scales linearly with absolute
                    // temperature. The literal `1.0` branch (not a computed
                    // ratio that happens to equal one) keeps the default
                    // 27 °C lowering bit-identical to the pre-temperature
                    // model: `273.15 + 27.0` need not round to `300.15`.
                    let t_ratio =
                        if model.temp_c == 27.0 { 1.0 } else { (273.15 + model.temp_c) / 300.15 };
                    let nvt = model.n * VT * t_ratio;
                    devices.push(Dev::Diode {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        is: model.is,
                        nvt,
                        vcrit: junction_vcrit(model.is, nvt),
                        jct: next_jct,
                    });
                    next_jct += 1;
                    if model.cj0 > 0.0 {
                        devices.push(Dev::Jcap {
                            p: unknown_of(*p),
                            n: unknown_of(*n),
                            cj0: model.cj0,
                            vj: model.vj,
                            m: model.m,
                            fc: model.fc,
                            state: next_cap,
                        });
                        next_cap += 1;
                    }
                }
                Element::Mosfet { d, g, s, b, model, .. } => {
                    let sign = match model.polarity {
                        MosPolarity::Nmos => 1.0,
                        MosPolarity::Pmos => -1.0,
                    };
                    devices.push(Dev::Mos {
                        d: unknown_of(*d),
                        g: unknown_of(*g),
                        s: unknown_of(*s),
                        b: unknown_of(*b),
                        params: MosParams {
                            sign,
                            vt0_eq: sign * model.vt0,
                            beta: model.beta(),
                            lambda: model.lambda,
                            gamma: model.gamma,
                            phi: model.phi,
                        },
                    });
                    for (a, b, c) in [(*g, *s, model.cgs), (*g, *d, model.cgd)] {
                        if c > 0.0 {
                            devices.push(Dev::Cap {
                                p: unknown_of(a),
                                n: unknown_of(b),
                                c,
                                state: next_cap,
                                ic: None,
                            });
                            next_cap += 1;
                        }
                    }
                }
                Element::Bjt { c, b, e, model, .. } => {
                    devices.push(Dev::Bjt {
                        c: unknown_of(*c),
                        b: unknown_of(*b),
                        e: unknown_of(*e),
                        sign: if model.npn { 1.0 } else { -1.0 },
                        is: model.is,
                        bf: model.bf,
                        br: model.br,
                        jct_be: next_jct,
                        jct_bc: next_jct + 1,
                    });
                    next_jct += 2;
                }
                Element::Vcvs { name, p, n, cp, cn, gain } => {
                    branch_names.push((name.clone(), next_branch));
                    devices.push(Dev::Vcvs {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        cp: unknown_of(*cp),
                        cn: unknown_of(*cn),
                        gain: *gain,
                        branch: next_branch,
                    });
                    next_branch += 1;
                }
                Element::Vccs { p, n, cp, cn, gm, .. } => {
                    devices.push(Dev::Vccs {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        cp: unknown_of(*cp),
                        cn: unknown_of(*cn),
                        gm: *gm,
                    });
                }
            }
        }
        // Linear/nonlinear partition (element order within each class) and
        // the controlling-terminal table for device bypass.
        let mut lin_elem = Vec::new();
        let mut nl_elem = Vec::new();
        let mut ctrl_nodes = Vec::new();
        let mut ctrl_span = Vec::with_capacity(devices.len());
        for (d, dev) in devices.iter().enumerate() {
            if dev.is_nonlinear() {
                nl_elem.push(d as u32);
            } else {
                lin_elem.push(d as u32);
            }
            let c0 = ctrl_nodes.len() as u32;
            dev.push_ctrl_terminals(&mut ctrl_nodes);
            ctrl_span.push((c0, ctrl_nodes.len() as u32));
        }

        DeviceTables {
            devices,
            branch_names,
            source_names,
            source_waves,
            n_unknowns: next_branch,
            n_cap_states: next_cap,
            n_junctions: next_jct,
            lin_elem,
            nl_elem,
            ctrl_nodes,
            ctrl_span,
        }
    }

    /// Recompiles only the *values* of `circuit` against this system's
    /// frozen structure: the device list is rebuilt through the same
    /// derivation path as [`MnaSystem::compile`], while the pattern, slot
    /// table, and conflict coloring are shared from `self`.
    ///
    /// This is the compile-once half of batched sweeps: the emission
    /// sequence of every device is value-independent (kind and terminals
    /// alone fix it), so a circuit with identical topology but different
    /// parameter values stamps through the existing structure — and the
    /// resulting system is bit-identical to a fresh
    /// `MnaSystem::compile(circuit)`, which would rebuild the identical
    /// pattern from the identical emission sequence.
    ///
    /// # Errors
    ///
    /// * [`crate::EngineError::Circuit`] if the netlist fails validation.
    /// * [`crate::EngineError::TopologyMismatch`] if the circuit's node
    ///   count, device count, device kinds, or connectivity differ from the
    ///   compiled system (including value changes with structural effects,
    ///   e.g. zeroing a MOS gate capacitance or a diode's `cj0`, which
    ///   add/remove companion devices).
    pub fn with_values_from(&self, circuit: &Circuit) -> Result<Self> {
        circuit.validate()?;
        let mismatch = |context: String| crate::EngineError::TopologyMismatch { context };
        if circuit.node_count() != self.n_nodes {
            return Err(mismatch(format!(
                "node count {} != compiled {}",
                circuit.node_count(),
                self.n_nodes
            )));
        }
        let t = Self::build_devices(circuit);
        if t.devices.len() != self.devices.len() {
            return Err(mismatch(format!(
                "device count {} != compiled {} (a structural parameter changed?)",
                t.devices.len(),
                self.devices.len()
            )));
        }
        for (i, (new, old)) in t.devices.iter().zip(&self.devices).enumerate() {
            if !Dev::same_shape(new, old) {
                return Err(mismatch(format!(
                    "device {i} is a {} on different terminals or a {}",
                    new.class_name(),
                    old.class_name()
                )));
            }
        }
        debug_assert_eq!(t.n_unknowns, self.n_unknowns);
        debug_assert_eq!(t.n_cap_states, self.n_cap_states);
        debug_assert_eq!(t.n_junctions, self.n_junctions);
        debug_assert_eq!(t.lin_elem, self.lin_elem);
        Ok(MnaSystem {
            devices: t.devices,
            n_nodes: self.n_nodes,
            n_unknowns: self.n_unknowns,
            n_cap_states: self.n_cap_states,
            n_junctions: self.n_junctions,
            pattern: self.pattern.clone(),
            slots: self.slots.clone(),
            node_names: circuit.signal_node_names().map(str::to_string).collect(),
            branch_names: t.branch_names,
            source_names: t.source_names,
            source_waves: t.source_waves,
            plan: self.plan.clone(),
            lin_elem: t.lin_elem,
            nl_elem: t.nl_elem,
            ctrl_nodes: t.ctrl_nodes,
            ctrl_span: t.ctrl_span,
        })
    }

    /// Emission pass that records every matrix position a stamp can touch,
    /// then freezes the CSC pattern, the per-emission slot table, and the
    /// per-device conflict coloring for the parallel stamp path.
    fn build_pattern(&mut self) {
        let mut entries = Vec::new();
        let mut rhs_targets: Vec<u32> = Vec::new();
        let zeros = vec![0.0_f64; self.n_unknowns];
        let caps = vec![0.0_f64; self.n_cap_states];
        let mut junction = vec![0.0_f64; self.n_junctions];
        let mut limited = false;
        let input = StampInput {
            time: 0.0,
            coeffs: None,
            x_prev: &zeros,
            x_prev2: &zeros,
            cap_currents: &caps,
            gmin: 0.0,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        };
        let mut mat_span = vec![(0u32, 0u32); self.devices.len()];
        let mut rhs_span = vec![(0u32, 0u32); self.devices.len()];
        {
            let mut jct = Junction::InPlace(&mut junction);
            let mut sink = Sink::Record { mat: &mut entries, rhs: &mut rhs_targets };
            // Shunt prologue occupies emission cursors 0..n_nodes, exactly as
            // in the stamp's linear phase.
            for i in 0..self.n_nodes {
                sink.mat(i, i, 0.0);
            }
            // Stamp emission order: prologue, linear devices, nonlinear
            // devices (element order within each class). Keeping the record
            // pass and every numeric path on this one order is what keeps the
            // slot table and the per-device spans valid everywhere.
            for &d in self.lin_elem.iter().chain(&self.nl_elem) {
                let (m0, r0) = match &sink {
                    Sink::Record { mat, rhs } => (mat.len() as u32, rhs.len() as u32),
                    _ => unreachable!(),
                };
                Self::emit_device(
                    &self.devices[d as usize],
                    &input,
                    &zeros,
                    &mut jct,
                    &mut limited,
                    &mut sink,
                );
                let (m1, r1) = match &sink {
                    Sink::Record { mat, rhs } => (mat.len() as u32, rhs.len() as u32),
                    _ => unreachable!(),
                };
                mat_span[d as usize] = (m0, m1);
                rhs_span[d as usize] = (r0, r1);
            }
        }
        let n = self.n_unknowns;
        let mut coo = CooMatrix::with_capacity(n, n, entries.len());
        for &(r, c) in &entries {
            coo.push(r, c, 0.0).expect("pattern entry in range");
        }
        let pattern = coo.to_csc();
        self.slots = entries
            .iter()
            .map(|&(r, c)| pattern.find_index(r, c).expect("entry present in pattern"))
            .collect();
        self.pattern = pattern;
        self.plan = self.build_plan(mat_span, rhs_span, rhs_targets);
    }

    /// Level-colors the device conflict graph and freezes the replay order.
    fn build_plan(
        &self,
        mat_span: Vec<(u32, u32)>,
        rhs_span: Vec<(u32, u32)>,
        rhs_targets: Vec<u32>,
    ) -> StampPlan {
        let nd = self.devices.len();
        // Running level per matrix slot / RHS entry: one more than the
        // highest color among already-colored writers of that slot.
        let mut slot_level = vec![0u32; self.pattern.nnz()];
        let mut rhs_level = vec![0u32; self.n_unknowns];
        let mut color = vec![0u32; nd];
        for d in 0..nd {
            let mut c = 0u32;
            for cursor in mat_span[d].0..mat_span[d].1 {
                c = c.max(slot_level[self.slots[cursor as usize]]);
            }
            for k in rhs_span[d].0..rhs_span[d].1 {
                c = c.max(rhs_level[rhs_targets[k as usize] as usize]);
            }
            color[d] = c;
            for cursor in mat_span[d].0..mat_span[d].1 {
                let lvl = &mut slot_level[self.slots[cursor as usize]];
                *lvl = (*lvl).max(c + 1);
            }
            for k in rhs_span[d].0..rhs_span[d].1 {
                let lvl = &mut rhs_level[rhs_targets[k as usize] as usize];
                *lvl = (*lvl).max(c + 1);
            }
        }
        // Counting sort by color: stable, so each group stays ascending by
        // element index.
        let n_colors = color.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut group = vec![0u32; n_colors + 1];
        for &c in &color {
            group[c as usize + 1] += 1;
        }
        for i in 1..group.len() {
            group[i] += group[i - 1];
        }
        let mut cursor: Vec<u32> = group[..n_colors].to_vec();
        let mut order = vec![0u32; nd];
        for (d, &c) in color.iter().enumerate() {
            order[cursor[c as usize] as usize] = d as u32;
            cursor[c as usize] += 1;
        }
        // Nonlinear projection of the replay order: same color-then-element
        // sequence, linear devices dropped (the master's linear phase stamps
        // those before any nonlinear accumulation).
        let mut nl_order = Vec::with_capacity(self.nl_elem.len());
        for c in 0..n_colors {
            for &d in &order[group[c] as usize..group[c + 1] as usize] {
                if self.devices[d as usize].is_nonlinear() {
                    nl_order.push(d);
                }
            }
        }
        StampPlan { mat_span, rhs_span, rhs_targets, color, order, group, nl_order }
    }

    /// Number of MNA unknowns (node voltages + branch currents).
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// Number of signal nodes (unknowns `0..n_nodes` are node voltages).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of capacitor state slots (one per physical or model capacitor).
    pub fn cap_state_count(&self) -> usize {
        self.n_cap_states
    }

    /// The frozen matrix pattern with zero values (clone into a workspace).
    pub fn pattern(&self) -> &CscMatrix {
        &self.pattern
    }

    /// Creates a fresh workspace for this system.
    pub fn new_workspace(&self) -> MnaWorkspace {
        let nd = self.devices.len();
        MnaWorkspace {
            matrix: self.pattern.clone(),
            rhs: vec![0.0; self.n_unknowns],
            junction_state: vec![0.0; self.n_junctions],
            limited: false,
            caches: StampCaches {
                valid: vec![false; nd],
                mask: vec![false; nd],
                ctrl: vec![0.0; self.ctrl_nodes.len()],
                mat: vec![0.0; self.slots.len()],
                rhs: vec![0.0; self.plan.rhs_targets.len()],
                gmin: 0.0,
                lin_key: None,
                lin_mat: vec![0.0; self.pattern.nnz()],
                lin_rhs: vec![0.0; self.n_unknowns],
            },
        }
    }

    /// Number of nonlinear devices (the bypass-eligible population).
    pub fn nonlinear_device_count(&self) -> usize {
        self.nl_elem.len()
    }

    /// Publishes per-device-class evaluation / bypass tallies for one stamp
    /// pass into a metrics registry, reading the bypass mask the pass just
    /// computed. Purely observational — called by the Newton loop only when
    /// metrics are enabled, never on the stamp hot path itself. Tallies are
    /// accumulated locally first so the registry is touched once per class,
    /// not once per device.
    pub(crate) fn publish_class_metrics(
        &self,
        mask: &[bool],
        metrics: &wavepipe_telemetry::MetricsHandle,
    ) {
        use wavepipe_telemetry::Family;
        let mut evals: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        let mut bypassed = evals.clone();
        for &d in &self.nl_elem {
            let class = self.devices[d as usize].class_name();
            if mask.get(d as usize).copied().unwrap_or(false) {
                *bypassed.entry(class).or_insert(0) += 1;
            } else {
                *evals.entry(class).or_insert(0) += 1;
            }
        }
        for (class, n) in evals {
            metrics.add_labeled(Family::EvalsByClass, class, n);
        }
        for (class, n) in bypassed {
            metrics.add_labeled(Family::BypassByClass, class, n);
        }
    }

    /// Unknown index of the named node, if it exists and is not ground.
    pub fn node_unknown(&self, name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == name)
    }

    /// Name of the node whose voltage is unknown `unknown`.
    ///
    /// # Panics
    ///
    /// Panics if `unknown >= n_nodes()`.
    pub fn node_name_of(&self, unknown: usize) -> &str {
        &self.node_names[unknown]
    }

    /// All signal-node names in unknown order.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Compiled device list (crate-internal: used by the AC assembler and
    /// the DC-sweep source override).
    pub(crate) fn devices(&self) -> &[Dev] {
        &self.devices
    }

    /// Replaces the named independent source's waveform with a DC value
    /// (the DC-sweep hot path — pattern and slot table are untouched).
    ///
    /// The name lookup is case-insensitive, matching netlist conventions.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::UnknownSource`] naming the missing
    /// source if no independent source with that name exists.
    pub fn set_source(&mut self, name: &str, value: f64) -> Result<()> {
        let missing = || crate::EngineError::UnknownSource { name: name.to_string() };
        let Some(&(_, idx)) = self.source_names.iter().find(|(n, _)| n.eq_ignore_ascii_case(name))
        else {
            return Err(missing());
        };
        match &mut self.devices[idx] {
            Dev::Vsrc { wave, .. } | Dev::Isrc { wave, .. } => {
                *wave = Waveform::Dc(value);
                Ok(())
            }
            _ => Err(missing()),
        }
    }

    /// All branch-current element names with their unknown indices.
    pub fn branch_names(&self) -> &[(String, usize)] {
        &self.branch_names
    }

    /// Unknown index of the named branch-current element (V source, inductor,
    /// VCVS), if present.
    pub fn branch_unknown(&self, element_name: &str) -> Option<usize> {
        self.branch_names
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(element_name))
            .map(|&(_, i)| i)
    }

    /// Union of all source-waveform breakpoints in `[0, tstop]`, sorted and
    /// deduplicated.
    pub fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        let mut bp: Vec<f64> =
            self.source_waves.iter().flat_map(|w| w.breakpoints(tstop)).collect();
        bp.push(tstop);
        bp.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        bp.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
        bp.retain(|&t| t > 0.0);
        bp
    }

    /// Stamps the linearised system at iterate `x_iter` into `ws` with every
    /// solver cache off. Equivalent to
    /// `stamp_with(ws, input, x_iter, &CacheCtl::disabled())`; returns the
    /// number of device evaluations performed (for work accounting).
    pub fn stamp(&self, ws: &mut MnaWorkspace, input: &StampInput<'_>, x_iter: &[f64]) -> usize {
        self.stamp_with(ws, input, x_iter, &CacheCtl::disabled()).evals
    }

    /// Stamps the linearised system at iterate `x_iter` into `ws`, using the
    /// workspace's solver caches as `ctl` allows: the linear phase may replay
    /// the companion-cached matrix, and nonlinear devices whose controlling
    /// voltages are within the bypass tolerance replay their cached stamp.
    ///
    /// The emission order is fixed (node-shunt prologue, linear devices in
    /// element order, nonlinear devices in element order) for every `ctl`
    /// setting, and every cache decision is a deterministic function of the
    /// iterate and the workspace state — so two runs with the same options
    /// produce bitwise-identical results, serial or parallel.
    pub fn stamp_with(
        &self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x_iter: &[f64],
        ctl: &CacheCtl,
    ) -> StampResult {
        self.compute_bypass_mask(&mut ws.caches, input, x_iter, ctl);
        let companion_hit = self.stamp_linear_phase(ws, input, x_iter, ctl);
        let (nl_evals, bypassed) = self.stamp_nonlinear_serial(ws, input, x_iter);
        StampResult { evals: self.lin_elem.len() + nl_evals, bypassed, companion_hit }
    }

    /// Decides, per nonlinear device, whether its cached stamp may be
    /// replayed this pass: the cache must be valid (evaluated, unlimited,
    /// same `gmin`) and every controlling terminal voltage must be within
    /// `vabs + vrel * max(|v|, |v_ref|)` of the evaluation reference.
    /// Shared verbatim by the serial and parallel paths (the parallel master
    /// computes the mask once and ships it to the workers).
    pub(crate) fn compute_bypass_mask(
        &self,
        caches: &mut StampCaches,
        input: &StampInput<'_>,
        x: &[f64],
        ctl: &CacheCtl,
    ) {
        if input.gmin != caches.gmin {
            caches.valid.fill(false);
            caches.gmin = input.gmin;
        }
        if !ctl.bypass {
            caches.mask.fill(false);
            return;
        }
        for &d in &self.nl_elem {
            let du = d as usize;
            let (c0, c1) = self.ctrl_span[du];
            let mut ok = caches.valid[du] && c0 != c1;
            for k in c0..c1 {
                if !ok {
                    break;
                }
                let t = self.ctrl_nodes[k as usize];
                let v = if t == u32::MAX { 0.0 } else { x[t as usize] };
                let vref = caches.ctrl[k as usize];
                let tol = ctl.bypass_vabs + ctl.bypass_vrel * v.abs().max(vref.abs());
                // NaN-safe: a non-finite iterate never bypasses.
                ok = (v - vref).abs() <= tol;
            }
            caches.mask[du] = ok;
        }
    }

    /// Linear phase: zeroes the workspace, applies the node-shunt prologue,
    /// and stamps every linear device — replaying the assembled matrix from
    /// the companion cache when the step-size key matches (the RHS carries
    /// the time- and history-dependent terms, so it is always re-emitted).
    /// Returns whether the cache hit.
    pub(crate) fn stamp_linear_phase(
        &self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x: &[f64],
        ctl: &CacheCtl,
    ) -> bool {
        ws.rhs.fill(0.0);
        ws.limited = false;
        let key = LinKey::of(input);
        let MnaWorkspace { matrix, rhs, junction_state, limited, caches } = ws;
        let hit = ctl.companion && caches.lin_key == Some(key);
        let mut jct = Junction::InPlace(junction_state);
        if hit {
            // One memcpy restores prologue + linear matrix (and zeroes the
            // nonlinear slots, which were zero in the snapshot).
            matrix.values_mut().copy_from_slice(&caches.lin_mat);
            let mut sink = Sink::RhsOnly { rhs };
            for &d in &self.lin_elem {
                Self::emit_device(
                    &self.devices[d as usize],
                    input,
                    x,
                    &mut jct,
                    limited,
                    &mut sink,
                );
            }
        } else {
            matrix.set_values_zero();
            {
                let values = matrix.values_mut();
                for i in 0..self.n_nodes {
                    values[self.slots[i]] += input.gshunt;
                }
                let mut sink =
                    Sink::Write { values, slots: &self.slots, cursor: self.n_nodes, rhs };
                for &d in &self.lin_elem {
                    Self::emit_device(
                        &self.devices[d as usize],
                        input,
                        x,
                        &mut jct,
                        limited,
                        &mut sink,
                    );
                }
            }
            caches.lin_mat.copy_from_slice(matrix.values());
            caches.lin_key = if ctl.companion { Some(key) } else { None };
        }
        hit
    }

    /// Serial nonlinear phase: element order, each device either replayed
    /// from its bypass cache or evaluated into it, then scattered through
    /// the slot table. Returns `(evaluated, bypassed)` counts.
    fn stamp_nonlinear_serial(
        &self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x: &[f64],
    ) -> (usize, usize) {
        let MnaWorkspace { matrix, rhs, junction_state, limited, caches } = ws;
        let StampCaches { valid, mask, ctrl, mat: cmat, rhs: crhs, .. } = caches;
        let values = matrix.values_mut();
        let mut jct = Junction::InPlace(junction_state);
        let (mut evals, mut bypassed) = (0usize, 0usize);
        for &d in &self.nl_elem {
            let du = d as usize;
            let (m0, m1) = self.plan.mat_span[du];
            let (r0, r1) = self.plan.rhs_span[du];
            let (m0, m1, r0, r1) = (m0 as usize, m1 as usize, r0 as usize, r1 as usize);
            if mask[du] {
                bypassed += 1;
            } else {
                let mut dev_limited = false;
                {
                    let mut sink = Sink::Buffer {
                        mat: &mut cmat[m0..m1],
                        mat_cursor: 0,
                        rhs: &mut crhs[r0..r1],
                        rhs_cursor: 0,
                    };
                    Self::emit_device(
                        &self.devices[du],
                        input,
                        x,
                        &mut jct,
                        &mut dev_limited,
                        &mut sink,
                    );
                }
                *limited |= dev_limited;
                let (c0, c1) = self.ctrl_span[du];
                if c0 != c1 {
                    valid[du] = !dev_limited;
                    for k in c0..c1 {
                        let t = self.ctrl_nodes[k as usize];
                        ctrl[k as usize] = if t == u32::MAX { 0.0 } else { x[t as usize] };
                    }
                }
                evals += 1;
            }
            // Scatter the (fresh or replayed) emissions: same per-slot
            // addition order either way.
            for (k, &slot) in self.slots[m0..m1].iter().enumerate() {
                values[slot] += cmat[m0 + k];
            }
            for (k, &u) in self.plan.rhs_targets[r0..r1].iter().enumerate() {
                rhs[u as usize] += crhs[r0 + k];
            }
        }
        (evals, bypassed)
    }

    /// Lane-tier stamp: same cache decisions, device order, and emission
    /// sequence as [`MnaSystem::stamp_with`] — bitwise-identical results —
    /// with the emission plumbing monomorphized. The classic path routes
    /// every emission through the `Sink` enum (a variant dispatch per
    /// matrix entry) and buffers nonlinear stamps before a separate scatter
    /// pass; here each sink is a concrete type the compiler inlines whole,
    /// and fresh nonlinear evaluations scatter as they emit. With ~40
    /// linear companion re-emissions and ~16 device evaluations per Newton
    /// iteration on digital workloads, stamping dominates the serial
    /// profile, so the lane-packed batch tier calls this instead of
    /// `stamp_with` to buy its throughput edge on the stamp side as well
    /// as the solve side.
    /// `first_iter` marks the first Newton iteration of the current time
    /// point. On later iterations of the same point every input of the
    /// linear phase other than the iterate — time, integration
    /// coefficients, previous-point solutions, capacitor currents — is
    /// unchanged, and linear devices never read the iterate, so the linear
    /// RHS snapshot taken on the first iteration is replayed by `memcpy`
    /// (the exact bits the device walk would reproduce).
    pub fn stamp_lane(
        &self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x_iter: &[f64],
        ctl: &CacheCtl,
        first_iter: bool,
    ) -> StampResult {
        // The `gmin` prologue of `compute_bypass_mask`, at the same point in
        // the call sequence. The per-device tolerance checks themselves are
        // folded into the fused nonlinear pass below: they are pure
        // predicates of state that pass never mutates before reading, so
        // deciding each device at its own turn reproduces the mask bit for
        // bit without a separate traversal (or the mask array itself).
        if input.gmin != ws.caches.gmin {
            ws.caches.valid.fill(false);
            ws.caches.gmin = input.gmin;
        }
        let companion_hit = self.stamp_linear_phase_lane(ws, input, x_iter, ctl, first_iter);
        let (nl_evals, bypassed) = self.stamp_nonlinear_fused(ws, input, x_iter, ctl);
        StampResult { evals: self.lin_elem.len() + nl_evals, bypassed, companion_hit }
    }

    /// [`MnaSystem::stamp_linear_phase`] with monomorphized sinks: identical
    /// control flow, cache updates, and emission order.
    fn stamp_linear_phase_lane(
        &self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x: &[f64],
        ctl: &CacheCtl,
        first_iter: bool,
    ) -> bool {
        ws.limited = false;
        let key = LinKey::of(input);
        let MnaWorkspace { matrix, rhs, junction_state, limited, caches } = ws;
        let hit = ctl.companion && caches.lin_key == Some(key);
        if hit && !first_iter {
            // Same point, same key: both the linear matrix and the linear
            // RHS are replays of the first iteration's snapshots. Linear
            // devices never touch `limited` or the junction state, so
            // skipping their walk leaves every other output of this phase
            // exactly as the walk would.
            matrix.values_mut().copy_from_slice(&caches.lin_mat);
            rhs.copy_from_slice(&caches.lin_rhs);
            return true;
        }
        rhs.fill(0.0);
        let mut jct = Junction::InPlace(junction_state);
        if hit {
            matrix.values_mut().copy_from_slice(&caches.lin_mat);
            let (a1, a2, b1) = match input.coeffs {
                Some(c) => (c.a1, c.a2, c.b1),
                None => (0.0, 0.0, 0.0),
            };
            let transient = input.coeffs.is_some() && !input.ic_mode;
            let mut sink = RhsOnlySink { rhs };
            for &d in &self.lin_elem {
                // Capacitors dominate the linear re-emission on MOS
                // circuits (two parasitic caps per FET plus loads), so the
                // common transient case gets a dedicated body: `ieq` is the
                // identical expression as `emit_device`'s Cap arm (same op
                // order, same bits), and `geq` is skipped outright — it
                // only feeds matrix emissions the hit path drops.
                if let Dev::Cap { p, n, c, state, .. } = self.devices[d as usize] {
                    if transient {
                        let u_prev = volt(input.x_prev, p) - volt(input.x_prev, n);
                        let u_prev2 = volt(input.x_prev2, p) - volt(input.x_prev2, n);
                        let ieq = c * (a1 * u_prev + a2 * u_prev2) + b1 * input.cap_currents[state];
                        sink.rhs(p, -ieq);
                        sink.rhs(n, ieq);
                        continue;
                    }
                }
                Self::emit_device(
                    &self.devices[d as usize],
                    input,
                    x,
                    &mut jct,
                    limited,
                    &mut sink,
                );
            }
        } else {
            matrix.set_values_zero();
            {
                let values = matrix.values_mut();
                for i in 0..self.n_nodes {
                    values[self.slots[i]] += input.gshunt;
                }
                let mut sink = WriteSink { values, slots: &self.slots, cursor: self.n_nodes, rhs };
                for &d in &self.lin_elem {
                    Self::emit_device(
                        &self.devices[d as usize],
                        input,
                        x,
                        &mut jct,
                        limited,
                        &mut sink,
                    );
                }
            }
            caches.lin_mat.copy_from_slice(matrix.values());
            caches.lin_key = if ctl.companion { Some(key) } else { None };
        }
        caches.lin_rhs.copy_from_slice(rhs);
        hit
    }

    /// [`MnaSystem::stamp_nonlinear_serial`] with the buffer-then-scatter
    /// split fused into one pass for fresh evaluations: each emission is
    /// stored into the bypass-cache span *and* scattered immediately. The
    /// per-slot addition order is exactly the classic scatter's (the cache
    /// span is written and replayed in emission order), so results stay
    /// bitwise identical.
    fn stamp_nonlinear_fused(
        &self,
        ws: &mut MnaWorkspace,
        input: &StampInput<'_>,
        x: &[f64],
        ctl: &CacheCtl,
    ) -> (usize, usize) {
        let MnaWorkspace { matrix, rhs, junction_state, limited, caches } = ws;
        let StampCaches { valid, ctrl, mat: cmat, rhs: crhs, .. } = caches;
        let values = matrix.values_mut();
        let mut jct = Junction::InPlace(junction_state);
        let (mut evals, mut bypassed) = (0usize, 0usize);
        for &d in &self.nl_elem {
            let du = d as usize;
            let (m0, m1) = self.plan.mat_span[du];
            let (r0, r1) = self.plan.rhs_span[du];
            let (m0, m1, r0, r1) = (m0 as usize, m1 as usize, r0 as usize, r1 as usize);
            // Inline bypass decision — the same predicate
            // `compute_bypass_mask` evaluates for this device, decided at
            // the device's own turn (nothing this loop writes is read by a
            // later device's predicate).
            let (c0, c1) = self.ctrl_span[du];
            let mut bypass_ok = ctl.bypass && valid[du] && c0 != c1;
            for k in c0..c1 {
                if !bypass_ok {
                    break;
                }
                let t = self.ctrl_nodes[k as usize];
                let v = if t == u32::MAX { 0.0 } else { x[t as usize] };
                let vref = ctrl[k as usize];
                let tol = ctl.bypass_vabs + ctl.bypass_vrel * v.abs().max(vref.abs());
                // NaN-safe: a non-finite iterate never bypasses.
                bypass_ok = (v - vref).abs() <= tol;
            }
            if bypass_ok {
                bypassed += 1;
                // Bypass replay: scatter the cached stamp, same as classic.
                for (k, &slot) in self.slots[m0..m1].iter().enumerate() {
                    values[slot] += cmat[m0 + k];
                }
                for (k, &u) in self.plan.rhs_targets[r0..r1].iter().enumerate() {
                    rhs[u as usize] += crhs[r0 + k];
                }
            } else {
                let mut dev_limited = false;
                {
                    let mut sink = FusedNlSink {
                        cmat: &mut cmat[m0..m1],
                        crhs: &mut crhs[r0..r1],
                        slots: &self.slots[m0..m1],
                        values: &mut *values,
                        rhs: rhs.as_mut_slice(),
                        mc: 0,
                        rc: 0,
                    };
                    Self::emit_device(
                        &self.devices[du],
                        input,
                        x,
                        &mut jct,
                        &mut dev_limited,
                        &mut sink,
                    );
                }
                *limited |= dev_limited;
                if c0 != c1 {
                    valid[du] = !dev_limited;
                    for k in c0..c1 {
                        let t = self.ctrl_nodes[k as usize];
                        ctrl[k as usize] = if t == u32::MAX { 0.0 } else { x[t as usize] };
                    }
                }
                evals += 1;
            }
        }
        (evals, bypassed)
    }

    /// The compile-time parallel-stamp plan (spans, coloring, replay order).
    pub(crate) fn plan(&self) -> &StampPlan {
        &self.plan
    }

    /// Rough relative evaluation cost of device `d`, used to balance
    /// parallel stamp chunks (nonlinear model evaluations dominate; linear
    /// stamps are almost free).
    pub(crate) fn device_eval_weight(&self, d: usize) -> u64 {
        match self.devices[d] {
            Dev::Bjt { .. } => 10,
            Dev::Mos { .. } => 8,
            Dev::Diode { .. } => 5,
            Dev::Jcap { .. } => 4,
            Dev::Cap { .. } | Dev::Ind { .. } => 2,
            _ => 1,
        }
    }

    /// Number of stamp colors the conflict coloring produced.
    pub fn stamp_color_count(&self) -> usize {
        self.plan.n_colors()
    }

    /// Number of linear (always-evaluated) devices, for work accounting on
    /// the parallel path whose master stamps the linear phase itself.
    pub(crate) fn linear_device_count(&self) -> usize {
        self.lin_elem.len()
    }

    /// Worker-side evaluation of a device subset into dense buffers, in the
    /// order given by `devices` (indices into the compiled device list),
    /// skipping devices the bypass `mask` marks for replay. Per-device
    /// limiter hits are appended to `limited_devs` (in chunk order); returns
    /// whether any junction voltage was limited.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_devices(
        &self,
        input: &StampInput<'_>,
        x: &[f64],
        junction_snapshot: &[f64],
        devices: &[u32],
        mask: &[bool],
        mat_out: &mut Vec<f64>,
        rhs_out: &mut Vec<f64>,
        jct_out: &mut Vec<(u32, f64)>,
        limited_devs: &mut Vec<u32>,
    ) -> bool {
        // The plan spans fix the emission counts up-front, so the buffers
        // can be sized once and filled with cursor stores.
        let (mut mat_len, mut rhs_len) = (0usize, 0usize);
        for &d in devices {
            if mask[d as usize] {
                continue;
            }
            let (m0, m1) = self.plan.mat_span[d as usize];
            mat_len += (m1 - m0) as usize;
            let (r0, r1) = self.plan.rhs_span[d as usize];
            rhs_len += (r1 - r0) as usize;
        }
        mat_out.resize(mat_len, 0.0);
        rhs_out.resize(rhs_len, 0.0);
        jct_out.clear();
        limited_devs.clear();
        let mut limited = false;
        let mut jct = Junction::Buffered { snapshot: junction_snapshot, writes: jct_out };
        let mut sink = Sink::Buffer { mat: mat_out, mat_cursor: 0, rhs: rhs_out, rhs_cursor: 0 };
        for &d in devices {
            if mask[d as usize] {
                continue;
            }
            let mut dev_limited = false;
            Self::emit_device(
                &self.devices[d as usize],
                input,
                x,
                &mut jct,
                &mut dev_limited,
                &mut sink,
            );
            if dev_limited {
                limited = true;
                limited_devs.push(d);
            }
        }
        debug_assert!(matches!(
            sink,
            Sink::Buffer { mat_cursor, rhs_cursor, .. }
                if mat_cursor == mat_len && rhs_cursor == rhs_len
        ));
        limited
    }

    /// Master-side accumulation of one evaluated chunk into the workspace:
    /// bypassed devices replay their cached emissions, evaluated ones are
    /// recorded into the cache and scattered from it.
    ///
    /// `devices` must be the same slice (same order) the chunk was evaluated
    /// with, `limited_devs` the evaluator's per-device limiter hits (in
    /// chunk order), and `x` the iterate the chunk was evaluated at; chunks
    /// must be accumulated in ascending color-then-element order for
    /// bit-identity with the serial path. Returns `(evaluated, bypassed)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn accumulate_devices(
        &self,
        ws: &mut MnaWorkspace,
        devices: &[u32],
        mat_vals: &[f64],
        rhs_vals: &[f64],
        jct_writes: &[(u32, f64)],
        limited_devs: &[u32],
        x: &[f64],
    ) -> (usize, usize) {
        let MnaWorkspace { matrix, rhs, junction_state, limited, caches } = ws;
        let StampCaches { valid, mask, ctrl, mat: cmat, rhs: crhs, .. } = caches;
        let values = matrix.values_mut();
        let (mut mi, mut ri, mut li) = (0usize, 0usize, 0usize);
        let (mut evals, mut bypassed) = (0usize, 0usize);
        for &d in devices {
            let du = d as usize;
            let (m0, m1) = self.plan.mat_span[du];
            let (r0, r1) = self.plan.rhs_span[du];
            let (m0, m1, r0, r1) = (m0 as usize, m1 as usize, r0 as usize, r1 as usize);
            if mask[du] {
                bypassed += 1;
            } else {
                cmat[m0..m1].copy_from_slice(&mat_vals[mi..mi + (m1 - m0)]);
                crhs[r0..r1].copy_from_slice(&rhs_vals[ri..ri + (r1 - r0)]);
                mi += m1 - m0;
                ri += r1 - r0;
                let dev_limited = li < limited_devs.len() && limited_devs[li] == d;
                if dev_limited {
                    li += 1;
                    *limited = true;
                }
                let (c0, c1) = self.ctrl_span[du];
                if c0 != c1 {
                    valid[du] = !dev_limited;
                    for k in c0..c1 {
                        let t = self.ctrl_nodes[k as usize];
                        ctrl[k as usize] = if t == u32::MAX { 0.0 } else { x[t as usize] };
                    }
                }
                evals += 1;
            }
            for (k, &slot) in self.slots[m0..m1].iter().enumerate() {
                values[slot] += cmat[m0 + k];
            }
            for (k, &u) in self.plan.rhs_targets[r0..r1].iter().enumerate() {
                rhs[u as usize] += crhs[r0 + k];
            }
        }
        debug_assert_eq!(mi, mat_vals.len());
        debug_assert_eq!(ri, rhs_vals.len());
        for &(j, v) in jct_writes {
            junction_state[j as usize] = v;
        }
        (evals, bypassed)
    }

    /// Capacitor currents at the newly accepted point, for the next step's
    /// TRAP companion.
    pub fn cap_currents_after(
        &self,
        coeffs: &IntegCoeffs,
        x_new: &[f64],
        x_prev: &[f64],
        x_prev2: &[f64],
        cap_prev: &[f64],
    ) -> Vec<f64> {
        let mut out = vec![0.0; self.n_cap_states];
        for dev in &self.devices {
            match *dev {
                Dev::Cap { p, n, c, state, .. } => {
                    let u_new = volt(x_new, p) - volt(x_new, n);
                    let u_prev = volt(x_prev, p) - volt(x_prev, n);
                    let u_prev2 = volt(x_prev2, p) - volt(x_prev2, n);
                    let dq = coeffs.derivative(u_new, u_prev, u_prev2, cap_prev[state] / c);
                    out[state] = c * dq;
                }
                Dev::Jcap { p, n, cj0, vj, m, fc, state } => {
                    let q_at =
                        |xx: &[f64]| depletion_charge(volt(xx, p) - volt(xx, n), cj0, vj, m, fc).0;
                    out[state] = coeffs.derivative(
                        q_at(x_new),
                        q_at(x_prev),
                        q_at(x_prev2),
                        cap_prev[state],
                    );
                }
                _ => {}
            }
        }
        out
    }

    /// Evaluates and emits one device. Emission order and count are
    /// value-independent, which is what keeps the slot table and the
    /// per-device spans valid across the serial and parallel paths.
    fn emit_device<S: EmitSink>(
        dev: &Dev,
        input: &StampInput<'_>,
        x: &[f64],
        junction: &mut Junction<'_>,
        limited: &mut bool,
        sink: &mut S,
    ) {
        let (a0, a1, a2, b1) = match input.coeffs {
            Some(c) => (c.a0, c.a1, c.a2, c.b1),
            None => (0.0, 0.0, 0.0, 0.0),
        };
        let dc = input.coeffs.is_none();
        {
            match *dev {
                Dev::Conductance { p, n, g } => {
                    sink.mat(p, p, g);
                    sink.mat(p, n, -g);
                    sink.mat(n, p, -g);
                    sink.mat(n, n, g);
                }
                Dev::Cap { p, n, c, state, ic } => {
                    let (geq, ieq) = if input.ic_mode {
                        match ic {
                            // Stiff Norton source forcing u = v0.
                            Some(v0) => (GIC, -GIC * v0),
                            None => (0.0, 0.0),
                        }
                    } else if dc {
                        (0.0, 0.0)
                    } else {
                        let u_prev = volt(input.x_prev, p) - volt(input.x_prev, n);
                        let u_prev2 = volt(input.x_prev2, p) - volt(input.x_prev2, n);
                        let geq = c * a0;
                        let ieq = c * (a1 * u_prev + a2 * u_prev2) + b1 * input.cap_currents[state];
                        (geq, ieq)
                    };
                    sink.mat(p, p, geq);
                    sink.mat(p, n, -geq);
                    sink.mat(n, p, -geq);
                    sink.mat(n, n, geq);
                    sink.rhs(p, -ieq);
                    sink.rhs(n, ieq);
                }
                Dev::Jcap { p, n, cj0, vj, m, fc, state } => {
                    // Nonlinear charge companion: i = dq/dt with
                    // q = q_dep(u). Newton-linearised at the iterate:
                    // geq = a0*c(u_k), ieq = a0*(q(u_k) - c(u_k)*u_k)
                    //       + a1*q(u_prev) + a2*q(u_prev2) + b1*i_prev.
                    let (geq, ieq) = if dc {
                        (0.0, 0.0)
                    } else {
                        let u_k = volt(x, p) - volt(x, n);
                        let u_prev = volt(input.x_prev, p) - volt(input.x_prev, n);
                        let u_prev2 = volt(input.x_prev2, p) - volt(input.x_prev2, n);
                        let (q_k, c_k) = depletion_charge(u_k, cj0, vj, m, fc);
                        let (q_prev, _) = depletion_charge(u_prev, cj0, vj, m, fc);
                        let (q_prev2, _) = depletion_charge(u_prev2, cj0, vj, m, fc);
                        let geq = a0 * c_k;
                        let ieq = a0 * (q_k - c_k * u_k)
                            + a1 * q_prev
                            + a2 * q_prev2
                            + b1 * input.cap_currents[state];
                        (geq, ieq)
                    };
                    sink.mat(p, p, geq);
                    sink.mat(p, n, -geq);
                    sink.mat(n, p, -geq);
                    sink.mat(n, n, geq);
                    sink.rhs(p, -ieq);
                    sink.rhs(n, ieq);
                }
                Dev::Ind { p, n, l, branch, ic } => {
                    // KCL contributions of the branch current.
                    sink.mat(p, branch, 1.0);
                    sink.mat(n, branch, -1.0);
                    if input.ic_mode {
                        // Branch equation replaced by i = i0.
                        sink.mat(branch, p, 0.0);
                        sink.mat(branch, n, 0.0);
                        sink.mat(branch, branch, -1.0);
                        sink.rhs(branch, -ic.unwrap_or(0.0));
                        return;
                    }
                    // Branch equation: v_p - v_n - L*di/dt = 0.
                    sink.mat(branch, p, 1.0);
                    sink.mat(branch, n, -1.0);
                    let (leq, rhs_b) = if dc {
                        (0.0, 0.0)
                    } else {
                        let i_prev = volt(input.x_prev, branch);
                        let i_prev2 = volt(input.x_prev2, branch);
                        let u_prev = volt(input.x_prev, p) - volt(input.x_prev, n);
                        (l * a0, l * (a1 * i_prev + a2 * i_prev2) + b1 * u_prev)
                    };
                    sink.mat(branch, branch, -leq);
                    sink.rhs(branch, rhs_b);
                }
                Dev::Vsrc { p, n, branch, ref wave, .. } => {
                    sink.mat(p, branch, 1.0);
                    sink.mat(n, branch, -1.0);
                    sink.mat(branch, p, 1.0);
                    sink.mat(branch, n, -1.0);
                    sink.rhs(branch, wave.value(input.time) * input.source_scale);
                }
                Dev::Isrc { p, n, ref wave, .. } => {
                    let i = wave.value(input.time) * input.source_scale;
                    sink.rhs(p, -i);
                    sink.rhs(n, i);
                }
                Dev::Diode { p, n, is, nvt, vcrit, jct } => {
                    let u_raw = volt(x, p) - volt(x, n);
                    let u = pnjlim(u_raw, junction.get(jct), nvt, vcrit);
                    if (u - u_raw).abs() > 1e-10 {
                        *limited = true;
                    }
                    junction.set(jct, u);
                    let (i_d, g_d) = diode_eval(u, is, nvt);
                    let g = g_d + input.gmin;
                    sink.mat(p, p, g);
                    sink.mat(p, n, -g);
                    sink.mat(n, p, -g);
                    sink.mat(n, n, g);
                    let ieq = i_d - g_d * u;
                    sink.rhs(p, -ieq);
                    sink.rhs(n, ieq);
                }
                Dev::Mos { d, g, s, b, ref params } => {
                    let (vd, vg, vs, vb) = (volt(x, d), volt(x, g), volt(x, s), volt(x, b));
                    let e = mos_eval(vd, vg, vs, vb, params);
                    // Drain row.
                    sink.mat(d, d, e.g_dd);
                    sink.mat(d, g, e.g_dg);
                    sink.mat(d, s, e.g_ds);
                    sink.mat(d, b, e.g_db);
                    // Source row (current conservation: i_s = -i_d; the bulk
                    // carries no current in this model).
                    sink.mat(s, d, -e.g_dd);
                    sink.mat(s, g, -e.g_dg);
                    sink.mat(s, s, -e.g_ds);
                    sink.mat(s, b, -e.g_db);
                    // Convergence aid: gmin across the channel.
                    sink.mat(d, d, input.gmin);
                    sink.mat(d, s, -input.gmin);
                    sink.mat(s, d, -input.gmin);
                    sink.mat(s, s, input.gmin);
                    let ieq = e.id - (e.g_dd * vd + e.g_dg * vg + e.g_ds * vs + e.g_db * vb);
                    sink.rhs(d, -ieq);
                    sink.rhs(s, ieq);
                }
                Dev::Bjt { c, b, e, sign, is, bf, br, jct_be, jct_bc } => {
                    let (vc, vb, ve) = (volt(x, c), volt(x, b), volt(x, e));
                    let nvt = VT;
                    let vcrit = junction_vcrit(is, nvt);
                    let vbe_raw = sign * (vb - ve);
                    let vbc_raw = sign * (vb - vc);
                    let vbe = pnjlim(vbe_raw, junction.get(jct_be), nvt, vcrit);
                    let vbc = pnjlim(vbc_raw, junction.get(jct_bc), nvt, vcrit);
                    if (vbe - vbe_raw).abs() > 1e-10 || (vbc - vbc_raw).abs() > 1e-10 {
                        *limited = true;
                    }
                    junction.set(jct_be, vbe);
                    junction.set(jct_bc, vbc);
                    let ev = bjt_eval(vbe, vbc, sign, is, bf, br);
                    // Reconstruct limited node voltages for the equivalent
                    // currents: the linearisation point is (vbe, vbc) in the
                    // device frame; express ieq via raw voltages consistent
                    // with the derivatives.
                    let vb_l = vb;
                    let ve_l = vb - sign * vbe;
                    let vc_l = vb - sign * vbc;
                    // Collector row.
                    sink.mat(c, c, ev.g_cc);
                    sink.mat(c, b, ev.g_cb);
                    sink.mat(c, e, ev.g_ce);
                    // Base row.
                    sink.mat(b, c, ev.g_bc);
                    sink.mat(b, b, ev.g_bb);
                    sink.mat(b, e, ev.g_be);
                    // Emitter row: i_e = -(i_c + i_b).
                    sink.mat(e, c, -(ev.g_cc + ev.g_bc));
                    sink.mat(e, b, -(ev.g_cb + ev.g_bb));
                    sink.mat(e, e, -(ev.g_ce + ev.g_be));
                    // gmin across both junctions.
                    sink.mat(b, b, 2.0 * input.gmin);
                    sink.mat(b, e, -input.gmin);
                    sink.mat(e, b, -input.gmin);
                    sink.mat(e, e, input.gmin);
                    sink.mat(b, c, -input.gmin);
                    sink.mat(c, b, -input.gmin);
                    sink.mat(c, c, input.gmin);
                    let ieq_c = ev.ic - (ev.g_cc * vc_l + ev.g_cb * vb_l + ev.g_ce * ve_l);
                    let ieq_b = ev.ib - (ev.g_bc * vc_l + ev.g_bb * vb_l + ev.g_be * ve_l);
                    sink.rhs(c, -ieq_c);
                    sink.rhs(b, -ieq_b);
                    sink.rhs(e, ieq_c + ieq_b);
                }
                Dev::Vcvs { p, n, cp, cn, gain, branch } => {
                    sink.mat(p, branch, 1.0);
                    sink.mat(n, branch, -1.0);
                    sink.mat(branch, p, 1.0);
                    sink.mat(branch, n, -1.0);
                    sink.mat(branch, cp, -gain);
                    sink.mat(branch, cn, gain);
                }
                Dev::Vccs { p, n, cp, cn, gm } => {
                    sink.mat(p, cp, gm);
                    sink.mat(p, cn, -gm);
                    sink.mat(n, cp, -gm);
                    sink.mat(n, cn, gm);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::Method;
    use wavepipe_circuit::Waveform as W;

    fn dc_input<'a>(x_prev: &'a [f64], caps: &'a [f64]) -> StampInput<'a> {
        StampInput {
            time: 0.0,
            coeffs: None,
            x_prev,
            x_prev2: x_prev,
            cap_currents: caps,
            gmin: 1e-12,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        }
    }

    fn divider() -> Circuit {
        let mut ckt = Circuit::new("divider");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, W::dc(10.0)).unwrap();
        ckt.add_resistor("R1", a, b, 1000.0).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1000.0).unwrap();
        ckt
    }

    #[test]
    fn compile_counts() {
        let sys = MnaSystem::compile(&divider()).unwrap();
        assert_eq!(sys.n_nodes(), 2);
        assert_eq!(sys.n_unknowns(), 3);
        assert_eq!(sys.cap_state_count(), 0);
        assert!(sys.pattern().nnz() > 0);
    }

    #[test]
    fn stamp_and_solve_divider_dc() {
        let sys = MnaSystem::compile(&divider()).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; 3];
        let caps: Vec<f64> = vec![];
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        let a = sys.node_unknown("a").unwrap();
        let b = sys.node_unknown("b").unwrap();
        assert!((sol[a] - 10.0).abs() < 1e-9, "v(a) = {}", sol[a]);
        assert!((sol[b] - 5.0).abs() < 1e-9, "v(b) = {}", sol[b]);
        // Source current = -10/2k (flows out of the + terminal).
        let br = sys.branch_unknown("V1").unwrap();
        assert!((sol[br] + 0.005).abs() < 1e-9, "i(V1) = {}", sol[br]);
    }

    #[test]
    fn stamping_twice_gives_same_values() {
        let sys = MnaSystem::compile(&divider()).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; 3];
        let caps: Vec<f64> = vec![];
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let v1 = ws.matrix.values().to_vec();
        let r1 = ws.rhs.clone();
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        assert_eq!(ws.matrix.values(), &v1[..]);
        assert_eq!(ws.rhs, r1);
    }

    #[test]
    fn capacitor_open_in_dc_shorted_dynamically() {
        let mut ckt = Circuit::new("rc");
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, W::dc(1e-3)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-9).unwrap();
        let sys = MnaSystem::compile(&ckt).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; 1];
        let caps = vec![0.0; 1];
        // DC: only R matters -> v = 1 V.
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-9);
        // Transient with huge geq (tiny step): cap holds its previous 0 V.
        let coeffs = IntegCoeffs::new(Method::BackwardEuler, 1e-15, 1e-15);
        let tr = StampInput { coeffs: Some(coeffs), time: 1e-15, ..dc_input(&x, &caps) };
        sys.stamp(&mut ws, &tr, &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        assert!(sol[0].abs() < 1e-4, "cap pins the node, v = {}", sol[0]);
    }

    #[test]
    fn breakpoints_include_sources_and_tstop() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, W::pulse(0.0, 1.0, 1e-9, 1e-9, 1e-9, 2e-9, 0.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 50.0).unwrap();
        let sys = MnaSystem::compile(&ckt).unwrap();
        let bp = sys.breakpoints(10e-9);
        assert!(bp.iter().any(|&t| (t - 1e-9).abs() < 1e-18));
        assert_eq!(*bp.last().unwrap(), 10e-9);
        assert!(bp.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn vccs_stamp_produces_transconductance() {
        let mut ckt = Circuit::new("g");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("V1", inp, Circuit::GROUND, W::dc(2.0)).unwrap();
        ckt.add_vccs("G1", out, Circuit::GROUND, inp, Circuit::GROUND, 1e-3).unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        ckt.add_resistor("Rb", inp, out, 1e9).unwrap(); // connectivity bond
        let sys = MnaSystem::compile(&ckt).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; sys.n_unknowns()];
        let caps: Vec<f64> = vec![];
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        // i = gm*vin = 2 mA out of `out` node -> v(out) = -2 V across 1k.
        let out_i = sys.node_unknown("out").unwrap();
        assert!((sol[out_i] + 2.0).abs() < 1e-4, "v(out) = {}", sol[out_i]);
    }

    /// For every matrix slot and RHS entry, collect the list of devices
    /// writing it, in element order.
    fn writers_of(sys: &MnaSystem) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let plan = &sys.plan;
        let mut slot_writers: Vec<Vec<usize>> = vec![Vec::new(); sys.pattern.nnz()];
        let mut rhs_writers: Vec<Vec<usize>> = vec![Vec::new(); sys.n_unknowns];
        for d in 0..plan.mat_span.len() {
            let mut seen = std::collections::HashSet::new();
            for cursor in plan.mat_span[d].0..plan.mat_span[d].1 {
                if seen.insert(sys.slots[cursor as usize]) {
                    slot_writers[sys.slots[cursor as usize]].push(d);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for k in plan.rhs_span[d].0..plan.rhs_span[d].1 {
                let u = plan.rhs_targets[k as usize] as usize;
                if seen.insert(u) {
                    rhs_writers[u].push(d);
                }
            }
        }
        (slot_writers, rhs_writers)
    }

    #[test]
    fn coloring_never_co_groups_conflicting_elements() {
        for b in wavepipe_circuit::generators::small_suite() {
            let sys = MnaSystem::compile(&b.circuit).unwrap();
            let plan = &sys.plan;
            let (slot_writers, rhs_writers) = writers_of(&sys);
            for writers in slot_writers.iter().chain(&rhs_writers) {
                // Conflicting devices must get strictly increasing colors in
                // element order — the property that makes color-then-element
                // replay reproduce the serial per-slot addition order (and,
                // a fortiori, a proper coloring).
                for w in writers.windows(2) {
                    assert!(
                        plan.color[w[0]] < plan.color[w[1]],
                        "{}: devices {} and {} share a slot but have colors {} >= {}",
                        b.name,
                        w[0],
                        w[1],
                        plan.color[w[0]],
                        plan.color[w[1]],
                    );
                }
            }
            // The replay order must be a permutation grouped by ascending
            // color, ascending element index within each group.
            assert_eq!(plan.order.len(), sys.devices.len());
            for c in 0..plan.n_colors() {
                let grp = &plan.order[plan.group[c] as usize..plan.group[c + 1] as usize];
                for w in grp.windows(2) {
                    assert!(w[0] < w[1], "{}: group {c} not ascending", b.name);
                }
                for &d in grp {
                    assert_eq!(plan.color[d as usize] as usize, c);
                }
            }
        }
    }

    #[test]
    fn set_source_names_the_missing_source() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, W::dc(1.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let mut sys = MnaSystem::compile(&ckt).unwrap();
        assert!(sys.set_source("v1", 2.0).is_ok(), "lookup is case-insensitive");
        match sys.set_source("Vnope", 2.0) {
            Err(crate::EngineError::UnknownSource { name }) => assert_eq!(name, "Vnope"),
            other => panic!("expected UnknownSource, got {other:?}"),
        }
    }
}
