//! Criterion bench regenerating Figure C (thread scaling): wall-clock cost
//! of backward pipelining at 1-4 threads on the power grid, plus the rmax
//! ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use wavepipe_circuit::generators;
use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe_engine::SimOptions;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_scaling");
    group.sample_size(10);
    let b = generators::power_grid(6, 6);
    for threads in 1..=4 {
        group.bench_function(format!("backward_x{threads}"), |bch| {
            let opts = WavePipeOptions::new(Scheme::Backward, threads);
            bch.iter(|| run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap())
        });
    }
    // rmax ablation: the growth cap BP compounds across threads.
    for rmax in [1.5f64, 2.0, 3.0] {
        group.bench_function(format!("backward_x2_rmax{rmax}"), |bch| {
            let opts = WavePipeOptions::new(Scheme::Backward, 2)
                .with_sim(SimOptions::default().with_rmax(rmax));
            bch.iter(|| run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
