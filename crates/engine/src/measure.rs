//! Waveform measurements: the `.measure`-style post-processing a designer
//! applies to transient results (threshold crossings, delays, rise/fall
//! times, period, overshoot, RMS/average).
//!
//! All functions operate on a `(time, value)` trace as produced by
//! [`crate::TransientResult::trace`], interpolating linearly between points.

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Value crosses the threshold upward.
    Rising,
    /// Value crosses the threshold downward.
    Falling,
    /// Either direction.
    Any,
}

/// Returns every instant the trace crosses `threshold` in the requested
/// direction (linear interpolation).
///
/// ```
/// use wavepipe_engine::measure::{crossings, Edge};
///
/// let ramp = vec![(0.0, 0.0), (1.0, 1.0)];
/// assert_eq!(crossings(&ramp, 0.25, Edge::Rising), vec![0.25]);
/// ```
pub fn crossings(trace: &[(f64, f64)], threshold: f64, edge: Edge) -> Vec<f64> {
    let mut out = Vec::new();
    for w in trace.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        let rising = v0 < threshold && v1 >= threshold;
        let falling = v0 > threshold && v1 <= threshold;
        let hit = match edge {
            Edge::Rising => rising,
            Edge::Falling => falling,
            Edge::Any => rising || falling,
        };
        if hit && v1 != v0 {
            out.push(t0 + (t1 - t0) * (threshold - v0) / (v1 - v0));
        }
    }
    out
}

/// The `n`-th (0-based) crossing of `threshold` in the given direction.
pub fn nth_crossing(trace: &[(f64, f64)], threshold: f64, edge: Edge, n: usize) -> Option<f64> {
    crossings(trace, threshold, edge).into_iter().nth(n)
}

/// Delay from the `n`-th crossing of one trace to the `n`-th crossing of
/// another (e.g. input edge to output edge of a gate).
pub fn delay(
    from: &[(f64, f64)],
    from_threshold: f64,
    from_edge: Edge,
    to: &[(f64, f64)],
    to_threshold: f64,
    to_edge: Edge,
    n: usize,
) -> Option<f64> {
    let a = nth_crossing(from, from_threshold, from_edge, n)?;
    // First `to` crossing at or after the `from` event.
    let b = crossings(to, to_threshold, to_edge).into_iter().find(|&t| t >= a)?;
    Some(b - a)
}

/// 10%–90% rise time of the `n`-th low-to-high transition between the given
/// levels.
pub fn rise_time(trace: &[(f64, f64)], low: f64, high: f64, n: usize) -> Option<f64> {
    let swing = high - low;
    let t10 = crossings(trace, low + 0.1 * swing, Edge::Rising);
    let t90 = crossings(trace, low + 0.9 * swing, Edge::Rising);
    let a = *t10.get(n)?;
    let b = t90.into_iter().find(|&t| t >= a)?;
    Some(b - a)
}

/// 90%–10% fall time of the `n`-th high-to-low transition.
pub fn fall_time(trace: &[(f64, f64)], low: f64, high: f64, n: usize) -> Option<f64> {
    let swing = high - low;
    let t90 = crossings(trace, low + 0.9 * swing, Edge::Falling);
    let t10 = crossings(trace, low + 0.1 * swing, Edge::Falling);
    let a = *t90.get(n)?;
    let b = t10.into_iter().find(|&t| t >= a)?;
    Some(b - a)
}

/// Oscillation period estimated from the mean spacing of the last `cycles`
/// rising crossings of `threshold` (skips the startup transient).
pub fn period(trace: &[(f64, f64)], threshold: f64, cycles: usize) -> Option<f64> {
    let rising = crossings(trace, threshold, Edge::Rising);
    if rising.len() < cycles + 1 || cycles == 0 {
        return None;
    }
    let tail = &rising[rising.len() - cycles - 1..];
    Some((tail[cycles] - tail[0]) / cycles as f64)
}

/// Overshoot above `target`, as a fraction of `target` (0 if never exceeded).
pub fn overshoot(trace: &[(f64, f64)], target: f64) -> f64 {
    if target == 0.0 {
        return 0.0;
    }
    let peak = trace.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    ((peak - target) / target.abs()).max(0.0)
}

/// Time-weighted average of the trace over `[t0, t1]` (trapezoidal).
pub fn average(trace: &[(f64, f64)], t0: f64, t1: f64) -> Option<f64> {
    let integral = integrate(trace, t0, t1)?;
    Some(integral / (t1 - t0))
}

/// Time-weighted RMS of the trace over `[t0, t1]`.
pub fn rms(trace: &[(f64, f64)], t0: f64, t1: f64) -> Option<f64> {
    let squared: Vec<(f64, f64)> = trace.iter().map(|&(t, v)| (t, v * v)).collect();
    let integral = integrate(&squared, t0, t1)?;
    Some((integral / (t1 - t0)).sqrt())
}

/// Trapezoidal integral of the trace over `[t0, t1]`; `None` if the window
/// is empty or outside the trace.
pub fn integrate(trace: &[(f64, f64)], t0: f64, t1: f64) -> Option<f64> {
    if trace.len() < 2 || t1 <= t0 {
        return None;
    }
    if t0 < trace[0].0 - 1e-30 || t1 > trace[trace.len() - 1].0 + 1e-30 {
        return None;
    }
    let sample = |t: f64| -> f64 {
        let k = trace.partition_point(|&(tt, _)| tt <= t);
        if k == 0 {
            return trace[0].1;
        }
        if k >= trace.len() {
            return trace[trace.len() - 1].1;
        }
        let (ta, va) = trace[k - 1];
        let (tb, vb) = trace[k];
        va + (vb - va) * (t - ta) / (tb - ta)
    };
    let mut sum = 0.0;
    let mut prev = (t0, sample(t0));
    for &(t, v) in trace.iter().filter(|&&(t, _)| t > t0 && t < t1) {
        sum += 0.5 * (prev.1 + v) * (t - prev.0);
        prev = (t, v);
    }
    let end = (t1, sample(t1));
    sum += 0.5 * (prev.1 + end.1) * (end.0 - prev.0);
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_up_down() -> Vec<(f64, f64)> {
        // 0 -> 1 over [0,1], flat to 2, 1 -> 0 over [2,3].
        vec![(0.0, 0.0), (1.0, 1.0), (2.0, 1.0), (3.0, 0.0)]
    }

    #[test]
    fn crossings_both_directions() {
        let tr = ramp_up_down();
        assert_eq!(crossings(&tr, 0.5, Edge::Rising), vec![0.5]);
        assert_eq!(crossings(&tr, 0.5, Edge::Falling), vec![2.5]);
        assert_eq!(crossings(&tr, 0.5, Edge::Any).len(), 2);
    }

    #[test]
    fn nth_crossing_indexes() {
        let tr: Vec<(f64, f64)> = (0..40)
            .map(|k| {
                let t = k as f64 * 0.25;
                (t, (std::f64::consts::TAU * t / 2.0).sin())
            })
            .collect();
        let c0 = nth_crossing(&tr, 0.0, Edge::Rising, 0);
        let c1 = nth_crossing(&tr, 0.0, Edge::Rising, 1);
        assert!(c1.unwrap() - c0.unwrap() > 1.5, "one period apart");
    }

    #[test]
    fn rise_and_fall_times_of_linear_edges() {
        let tr = ramp_up_down();
        // Linear 0->1 edge over 1 s: 10%-90% spans 0.8 s.
        let r = rise_time(&tr, 0.0, 1.0, 0).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "rise {r}");
        let f = fall_time(&tr, 0.0, 1.0, 0).unwrap();
        assert!((f - 0.8).abs() < 1e-12, "fall {f}");
    }

    #[test]
    fn delay_between_traces() {
        let a = vec![(0.0, 0.0), (1.0, 1.0), (4.0, 1.0)];
        let b = vec![(0.0, 0.0), (2.0, 0.0), (3.0, 1.0), (4.0, 1.0)];
        let d = delay(&a, 0.5, Edge::Rising, &b, 0.5, Edge::Rising, 0).unwrap();
        assert!((d - 2.0).abs() < 1e-12, "delay {d}");
    }

    #[test]
    fn period_of_sine() {
        let f = 3.0;
        let tr: Vec<(f64, f64)> = (0..2000)
            .map(|k| {
                let t = k as f64 * 0.001;
                (t, (std::f64::consts::TAU * f * t).sin())
            })
            .collect();
        let p = period(&tr, 0.0, 3).unwrap();
        assert!((p - 1.0 / f).abs() < 1e-3, "period {p}");
    }

    #[test]
    fn overshoot_measures_peak_excess() {
        let tr = vec![(0.0, 0.0), (1.0, 1.2), (2.0, 1.0)];
        assert!((overshoot(&tr, 1.0) - 0.2).abs() < 1e-12);
        assert_eq!(overshoot(&ramp_up_down(), 2.0), 0.0);
    }

    #[test]
    fn average_and_rms_of_constant() {
        let tr = vec![(0.0, 2.0), (5.0, 2.0)];
        assert!((average(&tr, 1.0, 4.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((rms(&tr, 1.0, 4.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let tr: Vec<(f64, f64)> = (0..=10000)
            .map(|k| {
                let t = k as f64 * 1e-4;
                (t, 3.0 * (std::f64::consts::TAU * 10.0 * t).sin())
            })
            .collect();
        let r = rms(&tr, 0.0, 1.0).unwrap();
        assert!((r - 3.0 / std::f64::consts::SQRT_2).abs() < 1e-3, "rms {r}");
    }

    #[test]
    fn integrate_rejects_bad_windows() {
        let tr = ramp_up_down();
        assert!(integrate(&tr, 2.0, 1.0).is_none());
        assert!(integrate(&tr, -1.0, 2.0).is_none());
        assert!(integrate(&tr, 0.0, 9.0).is_none());
    }

    #[test]
    fn integrate_of_triangle() {
        // Area of the up-flat-down trapezoid: 0.5 + 1 + 0.5 = 2.
        let tr = ramp_up_down();
        let a = integrate(&tr, 0.0, 3.0).unwrap();
        assert!((a - 2.0).abs() < 1e-12, "area {a}");
    }
}
