//! Lock-light live metrics: atomic counters, gauges, and streaming
//! histograms, snapshot-able while a simulation runs.
//!
//! The registry is the second observability layer, between the raw event
//! stream ([`crate::Probe`]) and the offline trace analysis
//! ([`mod@crate::analyze`]): instrumented sites publish *both* — events carry
//! the full story for replay, the registry answers "how is the run going
//! right now" without draining or re-walking the event buffer.
//!
//! Design rules, mirroring [`crate::ProbeHandle`]:
//!
//! * the disabled path ([`MetricsHandle::none`], the default) is a single
//!   `Option` branch per call site — no atomics, no locks, no formatting;
//! * scalar counters and gauges are relaxed atomics (lock-free, any lane);
//! * labeled families and histograms sit behind a mutex but are only
//!   touched at per-solve granularity (never per device or per matrix
//!   entry), so contention stays negligible next to a factorization;
//! * metrics never feed back into the simulation — like probes, they only
//!   observe, so an instrumented run is bit-identical to a bare one.
//!
//! [`MetricsRegistry::snapshot`] can be called concurrently with the run
//! (the sampler thread behind `netlist_runner --metrics-every` does exactly
//! that); the result is a consistent-enough point-in-time [`Snapshot`] with
//! a [`Snapshot::diff`] API and Prometheus / JSON / pretty encoders.

use crate::histogram::Histogram;
use crate::json;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic event counters, one atomic cell each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the names are the documentation
pub enum Counter {
    Rounds,
    PointsAccepted,
    LteRejects,
    NewtonRejects,
    Solves,
    NewtonIterations,
    Factorizations,
    Refactorizations,
    JacobianReuses,
    DeviceEvals,
    BypassedDevices,
    CompanionHits,
    LeadAccepted,
    LeadDiscarded,
    SpeculationAccepted,
    SpeculationDiscarded,
    WorkersLost,
    SerialFallbacks,
    DeadlineHits,
    RecoveryAttempts,
    RecoveryRescues,
    CacheRollbacks,
    KrylovIterations,
    PrecondRefreshes,
    SolverFallbacks,
    LaneGroups,
    LanePackedSolves,
    LaneEjections,
}

impl Counter {
    /// Every counter, in stable exposition order.
    pub const ALL: [Counter; 28] = [
        Counter::Rounds,
        Counter::PointsAccepted,
        Counter::LteRejects,
        Counter::NewtonRejects,
        Counter::Solves,
        Counter::NewtonIterations,
        Counter::Factorizations,
        Counter::Refactorizations,
        Counter::JacobianReuses,
        Counter::DeviceEvals,
        Counter::BypassedDevices,
        Counter::CompanionHits,
        Counter::LeadAccepted,
        Counter::LeadDiscarded,
        Counter::SpeculationAccepted,
        Counter::SpeculationDiscarded,
        Counter::WorkersLost,
        Counter::SerialFallbacks,
        Counter::DeadlineHits,
        Counter::RecoveryAttempts,
        Counter::RecoveryRescues,
        Counter::CacheRollbacks,
        Counter::KrylovIterations,
        Counter::PrecondRefreshes,
        Counter::SolverFallbacks,
        Counter::LaneGroups,
        Counter::LanePackedSolves,
        Counter::LaneEjections,
    ];

    /// Stable machine-readable name (also the Prometheus metric stem).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Rounds => "rounds",
            Counter::PointsAccepted => "points_accepted",
            Counter::LteRejects => "lte_rejects",
            Counter::NewtonRejects => "newton_rejects",
            Counter::Solves => "solves",
            Counter::NewtonIterations => "newton_iterations",
            Counter::Factorizations => "factorizations",
            Counter::Refactorizations => "refactorizations",
            Counter::JacobianReuses => "jacobian_reuses",
            Counter::DeviceEvals => "device_evals",
            Counter::BypassedDevices => "bypassed_devices",
            Counter::CompanionHits => "companion_hits",
            Counter::LeadAccepted => "lead_accepted",
            Counter::LeadDiscarded => "lead_discarded",
            Counter::SpeculationAccepted => "speculation_accepted",
            Counter::SpeculationDiscarded => "speculation_discarded",
            Counter::WorkersLost => "workers_lost",
            Counter::SerialFallbacks => "serial_fallbacks",
            Counter::DeadlineHits => "deadline_hits",
            Counter::RecoveryAttempts => "recovery_attempts",
            Counter::RecoveryRescues => "recovery_rescues",
            Counter::CacheRollbacks => "cache_rollbacks",
            Counter::KrylovIterations => "krylov_iterations",
            Counter::PrecondRefreshes => "precond_refreshes",
            Counter::SolverFallbacks => "solver_fallbacks",
            Counter::LaneGroups => "lane_groups",
            Counter::LanePackedSolves => "lane_packed_solves",
            Counter::LaneEjections => "lane_ejections",
        }
    }
}

/// Instantaneous values (last write wins), stored as `f64` bits in an
/// atomic cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Gauge {
    /// EMA of the backward-lead accept rate (0..1).
    LeadAcceptEma,
    /// Whether the combined scheme is currently speculating (0 or 1).
    DeepMode,
    /// Current integration stride, seconds.
    CurrentH,
    /// Width of the most recent pipelined round.
    RoundWidth,
    /// Lanes observed active so far (max lane + 1).
    ActiveLanes,
}

impl Gauge {
    /// Every gauge, in stable exposition order.
    pub const ALL: [Gauge; 5] = [
        Gauge::LeadAcceptEma,
        Gauge::DeepMode,
        Gauge::CurrentH,
        Gauge::RoundWidth,
        Gauge::ActiveLanes,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::LeadAcceptEma => "lead_accept_ema",
            Gauge::DeepMode => "deep_mode",
            Gauge::CurrentH => "current_h",
            Gauge::RoundWidth => "round_width",
            Gauge::ActiveLanes => "active_lanes",
        }
    }
}

/// Labeled counter families: the same few stories broken down by lane,
/// scheme, device class, or cache layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Family {
    /// Point-solves per pipeline lane (`lane="0"`, ...).
    SolvesByLane,
    /// Committed points per pipeline lane.
    PointsByLane,
    /// Committed points per scheme (`scheme="backward"`, ...) — more than
    /// one label appears only under the adaptive scheduler.
    PointsByScheme,
    /// Pipelined rounds per scheme.
    RoundsByScheme,
    /// Nonlinear model evaluations per device class (`class="mos"`, ...).
    EvalsByClass,
    /// Bypassed (cache-replayed) nonlinear devices per device class.
    BypassByClass,
    /// Hits per solver cache layer (`cache="bypass"|"chord"|"companion"`).
    CacheHits,
    /// Misses per solver cache layer.
    CacheMisses,
}

impl Family {
    /// Every family, in stable exposition order.
    pub const ALL: [Family; 8] = [
        Family::SolvesByLane,
        Family::PointsByLane,
        Family::PointsByScheme,
        Family::RoundsByScheme,
        Family::EvalsByClass,
        Family::BypassByClass,
        Family::CacheHits,
        Family::CacheMisses,
    ];

    /// Stable machine-readable name (also the Prometheus metric stem).
    pub fn name(self) -> &'static str {
        match self {
            Family::SolvesByLane => "lane_solves",
            Family::PointsByLane => "lane_points",
            Family::PointsByScheme => "scheme_points",
            Family::RoundsByScheme => "scheme_rounds",
            Family::EvalsByClass => "class_evals",
            Family::BypassByClass => "class_bypassed",
            Family::CacheHits => "cache_hits",
            Family::CacheMisses => "cache_misses",
        }
    }

    /// The label key this family is broken down by.
    pub fn label_key(self) -> &'static str {
        match self {
            Family::SolvesByLane | Family::PointsByLane => "lane",
            Family::PointsByScheme | Family::RoundsByScheme => "scheme",
            Family::EvalsByClass | Family::BypassByClass => "class",
            Family::CacheHits | Family::CacheMisses => "cache",
        }
    }
}

/// Streaming histogram series kept by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Newton iterations per point-solve.
    NewtonItersPerSolve,
    /// Accepted step sizes, seconds.
    StepSize,
    /// Point-solve wall time, microseconds (timing — excluded from anything
    /// that promises byte-stability).
    SolveMicros,
}

impl Series {
    /// Every series, in stable exposition order.
    pub const ALL: [Series; 3] =
        [Series::NewtonItersPerSolve, Series::StepSize, Series::SolveMicros];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Series::NewtonItersPerSolve => "newton_iters_per_solve",
            Series::StepSize => "step_size",
            Series::SolveMicros => "solve_us",
        }
    }

    fn fresh(self) -> Histogram {
        match self {
            Series::NewtonItersPerSolve => Histogram::integer(16),
            Series::StepSize => Histogram::log10(-15, -3, 2),
            Series::SolveMicros => Histogram::log10(0, 6, 3),
        }
    }
}

/// Pre-rendered lane labels so the per-solve hot path never formats.
const LANE_LABELS: [&str; 16] =
    ["0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15"];

fn lane_label(lane: u32) -> &'static str {
    LANE_LABELS.get(lane as usize).copied().unwrap_or("16+")
}

/// The live metrics registry. Create one with [`MetricsRegistry::shared`],
/// hand a [`MetricsHandle`] to the simulation options, and call
/// [`MetricsRegistry::snapshot`] whenever — including mid-run.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    labeled: Mutex<BTreeMap<Family, BTreeMap<String, u64>>>,
    series: Mutex<Vec<Histogram>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0f64.to_bits())),
            labeled: Mutex::new(BTreeMap::new()),
            series: Mutex::new(Series::ALL.iter().map(|s| s.fresh()).collect()),
        }
    }

    /// Convenience: a new registry already wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Adds `n` to a counter (relaxed; callable from any lane).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Sets a gauge (last write wins).
    #[inline]
    pub fn set_gauge(&self, g: Gauge, v: f64) {
        self.gauges[g as usize].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises a gauge to at least `v` (used for high-water marks such as
    /// [`Gauge::ActiveLanes`]).
    pub fn raise_gauge(&self, g: Gauge, v: f64) {
        let cell = &self.gauges[g as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, g: Gauge) -> f64 {
        f64::from_bits(self.gauges[g as usize].load(Ordering::Relaxed))
    }

    /// Adds `n` to one label cell of a family.
    pub fn add_labeled(&self, f: Family, label: &str, n: u64) {
        let mut map = self.labeled.lock().expect("metrics labeled map poisoned");
        let inner = map.entry(f).or_default();
        match inner.get_mut(label) {
            Some(cell) => *cell += n,
            None => {
                inner.insert(label.to_string(), n);
            }
        }
    }

    /// Records one observation into a histogram series.
    pub fn observe(&self, s: Series, v: f64) {
        self.series.lock().expect("metrics series poisoned")[s as usize].observe(v);
    }

    /// A point-in-time snapshot of everything the registry holds. Safe (and
    /// intended) to call while the simulation is still running.
    pub fn snapshot(&self) -> Snapshot {
        let counters = Counter::ALL.iter().map(|&c| (c.name(), self.get(c))).collect();
        let gauges = Gauge::ALL.iter().map(|&g| (g.name(), self.gauge(g))).collect();
        let labeled = {
            let map = self.labeled.lock().expect("metrics labeled map poisoned");
            let mut out = Vec::new();
            for &f in &Family::ALL {
                if let Some(inner) = map.get(&f) {
                    for (label, &value) in inner {
                        out.push(LabeledValue {
                            family: f.name(),
                            key: f.label_key(),
                            label: label.clone(),
                            value,
                        });
                    }
                }
            }
            out
        };
        let series = {
            let hs = self.series.lock().expect("metrics series poisoned");
            Series::ALL.iter().map(|&s| (s.name(), hs[s as usize].clone())).collect()
        };
        Snapshot { counters, gauges, labeled, series }
    }
}

/// One cell of a labeled counter family, e.g. `cache_hits{cache="chord"}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledValue {
    /// Family name, e.g. `cache_hits`.
    pub family: &'static str,
    /// Label key, e.g. `cache`.
    pub key: &'static str,
    /// Label value, e.g. `chord`.
    pub label: String,
    /// The count.
    pub value: u64,
}

/// A point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Every populated labeled cell, family-major, labels sorted.
    pub labeled: Vec<LabeledValue>,
    /// `(name, histogram)` for every series, in [`Series::ALL`] order.
    pub series: Vec<(&'static str, Histogram)>,
}

impl Snapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }

    /// Labeled cell value by family and label (0 when absent).
    pub fn labeled_value(&self, family: &str, label: &str) -> u64 {
        self.labeled
            .iter()
            .find(|lv| lv.family == family && lv.label == label)
            .map_or(0, |lv| lv.value)
    }

    /// The delta since `earlier`: counters and labeled families are
    /// subtracted (saturating, so a mismatched pair degrades to zeros
    /// rather than wrapping); gauges and histograms are instantaneous
    /// levels and keep their current values.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|&(name, v)| (name, v.saturating_sub(earlier.counter(name))))
            .collect();
        let labeled = self
            .labeled
            .iter()
            .map(|lv| LabeledValue {
                value: lv.value.saturating_sub(earlier.labeled_value(lv.family, &lv.label)),
                label: lv.label.clone(),
                ..*lv
            })
            .collect();
        Snapshot { counters, gauges: self.gauges.clone(), labeled, series: self.series.clone() }
    }

    /// Prometheus text exposition (0.0.4): counters and labeled families as
    /// `wavepipe_*_total`, gauges as `wavepipe_*`, histograms with
    /// cumulative `_bucket{le=...}` lines plus `_sum` / `_count`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &(name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE wavepipe_{name}_total counter");
            let _ = writeln!(out, "wavepipe_{name}_total {v}");
        }
        let mut last_family = "";
        for lv in &self.labeled {
            if lv.family != last_family {
                let _ = writeln!(out, "# TYPE wavepipe_{}_total counter", lv.family);
                last_family = lv.family;
            }
            let _ = writeln!(
                out,
                "wavepipe_{}_total{{{}=\"{}\"}} {}",
                lv.family,
                lv.key,
                json::escape(&lv.label),
                lv.value
            );
        }
        for &(name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE wavepipe_{name} gauge");
            let _ = writeln!(out, "wavepipe_{name} {}", json::fmt_f64(v));
        }
        for (name, h) in &self.series {
            let _ = writeln!(out, "# TYPE wavepipe_{name} histogram");
            for (le, cum) in h.cumulative_buckets() {
                let le = if le.is_infinite() { "+Inf".to_string() } else { json::fmt_f64(le) };
                let _ = writeln!(out, "wavepipe_{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "wavepipe_{name}_sum {}", json::fmt_f64(h.sum()));
            let _ = writeln!(out, "wavepipe_{name}_count {}", h.count());
        }
        out
    }

    /// A single JSON object with `counters`, `gauges`, `labeled`, and
    /// `series` sections (histograms as count / mean / quantiles).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, &(name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, &(name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", json::fmt_f64(v));
        }
        out.push_str("},\"labeled\":[");
        for (i, lv) in self.labeled.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"family\":\"{}\",\"{}\":\"{}\",\"value\":{}}}",
                lv.family,
                lv.key,
                json::escape(&lv.label),
                lv.value
            );
        }
        out.push_str("],\"series\":{");
        for (i, (name, h)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{{\"count\":{}", h.count());
            if let (Some(mean), Some(p50), Some(p99)) =
                (h.mean(), h.quantile(0.5), h.quantile(0.99))
            {
                let _ = write!(
                    out,
                    ",\"mean\":{},\"p50\":{},\"p99\":{}",
                    json::fmt_f64(mean),
                    json::fmt_f64(p50),
                    json::fmt_f64(p99)
                );
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Human-readable table: non-zero counters, gauges, labeled cells, and
    /// series summaries.
    pub fn to_pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("metrics snapshot\n");
        for &(name, v) in &self.counters {
            if v > 0 {
                let _ = writeln!(out, "  {name:<26} {v:>12}");
            }
        }
        for lv in &self.labeled {
            let cell = format!("{}{{{}={}}}", lv.family, lv.key, lv.label);
            let _ = writeln!(out, "  {cell:<26} {:>12}", lv.value);
        }
        for &(name, v) in &self.gauges {
            if v != 0.0 {
                let _ = writeln!(out, "  {name:<26} {:>12}", json::fmt_f64(v));
            }
        }
        for (name, h) in &self.series {
            if h.count() > 0 {
                let _ = writeln!(
                    out,
                    "  {name:<26} n={} mean={:.3e} p50={:.3e} p99={:.3e}",
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.quantile(0.5).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                );
            }
        }
        out
    }
}

/// A cloneable, lane-tagged handle to an optional [`MetricsRegistry`] —
/// the exact shape of [`crate::ProbeHandle`], carried next to it on the
/// simulation options. With no registry attached (the default) every
/// publishing call is a single branch.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    reg: Option<Arc<MetricsRegistry>>,
    lane: u32,
}

impl MetricsHandle {
    /// The disabled handle (no registry attached).
    pub fn none() -> Self {
        MetricsHandle::default()
    }

    /// A handle publishing into `reg`, initially on lane 0.
    pub fn new(reg: Arc<MetricsRegistry>) -> Self {
        MetricsHandle { reg: Some(reg), lane: 0 }
    }

    /// The same registry, tagged with a different lane. Used when handing a
    /// solver to a worker thread.
    pub fn with_lane(&self, lane: u32) -> Self {
        MetricsHandle { reg: self.reg.clone(), lane }
    }

    /// This handle's lane tag.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Whether a registry is attached (i.e. publishes are observable).
    /// `#[inline]` so the disabled-path check folds to one predictable
    /// branch inside cross-crate hot loops.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.reg.is_some()
    }

    /// The attached registry, if any (for snapshotting from the driver side).
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.reg.as_ref()
    }

    /// Increments a counter by 1.
    #[inline]
    pub fn inc(&self, c: Counter) {
        if let Some(r) = &self.reg {
            r.add(c, 1);
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(r) = &self.reg {
            r.add(c, n);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&self, g: Gauge, v: f64) {
        if let Some(r) = &self.reg {
            r.set_gauge(g, v);
        }
    }

    /// Adds `n` to one label cell of a family.
    #[inline]
    pub fn add_labeled(&self, f: Family, label: &str, n: u64) {
        if let Some(r) = &self.reg {
            r.add_labeled(f, label, n);
        }
    }

    /// Adds `n` to this handle's lane cell of a per-lane family, and keeps
    /// the [`Gauge::ActiveLanes`] high-water mark current.
    #[inline]
    pub fn add_lane(&self, f: Family, n: u64) {
        if let Some(r) = &self.reg {
            r.add_labeled(f, lane_label(self.lane), n);
            r.raise_gauge(Gauge::ActiveLanes, f64::from(self.lane) + 1.0);
        }
    }

    /// Records one observation into a histogram series.
    #[inline]
    pub fn observe(&self, s: Series, v: f64) {
        if let Some(r) = &self.reg {
            r.observe(s, v);
        }
    }

    /// A snapshot of the attached registry, if any.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.reg.as_ref().map(|r| r.snapshot())
    }
}

impl fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsHandle")
            .field("enabled", &self.enabled())
            .field("lane", &self.lane)
            .finish()
    }
}

/// Handles compare equal when they point at the *same* registry (or both
/// at none) on the same lane — mirrors [`crate::ProbeHandle`]'s equality
/// so options structs stay `PartialEq`.
impl PartialEq for MetricsHandle {
    fn eq(&self, other: &Self) -> bool {
        self.lane == other.lane
            && match (&self.reg, &other.reg) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_compares_equal() {
        let h = MetricsHandle::none();
        assert!(!h.enabled());
        h.inc(Counter::Solves);
        h.add_lane(Family::SolvesByLane, 3);
        h.observe(Series::StepSize, 1e-9);
        assert!(h.snapshot().is_none());
        assert_eq!(h, MetricsHandle::default());
    }

    #[test]
    fn counters_gauges_and_families_round_trip() {
        let reg = MetricsRegistry::shared();
        let h = MetricsHandle::new(reg.clone());
        h.inc(Counter::PointsAccepted);
        h.add(Counter::NewtonIterations, 5);
        h.set_gauge(Gauge::CurrentH, 2.5e-9);
        h.add_labeled(Family::CacheHits, "chord", 7);
        h.with_lane(2).add_lane(Family::SolvesByLane, 4);
        h.observe(Series::NewtonItersPerSolve, 3.0);

        let s = reg.snapshot();
        assert_eq!(s.counter("points_accepted"), 1);
        assert_eq!(s.counter("newton_iterations"), 5);
        assert_eq!(s.labeled_value("cache_hits", "chord"), 7);
        assert_eq!(s.labeled_value("lane_solves", "2"), 4);
        assert_eq!(reg.gauge(Gauge::CurrentH), 2.5e-9);
        assert_eq!(reg.gauge(Gauge::ActiveLanes), 3.0);
        let (name, hist) = &s.series[0];
        assert_eq!(*name, "newton_iters_per_solve");
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_labels() {
        let reg = MetricsRegistry::shared();
        let h = MetricsHandle::new(reg.clone());
        h.add(Counter::Solves, 10);
        h.add_labeled(Family::CacheHits, "bypass", 4);
        let early = reg.snapshot();
        h.add(Counter::Solves, 7);
        h.add_labeled(Family::CacheHits, "bypass", 2);
        h.set_gauge(Gauge::RoundWidth, 3.0);
        let late = reg.snapshot();
        let d = late.diff(&early);
        assert_eq!(d.counter("solves"), 7);
        assert_eq!(d.labeled_value("cache_hits", "bypass"), 2);
        // Gauges are levels, not deltas.
        assert_eq!(d.gauges.iter().find(|(n, _)| *n == "round_width").unwrap().1, 3.0);
    }

    #[test]
    fn encoders_emit_every_section() {
        let reg = MetricsRegistry::shared();
        let h = MetricsHandle::new(reg.clone());
        h.add(Counter::PointsAccepted, 42);
        h.add_labeled(Family::CacheHits, "companion", 9);
        h.set_gauge(Gauge::LeadAcceptEma, 0.75);
        h.observe(Series::StepSize, 1e-9);
        let s = reg.snapshot();

        let prom = s.to_prometheus();
        assert!(prom.contains("wavepipe_points_accepted_total 42"));
        assert!(prom.contains("wavepipe_cache_hits_total{cache=\"companion\"} 9"));
        assert!(prom.contains("wavepipe_lead_accept_ema 0.75"));
        assert!(prom.contains("wavepipe_step_size_count 1"));
        assert!(prom.contains("le=\"+Inf\""));

        let js = s.to_json();
        let parsed = json::parse(&js).expect("snapshot json parses");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("points_accepted")).and_then(|v| v.as_f64()),
            Some(42.0)
        );
        assert_eq!(
            parsed
                .get("series")
                .and_then(|s| s.get("step_size"))
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );

        let pretty = s.to_pretty();
        assert!(pretty.contains("points_accepted"));
        assert!(pretty.contains("cache_hits{cache=companion}"));
    }

    #[test]
    fn snapshot_is_safe_while_publishing() {
        let reg = MetricsRegistry::shared();
        let h = MetricsHandle::new(reg.clone());
        let publisher = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                h.inc(Counter::Solves);
                if i % 64 == 0 {
                    h.add_labeled(Family::CacheHits, "chord", 1);
                }
            }
        });
        let mut last = 0;
        for _ in 0..50 {
            let s = reg.snapshot();
            let v = s.counter("solves");
            assert!(v >= last, "counters are monotone under concurrent snapshots");
            last = v;
        }
        publisher.join().expect("publisher thread");
        assert_eq!(reg.snapshot().counter("solves"), 10_000);
    }
}
