//! Run reports: work accounting and speedup computation.

use crate::options::Scheme;
use wavepipe_engine::{EngineError, Result, SimStats, TransientResult};
use wavepipe_telemetry::TelemetrySummary;

/// Outcome of a WavePipe run: the waveform plus parallel work accounting.
///
/// Two cost views are reported:
///
/// * **total** — work summed over every thread (what the machine did);
/// * **critical path** — per round, only the *maximum* concurrent task cost
///   counts, plus any sequential commit/refinement work. On an
///   otherwise-idle machine with at least `threads` cores, wall-clock time
///   is proportional to the critical path; reporting it makes the speedup
///   measurement hardware-independent (this container has one core).
#[derive(Debug, Clone)]
pub struct WavePipeReport {
    /// The simulated waveform (accepted points only).
    pub result: TransientResult,
    /// The scheme that produced it.
    pub scheme: Scheme,
    /// Threads configured (total budget across lanes and stamp workers).
    pub threads: usize,
    /// Pipeline lanes the budget afforded (equals `threads` unless the
    /// two-level lanes x stamp-workers split is active).
    pub lanes: usize,
    /// Per-lane stamp workers (`0` when stamping ran serially).
    pub stamp_workers: usize,
    /// Parallel rounds executed.
    pub rounds: usize,
    /// Work summed across all threads.
    pub total: SimStats,
    /// Critical-path work in abstract units (see [`SimStats::work_units`]).
    pub critical_work: u64,
    /// Critical-path wall time in nanoseconds.
    pub critical_ns: u128,
    /// Backward pipelining: leading points accepted / rejected.
    pub lead_accepted: usize,
    /// Backward pipelining: leading points discarded (LTE or Newton).
    pub lead_rejected: usize,
    /// Forward pipelining: speculative solves whose prediction was accepted
    /// and refined.
    pub speculation_accepted: usize,
    /// Forward pipelining: speculative solves discarded.
    pub speculation_rejected: usize,
    /// Pool workers lost to panics during the run (each loss of a respawned
    /// worker counts again). Worker loss never affects the waveform — lost
    /// tasks are speculative and are simply discarded.
    pub workers_lost: usize,
    /// Aggregated telemetry (`None` unless a probe with summary support —
    /// e.g. [`wavepipe_telemetry::RecordingProbe`] — was attached to the run).
    pub telemetry: Option<TelemetrySummary>,
}

impl WavePipeReport {
    /// Modelled speedup over a serial run: serial work divided by this run's
    /// critical-path work.
    pub fn modeled_speedup(&self, serial: &SimStats) -> f64 {
        if self.critical_work == 0 {
            return 1.0;
        }
        serial.work_units() as f64 / self.critical_work as f64
    }

    /// Wall-clock-modelled speedup: serial wall time over critical-path time.
    pub fn wall_speedup(&self, serial: &SimStats) -> f64 {
        if self.critical_ns == 0 {
            return 1.0;
        }
        serial.wall_ns as f64 / self.critical_ns as f64
    }

    /// Fraction of speculative / leading solves that paid off.
    pub fn accept_rate(&self) -> f64 {
        let total = self.lead_accepted
            + self.lead_rejected
            + self.speculation_accepted
            + self.speculation_rejected;
        if total == 0 {
            return 1.0;
        }
        (self.lead_accepted + self.speculation_accepted) as f64 / total as f64
    }

    /// One-line human-readable summary. With the two-level split active the
    /// thread count is shown as `lanes x stamp workers`.
    pub fn summary(&self) -> String {
        let split = if self.stamp_workers > 0 {
            format!("{}={}x{}", self.threads, self.lanes, self.stamp_workers)
        } else {
            format!("{}", self.threads)
        };
        let faults = if self.workers_lost > 0 {
            format!(", {} workers lost", self.workers_lost)
        } else {
            String::new()
        };
        format!(
            "{} x{}: {} pts, {} rounds, cp {} units / {:.2} ms, accept {:.0}%{}",
            self.scheme,
            split,
            self.result.len(),
            self.rounds,
            self.critical_work,
            self.critical_ns as f64 / 1e6,
            self.accept_rate() * 100.0,
            faults
        )
    }
}

/// Outcome of a fault-tolerant WavePipe run
/// ([`crate::run_wavepipe_recoverable`]): the report built from every point
/// accepted before the run ended, together with the terminal error if any —
/// a deadline hit or cancellation mid-run keeps the waveform prefix instead
/// of discarding the whole analysis.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Report over the accepted prefix (the full run when `error` is `None`).
    pub report: WavePipeReport,
    /// `None` for a clean run to `tstop`; otherwise the terminal error.
    pub error: Option<EngineError>,
}

impl RunOutcome {
    /// Collapses to the classic all-or-nothing view: the full report on a
    /// clean run, the terminal error (partial report dropped) otherwise.
    ///
    /// # Errors
    ///
    /// Returns the terminal error of a partial run.
    pub fn into_result(self) -> Result<WavePipeReport> {
        match self.error {
            None => Ok(self.report),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report(critical_work: u64) -> WavePipeReport {
        WavePipeReport {
            result: TransientResult::new(1, vec!["a".into()]),
            scheme: Scheme::Backward,
            threads: 2,
            lanes: 2,
            stamp_workers: 0,
            rounds: 10,
            total: SimStats::new(),
            critical_work,
            critical_ns: 1_000_000,
            lead_accepted: 8,
            lead_rejected: 2,
            speculation_accepted: 0,
            speculation_rejected: 0,
            workers_lost: 0,
            telemetry: None,
        }
    }

    #[test]
    fn modeled_speedup_ratio() {
        let r = dummy_report(50);
        let serial = SimStats { device_evals: 100, ..SimStats::new() };
        assert!((r.modeled_speedup(&serial) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_critical_work_degrades_gracefully() {
        let r = dummy_report(0);
        assert_eq!(r.modeled_speedup(&SimStats::new()), 1.0);
    }

    #[test]
    fn accept_rate_counts_both_kinds() {
        let mut r = dummy_report(10);
        r.speculation_accepted = 5;
        r.speculation_rejected = 5;
        assert!((r.accept_rate() - 13.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn summary_contains_scheme() {
        assert!(dummy_report(1).summary().contains("backward"));
    }

    #[test]
    fn summary_reports_lost_workers_only_when_any() {
        let mut r = dummy_report(1);
        assert!(!r.summary().contains("workers lost"));
        r.workers_lost = 2;
        assert!(r.summary().contains("2 workers lost"), "{}", r.summary());
    }

    #[test]
    fn outcome_into_result_round_trips() {
        let clean = RunOutcome { report: dummy_report(1), error: None };
        assert!(clean.into_result().is_ok());
        let partial = RunOutcome {
            report: dummy_report(1),
            error: Some(EngineError::Cancelled { time: 1e-9 }),
        };
        assert!(matches!(partial.into_result(), Err(EngineError::Cancelled { .. })));
    }

    #[test]
    fn summary_shows_thread_split_when_stamping_in_parallel() {
        let mut r = dummy_report(1);
        r.threads = 4;
        r.lanes = 2;
        r.stamp_workers = 2;
        assert!(r.summary().contains("x4=2x2"), "{}", r.summary());
    }
}
