//! Simulation options shared by DC and transient analysis.

use crate::cancel::CancelToken;
use crate::error::{EngineError, Result};
use crate::fault::{FaultHandle, FaultPlan};
use crate::integrate::Method;
use crate::solver::SolverHandle;
use std::time::Duration;
use wavepipe_telemetry::{EventKind, MetricsHandle, ProbeHandle};

/// Tolerances and control knobs for the simulation engine.
///
/// The defaults mirror classic SPICE3 values; every WavePipe scheme uses the
/// *same* options object as the serial reference, which is what makes the
/// accuracy-equivalence property meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Relative convergence/LTE tolerance (`RELTOL`). Default `1e-3`.
    pub reltol: f64,
    /// Absolute voltage tolerance (`VNTOL`), volts. Default `1e-6`.
    pub vntol: f64,
    /// Absolute current tolerance (`ABSTOL`), amperes. Default `1e-12`.
    pub abstol: f64,
    /// Minimum conductance added across nonlinear junctions (`GMIN`).
    /// Default `1e-12`.
    pub gmin: f64,
    /// Maximum Newton iterations per transient point (`ITL4`). Default `40`.
    pub max_newton_iters: usize,
    /// Maximum Newton iterations for the DC operating point (`ITL1`).
    /// Default `200`.
    pub max_dc_iters: usize,
    /// Integration method for transient analysis. Default [`Method::Trapezoidal`].
    pub method: Method,
    /// LTE overestimation safety divisor (`TRTOL`). Default `7.0`.
    pub trtol: f64,
    /// Maximum step-growth ratio between consecutive accepted steps.
    /// Default `2.0`. (This is the ratio WavePipe's backward pipelining
    /// compounds across threads.)
    pub rmax: f64,
    /// Step shrink factor on Newton non-convergence. Default `1/8`.
    pub nr_shrink: f64,
    /// Minimum step as a fraction of `tstop`. Default `1e-10`.
    pub hmin_frac: f64,
    /// Maximum step as a fraction of `tstop`. Default `1/50`.
    pub hmax_frac: f64,
    /// Charge/flux absolute LTE floor, used in the weighted LTE norm.
    /// Default `1e-6`.
    pub lte_abstol: f64,
    /// Start transient analysis from element initial conditions (`UIC`)
    /// instead of the DC operating point: capacitors with `IC=` are forced
    /// to their initial voltage, capacitors without start discharged,
    /// inductors start at their initial current (default 0). Default
    /// `false` (compute the operating point).
    pub use_ic: bool,
    /// Telemetry sink. The default ([`ProbeHandle::none`]) makes every
    /// emission a single branch; attach a recording probe to capture the
    /// event stream. Probes only observe — they never alter the solution.
    pub probe: ProbeHandle,
    /// Live metrics sink, carried next to the probe: instrumented sites
    /// publish the event *and* bump the matching registry cell, so the
    /// registry can be snapshotted mid-run without draining the event
    /// buffer. The default ([`MetricsHandle::none`]) makes every publish a
    /// single branch. Like probes, metrics only observe.
    pub metrics: MetricsHandle,
    /// Intra-step stamp workers for graph-colored parallel device
    /// evaluation. `0` (the default) stamps serially on the solver thread;
    /// `n >= 1` evaluates devices on `n` persistent worker threads and
    /// accumulates in a fixed color-then-element order, producing results
    /// bit-identical to the serial path. The default honours the
    /// `WAVEPIPE_STAMP_WORKERS` environment variable so a whole test suite
    /// can be forced onto the parallel path.
    pub stamp_workers: usize,
    /// Wall-clock budget for one analysis run. `None` (default) runs to
    /// completion. The budget is armed after the DC/initial solve and
    /// checked cooperatively (step and round boundaries, every Newton
    /// iteration), so even a zero budget yields the `t = 0` point and the
    /// accepted prefix stays bit-identical to an unbudgeted run. Expiry
    /// surfaces as [`EngineError::DeadlineExceeded`]; pair with the
    /// `*_recoverable` entry points to keep the partial waveform.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token shared with the caller. `None`
    /// (default) is uncancellable; [`SimOptions::with_deadline`] installs
    /// one automatically. Cancelling surfaces as [`EngineError::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Fault-injection handle for testing the fault-tolerant runtime. The
    /// default honours the `WAVEPIPE_FAULT_SEED` environment variable
    /// (deterministic chaos); otherwise inert. Attach an explicit
    /// [`FaultPlan`] via [`SimOptions::with_faults`] — an empty plan pins a
    /// run fault-free even under the env override.
    pub faults: FaultHandle,
    /// SPICE3-style device bypass: nonlinear devices whose controlling
    /// voltages moved less than the bypass tolerance since their last
    /// evaluation replay their cached stamp instead of re-evaluating the
    /// model. Deterministic (the decision is a pure function of the iterate
    /// and the per-workspace cache state) and identical on the serial and
    /// parallel stamp paths. The default honours `WAVEPIPE_BYPASS`
    /// (`0`/`false` disables); on otherwise.
    pub bypass: bool,
    /// Absolute bypass tolerance on controlling voltages, volts. Default
    /// `1e-6` (equal to `VNTOL`).
    pub bypass_vabs: f64,
    /// Relative bypass tolerance on controlling voltages. Default `1e-5`
    /// (two decades tighter than `RELTOL`).
    pub bypass_vrel: f64,
    /// Chord (modified) Newton: keep the current LU factors across
    /// iterations — and across accepted time points — while the Newton
    /// update keeps contracting by at least [`SimOptions::chord_theta`];
    /// refactor on slow convergence, rejection, or step-size change.
    /// Convergence *criteria* are untouched, only when a new factorization
    /// is paid for. The default honours `WAVEPIPE_CHORD` (`0`/`false`
    /// disables); on otherwise.
    pub chord_newton: bool,
    /// Chord contraction threshold: a reused-Jacobian update is accepted
    /// only if `|dx|` shrank to at most this fraction of the previous
    /// iteration's update. Default `0.5`.
    pub chord_theta: f64,
    /// Step-size-keyed companion cache: reuse the assembled linear part of
    /// the matrix (resistors, sources, reactive companion conductances)
    /// across stamps that share the same integration coefficients and
    /// continuation shunt, re-emitting only the history-dependent RHS.
    /// Default on.
    pub companion_cache: bool,
    /// Linear-solver backend selection for every Newton solve of the run.
    /// The default ([`SolverHandle::direct`]) is the classic per-solver
    /// `SparseLu`; [`SolverHandle::batched`] shares one symbolic ordering
    /// across sweep instances (both bit-identical to each other — see
    /// [`crate::solver`] for the determinism contract);
    /// [`SolverHandle::gmres`] is the iterative path for grid-scale
    /// circuits ([`crate::krylov`]). The default honours `WAVEPIPE_SOLVER`
    /// (`gmres` selects the Krylov backend, tuned by `WAVEPIPE_GMRES_RESTART`
    /// / `WAVEPIPE_GMRES_TOL` / `WAVEPIPE_GMRES_MAXITERS`) and
    /// `WAVEPIPE_ORDERING` (`natural`/`mindeg`/`rcm`).
    pub solver: SolverHandle,
    /// Transient convergence recovery ladder: when Newton fails at a
    /// timepoint and the step has already collapsed to the floor, try —
    /// in order — a cache-poisoning rollback (solver caches invalidated and
    /// disabled), bounded deep step cuts below the LTE floor, and a local
    /// gmin/gshunt continuation ramp, before surfacing a typed
    /// [`EngineError::NoConvergence`]. The ladder only runs on the error
    /// path, so clean runs are bit-identical with it on or off. The default
    /// honours `WAVEPIPE_RECOVERY` (`0`/`false` disables); on otherwise.
    pub recovery: bool,
    /// Deep-cut budget of recovery rung 2: how many quartering cuts below
    /// `hmin` are attempted. Default `3` (down to `hmin / 64`).
    pub recovery_deep_cuts: usize,
}

/// Per-stamp control block for the solver caches, derived from
/// [`SimOptions`] via [`SimOptions::cache_ctl`]. Passing
/// [`CacheCtl::disabled`] reproduces the cache-free stamp exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheCtl {
    /// Enable device bypass (see [`SimOptions::bypass`]).
    pub bypass: bool,
    /// Absolute bypass tolerance, volts.
    pub bypass_vabs: f64,
    /// Relative bypass tolerance.
    pub bypass_vrel: f64,
    /// Enable the step-size-keyed companion cache.
    pub companion: bool,
}

impl CacheCtl {
    /// A control block with every cache off: the stamp re-evaluates every
    /// device and reassembles the full matrix each call.
    pub fn disabled() -> Self {
        CacheCtl { bypass: false, bypass_vabs: 0.0, bypass_vrel: 0.0, companion: false }
    }
}

fn default_stamp_workers() -> usize {
    std::env::var("WAVEPIPE_STAMP_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// `WAVEPIPE_BYPASS=0`/`false` (or `WAVEPIPE_CHORD=...`) turns a default-on
/// cache off for a whole test suite; anything else leaves it on.
fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

/// A non-empty environment value, trimmed; `None` when unset or blank.
/// Shared by the solver-selection knobs (`WAVEPIPE_SOLVER`,
/// `WAVEPIPE_GMRES_*`, `WAVEPIPE_ORDERING`).
pub(crate) fn env_flag_value(name: &str) -> Option<String> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    if v.is_empty() {
        None
    } else {
        Some(v.to_string())
    }
}

/// Default solver selection: `WAVEPIPE_SOLVER=gmres` switches every analysis
/// of the process to the Krylov backend (tuned by the `WAVEPIPE_GMRES_*`
/// knobs); otherwise direct LU, through `WAVEPIPE_ORDERING` when that names
/// a non-default fill-reducing ordering.
fn default_solver() -> SolverHandle {
    use wavepipe_sparse::LuOptions;
    if let Some(v) = env_flag_value("WAVEPIPE_SOLVER") {
        if v.eq_ignore_ascii_case("gmres") {
            return SolverHandle::gmres(crate::krylov::GmresConfig::from_env());
        }
    }
    match env_flag_value("WAVEPIPE_ORDERING").and_then(|s| crate::krylov::parse_ordering(&s)) {
        Some(kind) if kind != LuOptions::default().ordering => {
            SolverHandle::direct_with_options(LuOptions { ordering: kind, ..LuOptions::default() })
        }
        _ => SolverHandle::direct(),
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            reltol: 1e-3,
            vntol: 1e-6,
            abstol: 1e-12,
            gmin: 1e-12,
            max_newton_iters: 40,
            max_dc_iters: 200,
            method: Method::Trapezoidal,
            trtol: 7.0,
            rmax: 2.0,
            nr_shrink: 0.125,
            hmin_frac: 1e-10,
            hmax_frac: 0.02,
            lte_abstol: 1e-6,
            use_ic: false,
            probe: ProbeHandle::none(),
            metrics: MetricsHandle::none(),
            stamp_workers: default_stamp_workers(),
            deadline: None,
            cancel: None,
            faults: FaultHandle::from_env_cached(),
            bypass: env_flag("WAVEPIPE_BYPASS"),
            bypass_vabs: 1e-6,
            bypass_vrel: 1e-5,
            chord_newton: env_flag("WAVEPIPE_CHORD"),
            chord_theta: 0.5,
            companion_cache: true,
            solver: default_solver(),
            recovery: env_flag("WAVEPIPE_RECOVERY"),
            recovery_deep_cuts: 3,
        }
    }
}

impl SimOptions {
    /// Builder: replaces the integration method.
    #[must_use]
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Builder: replaces the relative tolerance (`RELTOL`).
    #[must_use]
    pub fn with_reltol(mut self, reltol: f64) -> Self {
        self.reltol = reltol;
        self
    }

    /// Builder: replaces the absolute voltage tolerance (`VNTOL`).
    #[must_use]
    pub fn with_vntol(mut self, vntol: f64) -> Self {
        self.vntol = vntol;
        self
    }

    /// Builder: replaces the maximum step-growth ratio.
    #[must_use]
    pub fn with_rmax(mut self, rmax: f64) -> Self {
        self.rmax = rmax;
        self
    }

    /// Builder: starts the transient from element initial conditions (`UIC`)
    /// instead of the DC operating point.
    #[must_use]
    pub fn with_use_ic(mut self, use_ic: bool) -> Self {
        self.use_ic = use_ic;
        self
    }

    /// Builder: attaches a telemetry probe.
    #[must_use]
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Builder: attaches a live metrics handle.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builder: sets the number of intra-step stamp workers (`0` = serial).
    #[must_use]
    pub fn with_stamp_workers(mut self, stamp_workers: usize) -> Self {
        self.stamp_workers = stamp_workers;
        self
    }

    /// Builder: sets a wall-clock budget and installs a fresh
    /// [`CancelToken`] (if none is attached yet) so the budget has a place
    /// to live. Clones of these options share the token, which is what lets
    /// one armed deadline stop every lane of a parallel run.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        if self.cancel.is_none() {
            self.cancel = Some(CancelToken::new());
        }
        self
    }

    /// Builder: attaches a caller-owned cancellation token.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Builder: attaches a fault-injection plan (an empty plan pins the run
    /// fault-free, overriding `WAVEPIPE_FAULT_SEED`).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = FaultHandle::new(plan);
        self
    }

    /// Builder: enables or disables device bypass (pins the run against the
    /// `WAVEPIPE_BYPASS` environment override).
    #[must_use]
    pub fn with_bypass(mut self, bypass: bool) -> Self {
        self.bypass = bypass;
        self
    }

    /// Builder: enables or disables chord (modified) Newton (pins the run
    /// against the `WAVEPIPE_CHORD` environment override).
    #[must_use]
    pub fn with_chord_newton(mut self, chord: bool) -> Self {
        self.chord_newton = chord;
        self
    }

    /// Builder: enables or disables the step-size-keyed companion cache.
    #[must_use]
    pub fn with_companion_cache(mut self, companion: bool) -> Self {
        self.companion_cache = companion;
        self
    }

    /// Builder: selects the linear-solver backend (see [`SolverHandle`]).
    #[must_use]
    pub fn with_solver(mut self, solver: SolverHandle) -> Self {
        self.solver = solver;
        self
    }

    /// Builder: enables or disables the transient convergence recovery
    /// ladder (pins the run against the `WAVEPIPE_RECOVERY` environment
    /// override).
    #[must_use]
    pub fn with_recovery(mut self, recovery: bool) -> Self {
        self.recovery = recovery;
        self
    }

    /// Builder: sets the deep-cut budget of recovery rung 2.
    #[must_use]
    pub fn with_recovery_deep_cuts(mut self, cuts: usize) -> Self {
        self.recovery_deep_cuts = cuts;
        self
    }

    /// The stamp-layer cache control block these options imply.
    pub fn cache_ctl(&self) -> CacheCtl {
        CacheCtl {
            bypass: self.bypass,
            bypass_vabs: self.bypass_vabs,
            bypass_vrel: self.bypass_vrel,
            companion: self.companion_cache,
        }
    }

    /// Arms the configured deadline (if any) on the attached token. Called
    /// by analysis entry points once the initial solution is in hand.
    pub fn arm_deadline(&self) {
        if let (Some(budget), Some(token)) = (self.deadline, &self.cancel) {
            token.arm_deadline(budget);
        }
    }

    /// Cooperative budget check: returns [`EngineError::Cancelled`] when the
    /// token was cancelled, [`EngineError::DeadlineExceeded`] when the armed
    /// deadline passed, and `Ok(())` otherwise. `time` is the simulated time
    /// to report. Emits a [`EventKind::DeadlineHit`] telemetry event when
    /// the budget expires.
    #[inline]
    pub fn check_budget(&self, time: f64) -> Result<()> {
        let Some(token) = &self.cancel else { return Ok(()) };
        if token.is_cancelled() {
            return Err(EngineError::Cancelled { time });
        }
        if token.deadline_expired() {
            self.probe.emit(time, EventKind::DeadlineHit);
            self.metrics.inc(wavepipe_telemetry::Counter::DeadlineHits);
            return Err(EngineError::DeadlineExceeded {
                time,
                budget: self.deadline.unwrap_or(Duration::ZERO),
            });
        }
        Ok(())
    }

    /// Minimum step for a run to `tstop`.
    pub fn hmin(&self, tstop: f64) -> f64 {
        self.hmin_frac * tstop
    }

    /// Maximum step for a run to `tstop`.
    pub fn hmax(&self, tstop: f64) -> f64 {
        self.hmax_frac * tstop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_spice_like() {
        let o = SimOptions::default();
        assert_eq!(o.reltol, 1e-3);
        assert_eq!(o.vntol, 1e-6);
        assert_eq!(o.abstol, 1e-12);
        assert_eq!(o.method, Method::Trapezoidal);
        assert!(o.rmax >= 1.5);
    }

    #[test]
    fn hmin_hmax_scale_with_tstop() {
        let o = SimOptions::default();
        assert!(o.hmin(1e-6) < o.hmax(1e-6));
        assert_eq!(o.hmax(1.0), o.hmax_frac);
    }

    #[test]
    fn with_method_overrides_only_method() {
        let o = SimOptions::default().with_method(Method::Gear2);
        assert_eq!(o.method, Method::Gear2);
        assert_eq!(o.reltol, SimOptions::default().reltol);
    }

    #[test]
    fn builders_chain_and_override_only_their_field() {
        let base = SimOptions::default();
        let o = SimOptions::default()
            .with_method(Method::Gear2)
            .with_reltol(1e-4)
            .with_rmax(4.0)
            .with_use_ic(true)
            .with_stamp_workers(3);
        assert_eq!(o.method, Method::Gear2);
        assert_eq!(o.reltol, 1e-4);
        assert_eq!(o.rmax, 4.0);
        assert!(o.use_ic);
        assert_eq!(o.stamp_workers, 3);
        assert_eq!(o.vntol, base.vntol);
        assert_eq!(o.gmin, base.gmin);
    }

    #[test]
    fn with_deadline_installs_a_token() {
        let o = SimOptions::default().with_deadline(Duration::from_millis(5));
        assert_eq!(o.deadline, Some(Duration::from_millis(5)));
        assert!(o.cancel.is_some());
        // An existing token is kept.
        let t = CancelToken::new();
        let o = SimOptions::default()
            .with_cancel_token(t.clone())
            .with_deadline(Duration::from_secs(1));
        assert_eq!(o.cancel.as_ref(), Some(&t));
    }

    #[test]
    fn check_budget_passes_without_a_token() {
        assert!(SimOptions::default().with_faults(FaultPlan::new()).check_budget(0.0).is_ok());
    }

    #[test]
    fn check_budget_reports_cancellation_and_expiry() {
        let o = SimOptions::default().with_deadline(Duration::from_secs(3600));
        o.arm_deadline();
        assert!(o.check_budget(0.0).is_ok());
        o.cancel.as_ref().unwrap().cancel();
        assert!(matches!(o.check_budget(1e-9), Err(EngineError::Cancelled { .. })));

        let o = SimOptions::default().with_deadline(Duration::ZERO);
        o.arm_deadline();
        let err = o.check_budget(2e-9).unwrap_err();
        assert!(matches!(err, EngineError::DeadlineExceeded { .. }), "{err}");
    }

    #[test]
    fn recovery_knobs_pin_against_env() {
        let o = SimOptions::default().with_recovery(false);
        assert!(!o.recovery);
        let o = o.with_recovery(true).with_recovery_deep_cuts(5);
        assert!(o.recovery);
        assert_eq!(o.recovery_deep_cuts, 5);
        assert_eq!(SimOptions::default().recovery_deep_cuts, 3);
    }

    #[test]
    fn explicit_empty_fault_plan_is_inert() {
        let o = SimOptions::default().with_faults(FaultPlan::new());
        assert!(!o.faults.enabled());
    }

    #[test]
    fn cache_knobs_pin_and_project_into_the_ctl() {
        // Defaults are env-dependent (`WAVEPIPE_BYPASS`/`WAVEPIPE_CHORD`),
        // so only the builder-pinned values are asserted.
        let o = SimOptions::default().with_bypass(true).with_chord_newton(true);
        assert!(o.bypass && o.chord_newton);
        assert_eq!(o.bypass_vabs, 1e-6);
        assert_eq!(o.bypass_vrel, 1e-5);
        assert_eq!(o.chord_theta, 0.5);
        let ctl = o.cache_ctl();
        assert!(ctl.bypass && ctl.companion);
        assert_eq!(ctl.bypass_vabs, o.bypass_vabs);

        let off = o.with_bypass(false).with_chord_newton(false).with_companion_cache(false);
        assert!(!off.bypass && !off.chord_newton && !off.companion_cache);
        let ctl = off.cache_ctl();
        assert!(!ctl.bypass && !ctl.companion);
        assert_eq!(CacheCtl::disabled(), CacheCtl::disabled());
    }
}
