//! Small-signal AC analysis.
//!
//! The circuit is linearised at its DC operating point and the complex
//! phasor system `(G + jB(ω)) x = b` is solved per frequency. Rather than a
//! complex solver, the real-equivalent form is used so the existing sparse
//! LU applies unchanged:
//!
//! ```text
//! [ G  -B ] [x_re]   [b_re]
//! [ B   G ] [x_im] = [b_im]
//! ```
//!
//! Sources contribute their [`ac_magnitude`] (zero-phase); nonlinear devices
//! contribute their operating-point conductances; capacitors (including the
//! diode depletion capacitance, evaluated at the OP voltage) contribute
//! `ωC` susceptance and inductors `-ωL` on their branch equations.
//!
//! [`ac_magnitude`]: wavepipe_circuit::Element::VoltageSource

use crate::devices::{bjt_eval, depletion_charge, diode_eval, mos_eval};
use crate::error::{EngineError, Result};
use crate::mna::{Dev, MnaSystem};
use crate::newton::LinearCache;
use crate::options::SimOptions;
use crate::stats::SimStats;
use wavepipe_circuit::Circuit;
use wavepipe_sparse::{CooMatrix, LuOptions, SparseLu};

/// A complex phasor value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Phasor {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Phasor {
    /// Magnitude `|z|`.
    pub fn magnitude(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Magnitude in decibels, `20 log10 |z|` (`-inf` for zero).
    pub fn db(self) -> f64 {
        20.0 * self.magnitude().log10()
    }

    /// Phase in degrees.
    pub fn phase_deg(self) -> f64 {
        self.im.atan2(self.re).to_degrees()
    }
}

/// Result of an AC sweep: one phasor per unknown per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    data: Vec<Phasor>,
    n_unknowns: usize,
    node_names: Vec<String>,
}

impl AcResult {
    /// The swept frequencies (Hz).
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// Unknown index of a node name, if present.
    pub fn unknown_of(&self, node_name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == node_name)
    }

    /// Number of unknowns per frequency point.
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// Iterates the node names in unknown order.
    pub fn node_names_iter(&self) -> impl Iterator<Item = &str> {
        self.node_names.iter().map(String::as_str)
    }

    /// The phasor of unknown `u` at frequency point `k`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn phasor(&self, u: usize, k: usize) -> Phasor {
        assert!(u < self.n_unknowns);
        self.data[k * self.n_unknowns + u]
    }

    /// `(frequency, magnitude)` trace of one unknown.
    pub fn magnitude_trace(&self, u: usize) -> Vec<(f64, f64)> {
        self.freqs.iter().enumerate().map(|(k, &f)| (f, self.phasor(u, k).magnitude())).collect()
    }

    /// `(frequency, phase-degrees)` trace of one unknown.
    pub fn phase_trace(&self, u: usize) -> Vec<(f64, f64)> {
        self.freqs.iter().enumerate().map(|(k, &f)| (f, self.phasor(u, k).phase_deg())).collect()
    }

    /// The -3 dB corner frequency of an unknown relative to its value at the
    /// first sweep point, if the magnitude crosses it within the sweep.
    pub fn corner_frequency(&self, u: usize) -> Option<f64> {
        let m0 = self.phasor(u, 0).magnitude();
        let target = m0 / std::f64::consts::SQRT_2;
        let mut prev = (self.freqs[0], m0);
        for k in 1..self.freqs.len() {
            let cur = (self.freqs[k], self.phasor(u, k).magnitude());
            if (prev.1 - target) * (cur.1 - target) <= 0.0 && prev.1 != cur.1 {
                // Log-linear interpolation of the crossing.
                let t = (target - prev.1) / (cur.1 - prev.1);
                return Some(prev.0 * (cur.0 / prev.0).powf(t));
            }
            prev = cur;
        }
        None
    }
}

/// Runs an AC sweep over the given frequencies.
///
/// ```
/// use wavepipe_circuit::{Circuit, Waveform};
/// use wavepipe_engine::{run_ac, SimOptions};
///
/// # fn main() -> Result<(), wavepipe_engine::EngineError> {
/// let mut ckt = Circuit::new("rc");
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::dc(0.0), 1.0)?;
/// ckt.add_resistor("R1", a, b, 1e3)?;
/// ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9)?;
/// let res = run_ac(&ckt, &[1e3, 1e6], &SimOptions::default())?;
/// let out = res.unknown_of("b").expect("node");
/// // Well below the 159 kHz corner the filter passes ~unity.
/// assert!(res.phasor(out, 0).magnitude() > 0.99);
/// // Well above it, strongly attenuated.
/// assert!(res.phasor(out, 1).magnitude() < 0.2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates compilation, operating-point, and linear-solver failures;
/// returns [`EngineError::BadParameter`] for an empty or non-positive
/// frequency list.
pub fn run_ac(circuit: &Circuit, freqs: &[f64], opts: &SimOptions) -> Result<AcResult> {
    let sys = MnaSystem::compile(circuit)?;
    let mut ws = sys.new_workspace();
    let mut cache = LinearCache::for_options(opts);
    let mut stats = SimStats::new();
    let x_op = crate::dcop::dc_operating_point(&sys, &mut ws, &mut cache, None, opts, &mut stats)?;
    run_ac_at_op(&sys, &x_op, freqs, opts)
}

/// AC sweep of an already-compiled system at a known operating point.
///
/// # Errors
///
/// Same as [`run_ac`].
pub fn run_ac_at_op(
    sys: &MnaSystem,
    x_op: &[f64],
    freqs: &[f64],
    opts: &SimOptions,
) -> Result<AcResult> {
    if freqs.is_empty() {
        return Err(EngineError::BadParameter { name: "freqs", value: 0.0 });
    }
    let n = sys.n_unknowns();
    let mut data = Vec::with_capacity(freqs.len() * n);
    for &f in freqs {
        if !(f > 0.0 && f.is_finite()) {
            return Err(EngineError::BadParameter { name: "frequency", value: f });
        }
        let omega = 2.0 * std::f64::consts::PI * f;
        let (a, b) = assemble(sys, x_op, omega, opts);
        let lu = SparseLu::factor(&a.to_csc(), &LuOptions::default())?;
        let x = lu.solve(&b)?;
        for u in 0..n {
            data.push(Phasor { re: x[u], im: x[u + n] });
        }
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        data,
        n_unknowns: n,
        node_names: sys.node_names().to_vec(),
    })
}

/// Assembles the real-equivalent 2n x 2n system at angular frequency `omega`.
fn assemble(sys: &MnaSystem, x: &[f64], omega: f64, opts: &SimOptions) -> (CooMatrix, Vec<f64>) {
    let n = sys.n_unknowns();
    let mut a = CooMatrix::with_capacity(2 * n, 2 * n, 16 * n);
    let mut rhs = vec![0.0; 2 * n];
    const GND: usize = usize::MAX;
    let volt = |u: usize| if u == GND { 0.0 } else { x[u] };
    // Real (conductance) entry: appears in both diagonal blocks.
    let g = |a: &mut CooMatrix, r: usize, c: usize, v: f64| {
        if r != GND && c != GND {
            a.push(r, c, v).expect("in range");
            a.push(r + n, c + n, v).expect("in range");
        }
    };
    // Imaginary (susceptance) entry: off-diagonal blocks.
    let s = |a: &mut CooMatrix, r: usize, c: usize, v: f64| {
        if r != GND && c != GND {
            a.push(r, c + n, -v).expect("in range");
            a.push(r + n, c, v).expect("in range");
        }
    };
    let re = |rhs: &mut Vec<f64>, u: usize, v: f64| {
        if u != GND {
            rhs[u] += v;
        }
    };

    // Structural node shunts keep the pattern nonsingular.
    for i in 0..sys.n_nodes() {
        g(&mut a, i, i, opts.gmin);
    }

    for dev in sys.devices() {
        match *dev {
            Dev::Conductance { p, n: q, g: gv } => {
                g(&mut a, p, p, gv);
                g(&mut a, p, q, -gv);
                g(&mut a, q, p, -gv);
                g(&mut a, q, q, gv);
            }
            Dev::Cap { p, n: q, c, .. } => {
                let b = omega * c;
                s(&mut a, p, p, b);
                s(&mut a, p, q, -b);
                s(&mut a, q, p, -b);
                s(&mut a, q, q, b);
            }
            Dev::Jcap { p, n: q, cj0, vj, m, fc, .. } => {
                let u_op = volt(p) - volt(q);
                let (_, c_op) = depletion_charge(u_op, cj0, vj, m, fc);
                let b = omega * c_op;
                s(&mut a, p, p, b);
                s(&mut a, p, q, -b);
                s(&mut a, q, p, -b);
                s(&mut a, q, q, b);
            }
            Dev::Ind { p, n: q, l, branch, .. } => {
                g(&mut a, p, branch, 1.0);
                g(&mut a, q, branch, -1.0);
                g(&mut a, branch, p, 1.0);
                g(&mut a, branch, q, -1.0);
                s(&mut a, branch, branch, -omega * l);
            }
            Dev::Vsrc { p, n: q, branch, ac_mag, .. } => {
                g(&mut a, p, branch, 1.0);
                g(&mut a, q, branch, -1.0);
                g(&mut a, branch, p, 1.0);
                g(&mut a, branch, q, -1.0);
                rhs[branch] += ac_mag;
            }
            Dev::Isrc { p, n: q, ac_mag, .. } => {
                re(&mut rhs, p, -ac_mag);
                re(&mut rhs, q, ac_mag);
            }
            Dev::Diode { p, n: q, is, nvt, .. } => {
                let u_op = volt(p) - volt(q);
                let (_, gd) = diode_eval(u_op, is, nvt);
                let gv = gd + opts.gmin;
                g(&mut a, p, p, gv);
                g(&mut a, p, q, -gv);
                g(&mut a, q, p, -gv);
                g(&mut a, q, q, gv);
            }
            Dev::Mos { d, g: gt, s: st, b: bt, ref params } => {
                let e = mos_eval(volt(d), volt(gt), volt(st), volt(bt), params);
                g(&mut a, d, d, e.g_dd + opts.gmin);
                g(&mut a, d, gt, e.g_dg);
                g(&mut a, d, st, e.g_ds - opts.gmin);
                g(&mut a, d, bt, e.g_db);
                g(&mut a, st, d, -e.g_dd - opts.gmin);
                g(&mut a, st, gt, -e.g_dg);
                g(&mut a, st, st, -e.g_ds + opts.gmin);
                g(&mut a, st, bt, -e.g_db);
            }
            Dev::Bjt { c, b, e, sign, is, bf, br, .. } => {
                let vbe = sign * (volt(b) - volt(e));
                let vbc = sign * (volt(b) - volt(c));
                let ev = bjt_eval(vbe, vbc, sign, is, bf, br);
                g(&mut a, c, c, ev.g_cc + opts.gmin);
                g(&mut a, c, b, ev.g_cb - opts.gmin);
                g(&mut a, c, e, ev.g_ce);
                g(&mut a, b, c, ev.g_bc - opts.gmin);
                g(&mut a, b, b, ev.g_bb + 2.0 * opts.gmin);
                g(&mut a, b, e, ev.g_be - opts.gmin);
                g(&mut a, e, c, -(ev.g_cc + ev.g_bc));
                g(&mut a, e, b, -(ev.g_cb + ev.g_bb) - opts.gmin);
                g(&mut a, e, e, -(ev.g_ce + ev.g_be) + opts.gmin);
            }
            Dev::Vcvs { p, n: q, cp, cn, gain, branch } => {
                g(&mut a, p, branch, 1.0);
                g(&mut a, q, branch, -1.0);
                g(&mut a, branch, p, 1.0);
                g(&mut a, branch, q, -1.0);
                g(&mut a, branch, cp, -gain);
                g(&mut a, branch, cn, gain);
            }
            Dev::Vccs { p, n: q, cp, cn, gm } => {
                g(&mut a, p, cp, gm);
                g(&mut a, p, cn, -gm);
                g(&mut a, q, cp, -gm);
                g(&mut a, q, cn, gm);
            }
        }
    }
    (a, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::{Circuit, MosModel, Waveform};

    fn log_freqs(fstart: f64, fstop: f64, per_decade: usize) -> Vec<f64> {
        let decades = (fstop / fstart).log10();
        let n = (decades * per_decade as f64).ceil() as usize;
        (0..=n).map(|k| fstart * 10f64.powf(decades * k as f64 / n as f64)).collect()
    }

    #[test]
    fn rc_lowpass_matches_analytic_transfer() {
        let mut ckt = Circuit::new("rc");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::dc(0.0), 1.0).unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        let freqs = log_freqs(1e3, 1e8, 5);
        let res = run_ac(&ckt, &freqs, &SimOptions::default()).unwrap();
        let out = res.unknown_of("b").unwrap();
        let rc = 1e-6;
        for (k, &f) in freqs.iter().enumerate() {
            let w = 2.0 * std::f64::consts::PI * f;
            let mag_exact = 1.0 / (1.0 + (w * rc).powi(2)).sqrt();
            let ph_exact = -(w * rc).atan().to_degrees();
            let p = res.phasor(out, k);
            assert!(
                (p.magnitude() - mag_exact).abs() < 1e-3,
                "f={f:e}: {} vs {mag_exact}",
                p.magnitude()
            );
            assert!(
                (p.phase_deg() - ph_exact).abs() < 0.5,
                "f={f:e}: {} vs {ph_exact}",
                p.phase_deg()
            );
        }
        // Corner at 1/(2 pi RC) ~ 159 kHz.
        let fc = res.corner_frequency(out).expect("corner in range");
        assert!((fc - 159.15e3).abs() / 159.15e3 < 0.05, "fc = {fc:e}");
    }

    #[test]
    fn rlc_series_resonance_peak() {
        // Series RLC driven by AC source; current peaks at f0 = 1/(2 pi sqrt(LC)).
        let mut ckt = Circuit::new("rlc");
        let a = ckt.node("a");
        let m = ckt.node("m");
        ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::dc(0.0), 1.0).unwrap();
        ckt.add_resistor("R1", a, m, 10.0).unwrap();
        let b = ckt.node("b");
        ckt.add_inductor("L1", m, b, 1e-6).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let freqs = log_freqs(f0 / 30.0, f0 * 30.0, 40);
        let res = run_ac(&ckt, &freqs, &SimOptions::default()).unwrap();
        let br = res.unknown_of("a"); // not the branch; use source branch current
        assert!(br.is_some());
        // Branch current of V1 is the unknown after the nodes.
        let ibr = 3; // nodes a,m,b then V1 branch
        let trace = res.magnitude_trace(ibr);
        let (f_peak, i_peak) =
            trace.iter().copied().fold((0.0, 0.0), |acc, p| if p.1 > acc.1 { p } else { acc });
        assert!((f_peak - f0).abs() / f0 < 0.1, "peak at {f_peak:e}, f0 = {f0:e}");
        // At resonance |I| ~ V/R = 0.1 A.
        assert!((i_peak - 0.1).abs() < 0.01, "i_peak = {i_peak}");
    }

    #[test]
    fn cs_amplifier_gain_and_rolloff() {
        // Common-source NMOS amp: |gain| ~ gm*Rd at low f, rolls off through
        // the output-node capacitance.
        let mut ckt = Circuit::new("cs");
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let drain = ckt.node("d");
        ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(3.3)).unwrap();
        // Bias in saturation: vov = 0.2 -> id = 200 uA -> 1 V across Rd.
        ckt.add_vsource_ac("Vg", gate, Circuit::GROUND, Waveform::dc(0.9), 1.0).unwrap();
        let model = MosModel { kp: 2e-4, w: 50e-6, l: 1e-6, ..MosModel::nmos() };
        let beta = model.beta();
        ckt.add_mosfet("M1", drain, gate, Circuit::GROUND, model).unwrap();
        ckt.add_resistor("Rd", vdd, drain, 5e3).unwrap();
        ckt.add_capacitor("CL", drain, Circuit::GROUND, 10e-12).unwrap();
        let freqs = log_freqs(1e3, 1e9, 4);
        let res = run_ac(&ckt, &freqs, &SimOptions::default()).unwrap();
        let out = res.unknown_of("d").unwrap();
        // gm at OP: vgs = 0.9, vov = 0.2 (saturation) -> gm = beta*vov.
        let gm = beta * 0.2;
        let gain_exact = gm * 5e3;
        let p0 = res.phasor(out, 0);
        assert!(
            (p0.magnitude() - gain_exact).abs() / gain_exact < 0.05,
            "low-f gain {} vs {gain_exact}",
            p0.magnitude()
        );
        // Inverting stage: phase near 180 degrees at low frequency.
        assert!((p0.phase_deg().abs() - 180.0).abs() < 2.0, "phase {}", p0.phase_deg());
        // Rolls off: highest-frequency magnitude well below low-f gain.
        let plast = res.phasor(out, freqs.len() - 1);
        assert!(plast.magnitude() < 0.2 * p0.magnitude());
        // Corner ~ 1/(2 pi Rd CL) ~ 3.18 MHz.
        let fc = res.corner_frequency(out).expect("corner");
        assert!((fc - 3.18e6).abs() / 3.18e6 < 0.1, "fc = {fc:e}");
    }

    #[test]
    fn quiet_sources_give_zero_response() {
        let mut ckt = Circuit::new("quiet");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let res = run_ac(&ckt, &[1e6], &SimOptions::default()).unwrap();
        let ai = res.unknown_of("a").unwrap();
        assert!(res.phasor(ai, 0).magnitude() < 1e-12);
    }

    #[test]
    fn bad_frequency_rejected() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(run_ac(&ckt, &[], &SimOptions::default()).is_err());
        assert!(run_ac(&ckt, &[-5.0], &SimOptions::default()).is_err());
    }
}
