//! Offline stand-in for the `proptest` crate covering the API surface this
//! workspace uses: the `proptest!` family of macros, the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! and `collection::vec`.
//!
//! Sampling is deterministic per test name (so failures reproduce) and
//! there is no shrinking — a failing case reports the case index and the
//! assertion message only.

pub mod strategy;
pub mod test_runner;

/// `vec(element, size)` and friends.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s of values drawn from `element`, with a
    /// length drawn from `size` (e.g. `2..8`).
    ///
    /// The size is a concrete `Range<usize>` (not a generic strategy) so
    /// integer literals infer as `usize`, matching real proptest's
    /// `impl Into<SizeRange>` ergonomics.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Supported grammar (the subset this workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, y in strategy) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!("proptest {} case {}/{} failed: {}",
                                   stringify!($name), case + 1, config.cases, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.5f64..2.5, n in 3usize..9, k in 1u8..4) {
            prop_assert!((-2.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn combinators_compose(v in (2usize..=5).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n..(n + 1)).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
            for x in &xs {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..50 {
            assert_eq!((0.0f64..1.0).sample(&mut a), (0.0f64..1.0).sample(&mut b));
        }
    }
}
