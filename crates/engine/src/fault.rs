//! Deterministic fault injection for exercising the fault-tolerant runtime.
//!
//! A [`FaultPlan`] decides, as a pure function of *where* a solve happens
//! (lane, per-solver solve index) and *nothing else*, whether to inject a
//! fault and which kind. Two modes compose:
//!
//! * **Targeted rules** ([`FaultPlan::with_solve_fault`],
//!   [`FaultPlan::with_stamp_panic`]) pin a specific fault to a specific
//!   lane/solve or stamp worker/call — the tool the regression tests use to
//!   reproduce one failure exactly.
//! * **Seeded chaos** ([`FaultPlan::seeded`], env-selectable via
//!   `WAVEPIPE_FAULT_SEED`) sprays rare pseudo-random faults across the whole
//!   suite. Chaos deliberately injects only *soft* faults the runtime
//!   retries through (forced singular factorizations anywhere, NaN solutions
//!   on speculative lanes only): worker panics would permanently shrink
//!   pools and defeat the suite's speedup assertions, and a NaN on lane 0
//!   would turn a serial run into a genuine [`crate::EngineError::NumericalBlowup`].
//!   Targeted rules have no such restriction.
//!
//! Determinism matters: the same plan against the same binary injects the
//! same faults at the same points, so a chaos-leg failure in CI reproduces
//! locally by exporting the same seed.

use std::sync::{Arc, OnceLock};

/// What to inject at a chosen solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Panic on the solving thread (exercises `catch_unwind` isolation and
    /// pool respawn/shrink).
    PanicWorker,
    /// Report the linear system as singular: the solve returns unconverged,
    /// as if factorization had failed, and the step-control machinery
    /// retries at a smaller step.
    SingularMatrix,
    /// Let the solve converge, then overwrite the solution with NaN
    /// (exercises the non-finite rejection path).
    NanSolution,
    /// Sleep before solving (exercises deadline enforcement and straggler
    /// behaviour) — the solution itself is untouched.
    SlowSolve {
        /// Artificial delay in milliseconds.
        millis: u64,
    },
    /// Report the solve as unconverged regardless of the actual Newton
    /// outcome (exercises the convergence recovery ladder: step shrink down
    /// to the floor, then cache rollback / deep cut / gmin ramp). Recovery
    /// solves are exempt from fault injection, so a rescue always succeeds
    /// under this fault.
    ForceNonConvergence,
}

#[derive(Debug, Clone, PartialEq)]
struct SolveRule {
    lane: u32,
    /// `None` matches every solve on the lane (a persistently faulty lane).
    solve: Option<u64>,
    kind: FaultKind,
}

#[derive(Debug, Clone, PartialEq)]
struct StampRule {
    worker: usize,
    call: u64,
}

/// A deterministic schedule of injected faults. Inert by default.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: Option<u64>,
    /// When set, seeded chaos also draws [`FaultKind::ForceNonConvergence`]
    /// (opt-in: the classic chaos legs pin soft singular/NaN faults only).
    nc_chaos: bool,
    solve_rules: Vec<SolveRule>,
    stamp_rules: Vec<StampRule>,
}

/// splitmix64-style avalanche of (seed, lane, solve) into a chaos draw.
fn mix(seed: u64, lane: u64, solve: u64) -> u64 {
    let mut z =
        seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ solve.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chaos injection rate: one solve in this many draws a fault.
const CHAOS_PERIOD: u64 = 512;

impl FaultPlan {
    /// An empty, inert plan. Attaching it explicitly *overrides* any
    /// environment-selected chaos plan — useful for pinning a baseline run.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A chaos plan: rare pseudo-random soft faults, fully determined by
    /// `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed: Some(seed), ..FaultPlan::default() }
    }

    /// A chaos plan that additionally draws
    /// [`FaultKind::ForceNonConvergence`]: the convergence-fault leg that
    /// exercises the recovery ladder across the whole suite.
    pub fn seeded_with_nonconvergence(seed: u64) -> Self {
        FaultPlan { seed: Some(seed), nc_chaos: true, ..FaultPlan::default() }
    }

    /// Reads `WAVEPIPE_FAULT_SEED` and builds the corresponding chaos plan,
    /// or `None` when the variable is unset or unparsable. A truthy
    /// `WAVEPIPE_FAULT_NC` additionally enables forced-non-convergence
    /// chaos draws (the recovery-ladder CI leg).
    pub fn from_env() -> Option<Self> {
        let seed = std::env::var("WAVEPIPE_FAULT_SEED").ok()?.parse().ok()?;
        let nc = std::env::var("WAVEPIPE_FAULT_NC")
            .map(|v| !matches!(v.trim(), "" | "0" | "false" | "off" | "no"))
            .unwrap_or(false);
        if nc {
            Some(FaultPlan::seeded_with_nonconvergence(seed))
        } else {
            Some(FaultPlan::seeded(seed))
        }
    }

    /// Builder: injects `kind` on `lane` at the solver's `solve`-th call
    /// (`None` = every call on that lane).
    #[must_use]
    pub fn with_solve_fault(mut self, lane: u32, solve: Option<u64>, kind: FaultKind) -> Self {
        self.solve_rules.push(SolveRule { lane, solve, kind });
        self
    }

    /// Builder: panics stamp worker `worker` on its `call`-th evaluation.
    #[must_use]
    pub fn with_stamp_panic(mut self, worker: usize, call: u64) -> Self {
        self.stamp_rules.push(StampRule { worker, call });
        self
    }

    /// True when the plan can never fire.
    pub fn is_inert(&self) -> bool {
        self.seed.is_none() && self.solve_rules.is_empty() && self.stamp_rules.is_empty()
    }

    /// The fault (if any) for the `solve`-th point solve on `lane`.
    /// Targeted rules win over chaos.
    pub fn solve_fault(&self, lane: u32, solve: u64) -> Option<FaultKind> {
        for r in &self.solve_rules {
            if r.lane == lane && r.solve.is_none_or(|s| s == solve) {
                return Some(r.kind);
            }
        }
        let seed = self.seed?;
        let h = mix(seed, u64::from(lane), solve);
        if !h.is_multiple_of(CHAOS_PERIOD) {
            return None;
        }
        // Soft faults only (see module docs): singular anywhere; NaN only on
        // speculative lanes, where a discarded solution costs nothing. With
        // nc_chaos, a third of the draws force a non-converged outcome
        // instead, sending the solve through the recovery ladder.
        if self.nc_chaos && (h >> 33) & 3 == 1 {
            return Some(FaultKind::ForceNonConvergence);
        }
        if lane >= 1 && (h >> 32) & 1 == 1 {
            Some(FaultKind::NanSolution)
        } else {
            Some(FaultKind::SingularMatrix)
        }
    }

    /// True when stamp worker `worker` should panic on its `call`-th
    /// evaluation. Chaos never fires here: a stamp-worker panic permanently
    /// degrades the executor to serial stamping, which would silently void
    /// the suite's parallel-stamping coverage.
    pub fn stamp_panic(&self, worker: usize, call: u64) -> bool {
        self.stamp_rules.iter().any(|r| r.worker == worker && r.call == call)
    }
}

/// Shared handle threading a [`FaultPlan`] through solvers and executors,
/// mirroring [`wavepipe_telemetry::ProbeHandle`]: an inert handle is a
/// single branch per solve, and `with_lane` tags each pipeline lane's copy
/// so injection sites know where they run.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    plan: Option<Arc<FaultPlan>>,
    lane: u32,
}

impl FaultHandle {
    /// A handle that never injects.
    pub fn none() -> Self {
        FaultHandle { plan: None, lane: 0 }
    }

    /// Wraps a plan (inert plans collapse to [`FaultHandle::none`], keeping
    /// the fast path branch-only).
    pub fn new(plan: FaultPlan) -> Self {
        if plan.is_inert() {
            FaultHandle::none()
        } else {
            FaultHandle { plan: Some(Arc::new(plan)), lane: 0 }
        }
    }

    /// The environment-selected chaos handle (`WAVEPIPE_FAULT_SEED`),
    /// computed once per process so every `SimOptions::default()` shares one
    /// allocation.
    pub fn from_env_cached() -> Self {
        static CACHE: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
        let plan = CACHE.get_or_init(|| FaultPlan::from_env().map(Arc::new)).clone();
        FaultHandle { plan, lane: 0 }
    }

    /// A copy of this handle tagged with `lane`.
    #[must_use]
    pub fn with_lane(&self, lane: u32) -> Self {
        FaultHandle { plan: self.plan.clone(), lane }
    }

    /// The lane this handle is tagged with.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// True when a plan is attached.
    pub fn enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// The fault (if any) for this lane's `solve`-th point solve.
    #[inline]
    pub fn solve_fault(&self, solve: u64) -> Option<FaultKind> {
        self.plan.as_ref()?.solve_fault(self.lane, solve)
    }

    /// True when stamp worker `worker` should panic on its `call`-th
    /// evaluation.
    #[inline]
    pub fn stamp_panic(&self, worker: usize, call: u64) -> bool {
        match &self.plan {
            Some(p) => p.stamp_panic(worker, call),
            None => false,
        }
    }
}

impl PartialEq for FaultHandle {
    fn eq(&self, other: &Self) -> bool {
        self.lane == other.lane
            && match (&self.plan, &other.plan) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let h = FaultHandle::new(FaultPlan::new());
        assert!(!h.enabled());
        for s in 0..1000 {
            assert_eq!(h.solve_fault(s), None);
        }
        assert!(!h.stamp_panic(0, 0));
    }

    #[test]
    fn targeted_rule_fires_exactly_once() {
        let h =
            FaultHandle::new(FaultPlan::new().with_solve_fault(2, Some(7), FaultKind::PanicWorker))
                .with_lane(2);
        assert_eq!(h.solve_fault(6), None);
        assert_eq!(h.solve_fault(7), Some(FaultKind::PanicWorker));
        assert_eq!(h.solve_fault(8), None);
        assert_eq!(h.with_lane(1).solve_fault(7), None);
    }

    #[test]
    fn lane_wide_rule_fires_on_every_solve() {
        let h =
            FaultHandle::new(FaultPlan::new().with_solve_fault(1, None, FaultKind::SingularMatrix))
                .with_lane(1);
        for s in 0..32 {
            assert_eq!(h.solve_fault(s), Some(FaultKind::SingularMatrix));
        }
    }

    #[test]
    fn chaos_is_deterministic_rare_and_soft() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let mut fired = 0u32;
        for lane in 0..4u32 {
            for solve in 0..4000u64 {
                let fa = a.solve_fault(lane, solve);
                assert_eq!(fa, b.solve_fault(lane, solve), "determinism");
                if let Some(kind) = fa {
                    fired += 1;
                    match kind {
                        FaultKind::SingularMatrix => {}
                        FaultKind::NanSolution => {
                            assert!(lane >= 1, "NaN chaos must spare lane 0")
                        }
                        other => panic!("chaos injected hard fault {other:?}"),
                    }
                }
            }
        }
        assert!(fired > 0, "chaos never fired in 16000 draws");
        assert!(fired < 160, "chaos fired implausibly often: {fired}");
        assert!(!a.stamp_panic(0, 0), "chaos must not panic stamp workers");
    }

    #[test]
    fn nonconvergence_chaos_is_opt_in_and_deterministic() {
        let plain = FaultPlan::seeded(42);
        let nc = FaultPlan::seeded_with_nonconvergence(42);
        let nc2 = FaultPlan::seeded_with_nonconvergence(42);
        let mut forced = 0u32;
        for lane in 0..4u32 {
            for solve in 0..4000u64 {
                let f = nc.solve_fault(lane, solve);
                assert_eq!(f, nc2.solve_fault(lane, solve), "determinism");
                if f == Some(FaultKind::ForceNonConvergence) {
                    forced += 1;
                    // The plain chaos plan never draws this kind.
                    assert_ne!(plain.solve_fault(lane, solve), f);
                }
            }
        }
        assert!(forced > 0, "nc chaos never fired in 16000 draws");
        assert!(forced < 160, "nc chaos fired implausibly often: {forced}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1);
        let b = FaultPlan::seeded(2);
        let same = (0..20_000u64).all(|s| a.solve_fault(1, s) == b.solve_fault(1, s));
        assert!(!same, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn stamp_rule_targets_one_call() {
        let h = FaultHandle::new(FaultPlan::new().with_stamp_panic(1, 3));
        assert!(h.stamp_panic(1, 3));
        assert!(!h.stamp_panic(1, 2));
        assert!(!h.stamp_panic(0, 3));
    }

    #[test]
    fn handle_equality_is_identity() {
        let p = FaultPlan::seeded(9);
        let a = FaultHandle::new(p.clone());
        let b = FaultHandle::new(p);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_ne!(a, a.with_lane(3));
        assert_eq!(FaultHandle::none(), FaultHandle::none());
    }
}
