//! Batched many-scenario transient simulation for WavePipe.
//!
//! Corner sweeps, Monte Carlo runs, and parameter studies all simulate the
//! *same topology* many times with different element values. The classic
//! loop — build a circuit, [`MnaSystem::compile`] it, run it, repeat — pays
//! for circuit validation, pattern construction, symbolic analysis, and
//! stamp planning once **per instance**, even though none of those depend
//! on element values.
//!
//! [`BatchSim`] amortises all of that across the batch:
//!
//! * **One compile.** The base circuit is compiled once; every instance is
//!   derived through [`MnaSystem::with_values_from`], which re-lowers only
//!   the element *values* and reuses the frozen sparse pattern, slot table,
//!   and stamp plan by reference.
//! * **One symbolic ordering.** The fill-reducing column ordering is a pure
//!   function of the shared pattern, so it is computed once and injected
//!   into every instance's Newton solver through
//!   [`SolverHandle::batched`] — each instance still factors its own
//!   values, but skips the symbolic analysis.
//! * **Structure-of-arrays parameters.** Instance values are stored as one
//!   contiguous column per parameter ([`BatchSim::add_instance`] appends a
//!   row across all columns), keeping the sweep definition compact and the
//!   per-instance patch loop cache-friendly.
//! * **Thread-striped dispatch.** [`BatchSim::run`] distributes instances
//!   over `threads / stamp_workers` batch workers (the same two-level
//!   split as `wavepipe-core`), so intra-step stamp parallelism and
//!   across-instance parallelism share one budget.
//! * **Lane-packed SIMD tier.** When eligible (serial stamping, no
//!   deadline/cancel/faults/probe/UIC), instances run in lane groups of up
//!   to [`wavepipe_sparse::lanes::MAX_LANES`]: each group shares one pass
//!   over the LU index structure per numeric factorization and triangular
//!   solve while every instance keeps its own Newton/timestep controller,
//!   so every result stays bit-identical to the classic path (instances
//!   the tier cannot finish are transparently re-run classically). Off
//!   switch: [`BatchSim::with_simd`] or `WAVEPIPE_SIMD=0`.
//! * **Streaming.** [`BatchSim::run_each`] delivers each instance's result
//!   through a callback as it completes; `run`/`run_outcome` are collecting
//!   wrappers over it.
//! * **Fault isolation.** Every instance runs under panic containment with
//!   one degraded-cache retry; a failure quarantines that instance only.
//!   [`BatchSim::run_outcome`] returns the completed waveforms alongside
//!   structured [`QuarantineReport`]s, while [`BatchSim::run`] is the
//!   abort-mode view that collapses any quarantine into
//!   [`BatchError::InstanceFailed`] (carrying *all* failing indices).
//!
//! # Determinism
//!
//! Each batched instance is **bit-identical** to running the classic
//! single-run API on the same patched circuit: value re-lowering uses the
//! same device-construction code path as a fresh compile, and the shared
//! ordering is exactly the one a fresh [`wavepipe_sparse::SparseLu`]
//! factorization would compute from the (shared) pattern. This is pinned by
//! the property tests in `tests/bit_identity.rs`.
//!
//! # Example
//!
//! ```
//! use wavepipe_batch::{BatchSim, ParamKind};
//! use wavepipe_circuit::{Circuit, Waveform};
//!
//! # fn main() -> Result<(), wavepipe_batch::BatchError> {
//! let mut ckt = Circuit::new("rc");
//! let a = ckt.node("a");
//! let b = ckt.node("b");
//! ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
//! ckt.add_resistor("R1", a, b, 1e3).unwrap();
//! ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
//!
//! let mut batch = BatchSim::compile(&ckt, 1e-8, 2e-6)?.with_threads(2);
//! batch.param("R1", ParamKind::Resistance)?;
//! batch.param("C1", ParamKind::Capacitance)?;
//! for (r, c) in [(0.9e3, 1e-9), (1e3, 1e-9), (1.1e3, 1.2e-9)] {
//!     batch.add_instance(&[r, c])?;
//! }
//! let run = batch.run()?;
//! assert_eq!(run.results().len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use wavepipe_circuit::{Circuit, Element, Waveform};
use wavepipe_engine::lane::{run_lane_group, LaneOutcome};
use wavepipe_engine::transient::run_transient_recoverable_compiled;
use wavepipe_engine::{EngineError, MnaSystem, SimOptions, SolverHandle, TransientResult};
use wavepipe_sparse::lanes::MAX_LANES;
use wavepipe_sparse::{LuOptions, Permutation};

/// Which value of a named element a batch parameter column drives.
///
/// The kind is validated against the element when the column is registered
/// ([`BatchSim::param`]), so a mismatch is a setup-time error rather than a
/// mid-batch surprise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamKind {
    /// Resistance of a `Resistor`, in ohms.
    Resistance,
    /// Capacitance of a `Capacitor`, in farads.
    Capacitance,
    /// Inductance of an `Inductor`, in henries.
    Inductance,
    /// DC value of a `VoltageSource` or `CurrentSource`; replaces the
    /// waveform with [`Waveform::Dc`].
    SourceDc,
    /// Zero-bias threshold voltage `VTO` of a `Mosfet` model, in volts.
    MosVt0,
    /// Transconductance parameter `KP` of a `Mosfet` model, in A/V².
    MosKp,
    /// Channel width `W` of a `Mosfet` model, in meters.
    MosW,
    /// Channel length `L` of a `Mosfet` model, in meters.
    MosL,
    /// Saturation current `IS` of a `Diode` model, in amperes.
    DiodeIs,
    /// Junction temperature of a `Diode` model, in °C (scales the thermal
    /// voltage; see `DiodeModel::temp_c`).
    Temperature,
    /// Delay `TD` of a source's `PULSE` waveform, in seconds. The source
    /// must already carry a [`Waveform::Pulse`].
    PulseDelay,
    /// Rise time `TR` of a source's `PULSE` waveform, in seconds.
    PulseRise,
    /// Fall time `TF` of a source's `PULSE` waveform, in seconds.
    PulseFall,
    /// Time coordinate of the `i`-th point of a source's `PWL` waveform, in
    /// seconds. The index is validated against the waveform's point count at
    /// registration; keeping the swept times strictly increasing across
    /// instances is the caller's responsibility (the waveform evaluates
    /// deterministically either way, but out-of-order points follow
    /// last-segment-wins semantics rather than erroring).
    PwlTime(usize),
}

impl fmt::Display for ParamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParamKind::Resistance => "resistance",
            ParamKind::Capacitance => "capacitance",
            ParamKind::Inductance => "inductance",
            ParamKind::SourceDc => "source DC value",
            ParamKind::MosVt0 => "MOSFET vt0",
            ParamKind::MosKp => "MOSFET kp",
            ParamKind::MosW => "MOSFET width",
            ParamKind::MosL => "MOSFET length",
            ParamKind::DiodeIs => "diode is",
            ParamKind::Temperature => "junction temperature",
            ParamKind::PulseDelay => "pulse delay",
            ParamKind::PulseRise => "pulse rise time",
            ParamKind::PulseFall => "pulse fall time",
            ParamKind::PwlTime(k) => return write!(f, "PWL point {k} time"),
        };
        f.write_str(s)
    }
}

impl ParamKind {
    /// Whether this kind can drive the given element.
    fn accepts(self, elem: &Element) -> bool {
        match (self, elem) {
            (ParamKind::Resistance, Element::Resistor { .. })
            | (ParamKind::Capacitance, Element::Capacitor { .. })
            | (ParamKind::Inductance, Element::Inductor { .. })
            | (ParamKind::SourceDc, Element::VoltageSource { .. })
            | (ParamKind::SourceDc, Element::CurrentSource { .. })
            | (ParamKind::MosVt0, Element::Mosfet { .. })
            | (ParamKind::MosKp, Element::Mosfet { .. })
            | (ParamKind::MosW, Element::Mosfet { .. })
            | (ParamKind::MosL, Element::Mosfet { .. })
            | (ParamKind::DiodeIs, Element::Diode { .. })
            | (ParamKind::Temperature, Element::Diode { .. }) => true,
            (
                ParamKind::PulseDelay | ParamKind::PulseRise | ParamKind::PulseFall,
                Element::VoltageSource { waveform, .. } | Element::CurrentSource { waveform, .. },
            ) => matches!(waveform, Waveform::Pulse { .. }),
            (
                ParamKind::PwlTime(k),
                Element::VoltageSource { waveform, .. } | Element::CurrentSource { waveform, .. },
            ) => matches!(waveform, Waveform::Pwl(pts) if k < pts.len()),
            _ => false,
        }
    }

    /// Write `value` into the element. Caller has already validated the
    /// kind/element pairing via [`ParamKind::accepts`].
    fn apply(self, elem: &mut Element, value: f64) {
        match (self, elem) {
            (ParamKind::Resistance, Element::Resistor { resistance, .. }) => *resistance = value,
            (ParamKind::Capacitance, Element::Capacitor { capacitance, .. }) => {
                *capacitance = value;
            }
            (ParamKind::Inductance, Element::Inductor { inductance, .. }) => *inductance = value,
            (ParamKind::SourceDc, Element::VoltageSource { waveform, .. })
            | (ParamKind::SourceDc, Element::CurrentSource { waveform, .. }) => {
                *waveform = Waveform::Dc(value);
            }
            (ParamKind::MosVt0, Element::Mosfet { model, .. }) => model.vt0 = value,
            (ParamKind::MosKp, Element::Mosfet { model, .. }) => model.kp = value,
            (ParamKind::MosW, Element::Mosfet { model, .. }) => model.w = value,
            (ParamKind::MosL, Element::Mosfet { model, .. }) => model.l = value,
            (ParamKind::DiodeIs, Element::Diode { model, .. }) => model.is = value,
            (ParamKind::Temperature, Element::Diode { model, .. }) => model.temp_c = value,
            (
                ParamKind::PulseDelay,
                Element::VoltageSource { waveform: Waveform::Pulse { td, .. }, .. }
                | Element::CurrentSource { waveform: Waveform::Pulse { td, .. }, .. },
            ) => *td = value,
            (
                ParamKind::PulseRise,
                Element::VoltageSource { waveform: Waveform::Pulse { tr, .. }, .. }
                | Element::CurrentSource { waveform: Waveform::Pulse { tr, .. }, .. },
            ) => *tr = value,
            (
                ParamKind::PulseFall,
                Element::VoltageSource { waveform: Waveform::Pulse { tf, .. }, .. }
                | Element::CurrentSource { waveform: Waveform::Pulse { tf, .. }, .. },
            ) => *tf = value,
            (
                ParamKind::PwlTime(k),
                Element::VoltageSource { waveform: Waveform::Pwl(pts), .. }
                | Element::CurrentSource { waveform: Waveform::Pwl(pts), .. },
            ) => pts[k].0 = value,
            _ => unreachable!("param kind validated at registration"),
        }
    }
}

/// Error from batch setup or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BatchError {
    /// Compiling the base circuit, or deriving an instance system, failed.
    Engine(EngineError),
    /// A parameter column referenced an element that does not exist in the
    /// base circuit.
    UnknownElement {
        /// The missing element name.
        name: String,
    },
    /// A parameter column referenced an element of the wrong kind (e.g.
    /// [`ParamKind::Resistance`] on a capacitor).
    WrongKind {
        /// The element name.
        name: String,
        /// The requested parameter kind.
        kind: ParamKind,
    },
    /// [`BatchSim::add_instance`] was given the wrong number of values for
    /// the registered parameter columns.
    ParamCountMismatch {
        /// Registered parameter columns.
        expected: usize,
        /// Values supplied.
        found: usize,
    },
    /// [`BatchSim::run`] was called with no instances added.
    NoInstances,
    /// One or more instances of the batch failed. Every instance still runs
    /// to completion (quarantine-and-continue); this error is the abort-mode
    /// summary assembled afterwards by [`BatchOutcome::into_run`].
    InstanceFailed {
        /// Lowest failing instance index (the order of
        /// [`BatchSim::add_instance`] calls) — kept as the headline so the
        /// report is deterministic regardless of worker interleaving.
        index: usize,
        /// *All* failing instance indices, ascending. Always contains
        /// `index` as its first element.
        indices: Vec<usize>,
        /// The underlying engine failure of the lowest failing instance.
        source: EngineError,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Engine(e) => write!(f, "batch compile failed: {e}"),
            BatchError::UnknownElement { name } => {
                write!(f, "no element named {name} in the base circuit")
            }
            BatchError::WrongKind { name, kind } => {
                write!(f, "element {name} cannot take a {kind} parameter")
            }
            BatchError::ParamCountMismatch { expected, found } => {
                write!(f, "instance has {found} values but {expected} parameter columns")
            }
            BatchError::NoInstances => write!(f, "batch has no instances to run"),
            BatchError::InstanceFailed { index, indices, source } => {
                write!(f, "instance {index} failed: {source}")?;
                if indices.len() > 1 {
                    write!(f, " ({} instances failed in total: {indices:?})", indices.len())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Engine(e) | BatchError::InstanceFailed { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for BatchError {
    fn from(e: EngineError) -> Self {
        BatchError::Engine(e)
    }
}

/// One registered parameter column: which element, which value.
#[derive(Debug, Clone)]
struct ParamSpec {
    element: String,
    kind: ParamKind,
}

/// A batched many-scenario transient simulation.
///
/// Built with [`BatchSim::compile`] (one compile of the base circuit),
/// configured with the builder-style `with_*` methods, populated with
/// [`BatchSim::param`] / [`BatchSim::add_instance`], and executed with
/// [`BatchSim::run`]. See the [crate docs](crate) for what is shared across
/// instances and the determinism contract.
#[derive(Debug, Clone)]
pub struct BatchSim {
    sys: Arc<MnaSystem>,
    base: Circuit,
    tstep: f64,
    tstop: f64,
    sim: SimOptions,
    threads: usize,
    simd: bool,
    lane_width: usize,
    params: Vec<ParamSpec>,
    /// SoA storage: `columns[p][i]` is the value of parameter column `p`
    /// for instance `i`. All columns always have the same length.
    columns: Vec<Vec<f64>>,
    n_instances: usize,
}

impl BatchSim {
    /// Compile the base circuit once and set the shared analysis window.
    ///
    /// # Errors
    ///
    /// [`BatchError::Engine`] when the circuit fails validation or MNA
    /// compilation.
    pub fn compile(circuit: &Circuit, tstep: f64, tstop: f64) -> Result<Self, BatchError> {
        let sys = Arc::new(MnaSystem::compile(circuit)?);
        Ok(BatchSim {
            sys,
            base: circuit.clone(),
            tstep,
            tstop,
            sim: SimOptions::default(),
            threads: 1,
            simd: true,
            lane_width: MAX_LANES,
            params: Vec::new(),
            columns: Vec::new(),
            n_instances: 0,
        })
    }

    /// Total thread budget for the batch (default 1). Instances are striped
    /// over `threads / max(stamp_workers, 1)` batch workers, mirroring the
    /// two-level split of `wavepipe-core`: intra-step stamp workers and
    /// across-instance workers draw from one budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Per-instance simulation options (tolerances, integration method,
    /// caches, probes). The solver handle inside is overridden per run with
    /// the shared batched ordering; everything else is applied verbatim to
    /// every instance.
    #[must_use]
    pub fn with_sim(mut self, sim: SimOptions) -> Self {
        self.sim = sim;
        self
    }

    /// Stamp workers per instance (forwarded to
    /// [`SimOptions::with_stamp_workers`]). Part of the two-level thread
    /// split; see [`BatchSim::with_threads`].
    #[must_use]
    pub fn with_stamp_workers(mut self, stamp_workers: usize) -> Self {
        self.sim = self.sim.with_stamp_workers(stamp_workers);
        self
    }

    /// Whether the lane-packed (SIMD) batch tier may run (default `true`).
    /// `WAVEPIPE_SIMD=0` forces it off process-wide regardless of this
    /// setting — that is the forced-scalar CI leg. The tier is only *used*
    /// when the run is eligible for it; see [`BatchSim::lane_width_in_use`].
    #[must_use]
    pub fn with_simd(mut self, simd: bool) -> Self {
        self.simd = simd;
        self
    }

    /// Instances packed per lane group in the SIMD tier, clamped to
    /// `1..=MAX_LANES` (default `MAX_LANES` = 4). Width 1 still exercises
    /// the lane-tier code path (useful for pinning its bit-identity), it
    /// just packs nothing.
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width.clamp(1, MAX_LANES);
        self
    }

    /// The lane width the next run will actually use: `0` when the SIMD
    /// tier is disabled ([`BatchSim::with_simd`], `WAVEPIPE_SIMD=0`) or the
    /// configuration is ineligible for it, else the configured width.
    ///
    /// Eligibility: serial stamping, no deadline or cancel token, no fault
    /// injection, no trace probe, no UIC start. Each of those features is
    /// mirrored only by the classic per-instance path; metrics are
    /// supported in both tiers.
    pub fn lane_width_in_use(&self) -> usize {
        let eligible = self.simd
            && env_flag("WAVEPIPE_SIMD")
            && self.sim.stamp_workers == 0
            && self.sim.deadline.is_none()
            && self.sim.cancel.is_none()
            && !self.sim.faults.enabled()
            && !self.sim.probe.enabled()
            && !self.sim.use_ic;
        if eligible {
            self.lane_width
        } else {
            0
        }
    }

    /// Register a parameter column driving `kind` of the named element
    /// (case-insensitive, like every name lookup in WavePipe). Returns the
    /// column index, which is also the position the value takes in each
    /// [`BatchSim::add_instance`] row.
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownElement`] when no element has that name;
    /// [`BatchError::WrongKind`] when the element cannot take that
    /// parameter. Columns cannot be registered once instances exist
    /// ([`BatchError::ParamCountMismatch`] — the existing rows would be
    /// short).
    pub fn param(&mut self, element: &str, kind: ParamKind) -> Result<usize, BatchError> {
        if self.n_instances > 0 {
            return Err(BatchError::ParamCountMismatch {
                expected: self.params.len() + 1,
                found: self.params.len(),
            });
        }
        let elem = self
            .base
            .element(element)
            .ok_or_else(|| BatchError::UnknownElement { name: element.to_string() })?;
        if !kind.accepts(elem) {
            return Err(BatchError::WrongKind { name: element.to_string(), kind });
        }
        self.params.push(ParamSpec { element: element.to_string(), kind });
        self.columns.push(Vec::new());
        Ok(self.params.len() - 1)
    }

    /// Append one instance: `values[p]` goes to parameter column `p`.
    /// Returns the instance index.
    ///
    /// # Errors
    ///
    /// [`BatchError::ParamCountMismatch`] when `values.len()` differs from
    /// the number of registered columns.
    pub fn add_instance(&mut self, values: &[f64]) -> Result<usize, BatchError> {
        if values.len() != self.params.len() {
            return Err(BatchError::ParamCountMismatch {
                expected: self.params.len(),
                found: values.len(),
            });
        }
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        self.n_instances += 1;
        Ok(self.n_instances - 1)
    }

    /// Number of registered parameter columns.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Number of instances added so far.
    pub fn instance_count(&self) -> usize {
        self.n_instances
    }

    /// The shared compiled system all instances derive from.
    pub fn system(&self) -> &Arc<MnaSystem> {
        &self.sys
    }

    /// Build the patched circuit for one instance (base circuit with every
    /// registered column's value written in).
    fn instance_circuit(&self, index: usize) -> Circuit {
        let mut ckt = self.base.clone();
        for (spec, col) in self.params.iter().zip(&self.columns) {
            let elem =
                ckt.element_mut(&spec.element).expect("validated at registration: element exists");
            spec.kind.apply(elem, col[index]);
        }
        ckt
    }

    /// Solve one instance against the shared system and ordering.
    fn run_instance(
        &self,
        index: usize,
        opts: &SimOptions,
    ) -> Result<TransientResult, EngineError> {
        let ckt = self.instance_circuit(index);
        let sys = Arc::new(self.sys.with_values_from(&ckt)?);
        run_transient_recoverable_compiled(&sys, self.tstep, self.tstop, opts)
            .and_then(|o| o.into_result())
    }

    /// Per-instance options: a configured deadline is a *per-instance*
    /// budget, so each instance (and each retry) gets a fresh private token
    /// — one slow instance must not spend its siblings' budget or cancel
    /// them when it expires. A caller-owned cancel token *without* a
    /// deadline stays shared: cancelling it stops the whole batch.
    fn instance_opts(&self, base: &SimOptions) -> SimOptions {
        let mut opts = base.clone();
        if let Some(budget) = opts.deadline {
            opts.cancel = None;
            opts = opts.with_deadline(budget);
        }
        opts
    }

    /// One fault-isolated instance: panic containment, quarantine on
    /// failure, and a single retry with degraded caches.
    ///
    /// The retry pins every value-reuse optimisation off (device bypass,
    /// chord Newton, companion cache) and forces the transient recovery
    /// ladder on — if the first failure was a poisoned cache or a
    /// convergence cliff the caches papered over, the degraded re-run is
    /// the rollback that clears it. Budget errors (cancellation, expired
    /// per-instance deadline) quarantine immediately without a retry: the
    /// caller asked this instance to stop.
    fn run_instance_isolated(
        &self,
        index: usize,
        base: &SimOptions,
    ) -> Result<TransientResult, QuarantineReport> {
        let attempt = |opts: &SimOptions| -> Result<TransientResult, (EngineError, bool)> {
            catch_unwind(AssertUnwindSafe(|| self.run_instance(index, opts)))
                .map_err(|p| {
                    (EngineError::WorkerLost { lane: index as u32, cause: panic_message(&p) }, true)
                })?
                .map_err(|e| (e, false))
        };

        let (error, panicked) = match attempt(&self.instance_opts(base)) {
            Ok(r) => return Ok(r),
            Err(e) => e,
        };
        if !panicked && error.is_budget() {
            return Err(QuarantineReport { index, error, retried: false, panicked });
        }
        let degraded = self
            .instance_opts(base)
            .with_bypass(false)
            .with_chord_newton(false)
            .with_companion_cache(false)
            .with_recovery(true);
        match attempt(&degraded) {
            Ok(r) => Ok(r),
            Err((error, p2)) => {
                Err(QuarantineReport { index, error, retried: true, panicked: panicked || p2 })
            }
        }
    }

    /// Run every instance with per-instance fault isolation and collect
    /// both the completed waveforms and the structured failure reports.
    ///
    /// The fill-reducing ordering is computed once from the shared pattern
    /// and injected into every instance through [`SolverHandle::batched`];
    /// instances are striped round-robin over the batch workers. A failing
    /// (or panicking) instance is **quarantined**: it is retried once with
    /// degraded caches (device bypass, chord Newton, and the companion
    /// cache pinned off; the recovery ladder pinned on), and if the retry
    /// also fails it lands in
    /// [`BatchOutcome::quarantined`] while every other instance still runs
    /// to completion. No-fault instances are bit-identical to a fault-free
    /// run: isolation only changes what happens on the error path.
    ///
    /// # Errors
    ///
    /// [`BatchError::NoInstances`] for an empty batch, or
    /// [`BatchError::Engine`] when the shared symbolic preparation fails.
    /// Per-instance failures never error here — they are data, in the
    /// returned [`BatchOutcome`].
    pub fn run_outcome(&self) -> Result<BatchOutcome, BatchError> {
        let mut slots: Vec<Option<Result<TransientResult, QuarantineReport>>> =
            (0..self.n_instances).map(|_| None).collect();
        let dispatch = self.run_each(|i, r| slots[i] = Some(r))?;

        let mut results = Vec::with_capacity(self.n_instances);
        let mut quarantined = Vec::new();
        for slot in slots {
            match slot.expect("every unit covers its instances") {
                Ok(r) => results.push(Some(r)),
                Err(q) => {
                    results.push(None);
                    quarantined.push(q);
                }
            }
        }
        Ok(BatchOutcome {
            results,
            quarantined,
            workers: dispatch.workers,
            prep_ns: dispatch.prep_ns,
            wall_ns: dispatch.wall_ns,
        })
    }

    /// Run every instance, **streaming** each per-instance result through
    /// `on_result` as it completes instead of collecting the whole batch in
    /// memory first. This is the execution core; [`BatchSim::run_outcome`]
    /// and [`BatchSim::run`] are collecting wrappers over it.
    ///
    /// `on_result` receives `(instance_index, result)` exactly once per
    /// instance, in **completion order** (not index order) — workers race.
    /// Calls are serialized (the callback is behind a mutex), so it may
    /// mutate captured state freely; keep it cheap, since a slow callback
    /// backpressures every worker.
    ///
    /// When the batch is eligible for the lane-packed SIMD tier
    /// ([`BatchSim::lane_width_in_use`]), instances are executed in lane
    /// groups of up to that width: one group shares each pass over the LU
    /// index structure while every instance keeps its own step controller,
    /// so each result stays bit-identical to the classic path. An instance
    /// the lane tier cannot finish (failed DC, recovery-ladder entry,
    /// numerical blowup, a panic anywhere in the group) is transparently
    /// re-run through the classic fault-isolated path, which reproduces the
    /// classic behaviour — including its quarantine semantics — exactly.
    ///
    /// # Errors
    ///
    /// [`BatchError::NoInstances`] for an empty batch, or
    /// [`BatchError::Engine`] when the shared symbolic preparation fails.
    /// Per-instance failures are streamed as `Err(QuarantineReport)`.
    pub fn run_each<F>(&self, on_result: F) -> Result<BatchDispatch, BatchError>
    where
        F: FnMut(usize, Result<TransientResult, QuarantineReport>) + Send,
    {
        if self.n_instances == 0 {
            return Err(BatchError::NoInstances);
        }
        let start = Instant::now();
        let ordering = Arc::new(
            wavepipe_sparse::ordering::order(self.sys.pattern(), LuOptions::default().ordering)
                .map_err(|e| BatchError::Engine(EngineError::Linear(e)))?,
        );
        let opts = self.sim.clone().with_solver(SolverHandle::batched(Arc::clone(&ordering)));
        let lane_width = self.lane_width_in_use();
        // A unit of work is one instance (classic) or one lane group (SIMD).
        let n_units =
            if lane_width > 0 { self.n_instances.div_ceil(lane_width) } else { self.n_instances };
        let workers = self.workers().min(n_units);
        let prep_ns = start.elapsed().as_nanos();

        let sink = Mutex::new(on_result);
        let run_unit = |u: usize| {
            if lane_width > 0 {
                self.run_lane_unit(u, lane_width, &opts, &ordering, &sink);
            } else {
                let r = self.run_instance_isolated(u, &opts);
                (sink.lock().expect("result sink poisoned"))(u, r);
            }
        };
        if workers <= 1 {
            for u in 0..n_units {
                run_unit(u);
            }
        } else {
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let run_unit = &run_unit;
                    scope.spawn(move || {
                        let mut u = w;
                        while u < n_units {
                            run_unit(u);
                            u += workers;
                        }
                    });
                }
            });
        }
        Ok(BatchDispatch { workers, lane_width, prep_ns, wall_ns: start.elapsed().as_nanos() })
    }

    /// One SIMD-tier unit: derive the group's instance systems, run them as
    /// a lane group, and stream the results. Every path the lane tier does
    /// not cover falls back to [`BatchSim::run_instance_isolated`], which
    /// reproduces classic behaviour exactly (see the lane-group docs).
    fn run_lane_unit<F>(
        &self,
        unit: usize,
        lane_width: usize,
        opts: &SimOptions,
        ordering: &Arc<Permutation>,
        sink: &Mutex<F>,
    ) where
        F: FnMut(usize, Result<TransientResult, QuarantineReport>) + Send,
    {
        let emit = |i: usize, r: Result<TransientResult, QuarantineReport>| {
            (sink.lock().expect("result sink poisoned"))(i, r);
        };
        let lo = unit * lane_width;
        let hi = (lo + lane_width).min(self.n_instances);
        let mut systems: Vec<Arc<MnaSystem>> = Vec::with_capacity(hi - lo);
        let mut packed: Vec<usize> = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let ckt = self.instance_circuit(i);
            match self.sys.with_values_from(&ckt) {
                Ok(sys) => {
                    systems.push(Arc::new(sys));
                    packed.push(i);
                }
                // Derivation failed: the classic path owns this error (and
                // its retry/quarantine semantics).
                Err(_) => emit(i, self.run_instance_isolated(i, opts)),
            }
        }
        if systems.is_empty() {
            return;
        }
        let group = catch_unwind(AssertUnwindSafe(|| {
            run_lane_group(&systems, self.tstep, self.tstop, opts, ordering)
        }));
        match group {
            Ok(outcomes) => {
                for (outcome, &i) in outcomes.into_iter().zip(&packed) {
                    match outcome {
                        LaneOutcome::Completed(r) => emit(i, Ok(*r)),
                        LaneOutcome::Ejected => emit(i, self.run_instance_isolated(i, opts)),
                    }
                }
            }
            // A panic inside the shared tick loop cannot be attributed to
            // one lane; rerun the whole group classically, where panic
            // containment is per instance.
            Err(_) => {
                for &i in &packed {
                    emit(i, self.run_instance_isolated(i, opts));
                }
            }
        }
    }

    /// Run every instance and collect the results in instance order,
    /// aborting (after the full batch has run) if any instance failed.
    ///
    /// This is [`BatchSim::run_outcome`] in abort mode: the same
    /// fault-isolated execution, collapsed through
    /// [`BatchOutcome::into_run`]. Failures are deterministic — the
    /// lowest-index failing instance is the headline and the error carries
    /// every failing index.
    ///
    /// # Errors
    ///
    /// [`BatchError::NoInstances`] for an empty batch;
    /// [`BatchError::InstanceFailed`] when an instance cannot be derived or
    /// does not converge (even after its degraded-cache retry).
    pub fn run(&self) -> Result<BatchRun, BatchError> {
        self.run_outcome()?.into_run()
    }

    /// Batch workers implied by the two-level thread split:
    /// `threads / max(stamp_workers, 1)`, at least 1.
    pub fn workers(&self) -> usize {
        (self.threads / self.sim.stamp_workers.max(1)).max(1)
    }
}

/// How a [`BatchSim::run_each`] dispatch was executed: worker count, the
/// lane width actually used, and the shared-preparation / total wall times.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct BatchDispatch {
    /// Batch workers that executed the run.
    pub workers: usize,
    /// Lane width of the SIMD tier, or `0` when the classic per-instance
    /// path ran (disabled or ineligible — see
    /// [`BatchSim::lane_width_in_use`]).
    pub lane_width: usize,
    /// Wall nanoseconds spent on shared preparation (the symbolic ordering)
    /// before any instance ran.
    pub prep_ns: u128,
    /// Total wall nanoseconds for the whole batch, preparation included.
    pub wall_ns: u128,
}

/// `WAVEPIPE_SIMD=0`/`false`/`off`/`no` forces the lane-packed batch tier
/// off for the whole process (the forced-scalar CI leg); anything else —
/// including unset — leaves it available. Mirrors the engine's cache knobs.
fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

/// The outcome of [`BatchSim::run`]: one [`TransientResult`] per instance,
/// in the order the instances were added.
#[derive(Debug, Clone)]
pub struct BatchRun {
    results: Vec<TransientResult>,
    workers: usize,
    prep_ns: u128,
    wall_ns: u128,
}

impl BatchRun {
    /// Per-instance results, in [`BatchSim::add_instance`] order.
    pub fn results(&self) -> &[TransientResult] {
        &self.results
    }

    /// Consume the run and take ownership of the per-instance results.
    pub fn into_results(self) -> Vec<TransientResult> {
        self.results
    }

    /// Batch workers that executed the run.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Wall nanoseconds spent on shared preparation (the symbolic
    /// ordering) before any instance ran.
    pub fn prep_ns(&self) -> u128 {
        self.prep_ns
    }

    /// Total wall nanoseconds for the whole batch, preparation included.
    pub fn wall_ns(&self) -> u128 {
        self.wall_ns
    }
}

/// Structured report for one quarantined batch instance: which row failed,
/// how, and what the isolation machinery tried before giving up.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct QuarantineReport {
    /// Instance index (the order of [`BatchSim::add_instance`] calls).
    pub index: usize,
    /// The failure of the **last** attempt. A panic is reported as
    /// [`EngineError::WorkerLost`] with the stringified panic payload and
    /// the instance index as the lane.
    pub error: EngineError,
    /// Whether the degraded-cache retry ran (and also failed). `false`
    /// means the first failure was a budget error (cancellation or an
    /// expired per-instance deadline), which is never retried.
    pub retried: bool,
    /// Whether any attempt panicked (as opposed to returning a typed
    /// engine error). The panic was contained to this instance.
    pub panicked: bool,
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance {} quarantined", self.index)?;
        if self.panicked {
            f.write_str(" (panicked)")?;
        }
        if self.retried {
            f.write_str(" after degraded-cache retry")?;
        }
        write!(f, ": {}", self.error)
    }
}

/// The outcome of [`BatchSim::run_outcome`]: completed waveforms alongside
/// structured failure reports, one slot per instance.
///
/// A quarantined instance leaves a `None` in [`BatchOutcome::results`] and
/// a [`QuarantineReport`] in [`BatchOutcome::quarantined`]; every other
/// instance's waveform is exactly what a fault-free batch would have
/// produced.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    results: Vec<Option<TransientResult>>,
    quarantined: Vec<QuarantineReport>,
    workers: usize,
    prep_ns: u128,
    wall_ns: u128,
}

impl BatchOutcome {
    /// Per-instance slots in [`BatchSim::add_instance`] order: `Some` for
    /// completed instances, `None` where a [`QuarantineReport`] stands in.
    pub fn results(&self) -> &[Option<TransientResult>] {
        &self.results
    }

    /// Completed `(index, waveform)` pairs, ascending by index.
    pub fn completed(&self) -> impl Iterator<Item = (usize, &TransientResult)> {
        self.results.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }

    /// Quarantine reports, ascending by instance index.
    pub fn quarantined(&self) -> &[QuarantineReport] {
        &self.quarantined
    }

    /// True when every instance completed.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Batch workers that executed the run.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Wall nanoseconds spent on shared preparation (the symbolic
    /// ordering) before any instance ran.
    pub fn prep_ns(&self) -> u128 {
        self.prep_ns
    }

    /// Total wall nanoseconds for the whole batch, preparation included.
    pub fn wall_ns(&self) -> u128 {
        self.wall_ns
    }

    /// Collapse to abort mode: a clean outcome becomes a [`BatchRun`]; any
    /// quarantine becomes [`BatchError::InstanceFailed`] with the lowest
    /// failing index as the headline and *all* failing indices attached.
    ///
    /// # Errors
    ///
    /// [`BatchError::InstanceFailed`] when any instance was quarantined.
    pub fn into_run(self) -> Result<BatchRun, BatchError> {
        if let Some(first) = self.quarantined.first() {
            return Err(BatchError::InstanceFailed {
                index: first.index,
                indices: self.quarantined.iter().map(|q| q.index).collect(),
                source: first.error.clone(),
            });
        }
        let results = self
            .results
            .into_iter()
            .map(|r| r.expect("clean outcome has every slot filled"))
            .collect();
        Ok(BatchRun {
            results,
            workers: self.workers,
            prep_ns: self.prep_ns,
            wall_ns: self.wall_ns,
        })
    }
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "instance worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_circuit() -> Circuit {
        let mut ckt = Circuit::new("rc");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        ckt
    }

    #[test]
    fn unknown_element_is_a_setup_error() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        let err = batch.param("R99", ParamKind::Resistance).unwrap_err();
        assert_eq!(err, BatchError::UnknownElement { name: "R99".into() });
    }

    #[test]
    fn wrong_kind_is_a_setup_error() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        let err = batch.param("C1", ParamKind::Resistance).unwrap_err();
        assert_eq!(err, BatchError::WrongKind { name: "C1".into(), kind: ParamKind::Resistance });
        // Error message names both sides of the mismatch.
        assert!(err.to_string().contains("C1"));
        assert!(err.to_string().contains("resistance"));
    }

    #[test]
    fn element_lookup_is_case_insensitive() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        assert_eq!(batch.param("r1", ParamKind::Resistance).unwrap(), 0);
    }

    #[test]
    fn value_count_mismatch_is_rejected() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        batch.param("R1", ParamKind::Resistance).unwrap();
        let err = batch.add_instance(&[1e3, 2e3]).unwrap_err();
        assert_eq!(err, BatchError::ParamCountMismatch { expected: 1, found: 2 });
        assert_eq!(batch.instance_count(), 0);
    }

    #[test]
    fn params_are_frozen_once_instances_exist() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        batch.param("R1", ParamKind::Resistance).unwrap();
        batch.add_instance(&[1e3]).unwrap();
        assert!(matches!(
            batch.param("C1", ParamKind::Capacitance),
            Err(BatchError::ParamCountMismatch { .. })
        ));
    }

    #[test]
    fn empty_batch_refuses_to_run() {
        let batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        assert_eq!(batch.run().unwrap_err(), BatchError::NoInstances);
    }

    #[test]
    fn two_level_split_determines_workers() {
        let batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6)
            .unwrap()
            .with_threads(8)
            .with_stamp_workers(2);
        assert_eq!(batch.workers(), 4);
        let serial = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        assert_eq!(serial.workers(), 1);
    }

    #[test]
    fn batch_matches_single_runs() {
        // Pin serial stamping so a `WAVEPIPE_STAMP_WORKERS` CI leg cannot
        // steal threads from the batch-level split.
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 2e-6)
            .unwrap()
            .with_threads(2)
            .with_stamp_workers(0);
        batch.param("R1", ParamKind::Resistance).unwrap();
        batch.param("C1", ParamKind::Capacitance).unwrap();
        let corners = [(0.5e3, 1e-9), (1e3, 1e-9), (2e3, 2e-9)];
        for (r, c) in corners {
            batch.add_instance(&[r, c]).unwrap();
        }
        let run = batch.run().unwrap();
        assert_eq!(run.results().len(), 3);
        // Workers stripe over work units: one lane group packing all three
        // instances when the SIMD tier is live, three single instances on
        // the forced-scalar leg (`WAVEPIPE_SIMD=0`).
        let expect_workers = if batch.lane_width_in_use() > 0 { 1 } else { 2 };
        assert_eq!(run.workers(), expect_workers);
        for ((r, c), got) in corners.iter().zip(run.results()) {
            let mut ckt = rc_circuit();
            if let Some(Element::Resistor { resistance, .. }) = ckt.element_mut("R1") {
                *resistance = *r;
            }
            if let Some(Element::Capacitor { capacitance, .. }) = ckt.element_mut("C1") {
                *capacitance = *c;
            }
            // The batch engine always solves through `SolverHandle::batched`
            // (direct LU); pin the reference to direct too so the bitwise
            // cross-check holds on the `WAVEPIPE_SOLVER=gmres` CI leg.
            let opts = SimOptions::default().with_solver(SolverHandle::direct());
            let want = wavepipe_engine::run_transient(&ckt, 1e-8, 2e-6, &opts).unwrap();
            assert_eq!(got.times(), want.times(), "time grids diverged at R={r} C={c}");
            for k in 0..want.len() {
                assert_eq!(got.solution(k), want.solution(k), "solutions diverged at point {k}");
            }
        }
    }

    #[test]
    fn failing_instance_reports_its_index() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        batch.param("R1", ParamKind::Resistance).unwrap();
        batch.add_instance(&[1e3]).unwrap();
        batch.add_instance(&[f64::NAN]).unwrap(); // poisons the matrix
        let err = batch.run().unwrap_err();
        assert!(
            matches!(err, BatchError::InstanceFailed { index: 1, .. }),
            "expected instance 1 to fail, got {err:?}"
        );
    }

    #[test]
    fn quarantine_keeps_siblings_and_reports_structure() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        batch.param("R1", ParamKind::Resistance).unwrap();
        batch.add_instance(&[1e3]).unwrap();
        batch.add_instance(&[f64::NAN]).unwrap(); // poisons the matrix
        batch.add_instance(&[2e3]).unwrap();
        let out = batch.run_outcome().unwrap();
        assert!(!out.is_clean());
        assert_eq!(out.completed().count(), 2);
        assert!(out.results()[0].is_some() && out.results()[2].is_some());
        assert!(out.results()[1].is_none());
        let [q] = out.quarantined() else { panic!("expected one quarantine") };
        assert_eq!(q.index, 1);
        assert!(q.retried, "an engine failure must get its degraded-cache retry");
        assert!(!q.panicked);
        assert!(q.to_string().contains("instance 1 quarantined"), "{q}");
        // Abort mode: lowest index is the headline, all indices attached.
        match out.into_run().unwrap_err() {
            BatchError::InstanceFailed { index, indices, .. } => {
                assert_eq!(index, 1);
                assert_eq!(indices, vec![1]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn abort_mode_carries_all_failed_indices() {
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6).unwrap();
        batch.param("R1", ParamKind::Resistance).unwrap();
        for r in [f64::NAN, 1e3, f64::NAN, 2e3] {
            batch.add_instance(&[r]).unwrap();
        }
        match batch.run().unwrap_err() {
            BatchError::InstanceFailed { index, indices, .. } => {
                assert_eq!(index, 0);
                assert_eq!(indices, vec![0, 2]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn hundred_instance_sweep_quarantines_only_the_poisoned() {
        // The acceptance scenario: 100 instances, 3 poisoned. The 97 clean
        // ones complete bit-identical to single runs; the 3 poisoned come
        // back as structured quarantine reports instead of erroring.
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6)
            .unwrap()
            .with_threads(4)
            .with_stamp_workers(0);
        batch.param("R1", ParamKind::Resistance).unwrap();
        let poisoned = [7usize, 41, 88];
        for i in 0..100 {
            let r = if poisoned.contains(&i) { f64::NAN } else { 0.5e3 + 10.0 * i as f64 };
            batch.add_instance(&[r]).unwrap();
        }
        let out = batch.run_outcome().unwrap();
        assert_eq!(out.completed().count(), 97);
        let qidx: Vec<usize> = out.quarantined().iter().map(|q| q.index).collect();
        assert_eq!(qidx, poisoned);
        for i in [0usize, 25, 50, 99] {
            let mut ckt = rc_circuit();
            if let Some(Element::Resistor { resistance, .. }) = ckt.element_mut("R1") {
                *resistance = 0.5e3 + 10.0 * i as f64;
            }
            // Direct-pinned reference: see `batch_matches_single_runs`.
            let opts = SimOptions::default().with_solver(SolverHandle::direct());
            let want = wavepipe_engine::run_transient(&ckt, 1e-8, 1e-6, &opts).unwrap();
            let got = out.results()[i].as_ref().expect("clean instance completed");
            assert_eq!(got.times(), want.times(), "time grids diverged at instance {i}");
            for k in 0..want.len() {
                assert_eq!(got.solution(k), want.solution(k), "instance {i} point {k}");
            }
        }
    }

    #[test]
    fn cancelled_batch_quarantines_without_retry() {
        let token = wavepipe_engine::CancelToken::new();
        token.cancel();
        let mut batch = BatchSim::compile(&rc_circuit(), 1e-8, 1e-6)
            .unwrap()
            .with_sim(SimOptions::default().with_cancel_token(token));
        batch.param("R1", ParamKind::Resistance).unwrap();
        batch.add_instance(&[1e3]).unwrap();
        let out = batch.run_outcome().unwrap();
        let [q] = out.quarantined() else { panic!("expected one quarantine") };
        assert!(q.error.is_budget(), "expected a budget error, got {:?}", q.error);
        assert!(!q.retried, "budget errors must not be retried");
    }
}
