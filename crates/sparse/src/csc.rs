//! Compressed sparse column matrix.

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};

/// A sparse matrix in compressed sparse column (CSC) format.
///
/// Column `j` occupies positions `col_ptr[j] .. col_ptr[j+1]` of the parallel
/// arrays `row_idx` / `values`; row indices within each column are strictly
/// increasing.
///
/// CSC is the natural format for the left-looking LU factorization used by
/// SPICE-class solvers, and for fast column access during factorization.
///
/// ```
/// use wavepipe_sparse::{CooMatrix, CscMatrix};
///
/// # fn main() -> Result<(), wavepipe_sparse::SparseError> {
/// let mut t = CooMatrix::new(2, 2);
/// t.push(0, 0, 4.0)?;
/// t.push(1, 0, -1.0)?;
/// t.push(1, 1, 2.0)?;
/// let a: CscMatrix = t.to_csc();
/// let y = a.matvec(&[1.0, 1.0])?;
/// assert_eq!(y, vec![4.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from raw triplet arrays, summing duplicates.
    ///
    /// Entries summing to zero are kept in the pattern (see
    /// [`crate::CooMatrix::to_csc`]).
    ///
    /// # Panics
    ///
    /// Panics if the triplet arrays have different lengths or contain indices
    /// out of range (use [`crate::CooMatrix`] for checked assembly).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        // Count entries per column.
        let mut count = vec![0usize; ncols + 1];
        for (&r, &c) in rows.iter().zip(cols) {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of bounds");
            count[c + 1] += 1;
        }
        for j in 0..ncols {
            count[j + 1] += count[j];
        }
        // Scatter triplets into column buckets.
        let nnz_dup = rows.len();
        let mut ri = vec![0usize; nnz_dup];
        let mut rv = vec![0f64; nnz_dup];
        let mut next = count.clone();
        for k in 0..nnz_dup {
            let c = cols[k];
            let p = next[c];
            ri[p] = rows[k];
            rv[p] = vals[k];
            next[c] += 1;
        }
        // Sort each column by row and compress duplicates.
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::with_capacity(nnz_dup);
        let mut values = Vec::with_capacity(nnz_dup);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..ncols {
            scratch.clear();
            scratch.extend(
                ri[count[j]..count[j + 1]]
                    .iter()
                    .copied()
                    .zip(rv[count[j]..count[j + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                i += 1;
                while i < scratch.len() && scratch[i].0 == r {
                    v += scratch[i].1;
                    i += 1;
                }
                row_idx.push(r);
                values.push(v);
            }
            col_ptr[j + 1] = row_idx.len();
        }
        CscMatrix { nrows, ncols, col_ptr, row_idx, values }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Creates an empty (all-zero pattern) `nrows x ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of structurally stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array (length `ncols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array (length `nnz`).
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value array; the pattern is immutable.
    ///
    /// This is the fast path for restamping an MNA matrix whose pattern was
    /// fixed at setup time.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Returns the `(row indices, values)` of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// Returns the value at `(row, col)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols);
        self.find_index(row, col).map_or(0.0, |p| self.values[p])
    }

    /// Returns the storage position of entry `(row, col)` if it is in the
    /// pattern. Binary search within the column: O(log nnz_col).
    pub fn find_index(&self, row: usize, col: usize) -> Option<usize> {
        let (s, e) = (self.col_ptr[col], self.col_ptr[col + 1]);
        self.row_idx[s..e].binary_search(&row).ok().map(|k| s + k)
    }

    /// Sets all stored values to zero, keeping the pattern.
    pub fn set_values_zero(&mut self) {
        self.values.fill(0.0);
    }

    /// Computes `y = A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch { expected: self.ncols, found: x.len() });
        }
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = A * x` into a caller-provided buffer.
    /// (Index-style loop: `x[j]` gates skipping the column entirely.)
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on any length mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch { expected: self.ncols, found: x.len() });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch { expected: self.nrows, found: y.len() });
        }
        y.fill(0.0);
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[p]] += self.values[p] * xj;
            }
        }
        Ok(())
    }

    /// Computes the residual `r = b - A*x` into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on any length mismatch.
    pub fn residual_into(&self, x: &[f64], b: &[f64], r: &mut [f64]) -> Result<()> {
        if b.len() != self.nrows {
            return Err(SparseError::DimensionMismatch { expected: self.nrows, found: b.len() });
        }
        self.matvec_into(x, r)?;
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        Ok(())
    }

    /// Returns the transpose as a new CSC matrix.
    pub fn transpose(&self) -> CscMatrix {
        let mut count = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            count[r + 1] += 1;
        }
        for i in 0..self.nrows {
            count[i + 1] += count[i];
        }
        let mut col_ptr = count.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut next = count;
        for j in 0..self.ncols {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_idx[p];
                let q = next[r];
                row_idx[q] = j;
                values[q] = self.values[p];
                next[r] += 1;
            }
        }
        col_ptr.truncate(self.nrows + 1);
        CscMatrix { nrows: self.ncols, ncols: self.nrows, col_ptr, row_idx, values }
    }

    /// Converts to a dense matrix (intended for tests and small oracles).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                d.set(self.row_idx[p], j, self.values[p]);
            }
        }
        d
    }

    /// Returns the symmetrized pattern `pattern(A) | pattern(A^T)` as
    /// adjacency lists excluding the diagonal — the input to fill-reducing
    /// orderings.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] if the matrix is not square.
    pub fn symmetric_adjacency(&self) -> Result<Vec<Vec<usize>>> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare { nrows: self.nrows, ncols: self.ncols });
        }
        let n = self.nrows;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                let i = self.row_idx[p];
                if i != j {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        Ok(adj)
    }

    /// Infinity norm of the matrix (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut rowsum = vec![0.0f64; self.nrows];
        for p in 0..self.nnz() {
            rowsum[self.row_idx[p]] += self.values[p].abs();
        }
        rowsum.into_iter().fold(0.0, f64::max)
    }

    /// Infinity norm using a caller-provided row-sum buffer — same
    /// accumulation and reduction order as [`CscMatrix::norm_inf`] (so the
    /// result is bit-identical), without the per-call allocation.
    pub fn norm_inf_with_scratch(&self, rowsum: &mut Vec<f64>) -> f64 {
        rowsum.clear();
        rowsum.resize(self.nrows, 0.0);
        for p in 0..self.nnz() {
            rowsum[self.row_idx[p]] += self.values[p].abs();
        }
        rowsum.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over all stored entries as `(row, col, value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            (self.col_ptr[j]..self.col_ptr[j + 1])
                .map(move |p| (self.row_idx[p], j, self.values[p]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CscMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut t = CooMatrix::new(3, 3);
        for &(r, c, v) in &[(0, 0, 2.0), (2, 0, 4.0), (1, 1, 3.0), (0, 2, 1.0), (2, 2, 5.0)] {
            t.push(r, c, v).unwrap();
        }
        t.to_csc()
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let a = sample();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(2, 2), 5.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = [1.0, -1.0, 2.0];
        let y = a.matvec(&x).unwrap();
        assert_eq!(y, vec![4.0, -3.0, 14.0]);
    }

    #[test]
    fn matvec_rejects_bad_length() {
        let a = sample();
        assert!(matches!(
            a.matvec(&[1.0]),
            Err(SparseError::DimensionMismatch { expected: 3, found: 1 })
        ));
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_moves_entries() {
        let a = sample();
        let at = a.transpose();
        assert_eq!(at.get(0, 2), 4.0);
        assert_eq!(at.get(2, 0), 1.0);
    }

    #[test]
    fn rows_sorted_within_columns() {
        let a = sample();
        for j in 0..a.ncols() {
            let (rows, _) = a.col(j);
            for w in rows.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn symmetric_adjacency_excludes_diagonal() {
        let a = sample();
        let adj = a.symmetric_adjacency().unwrap();
        assert_eq!(adj[0], vec![2]);
        assert!(adj[1].is_empty());
        assert_eq!(adj[2], vec![0]);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let b = a.matvec(&x).unwrap();
        let mut r = vec![0.0; 3];
        a.residual_into(&x, &b, &mut r).unwrap();
        assert!(r.iter().all(|&v| v.abs() < 1e-15));
    }

    #[test]
    fn norm_inf_is_max_abs_row_sum() {
        let a = sample();
        assert_eq!(a.norm_inf(), 9.0); // row 2: |4| + |5|
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = CscMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = sample();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), a.nnz());
        assert!(entries.contains(&(2, 0, 4.0)));
    }

    #[test]
    fn to_dense_matches_get() {
        let a = sample();
        let d = a.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d.get(i, j), a.get(i, j));
            }
        }
    }
}
