//! Fault-tolerance overhead probe: times the serial engine with the
//! convergence-recovery ladder disarmed vs armed (both fault-free) and the
//! backward scheme on the largest Table-1 circuit (`power_grid(12,12)`),
//! printing best-of-N wall times in microseconds plus the measured
//! clean-run recovery overhead. The recovery ladder only engages where the
//! classic controller would already have died, so the armed run must cost
//! within noise of the disarmed one (acceptance bound: <= 1%).
//!
//! Writes `BENCH_overhead.json` with the off/on ratio and the recovery
//! counters of the armed clean run, both gated by `perf-gate` against the
//! committed baseline: a clean run that starts engaging the ladder drops
//! `rescue_free_fraction` below 1 and fails deterministically.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin overhead [-- --small]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use wavepipe_circuit::generators;
use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe_engine::{run_transient, SimOptions};
use wavepipe_telemetry::{json, MetricsHandle, MetricsRegistry};

const REPS: usize = 7;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let b = if small { generators::power_grid(4, 4) } else { generators::power_grid(12, 12) };

    let off = SimOptions::default().with_stamp_workers(0).with_recovery(false);
    let on = SimOptions::default().with_stamp_workers(0).with_recovery(true);
    let wp = WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0);

    // Warm-up: fault the allocator and branch predictors equally.
    black_box(run_transient(&b.circuit, b.tstep, b.tstop, &off).unwrap());
    black_box(run_wavepipe(&b.circuit, b.tstep, b.tstop, &wp).unwrap());

    let mut off_best = u128::MAX;
    let mut on_best = u128::MAX;
    let mut backward_best = u128::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        black_box(run_transient(&b.circuit, b.tstep, b.tstop, &off).unwrap());
        off_best = off_best.min(t0.elapsed().as_micros());

        let t0 = Instant::now();
        black_box(run_transient(&b.circuit, b.tstep, b.tstop, &on).unwrap());
        on_best = on_best.min(t0.elapsed().as_micros());

        let t0 = Instant::now();
        black_box(run_wavepipe(&b.circuit, b.tstep, b.tstop, &wp).unwrap());
        backward_best = backward_best.min(t0.elapsed().as_micros());
    }

    // Untimed armed run with metrics attached: a clean run must never tick
    // the recovery counters (the zero-overhead invariant, in counter form).
    let registry = MetricsRegistry::shared();
    let counted = on.clone().with_metrics(MetricsHandle::new(registry.clone()));
    black_box(run_transient(&b.circuit, b.tstep, b.tstop, &counted).unwrap());
    let snap = registry.snapshot();
    let attempts = snap.counter("recovery_attempts");
    let rescues = snap.counter("recovery_rescues");
    let rollbacks = snap.counter("cache_rollbacks");
    let accepted = snap.counter("points_accepted");
    let rescue_free = if accepted > 0 { 1.0 - rescues as f64 / accepted as f64 } else { 1.0 };

    let ratio = off_best as f64 / on_best as f64;
    let overhead_pct = (on_best as f64 / off_best as f64 - 1.0) * 100.0;
    println!(
        "circuit {} serial_off_us {off_best} serial_on_us {on_best} backward2_us {backward_best}",
        b.name
    );
    println!(
        "recovery overhead {overhead_pct:+.2}% (off/on ratio {ratio:.4}), \
         clean-run ladder engagements: {attempts} attempts / {rescues} rescues / \
         {rollbacks} rollbacks over {accepted} accepted points"
    );

    let mut doc = String::from("[");
    let _ = write!(
        doc,
        "\n  {{\"circuit\":\"{}\",\"serial_off_us\":{off_best},\"serial_on_us\":{on_best},\
         \"backward2_us\":{backward_best},\"off_on_ratio\":{},\
         \"recovery_attempts\":{attempts},\"recovery_rescues\":{rescues},\
         \"cache_rollbacks\":{rollbacks},\"rescue_free_fraction\":{}}}",
        json::escape(&b.name),
        json::fmt_f64(ratio),
        json::fmt_f64(rescue_free),
    );
    doc.push_str("\n]\n");
    std::fs::write("BENCH_overhead.json", doc)?;
    println!("wrote BENCH_overhead.json");
    Ok(())
}
