//! Offline stand-in for the `rand` crate covering the API surface this
//! workspace uses: `StdRng::seed_from_u64` and `Rng::gen_range` over
//! numeric ranges. Backed by SplitMix64 — deterministic and seedable.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range sampling, generic over the output type.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u8, i64, i32);

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    /// Draws one value from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(-3.0f64..3.0);
            assert_eq!(x, b.gen_range(-3.0f64..3.0));
            assert!((-3.0..3.0).contains(&x));
            let n = a.gen_range(2usize..24);
            assert_eq!(n, b.gen_range(2usize..24));
            assert!((2..24).contains(&n));
        }
    }
}
