//! ILU(0) — incomplete LU factorization with zero fill-in.
//!
//! The factors share the sparsity pattern of the input matrix exactly: every
//! update that would create an entry outside `pattern(A)` is dropped. That
//! makes the factorization cheap (one pass over the stored entries, no
//! symbolic analysis, no fill) and the triangular solves as sparse as the
//! matrix itself — the classic trade of accuracy for cost that works well as
//! a [`crate::operator::Preconditioner`] for Krylov methods on circuit
//! matrices, whose diagonally-dominant conductance structure keeps the
//! dropped fill small.
//!
//! The algorithm is the left-looking column variant, operating directly on
//! CSC storage: for each column `j`, scatter `A(:,j)` into a dense work
//! vector, apply the updates of every factored column `k < j` that appears
//! in the pattern of column `j` (restricted to pattern positions), then
//! divide the subdiagonal by the pivot. `L` has an implicit unit diagonal;
//! `L` and `U` are stored packed in one copy of the input pattern.

use crate::csc::CscMatrix;
use crate::error::{Result, SparseError};
use crate::operator::Preconditioner;

/// An ILU(0) factorization: `A ≈ L·U` with `pattern(L + U) = pattern(A)`.
///
/// ```
/// use wavepipe_sparse::{CooMatrix, ilu::Ilu0};
///
/// # fn main() -> Result<(), wavepipe_sparse::SparseError> {
/// // Tridiagonal matrices have no fill, so ILU(0) is the exact LU.
/// let mut t = CooMatrix::new(3, 3);
/// for i in 0..3 {
///     t.push(i, i, 4.0)?;
/// }
/// for i in 0..2 {
///     t.push(i, i + 1, -1.0)?;
///     t.push(i + 1, i, -1.0)?;
/// }
/// let a = t.to_csc();
/// let ilu = Ilu0::factor(&a)?;
/// let x = [1.0, 2.0, 3.0];
/// let b = a.matvec(&x)?;
/// let mut z = vec![0.0; 3];
/// ilu.apply_into(&b, &mut z)?;
/// for (zi, xi) in z.iter().zip(&x) {
///     assert!((zi - xi).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ilu0 {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    /// Packed factor values over the input pattern: rows `< j` of column `j`
    /// hold `U(k,j)`, the diagonal holds `U(j,j)`, rows `> j` hold `L(i,j)`
    /// (unit diagonal of `L` implicit).
    values: Vec<f64>,
    /// Storage position of the diagonal entry of each column.
    diag: Vec<usize>,
}

impl Ilu0 {
    /// Factors `a` in ILU(0) form.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] for a rectangular input.
    /// * [`SparseError::Singular`] when a diagonal entry is structurally
    ///   missing, vanishes, or collapses below the stability floor — callers
    ///   should fall back to a pivoted factorization.
    pub fn factor(a: &CscMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let n = a.ncols();
        let col_ptr = a.col_ptr().to_vec();
        let row_idx = a.row_idx().to_vec();
        let mut values = vec![0.0f64; row_idx.len()];
        let mut diag = vec![usize::MAX; n];
        // No pivoting means no stability safety net: reject pivots that are
        // negligible against the matrix magnitude instead of dividing by them.
        let pivot_floor = 1e-30 * a.norm_inf();

        // Dense work vector plus a pattern marker (`pos[i] != usize::MAX`
        // while row `i` is in the current column's pattern).
        let mut work = vec![0.0f64; n];
        let mut pos = vec![usize::MAX; n];
        for j in 0..n {
            let (s, e) = (col_ptr[j], col_ptr[j + 1]);
            for (p, &i) in row_idx.iter().enumerate().take(e).skip(s) {
                work[i] = a.values()[p];
                pos[i] = p;
            }
            // Left-looking updates: row indices are sorted, so the strictly
            // upper entries come first and in ascending order of `k`.
            let mut dj = usize::MAX;
            for p in s..e {
                let k = row_idx[p];
                if k >= j {
                    if k == j {
                        dj = p;
                    }
                    break;
                }
                // `work[k]` is now final: U(k,j).
                let ukj = work[k];
                values[p] = ukj;
                if ukj != 0.0 {
                    // Subtract U(k,j) * L(:,k), restricted to pattern(A(:,j)).
                    for q in (diag[k] + 1)..col_ptr[k + 1] {
                        let i = row_idx[q];
                        if pos[i] != usize::MAX {
                            work[i] -= values[q] * ukj;
                        }
                    }
                }
            }
            let clear = |pos: &mut [usize]| {
                for p in s..e {
                    pos[row_idx[p]] = usize::MAX;
                }
            };
            if dj == usize::MAX {
                clear(&mut pos);
                return Err(SparseError::Singular { column: j });
            }
            let pivot = work[j];
            if !pivot.is_finite() || pivot.abs() <= pivot_floor {
                clear(&mut pos);
                return Err(SparseError::Singular { column: j });
            }
            values[dj] = pivot;
            diag[j] = dj;
            for p in (dj + 1)..e {
                values[p] = work[row_idx[p]] / pivot;
            }
            clear(&mut pos);
        }
        Ok(Ilu0 { n, col_ptr, row_idx, values, diag })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The factor value stored at `(row, col)`, or `0.0` outside the pattern
    /// (strictly-lower entries are `L`, the rest are `U`). Intended for
    /// tests and diagnostics.
    pub fn factor_entry(&self, row: usize, col: usize) -> f64 {
        let (s, e) = (self.col_ptr[col], self.col_ptr[col + 1]);
        match self.row_idx[s..e].binary_search(&row) {
            Ok(k) => self.values[s + k],
            Err(_) => 0.0,
        }
    }

    /// Applies the preconditioner: solves `L·U·z = r` in place of `z`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on a wrong-length buffer.
    pub fn apply_into(&self, r: &[f64], z: &mut [f64]) -> Result<()> {
        if r.len() != self.n {
            return Err(SparseError::DimensionMismatch { expected: self.n, found: r.len() });
        }
        if z.len() != self.n {
            return Err(SparseError::DimensionMismatch { expected: self.n, found: z.len() });
        }
        z.copy_from_slice(r);
        // Forward: L·y = r, unit diagonal, column-oriented.
        for j in 0..self.n {
            let yj = z[j];
            if yj != 0.0 {
                for q in (self.diag[j] + 1)..self.col_ptr[j + 1] {
                    z[self.row_idx[q]] -= self.values[q] * yj;
                }
            }
        }
        // Backward: U·z = y, column-oriented.
        for j in (0..self.n).rev() {
            let xj = z[j] / self.values[self.diag[j]];
            z[j] = xj;
            if xj != 0.0 {
                for q in self.col_ptr[j]..self.diag[j] {
                    z[self.row_idx[q]] -= self.values[q] * xj;
                }
            }
        }
        Ok(())
    }
}

impl Preconditioner for Ilu0 {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64], _scratch: &mut [f64]) -> Result<()> {
        self.apply_into(r, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn tridiag(n: usize, d: f64, o: f64) -> CscMatrix {
        let mut t = CooMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, d).unwrap();
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, o).unwrap();
            t.push(i + 1, i, o).unwrap();
        }
        t.to_csc()
    }

    #[test]
    fn exact_on_tridiagonal() {
        // No fill is dropped on a banded pattern, so ILU(0) solves exactly.
        let a = tridiag(6, 4.0, -1.0);
        let ilu = Ilu0::factor(&a).unwrap();
        let x: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let b = a.matvec(&x).unwrap();
        let mut z = vec![0.0; 6];
        ilu.apply_into(&b, &mut z).unwrap();
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-12, "z {zi} vs x {xi}");
        }
    }

    #[test]
    fn hand_checked_four_by_four() {
        // A =
        //   [ 4 -1  0 -1 ]
        //   [-1  4 -1  0 ]
        //   [ 0 -1  4 -1 ]
        //   [-1  0 -1  4 ]
        // (the 2x2 grid Laplacian plus 4I sharing). Hand elimination with the
        // ILU(0) drop rule — fill at (2,0)/(3,1) and their transposes is
        // outside the pattern and discarded:
        //   l10 = -1/4          u11 = 4 - 1/4           = 15/4
        //   l30 = -1/4          u01 = -1, u03 = -1
        //   l21 = -1/(15/4)     u22 = 4 - 1/(15/4)      = 56/15
        //   l31 = 0 (dropped)   u13 = 0 (outside pattern: stays absent)
        //   l32 = (-1 - 0)/u22  u33 = 4 - 1/4·1 - l32·u23 ... computed below
        let mut t = CooMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 4.0).unwrap();
        }
        for &(r, c) in &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (0, 3), (3, 0)] {
            t.push(r, c, -1.0).unwrap();
        }
        let a = t.to_csc();
        let ilu = Ilu0::factor(&a).unwrap();

        let u11 = 4.0 - 0.25;
        let u22 = 4.0 - 1.0 / u11;
        // Column 3: u03 = -1; u23 = -1 (row 1 absent from pattern, no
        // update reaches it); pivot u33 = 4 - l30·u03 - l32·u23.
        let l32 = -1.0 / u22;
        let u33 = 4.0 - (-0.25) * (-1.0) + l32;

        assert!((ilu.factor_entry(1, 0) - (-0.25)).abs() < 1e-15);
        assert!((ilu.factor_entry(3, 0) - (-0.25)).abs() < 1e-15);
        assert!((ilu.factor_entry(1, 1) - u11).abs() < 1e-15);
        assert!((ilu.factor_entry(2, 1) - (-1.0 / u11)).abs() < 1e-15);
        assert!((ilu.factor_entry(2, 2) - u22).abs() < 1e-15);
        assert!((ilu.factor_entry(3, 2) - l32).abs() < 1e-15);
        assert!((ilu.factor_entry(3, 3) - u33).abs() < 1e-15);
        // Dropped fill stays outside the pattern.
        assert_eq!(ilu.factor_entry(2, 0), 0.0);
        assert_eq!(ilu.factor_entry(3, 1), 0.0);
    }

    #[test]
    fn missing_diagonal_is_singular() {
        let mut t = CooMatrix::new(2, 2);
        t.push(0, 0, 1.0).unwrap();
        t.push(0, 1, 1.0).unwrap();
        t.push(1, 0, 1.0).unwrap();
        // (1,1) structurally absent.
        let a = t.to_csc();
        assert!(matches!(Ilu0::factor(&a), Err(SparseError::Singular { column: 1 })));
    }

    #[test]
    fn zero_pivot_is_singular() {
        let mut t = CooMatrix::new(2, 2);
        t.push(0, 0, 0.0).unwrap();
        t.push(1, 1, 1.0).unwrap();
        let a = t.to_csc();
        assert!(matches!(Ilu0::factor(&a), Err(SparseError::Singular { column: 0 })));
    }

    #[test]
    fn rectangular_is_rejected() {
        let a = CscMatrix::zeros(2, 3);
        assert!(matches!(Ilu0::factor(&a), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn preconditioner_impl_matches_apply_into() {
        let a = tridiag(5, 3.0, -1.0);
        let ilu = Ilu0::factor(&a).unwrap();
        let r = [1.0, -2.0, 0.5, 4.0, -1.0];
        let mut z1 = vec![0.0; 5];
        let mut z2 = vec![0.0; 5];
        let mut s = vec![0.0; 5];
        ilu.apply_into(&r, &mut z1).unwrap();
        Preconditioner::apply(&ilu, &r, &mut z2, &mut s).unwrap();
        assert_eq!(z1, z2);
    }
}
