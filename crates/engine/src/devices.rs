//! Device-model mathematics: junction diode, level-1 MOSFET, Ebers–Moll BJT,
//! plus the numerical guards every SPICE engine needs (`limexp`, `pnjlim`).
//!
//! All functions here are pure; the MNA assembler in [`crate::mna`] turns
//! their `(current, conductance)` results into matrix stamps.

/// Thermal voltage kT/q at 300.15 K, volts.
pub const VT: f64 = 0.025852;

/// Exponential with linear continuation beyond `x = 70` so Newton iterates
/// far outside the junction's operating range produce huge-but-finite
/// currents with a consistent derivative instead of overflowing.
///
/// Returns `(value, derivative)`.
pub fn limexp(x: f64) -> (f64, f64) {
    const LIM: f64 = 70.0;
    if x < LIM {
        let e = x.exp();
        (e, e)
    } else {
        let e = LIM.exp();
        (e * (1.0 + (x - LIM)), e)
    }
}

/// Critical voltage above which junction limiting engages:
/// `vcrit = n*vt * ln(n*vt / (sqrt(2) * is))`.
pub fn junction_vcrit(is: f64, nvt: f64) -> f64 {
    nvt * (nvt / (std::f64::consts::SQRT_2 * is)).ln()
}

/// Classic SPICE pn-junction voltage limiter.
///
/// Prevents Newton from proposing a junction voltage whose exponential
/// current overshoots so wildly that the next linearisation diverges.
/// `vnew` is the voltage proposed by the linear solve, `vold` the voltage
/// the previous linearisation used.
pub fn pnjlim(vnew: f64, vold: f64, nvt: f64, vcrit: f64) -> f64 {
    if vnew > vcrit && (vnew - vold).abs() > 2.0 * nvt {
        if vold > 0.0 {
            let arg = 1.0 + (vnew - vold) / nvt;
            if arg > 0.0 {
                vold + nvt * arg.ln()
            } else {
                vcrit
            }
        } else {
            nvt * (vnew / nvt).max(f64::MIN_POSITIVE).ln()
        }
    } else {
        vnew
    }
}

/// Junction diode evaluation at junction voltage `u`.
///
/// Returns `(i, g)`: the diode current and its conductance `di/du`.
pub fn diode_eval(u: f64, is: f64, nvt: f64) -> (f64, f64) {
    let (e, de) = limexp(u / nvt);
    let i = is * (e - 1.0);
    let g = is * de / nvt;
    (i, g)
}

/// Result of a MOSFET evaluation: drain-terminal current and its partial
/// derivatives with respect to the raw terminal voltages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Current flowing into the drain terminal.
    pub id: f64,
    /// `d id / d vd`.
    pub g_dd: f64,
    /// `d id / d vg`.
    pub g_dg: f64,
    /// `d id / d vs`.
    pub g_ds: f64,
    /// `d id / d vb` (body transconductance; 0 when `gamma = 0`).
    pub g_db: f64,
}

/// Static parameters of a level-1 MOSFET in the NMOS-equivalent frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// `+1` for NMOS, `-1` for PMOS.
    pub sign: f64,
    /// `sign * vt0` — positive for enhancement devices of either polarity.
    pub vt0_eq: f64,
    /// `KP * W / L`.
    pub beta: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Body-effect coefficient (V^0.5); 0 disables.
    pub gamma: f64,
    /// Surface potential (V).
    pub phi: f64,
}

/// Level-1 (Shichman–Hodges) MOSFET evaluation with body effect.
///
/// The drain/source swap for `vds < 0` is handled internally — the device is
/// symmetric — and PMOS devices are evaluated in a mirrored NMOS frame. The
/// threshold is `vth = vt0 + gamma*(sqrt(phi - vbs) - sqrt(phi))` with the
/// standard forward-bias clamp keeping the square root real.
pub fn mos_eval(vd: f64, vg: f64, vs: f64, vb: f64, p: &MosParams) -> MosEval {
    let sign = p.sign;
    // Map to the NMOS frame.
    let (evd, evg, evs, evb) = (sign * vd, sign * vg, sign * vs, sign * vb);
    // Swap drain/source if the channel is reversed.
    let reversed = evd < evs;
    let (nd, ns) = if reversed { (evs, evd) } else { (evd, evs) };
    let vgs = evg - ns;
    let vds = nd - ns;

    // Body effect on the threshold (referenced to the effective source).
    let (vth, dvth_dvbs) = if p.gamma > 0.0 {
        let vbs = evb - ns;
        // Clamp so (phi - vbs) stays positive: beyond ~phi/2 of forward
        // body bias the sqrt argument is floored (standard practice).
        let arg = (p.phi - vbs).max(0.25 * p.phi);
        let sq = arg.sqrt();
        let vth = p.vt0_eq + p.gamma * (sq - p.phi.sqrt());
        let d = if p.phi - vbs > 0.25 * p.phi { -p.gamma / (2.0 * sq) } else { 0.0 };
        (vth, d)
    } else {
        (p.vt0_eq, 0.0)
    };
    let vov = vgs - vth;

    // Core quadratic model in the (vgs, vds >= 0) frame.
    let (ids, gm, gds) = if vov <= 0.0 {
        (0.0, 0.0, 0.0)
    } else if vds < vov {
        // Triode.
        let base = p.beta * (vov * vds - 0.5 * vds * vds);
        let mult = 1.0 + p.lambda * vds;
        let ids = base * mult;
        let gm = p.beta * vds * mult;
        let gds = p.beta * (vov - vds) * mult + base * p.lambda;
        (ids, gm, gds)
    } else {
        // Saturation.
        let base = 0.5 * p.beta * vov * vov;
        let mult = 1.0 + p.lambda * vds;
        (base * mult, p.beta * vov * mult, base * p.lambda)
    };
    // Body transconductance: d ids/d vbs = -gm * d vth/d vbs.
    let gmbs = -gm * dvth_dvbs;

    // Un-swap: derivatives in the (evd, evg, evs, evb) frame. In the
    // unswapped frame ids flows nd -> ns, with vgs, vds, vbs referenced to
    // the *effective* source.
    let (i_eq, d_evd, d_evg, d_evs, d_evb);
    if !reversed {
        i_eq = ids;
        d_evg = gm;
        d_evb = gmbs;
        d_evd = gds;
        d_evs = -(gm + gds + gmbs);
    } else {
        // Effective drain is evs: current into the ORIGINAL drain terminal
        // is -ids; vgs' = evg - evd, vds' = evs - evd, vbs' = evb - evd.
        i_eq = -ids;
        d_evg = -gm;
        d_evb = -gmbs;
        d_evs = -gds;
        d_evd = gm + gds + gmbs;
    }
    // Undo the polarity mirror: id = sign * i_eq(sign * v);
    // d id / d v = sign * d_ev * sign = d_ev.
    MosEval { id: sign * i_eq, g_dd: d_evd, g_dg: d_evg, g_ds: d_evs, g_db: d_evb }
}

/// Depletion-capacitance charge and capacitance of a pn junction at
/// voltage `v`: `c(v) = cj0 / (1 - v/vj)^m` below `fc*vj`, with the
/// standard linear capacitance extension above (keeps `c` and `q`
/// continuous and differentiable through forward bias).
///
/// Returns `(q, c)`.
pub fn depletion_charge(v: f64, cj0: f64, vj: f64, m: f64, fc: f64) -> (f64, f64) {
    let vknee = fc * vj;
    if v < vknee {
        let x = 1.0 - v / vj;
        let c = cj0 * x.powf(-m);
        let q = cj0 * vj / (1.0 - m) * (1.0 - x.powf(1.0 - m));
        (q, c)
    } else {
        // Linear extension: c(v) = c_k * (1 + m*(v - vknee)/(vj*(1-fc))).
        let xk = 1.0 - fc;
        let ck = cj0 * xk.powf(-m);
        let qk = cj0 * vj / (1.0 - m) * (1.0 - xk.powf(1.0 - m));
        let dv = v - vknee;
        let slope = ck * m / (vj * xk);
        let c = ck + slope * dv;
        let q = qk + ck * dv + 0.5 * slope * dv * dv;
        (q, c)
    }
}

/// Result of a BJT evaluation: collector and base terminal currents and
/// their partials with respect to raw terminal voltages `(vc, vb, ve)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtEval {
    /// Current into the collector.
    pub ic: f64,
    /// Current into the base.
    pub ib: f64,
    /// `d ic / d vc`.
    pub g_cc: f64,
    /// `d ic / d vb`.
    pub g_cb: f64,
    /// `d ic / d ve`.
    pub g_ce: f64,
    /// `d ib / d vc`.
    pub g_bc: f64,
    /// `d ib / d vb`.
    pub g_bb: f64,
    /// `d ib / d ve`.
    pub g_be: f64,
}

/// Ebers–Moll (transport form) BJT evaluation.
///
/// `sign` is `+1` for NPN, `-1` for PNP. The junction voltages `vbe_l` and
/// `vbc_l` must already be limited by the caller (in the NPN-equivalent
/// frame, i.e. multiplied by `sign`).
pub fn bjt_eval(vbe_l: f64, vbc_l: f64, sign: f64, is: f64, bf: f64, br: f64) -> BjtEval {
    let (ee, dee) = limexp(vbe_l / VT);
    let (ec, dec) = limexp(vbc_l / VT);
    let gee = dee / VT; // d(ee)/d(vbe)
    let gec = dec / VT;

    // NPN-frame currents.
    let icc = is * (ee - ec);
    let ibe = is / bf * (ee - 1.0);
    let ibc = is / br * (ec - 1.0);
    let ic = icc - ibc;
    let ib = ibe + ibc;

    // Partials w.r.t. (vbe, vbc) in the NPN frame.
    let dic_dvbe = is * gee;
    let dic_dvbc = -is * gec - is / br * gec;
    let dib_dvbe = is / bf * gee;
    let dib_dvbc = is / br * gec;

    // Chain rule to raw node voltages: ic_raw = sign * ic(vbe, vbc) with
    // vbe = sign*(vb - ve) and vbc = sign*(vb - vc). The sign factors cancel
    // pairwise, leaving:
    //   d ic_raw/d vb = dic_dvbe + dic_dvbc
    //   d ic_raw/d vc = -dic_dvbc
    //   d ic_raw/d ve = -dic_dvbe
    // (and the analogous rows for ib). Validated against finite differences
    // for both polarities in the unit tests.
    BjtEval {
        ic: sign * ic,
        ib: sign * ib,
        g_cc: -dic_dvbc,
        g_cb: dic_dvbe + dic_dvbc,
        g_ce: -dic_dvbe,
        g_bc: -dib_dvbc,
        g_bb: dib_dvbe + dib_dvbc,
        g_be: -dib_dvbe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limexp_continuous_at_boundary() {
        let below = limexp(69.999999).0;
        let above = limexp(70.000001).0;
        assert!((below - above).abs() / below < 1e-5);
    }

    #[test]
    fn limexp_linear_beyond_limit() {
        let (v1, d1) = limexp(80.0);
        let (v2, d2) = limexp(81.0);
        assert_eq!(d1, d2, "slope constant beyond the limit");
        assert!(((v2 - v1) - d1).abs() / d1 < 1e-12);
        assert!(v2.is_finite());
    }

    #[test]
    fn pnjlim_passes_small_steps() {
        let vcrit = junction_vcrit(1e-14, VT);
        assert_eq!(pnjlim(0.3, 0.29, VT, vcrit), 0.3);
    }

    #[test]
    fn pnjlim_limits_big_jumps() {
        let vcrit = junction_vcrit(1e-14, VT);
        let v = pnjlim(5.0, 0.6, VT, vcrit);
        assert!(v < 1.0, "limited voltage {v}");
        assert!(v > 0.6, "still moves forward");
    }

    #[test]
    fn diode_eval_forward_reverse() {
        let (i_f, g_f) = diode_eval(0.7, 1e-14, VT);
        assert!(i_f > 1e-4, "forward current {i_f}");
        assert!(g_f > 0.0);
        let (i_r, g_r) = diode_eval(-5.0, 1e-14, VT);
        assert!((i_r + 1e-14).abs() < 1e-15, "reverse ~ -is, got {i_r}");
        assert!((0.0..1e-12).contains(&g_r));
    }

    #[test]
    fn diode_conductance_is_derivative() {
        let du = 1e-7;
        for u in [-0.2, 0.3, 0.55, 0.68] {
            let (i0, g) = diode_eval(u, 1e-14, VT);
            let (i1, _) = diode_eval(u + du, 1e-14, VT);
            let fd = (i1 - i0) / du;
            assert!((fd - g).abs() / g.max(1e-20) < 1e-4, "u={u}: fd {fd} vs g {g}");
        }
    }

    fn params(sign: f64, gamma: f64) -> MosParams {
        MosParams { sign, vt0_eq: 0.7, beta: 1e-3, lambda: 0.02, gamma, phi: 0.65 }
    }

    fn mos_fd_check(vd: f64, vg: f64, vs: f64, vb: f64, sign: f64, gamma: f64) {
        let p = params(sign, gamma);
        let e = mos_eval(vd, vg, vs, vb, &p);
        let h = 1e-7;
        let fd_d = (mos_eval(vd + h, vg, vs, vb, &p).id - e.id) / h;
        let fd_g = (mos_eval(vd, vg + h, vs, vb, &p).id - e.id) / h;
        let fd_s = (mos_eval(vd, vg, vs + h, vb, &p).id - e.id) / h;
        let fd_b = (mos_eval(vd, vg, vs, vb + h, &p).id - e.id) / h;
        let tol = 1e-4 * (1.0 + e.id.abs());
        assert!((fd_d - e.g_dd).abs() < tol.max(1e-7), "g_dd {fd_d} vs {}", e.g_dd);
        assert!((fd_g - e.g_dg).abs() < tol.max(1e-7), "g_dg {fd_g} vs {}", e.g_dg);
        assert!((fd_s - e.g_ds).abs() < tol.max(1e-7), "g_ds {fd_s} vs {}", e.g_ds);
        assert!((fd_b - e.g_db).abs() < tol.max(1e-7), "g_db {fd_b} vs {}", e.g_db);
    }

    #[test]
    fn nmos_derivatives_match_finite_difference() {
        // Saturation, triode, cutoff, and reversed.
        mos_fd_check(3.0, 2.0, 0.0, 0.0, 1.0, 0.0);
        mos_fd_check(0.3, 2.0, 0.0, 0.0, 1.0, 0.0);
        mos_fd_check(3.0, 0.2, 0.0, 0.0, 1.0, 0.0);
        mos_fd_check(0.0, 2.0, 3.0, 3.0, 1.0, 0.0);
    }

    #[test]
    fn pmos_derivatives_match_finite_difference() {
        mos_fd_check(0.0, 1.0, 3.0, 3.0, -1.0, 0.0);
        mos_fd_check(2.7, 1.0, 3.0, 3.0, -1.0, 0.0);
        mos_fd_check(3.0, 2.9, 3.0, 3.0, -1.0, 0.0);
        mos_fd_check(3.0, 1.0, 0.0, 0.0, -1.0, 0.0);
    }

    #[test]
    fn body_effect_derivatives_match_finite_difference() {
        // Reverse body bias (vb < vs) raises vth; gmbs nonzero.
        mos_fd_check(3.0, 2.0, 0.5, 0.0, 1.0, 0.45);
        mos_fd_check(0.3, 2.0, 0.5, -1.0, 1.0, 0.45);
        mos_fd_check(3.0, 2.0, 0.5, 0.5, 1.0, 0.45); // vbs = 0
                                                     // PMOS with body at the supply.
        mos_fd_check(0.0, 1.0, 2.8, 3.3, -1.0, 0.45);
    }

    #[test]
    fn reverse_body_bias_reduces_current() {
        let p = params(1.0, 0.45);
        let at_zero = mos_eval(3.0, 2.0, 0.0, 0.0, &p).id;
        let reverse = mos_eval(3.0, 2.0, 0.0, -2.0, &p).id;
        assert!(reverse < at_zero, "rbb must raise vth: {reverse} vs {at_zero}");
        // gamma = 0 makes the body pin inert.
        let p0 = params(1.0, 0.0);
        let a = mos_eval(3.0, 2.0, 0.0, 0.0, &p0).id;
        let b = mos_eval(3.0, 2.0, 0.0, -2.0, &p0).id;
        assert_eq!(a, b);
    }

    #[test]
    fn nmos_regions() {
        let p =
            MosParams { sign: 1.0, vt0_eq: 0.7, beta: 1e-3, lambda: 0.0, gamma: 0.0, phi: 0.65 };
        // Cutoff.
        let e = mos_eval(3.0, 0.0, 0.0, 0.0, &p);
        assert_eq!(e.id, 0.0);
        // Saturation: id = beta/2 * vov^2.
        let e = mos_eval(3.0, 1.7, 0.0, 0.0, &p);
        assert!((e.id - 0.5 * p.beta).abs() < 1e-12, "id = {}", e.id);
        // Triode at small vds: id ~= beta * vov * vds.
        let e = mos_eval(0.01, 1.7, 0.0, 0.0, &p);
        assert!((e.id - p.beta * (1.0 * 0.01 - 0.5 * 1e-4)).abs() < 1e-9);
    }

    #[test]
    fn mos_symmetry_under_swap() {
        let p =
            MosParams { sign: 1.0, vt0_eq: 0.7, beta: 1e-3, lambda: 0.0, gamma: 0.0, phi: 0.65 };
        // Swapping drain and source negates the drain current.
        let a = mos_eval(2.0, 3.0, 0.0, 0.0, &p);
        let b = mos_eval(0.0, 3.0, 2.0, 0.0, &p);
        assert!((a.id + b.id).abs() < 1e-15);
    }

    #[test]
    fn pmos_conducts_with_low_gate() {
        let p =
            MosParams { sign: -1.0, vt0_eq: 0.7, beta: 1e-3, lambda: 0.0, gamma: 0.0, phi: 0.65 };
        // PMOS with source at 3.3 V, gate at 0, drain at 1.0: conducting,
        // current flows source->drain, so current INTO drain is negative.
        let e = mos_eval(1.0, 0.0, 3.3, 3.3, &p);
        assert!(e.id < -1e-4, "id = {}", e.id);
        // PMOS off when gate at the source.
        let e = mos_eval(1.0, 3.3, 3.3, 3.3, &p);
        assert_eq!(e.id, 0.0);
    }

    #[test]
    fn depletion_charge_matches_capacitance_derivative() {
        // c(v) must equal dq/dv across reverse bias, the knee, and forward.
        let (cj0, vj, m, fc) = (1e-12, 0.8, 0.5, 0.5);
        let h = 1e-7;
        for v in [-5.0, -1.0, 0.0, 0.3, 0.39999, 0.4, 0.6, 1.2] {
            let (q0, c0) = depletion_charge(v, cj0, vj, m, fc);
            let (q1, _) = depletion_charge(v + h, cj0, vj, m, fc);
            let fd = (q1 - q0) / h;
            assert!(
                (fd - c0).abs() < 1e-3 * c0.abs().max(1e-15),
                "v={v}: dq/dv {fd:e} vs c {c0:e}"
            );
        }
    }

    #[test]
    fn depletion_capacitance_grows_toward_forward_bias() {
        let (cj0, vj, m, fc) = (1e-12, 0.8, 0.5, 0.5);
        let (_, c_rev) = depletion_charge(-5.0, cj0, vj, m, fc);
        let (_, c_zero) = depletion_charge(0.0, cj0, vj, m, fc);
        let (_, c_fwd) = depletion_charge(0.6, cj0, vj, m, fc);
        assert!(c_rev < c_zero, "{c_rev} < {c_zero}");
        assert!(c_zero < c_fwd, "{c_zero} < {c_fwd}");
        assert!((c_zero - cj0).abs() < 1e-18);
    }

    #[test]
    fn depletion_charge_continuous_at_knee() {
        let (cj0, vj, m, fc) = (2e-12, 1.0, 0.33, 0.5);
        let eps = 1e-9;
        let (qa, ca) = depletion_charge(fc * vj - eps, cj0, vj, m, fc);
        let (qb, cb) = depletion_charge(fc * vj + eps, cj0, vj, m, fc);
        assert!((qa - qb).abs() < 1e-20);
        assert!((ca - cb).abs() < 1e-18);
    }

    fn bjt_raw(vc: f64, vb: f64, ve: f64, sign: f64) -> (f64, f64) {
        let vbe = sign * (vb - ve);
        let vbc = sign * (vb - vc);
        let e = bjt_eval(vbe, vbc, sign, 1e-16, 100.0, 1.0);
        (e.ic, e.ib)
    }

    #[test]
    fn bjt_forward_active_gain() {
        // NPN, vbe = 0.65, vbc very negative => ic/ib ~ bf.
        let (ic, ib) = bjt_raw(3.0, 0.65, 0.0, 1.0);
        assert!(ic > 0.0 && ib > 0.0);
        let gain = ic / ib;
        assert!((gain - 100.0).abs() < 1.0, "gain = {gain}");
    }

    #[test]
    fn bjt_pnp_mirrors_npn() {
        let (ic_n, ib_n) = bjt_raw(3.0, 0.65, 0.0, 1.0);
        let (ic_p, ib_p) = bjt_raw(-3.0, -0.65, 0.0, -1.0);
        assert!((ic_n + ic_p).abs() < 1e-12 * ic_n.abs().max(1e-12));
        assert!((ib_n + ib_p).abs() < 1e-12 * ib_n.abs().max(1e-12));
    }

    #[test]
    fn bjt_derivatives_match_finite_difference() {
        for sign in [1.0_f64, -1.0] {
            let (vc, vb, ve) = (sign * 2.0, sign * 0.62, 0.0);
            let h = 1e-8;
            let eval = |vc: f64, vb: f64, ve: f64| {
                let vbe = sign * (vb - ve);
                let vbc = sign * (vb - vc);
                bjt_eval(vbe, vbc, sign, 1e-16, 100.0, 1.0)
            };
            let e0 = eval(vc, vb, ve);
            let scale = |x: f64| x.abs().max(1e-9);
            // d/dvb.
            let e1 = eval(vc, vb + h, ve);
            assert!(((e1.ic - e0.ic) / h - e0.g_cb).abs() / scale(e0.g_cb) < 1e-3);
            assert!(((e1.ib - e0.ib) / h - e0.g_bb).abs() / scale(e0.g_bb) < 1e-3);
            // d/dve.
            let e2 = eval(vc, vb, ve + h);
            assert!(((e2.ic - e0.ic) / h - e0.g_ce).abs() / scale(e0.g_ce) < 1e-3);
            assert!(((e2.ib - e0.ib) / h - e0.g_be).abs() / scale(e0.g_be) < 1e-3);
            // d/dvc (tiny in forward active; check absolute).
            let e3 = eval(vc + h, vb, ve);
            assert!(((e3.ic - e0.ic) / h - e0.g_cc).abs() < 1e-6 + 1e-3 * scale(e0.g_cc));
            assert!(((e3.ib - e0.ib) / h - e0.g_bc).abs() < 1e-6 + 1e-3 * scale(e0.g_bc));
        }
    }

    #[test]
    fn bjt_kcl_holds() {
        // ic + ib + ie = 0 by construction: check emitter current implied.
        let e = bjt_eval(0.7, -2.0, 1.0, 1e-16, 100.0, 1.0);
        let ie = -(e.ic + e.ib);
        assert!(ie < 0.0, "emitter current flows out in forward active");
    }
}
