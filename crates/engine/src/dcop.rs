//! DC operating-point analysis with continuation fallbacks.
//!
//! The operating point seeds every transient run. Strategy, in SPICE order:
//!
//! 1. Direct Newton from a zero initial guess.
//! 2. **Gmin stepping**: solve with a large shunt conductance on every node,
//!    then relax it decade by decade, warm-starting each stage.
//! 3. **Source stepping**: ramp all independent sources from 0 to 100%.

use crate::error::{EngineError, Result};
use crate::mna::{MnaSystem, MnaWorkspace, StampInput};
use crate::newton::{newton_solve, LinearCache};
use crate::options::SimOptions;
use crate::parstamp::StampExecutor;
use crate::stats::SimStats;

fn dc_input<'a>(
    zeros: &'a [f64],
    caps: &'a [f64],
    opts: &SimOptions,
    gshunt: f64,
    source_scale: f64,
) -> StampInput<'a> {
    StampInput {
        time: 0.0,
        coeffs: None,
        x_prev: zeros,
        x_prev2: zeros,
        cap_currents: caps,
        gmin: opts.gmin,
        gshunt,
        source_scale,
        ic_mode: false,
    }
}

/// Computes the DC operating point of the compiled system.
///
/// # Errors
///
/// Returns [`EngineError::NoConvergence`] if direct Newton, gmin stepping,
/// and source stepping all fail, or [`EngineError::Linear`] on an
/// irrecoverably singular matrix.
pub fn dc_operating_point(
    sys: &MnaSystem,
    ws: &mut MnaWorkspace,
    cache: &mut LinearCache,
    mut exec: Option<&mut StampExecutor>,
    opts: &SimOptions,
    stats: &mut SimStats,
) -> Result<Vec<f64>> {
    let n = sys.n_unknowns();
    let zeros = vec![0.0; n];
    let caps = vec![0.0; sys.cap_state_count()];

    // --- 1. Direct attempt. ---
    let direct = newton_solve(
        sys,
        ws,
        cache,
        exec.as_deref_mut(),
        &dc_input(&zeros, &caps, opts, opts.gmin, 1.0),
        &zeros,
        opts.max_dc_iters,
        opts,
        stats,
    );
    match direct {
        Ok(out) if out.converged => return Ok(out.x),
        // Cancellation / deadline: the caller asked us to stop; the
        // continuation ladder must not burn more wall time.
        Err(e) if e.is_budget() => return Err(e),
        _ => {}
    }

    // --- 2. Gmin stepping. ---
    let mut x = zeros.clone();
    let mut ok = true;
    let mut gshunt = 1e-2;
    while gshunt >= opts.gmin * 0.99 {
        let out = newton_solve(
            sys,
            ws,
            cache,
            exec.as_deref_mut(),
            &dc_input(&zeros, &caps, opts, gshunt, 1.0),
            &x,
            opts.max_dc_iters,
            opts,
            stats,
        );
        match out {
            Ok(o) if o.converged => x = o.x,
            Err(e) if e.is_budget() => return Err(e),
            _ => {
                ok = false;
                break;
            }
        }
        gshunt /= 10.0;
    }
    if ok {
        // Final polish at the nominal gmin-only stamp.
        let out = newton_solve(
            sys,
            ws,
            cache,
            exec.as_deref_mut(),
            &dc_input(&zeros, &caps, opts, opts.gmin, 1.0),
            &x,
            opts.max_dc_iters,
            opts,
            stats,
        )?;
        if out.converged {
            return Ok(out.x);
        }
    }

    // --- 3. Source stepping. ---
    let mut x = zeros.clone();
    let mut scale = 0.0;
    let mut step = 0.1_f64;
    let mut failures = 0;
    while scale < 1.0 {
        let target = (scale + step).min(1.0);
        let out = newton_solve(
            sys,
            ws,
            cache,
            exec.as_deref_mut(),
            &dc_input(&zeros, &caps, opts, opts.gmin, target),
            &x,
            opts.max_dc_iters,
            opts,
            stats,
        );
        match out {
            Ok(o) if o.converged => {
                x = o.x;
                scale = target;
                step = (step * 1.5).min(0.25);
            }
            Err(e) if e.is_budget() => return Err(e),
            _ => {
                step /= 4.0;
                failures += 1;
                if failures > 20 || step < 1e-5 {
                    // `x` is the last converged continuation stage; the
                    // residual against the workspace's final stamp names
                    // where the next stage refused to close.
                    return Err(EngineError::NoConvergence {
                        time: 0.0,
                        iterations: stats.newton_iterations,
                        report: Box::new(crate::recovery::residual_report(sys, ws, &x)),
                    });
                }
            }
        }
    }
    Ok(x)
}

/// Solves and formats the DC operating point as a human-readable table of
/// node voltages and branch currents (the `.op` printout).
///
/// # Errors
///
/// Same failure modes as [`dc_operating_point`].
pub fn format_dc_op(circuit: &wavepipe_circuit::Circuit, opts: &SimOptions) -> Result<String> {
    use std::fmt::Write as _;
    let sys = MnaSystem::compile(circuit)?;
    let mut ws = sys.new_workspace();
    let mut cache = LinearCache::for_options(opts);
    let mut stats = SimStats::new();
    let x = dc_operating_point(&sys, &mut ws, &mut cache, None, opts, &mut stats)?;
    let mut out = String::new();
    let _ = writeln!(out, "DC operating point ({} newton iterations)", stats.newton_iterations);
    let _ = writeln!(out, "{:<20} {:>14}", "node", "voltage (V)");
    for (i, name) in sys.node_names().iter().enumerate() {
        let _ = writeln!(out, "{:<20} {:>14.6e}", format!("v({name})"), x[i]);
    }
    if !sys.branch_names().is_empty() {
        let _ = writeln!(out, "{:<20} {:>14}", "branch", "current (A)");
        for (name, idx) in sys.branch_names() {
            let _ = writeln!(out, "{:<20} {:>14.6e}", format!("i({name})"), x[*idx]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::generators;
    use wavepipe_circuit::{BjtModel, Circuit, DiodeModel, MosModel, Waveform};

    fn op(ckt: &Circuit) -> (MnaSystem, Vec<f64>) {
        let sys = MnaSystem::compile(ckt).unwrap();
        let mut ws = sys.new_workspace();
        let mut cache = LinearCache::default();
        let mut stats = SimStats::new();
        let x =
            dc_operating_point(&sys, &mut ws, &mut cache, None, &SimOptions::default(), &mut stats)
                .unwrap();
        (sys, x)
    }

    #[test]
    fn divider_op() {
        let mut ckt = Circuit::new("div");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(9.0)).unwrap();
        ckt.add_resistor("R1", a, b, 2e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        let (sys, x) = op(&ckt);
        assert!((x[sys.node_unknown("b").unwrap()] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn inverter_dc_points() {
        // CMOS inverter with input low: output at VDD. Input high: output ~0.
        for (vin, expect_high) in [(0.0, true), (3.3, false)] {
            let mut ckt = Circuit::new("inv");
            let vdd = ckt.node("vdd");
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(3.3)).unwrap();
            ckt.add_vsource("Vin", inp, Circuit::GROUND, Waveform::dc(vin)).unwrap();
            ckt.add_mosfet("Mp", out, inp, vdd, MosModel::pmos()).unwrap();
            ckt.add_mosfet("Mn", out, inp, Circuit::GROUND, MosModel::nmos()).unwrap();
            let (sys, x) = op(&ckt);
            let vo = x[sys.node_unknown("out").unwrap()];
            if expect_high {
                assert!(vo > 3.2, "vin={vin}: vout = {vo}");
            } else {
                assert!(vo < 0.1, "vin={vin}: vout = {vo}");
            }
        }
    }

    #[test]
    fn diode_chain_needs_continuation_but_converges() {
        // A long series diode chain from a strong source is a classic
        // hard-start circuit.
        let mut ckt = Circuit::new("chain");
        let top = ckt.node("n0");
        ckt.add_vsource("V1", top, Circuit::GROUND, Waveform::dc(6.0)).unwrap();
        let r = ckt.node("nr");
        ckt.add_resistor("R1", top, r, 100.0).unwrap();
        let mut prev = r;
        for i in 0..8 {
            let nxt = ckt.node(&format!("d{i}"));
            ckt.add_diode(&format!("D{i}"), prev, nxt, DiodeModel::default()).unwrap();
            prev = nxt;
        }
        ckt.add_resistor("R2", prev, Circuit::GROUND, 100.0).unwrap();
        let (sys, x) = op(&ckt);
        // Each diode drops ~0.6-0.8 V.
        let v_first = x[sys.node_unknown("nr").unwrap()];
        let v_last = x[sys.node_unknown("d7").unwrap()];
        let total_drop = v_first - v_last;
        assert!(total_drop > 4.0 && total_drop < 6.5, "chain drop = {total_drop}");
    }

    #[test]
    fn bjt_amplifier_bias_point() {
        // Common-emitter: Vcc 12, Rb to base, Rc 2k.
        let mut ckt = Circuit::new("ce");
        let vcc = ckt.node("vcc");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.add_vsource("Vcc", vcc, Circuit::GROUND, Waveform::dc(12.0)).unwrap();
        ckt.add_resistor("Rb", vcc, b, 1e6).unwrap();
        ckt.add_resistor("Rc", vcc, c, 2e3).unwrap();
        ckt.add_bjt("Q1", c, b, Circuit::GROUND, BjtModel::default()).unwrap();
        let (sys, x) = op(&ckt);
        let vb = x[sys.node_unknown("b").unwrap()];
        let vc = x[sys.node_unknown("c").unwrap()];
        assert!(vb > 0.5 && vb < 0.9, "vb = {vb}");
        // ib ~ (12-0.7)/1M = 11.3uA; ic ~ 1.13mA; vc ~ 12 - 2.26 ~ 9.7.
        assert!(vc > 8.0 && vc < 11.0, "vc = {vc}");
    }

    #[test]
    fn format_dc_op_lists_all_unknowns() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(4.0)).unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        let txt = format_dc_op(&ckt, &SimOptions::default()).unwrap();
        assert!(txt.contains("v(a)"));
        assert!(txt.contains("v(b)"));
        assert!(txt.contains("i(V1)"));
        assert!(txt.contains("2.0000"), "v(b) = 2 V appears: {txt}");
    }

    #[test]
    fn all_small_benchmarks_have_operating_points() {
        for b in generators::small_suite() {
            let sys = MnaSystem::compile(&b.circuit).unwrap();
            let mut ws = sys.new_workspace();
            let mut cache = LinearCache::default();
            let mut stats = SimStats::new();
            let x = dc_operating_point(
                &sys,
                &mut ws,
                &mut cache,
                None,
                &SimOptions::default(),
                &mut stats,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(wavepipe_sparse::vector::all_finite(&x), "{}", b.name);
        }
    }
}
