//! CI performance-regression gate over the committed bench baselines.
//!
//! The `newton_path` and `stamp` binaries emit `BENCH_newton.json` /
//! `BENCH_stamp.json`; the committed copies at the repo root are the
//! baseline. The gate re-runs the benches, extracts the *ratio-type*
//! metrics (speedups — wall-millisecond columns vary with host load, but a
//! speedup is a same-host ratio and stays comparable), and fails when any
//! drops below `1 - tolerance` of its baseline. Improvements never fail the
//! gate; they only show up in the delta table as candidates for a baseline
//! refresh.

use std::fmt::Write as _;
use wavepipe_telemetry::json::{self, JsonValue};

/// Default relative tolerance: a metric may lose up to 15% before failing.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One comparable metric extracted from a bench JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable identifier, e.g. `newton/inverter_chain(120)/speedup`.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
}

impl Metric {
    /// Relative change, `fresh / baseline - 1` (negative = regression).
    pub fn delta(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        self.fresh / self.baseline - 1.0
    }

    /// Whether this metric regressed beyond the tolerance.
    pub fn failed(&self, tolerance: f64) -> bool {
        self.delta() < -tolerance
    }
}

/// Extracts the speedup metrics from a `BENCH_newton.json` document
/// (an array of per-circuit rows).
///
/// # Errors
///
/// Returns a message when the document does not parse or lacks the
/// expected fields.
pub fn newton_metrics(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let v = json::parse(doc).map_err(|e| format!("BENCH_newton.json: {e}"))?;
    let rows = v.as_array().ok_or("BENCH_newton.json: expected a top-level array")?;
    let mut out = Vec::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("BENCH_newton.json: row without name")?;
        let speedup = row
            .get("speedup")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_newton.json: {name} lacks speedup"))?;
        out.push((format!("newton/{name}/speedup"), speedup));
    }
    Ok(out)
}

/// Extracts the per-worker-count newton speedups from a `BENCH_stamp.json`
/// document (`{circuit: [{workers, newton_speedup, ...}]}`).
///
/// # Errors
///
/// Returns a message when the document does not parse or lacks the
/// expected fields.
pub fn stamp_metrics(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let v = json::parse(doc).map_err(|e| format!("BENCH_stamp.json: {e}"))?;
    let JsonValue::Obj(groups) = &v else {
        return Err("BENCH_stamp.json: expected a top-level object".to_string());
    };
    let mut out = Vec::new();
    for (circuit, points) in groups {
        let points =
            points.as_array().ok_or_else(|| format!("BENCH_stamp.json: {circuit} not an array"))?;
        for p in points {
            let workers = p
                .get("workers")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("BENCH_stamp.json: {circuit} point without workers"))?;
            let s = p
                .get("newton_speedup")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("BENCH_stamp.json: {circuit} lacks newton_speedup"))?;
            // workers=0 is the serial anchor (speedup identically 1).
            if workers > 0.0 {
                out.push((format!("stamp/{circuit}/w{workers}/newton_speedup"), s));
            }
        }
    }
    Ok(out)
}

/// Extracts the ratio-type metrics from a `BENCH_sweep.json` document (an
/// array of per-configuration rows): the modeled batch throughput gain,
/// the real single-core work ratio, and the measured SIMD-tier speedup
/// over the classic batched path. Wall-millisecond columns are skipped
/// for the usual reason — they vary with host load, ratios do not.
///
/// # Errors
///
/// Returns a message when the document does not parse or lacks the
/// expected fields.
pub fn sweep_metrics(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let v = json::parse(doc).map_err(|e| format!("BENCH_sweep.json: {e}"))?;
    let rows = v.as_array().ok_or("BENCH_sweep.json: expected a top-level array")?;
    let mut out = Vec::new();
    for row in rows {
        let circuit = row
            .get("circuit")
            .and_then(JsonValue::as_str)
            .ok_or("BENCH_sweep.json: row without circuit")?;
        let speedup = row
            .get("modeled_speedup")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_sweep.json: {circuit} lacks modeled_speedup"))?;
        let work = row
            .get("work_ratio")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_sweep.json: {circuit} lacks work_ratio"))?;
        let simd = row
            .get("simd_speedup")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_sweep.json: {circuit} lacks simd_speedup"))?;
        out.push((format!("sweep/{circuit}/modeled_speedup"), speedup));
        out.push((format!("sweep/{circuit}/work_ratio"), work));
        out.push((format!("sweep/{circuit}/simd_speedup"), simd));
    }
    Ok(out)
}

/// Extracts the ratio-type metrics from a `BENCH_overhead.json` document
/// (an array of per-circuit rows from the `overhead` binary): the
/// recovery-off/on wall-time ratio (≈1 when the ladder is free on clean
/// runs; drops when arming it starts costing) and the rescue-free fraction
/// of accepted points (exactly 1 on a clean run — any clean-run ladder
/// engagement drops it deterministically, no timing noise involved).
///
/// # Errors
///
/// Returns a message when the document does not parse or lacks the
/// expected fields.
pub fn overhead_metrics(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let v = json::parse(doc).map_err(|e| format!("BENCH_overhead.json: {e}"))?;
    let rows = v.as_array().ok_or("BENCH_overhead.json: expected a top-level array")?;
    let mut out = Vec::new();
    for row in rows {
        let circuit = row
            .get("circuit")
            .and_then(JsonValue::as_str)
            .ok_or("BENCH_overhead.json: row without circuit")?;
        let ratio = row
            .get("off_on_ratio")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_overhead.json: {circuit} lacks off_on_ratio"))?;
        let rescue_free = row
            .get("rescue_free_fraction")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_overhead.json: {circuit} lacks rescue_free_fraction"))?;
        out.push((format!("recovery/{circuit}/off_on_ratio"), ratio));
        out.push((format!("recovery/{circuit}/rescue_free_fraction"), rescue_free));
    }
    Ok(out)
}

/// Extracts the ratio-type metrics from a `BENCH_solver.json` document (an
/// array of per-grid-size rows from the `solver_bakeoff` binary): the
/// min-degree/RCM fill ratio (deterministic — orderings don't depend on the
/// host) for every row, and the direct/GMRES wall-time ratio for rows at or
/// past the crossover scale (64 unknowns and up; the sub-64 rows time
/// single-digit-microsecond solves, which is noise, not signal).
///
/// # Errors
///
/// Returns a message when the document does not parse or lacks the
/// expected fields.
pub fn solver_metrics(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let v = json::parse(doc).map_err(|e| format!("BENCH_solver.json: {e}"))?;
    let rows = v.as_array().ok_or("BENCH_solver.json: expected a top-level array")?;
    let mut out = Vec::new();
    for row in rows {
        let circuit = row
            .get("circuit")
            .and_then(JsonValue::as_str)
            .ok_or("BENCH_solver.json: row without circuit")?;
        let unknowns = row
            .get("unknowns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_solver.json: {circuit} lacks unknowns"))?;
        let fill = row
            .get("mindeg_over_rcm_fill")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_solver.json: {circuit} lacks mindeg_over_rcm_fill"))?;
        let speedup = row
            .get("gmres_speedup")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("BENCH_solver.json: {circuit} lacks gmres_speedup"))?;
        out.push((format!("solver/{circuit}/mindeg_over_rcm_fill"), fill));
        if unknowns >= 64.0 {
            out.push((format!("solver/{circuit}/gmres_speedup"), speedup));
        }
    }
    Ok(out)
}

/// Pairs baseline and fresh metric lists by key. Keys present on only one
/// side are reported (a renamed circuit must fail loudly, not vanish).
///
/// # Errors
///
/// Returns a message listing unmatched keys.
pub fn pair(baseline: &[(String, f64)], fresh: &[(String, f64)]) -> Result<Vec<Metric>, String> {
    let fresh_map: std::collections::BTreeMap<&str, f64> =
        fresh.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let base_keys: std::collections::BTreeSet<&str> =
        baseline.iter().map(|(k, _)| k.as_str()).collect();
    let mut missing: Vec<&str> = Vec::new();
    let mut out = Vec::new();
    for (key, b) in baseline {
        match fresh_map.get(key.as_str()) {
            Some(&f) => out.push(Metric { key: key.clone(), baseline: *b, fresh: f }),
            None => missing.push(key),
        }
    }
    let extra: Vec<&str> =
        fresh.iter().map(|(k, _)| k.as_str()).filter(|k| !base_keys.contains(k)).collect();
    if !missing.is_empty() || !extra.is_empty() {
        return Err(format!(
            "metric sets diverge — missing from fresh run: {missing:?}; \
             not in baseline: {extra:?} (refresh the committed BENCH_*.json)"
        ));
    }
    Ok(out)
}

/// The gate verdict: the rendered delta table plus pass/fail.
#[derive(Debug)]
pub struct GateReport {
    /// All compared metrics.
    pub metrics: Vec<Metric>,
    /// Tolerance used.
    pub tolerance: f64,
}

impl GateReport {
    /// Compares paired metrics under a tolerance.
    pub fn new(metrics: Vec<Metric>, tolerance: f64) -> Self {
        GateReport { metrics, tolerance }
    }

    /// The metrics that regressed beyond the tolerance.
    pub fn failures(&self) -> Vec<&Metric> {
        self.metrics.iter().filter(|m| m.failed(self.tolerance)).collect()
    }

    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Human-readable delta table, worst regression first.
    pub fn table(&self) -> String {
        let mut rows: Vec<&Metric> = self.metrics.iter().collect();
        rows.sort_by(|a, b| a.delta().partial_cmp(&b.delta()).unwrap_or(std::cmp::Ordering::Equal));
        let width = rows.iter().map(|m| m.key.len()).max().unwrap_or(6).max(6);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf gate (tolerance -{:.0}%): {} metrics, {} regressed",
            self.tolerance * 100.0,
            self.metrics.len(),
            self.failures().len()
        );
        let _ = writeln!(
            out,
            "  {:<width$}  {:>9}  {:>9}  {:>8}  verdict",
            "metric", "base", "fresh", "delta"
        );
        for m in rows {
            let verdict = if m.failed(self.tolerance) {
                "FAIL"
            } else if m.delta() >= 0.0 {
                "ok +"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:<width$}  {:>9.3}  {:>9.3}  {:>7.1}%  {}",
                m.key,
                m.baseline,
                m.fresh,
                m.delta() * 100.0,
                verdict
            );
        }
        out
    }
}

/// Runs the full gate over baseline/fresh document pairs.
///
/// # Errors
///
/// Returns a message when a document is malformed or the metric sets
/// diverge — both are gate failures distinct from a perf regression.
#[allow(clippy::too_many_arguments)]
pub fn gate(
    newton_baseline: &str,
    newton_fresh: &str,
    stamp_baseline: &str,
    stamp_fresh: &str,
    sweep_baseline: &str,
    sweep_fresh: &str,
    overhead_baseline: &str,
    overhead_fresh: &str,
    solver_baseline: &str,
    solver_fresh: &str,
    tolerance: f64,
) -> Result<GateReport, String> {
    let mut base = newton_metrics(newton_baseline)?;
    base.extend(stamp_metrics(stamp_baseline)?);
    base.extend(sweep_metrics(sweep_baseline)?);
    base.extend(overhead_metrics(overhead_baseline)?);
    base.extend(solver_metrics(solver_baseline)?);
    let mut fresh = newton_metrics(newton_fresh)?;
    fresh.extend(stamp_metrics(stamp_fresh)?);
    fresh.extend(sweep_metrics(sweep_fresh)?);
    fresh.extend(overhead_metrics(overhead_fresh)?);
    fresh.extend(solver_metrics(solver_fresh)?);
    Ok(GateReport::new(pair(&base, &fresh)?, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEWTON: &str = r#"[
      {"name":"a","speedup":1.6,"off_ms":10.0,"on_ms":6.0},
      {"name":"b","speedup":1.3,"off_ms":20.0,"on_ms":15.0}
    ]"#;
    const STAMP: &str = r#"{
      "a": [
        {"workers":0,"newton_speedup":1.0,"stamp_ms":5.0},
        {"workers":2,"newton_speedup":1.2,"stamp_ms":4.0}
      ]
    }"#;
    const SWEEP: &str = r#"[
      {"circuit":"c","instances":100,"workers":8,"independent_ms":500.0,
       "batched_cpu_ms":450.0,"batched_makespan_ms":65.0,
       "work_ratio":1.11,"modeled_speedup":7.7,"simd_speedup":1.55}
    ]"#;
    const OVERHEAD: &str = r#"[
      {"circuit":"g","serial_off_us":900,"serial_on_us":905,"backward2_us":600,
       "off_on_ratio":0.9945,"recovery_attempts":0,"recovery_rescues":0,
       "cache_rollbacks":0,"rescue_free_fraction":1.0}
    ]"#;
    const SOLVER: &str = r#"[
      {"circuit":"power_grid(4,4)","unknowns":16,"nnz":64,
       "mindeg_fill_nnz":100,"rcm_fill_nnz":108,"mindeg_over_rcm_fill":0.926,
       "direct_us":6.0,"gmres_us":8.0,"gmres_iterations":12,
       "gmres_speedup":0.75,"crossover":false},
      {"circuit":"power_grid(16,16)","unknowns":256,"nnz":1216,
       "mindeg_fill_nnz":4102,"rcm_fill_nnz":5936,"mindeg_over_rcm_fill":0.691,
       "direct_us":610.0,"gmres_us":200.0,"gmres_iterations":24,
       "gmres_speedup":3.05,"crossover":true}
    ]"#;

    fn scaled_newton(factor: f64) -> String {
        format!(
            r#"[{{"name":"a","speedup":{},"off_ms":10.0,"on_ms":6.0}},
                {{"name":"b","speedup":{},"off_ms":20.0,"on_ms":15.0}}]"#,
            1.6 * factor,
            1.3 * factor
        )
    }

    #[test]
    fn identical_runs_pass() {
        let r = gate(
            NEWTON,
            NEWTON,
            STAMP,
            STAMP,
            SWEEP,
            SWEEP,
            OVERHEAD,
            OVERHEAD,
            SOLVER,
            SOLVER,
            DEFAULT_TOLERANCE,
        )
        .unwrap();
        assert!(r.passed(), "{}", r.table());
        // 2 newton + 1 non-serial stamp + 3 sweep + 2 recovery
        // + 2 solver fill + 1 crossover-scale solver speedup
        assert_eq!(r.metrics.len(), 11);
    }

    #[test]
    fn injected_twenty_percent_slowdown_fails() {
        // The acceptance scenario: a 20% speedup loss must trip a 15% gate.
        let slow = scaled_newton(0.8);
        let r = gate(
            NEWTON,
            &slow,
            STAMP,
            STAMP,
            SWEEP,
            SWEEP,
            OVERHEAD,
            OVERHEAD,
            SOLVER,
            SOLVER,
            DEFAULT_TOLERANCE,
        )
        .unwrap();
        assert!(!r.passed());
        assert_eq!(r.failures().len(), 2);
        let table = r.table();
        assert!(table.contains("FAIL"), "{table}");
        assert!(table.contains("newton/a/speedup"), "{table}");
        assert!(table.contains("-20.0%"), "{table}");
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let slight = scaled_newton(0.9); // -10% on a 15% gate
        let r = gate(
            NEWTON,
            &slight,
            STAMP,
            STAMP,
            SWEEP,
            SWEEP,
            OVERHEAD,
            OVERHEAD,
            SOLVER,
            SOLVER,
            DEFAULT_TOLERANCE,
        )
        .unwrap();
        assert!(r.passed(), "{}", r.table());
    }

    #[test]
    fn improvements_never_fail() {
        let faster = scaled_newton(1.5);
        let r = gate(
            NEWTON,
            &faster,
            STAMP,
            STAMP,
            SWEEP,
            SWEEP,
            OVERHEAD,
            OVERHEAD,
            SOLVER,
            SOLVER,
            DEFAULT_TOLERANCE,
        )
        .unwrap();
        assert!(r.passed(), "{}", r.table());
        assert!(r.table().contains("ok +"));
    }

    #[test]
    fn diverging_metric_sets_are_an_error() {
        let renamed = NEWTON.replace("\"a\"", "\"renamed\"");
        let err = gate(
            NEWTON,
            &renamed,
            STAMP,
            STAMP,
            SWEEP,
            SWEEP,
            OVERHEAD,
            OVERHEAD,
            SOLVER,
            SOLVER,
            DEFAULT_TOLERANCE,
        )
        .unwrap_err();
        assert!(err.contains("newton/a/speedup"), "{err}");
        assert!(err.contains("renamed"), "{err}");
    }

    #[test]
    fn malformed_documents_are_an_error() {
        assert!(newton_metrics("{not json").is_err());
        assert!(newton_metrics("{}").is_err());
        assert!(stamp_metrics("[]").is_err());
        assert!(newton_metrics(r#"[{"name":"x"}]"#).is_err());
        assert!(sweep_metrics("{}").is_err());
        assert!(sweep_metrics(r#"[{"circuit":"x","work_ratio":1.0}]"#).is_err());
        assert!(
            sweep_metrics(r#"[{"circuit":"x","work_ratio":1.0,"modeled_speedup":7.0}]"#).is_err()
        );
        assert!(solver_metrics("{}").is_err());
        assert!(solver_metrics(r#"[{"circuit":"x","unknowns":16}]"#).is_err());
    }

    #[test]
    fn serial_anchor_points_are_skipped() {
        let ms = stamp_metrics(STAMP).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].0, "stamp/a/w2/newton_speedup");
    }

    #[test]
    fn sub_crossover_solver_timings_are_skipped() {
        // Fill ratios gate on every row; the noisy microsecond-scale
        // speedup of the 16-unknown grid does not.
        let ms = solver_metrics(SOLVER).unwrap();
        let keys: Vec<&str> = ms.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "solver/power_grid(4,4)/mindeg_over_rcm_fill",
                "solver/power_grid(16,16)/mindeg_over_rcm_fill",
                "solver/power_grid(16,16)/gmres_speedup",
            ]
        );
    }
}
