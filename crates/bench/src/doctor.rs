//! The `wavepipe-doctor` diagnostics harness: runs (or replays) a
//! simulation with both the recording probe and the live metrics registry
//! attached, then renders the bottleneck report.
//!
//! The report has two sections (see [`mod@wavepipe_telemetry::analyze`]): a
//! **stable** section derived purely from event counts and metric counters
//! (byte-reproducible across identical seeded runs at a fixed thread
//! count — the determinism tests pin this), and a **timing** section
//! derived from timestamps (varies run to run, suppressed by `--stable`).
//!
//! The binary (`cargo run -p wavepipe-bench --bin wavepipe-doctor`) is a
//! thin wrapper over this module so the logic stays testable.

use wavepipe_circuit::generators::{self, Benchmark};
use wavepipe_core::WavePipeReport;
use wavepipe_core::{run_wavepipe, MetricsHandle, MetricsRegistry, Scheme, WavePipeOptions};
use wavepipe_telemetry::analyze::{analyze, class_cache_table, TraceAnalysis};
use wavepipe_telemetry::metrics::Snapshot;
use wavepipe_telemetry::{Event, ProbeHandle, RecordingProbe};

/// Everything one instrumented run produces.
#[derive(Debug)]
pub struct DoctorRun {
    /// The simulation report.
    pub report: WavePipeReport,
    /// The recorded telemetry event stream.
    pub events: Vec<Event>,
    /// End-of-run metrics snapshot.
    pub snapshot: Snapshot,
}

/// Parses a circuit spec like `inverter_chain:120`, `power_grid:10,10` or
/// `diode_rectifier` into a generated benchmark.
///
/// # Errors
///
/// Returns a message listing the known generators when the name or the
/// argument list does not match.
pub fn circuit_by_spec(spec: &str) -> Result<Benchmark, String> {
    let (name, rest) = match spec.split_once(':') {
        Some((n, r)) => (n, r),
        None => (spec, ""),
    };
    let args: Vec<usize> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',')
            .map(|a| a.trim().parse::<usize>().map_err(|_| format!("bad size `{a}` in `{spec}`")))
            .collect::<Result<_, _>>()?
    };
    let one = |d: usize| args.first().copied().unwrap_or(d);
    match (name, args.len()) {
        ("rc_ladder", 0 | 1) => Ok(generators::rc_ladder(one(100))),
        ("rlc_line", 0 | 1) => Ok(generators::rlc_line(one(40))),
        ("power_grid", 0) => Ok(generators::power_grid(10, 10)),
        ("power_grid", 2) => Ok(generators::power_grid(args[0], args[1])),
        ("inverter_chain", 0 | 1) => Ok(generators::inverter_chain(one(120))),
        ("ring_oscillator", 0 | 1) => Ok(generators::ring_oscillator(one(9))),
        ("nand_chain", 0 | 1) => Ok(generators::nand_chain(one(40))),
        ("amp_chain", 0 | 1) => Ok(generators::amp_chain(one(20))),
        ("bjt_amp_chain", 0 | 1) => Ok(generators::bjt_amp_chain(one(20))),
        ("diode_rectifier", 0) => Ok(generators::diode_rectifier()),
        _ => Err(format!(
            "unknown circuit spec `{spec}` — use one of rc_ladder[:n], rlc_line[:n], \
             power_grid[:rows,cols], inverter_chain[:n], ring_oscillator[:n], nand_chain[:n], \
             amp_chain[:n], bjt_amp_chain[:n], diode_rectifier"
        )),
    }
}

/// Parses a scheme name as used on bench command lines.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn scheme_by_name(name: &str) -> Result<Scheme, String> {
    match name {
        "serial" => Ok(Scheme::Serial),
        "backward" => Ok(Scheme::Backward),
        "forward" => Ok(Scheme::Forward),
        "combined" => Ok(Scheme::Combined),
        "adaptive" => Ok(Scheme::Adaptive),
        other => Err(format!(
            "unknown scheme `{other}` — use serial, backward, forward, combined or adaptive"
        )),
    }
}

/// Runs a benchmark with both the [`RecordingProbe`] and a fresh
/// [`MetricsRegistry`] attached, returning report, events and the final
/// metrics snapshot.
///
/// # Panics
///
/// Panics when the underlying simulation fails (bad circuit, DC failure) —
/// the doctor has nothing to report on in that case.
pub fn run_instrumented(b: &Benchmark, scheme: Scheme, threads: usize) -> DoctorRun {
    let probe = RecordingProbe::shared();
    let registry = MetricsRegistry::shared();
    let opts = WavePipeOptions::new(scheme, threads)
        .with_probe(ProbeHandle::new(probe.clone()))
        .with_metrics(MetricsHandle::new(registry.clone()));
    let report = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts)
        .unwrap_or_else(|e| panic!("{}: doctor run {scheme} x{threads} failed: {e}", b.name));
    DoctorRun { report, events: probe.events(), snapshot: registry.snapshot() }
}

/// Renders the doctor report as text: the stable section (event counts plus
/// the per-class / per-cache tables from the metrics snapshot — all
/// count-derived, so byte-reproducible), then — unless `stable_only` — the
/// wall-clock timing section.
pub fn doctor_text(
    title: &str,
    analysis: &TraceAnalysis,
    snapshot: Option<&Snapshot>,
    stable_only: bool,
) -> String {
    let mut out = analysis.stable_report(title);
    if let Some(snap) = snapshot {
        out.push_str(&class_cache_table(snap));
    }
    if !stable_only {
        out.push_str(&analysis.timing_report());
    }
    out
}

/// Renders the doctor report as one JSON document:
/// `{"title":..., "analysis":{...}, "metrics":{...}|null}`. With
/// `stable_only` the analysis omits its timing object and the metrics
/// snapshot is reduced to its count-derived sections (counters and labeled
/// families) — gauges and series include wall-clock-derived values
/// (`solve_us`, EMAs sampled at shutdown) that vary run to run.
pub fn doctor_json(
    title: &str,
    analysis: &TraceAnalysis,
    snapshot: Option<&Snapshot>,
    stable_only: bool,
) -> String {
    let metrics = snapshot.map_or_else(
        || "null".to_string(),
        |s| if stable_only { stable_metrics_json(s) } else { s.to_json() },
    );
    format!(
        "{{\"title\":\"{}\",\"analysis\":{},\"metrics\":{}}}",
        wavepipe_telemetry::json::escape(title),
        analysis.to_json(stable_only),
        metrics
    )
}

/// The byte-reproducible subset of a metrics snapshot: counters and labeled
/// families only (all integer event counts).
fn stable_metrics_json(s: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("},\"labeled\":[");
    for (i, lv) in s.labeled.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"family\":\"{}\",\"label\":\"{}\",\"value\":{}}}",
            wavepipe_telemetry::json::escape(lv.family),
            wavepipe_telemetry::json::escape(&lv.label),
            lv.value
        );
    }
    out.push_str("]}");
    out
}

/// Parsed command line of the `wavepipe-doctor` binary.
#[derive(Debug)]
pub struct DoctorArgs {
    /// Circuit spec (`inverter_chain:120`); ignored with `--replay`.
    pub spec: String,
    /// Scheme to run.
    pub scheme: Scheme,
    /// Worker threads.
    pub threads: usize,
    /// Emit JSON instead of the text tables.
    pub json: bool,
    /// Suppress the timestamp-derived (unstable) section.
    pub stable_only: bool,
    /// Replay a recorded JSONL event stream instead of running live.
    pub replay: Option<std::path::PathBuf>,
}

/// Usage string for the binary.
pub const DOCTOR_USAGE: &str = "usage: wavepipe-doctor [<circuit-spec>] [options]\n\
     \n\
     circuit-spec       e.g. inverter_chain:120, power_grid:10,10 (default inverter_chain:120)\n\
     --scheme <s>       serial | backward | forward | combined | adaptive (default combined)\n\
     --threads <n>      worker threads (default 4)\n\
     --json             emit one JSON document instead of text tables\n\
     --stable           stable section only (byte-reproducible across identical runs)\n\
     --replay <file>    analyze a recorded JSONL event stream instead of running\n";

impl DoctorArgs {
    /// Parses the binary's arguments (everything after argv\[0\]).
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed values.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut parsed = DoctorArgs {
            spec: "inverter_chain:120".to_string(),
            scheme: Scheme::Combined,
            threads: 4,
            json: false,
            stable_only: false,
            replay: None,
        };
        let mut spec_set = false;
        let mut args = args;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scheme" => {
                    let s = args.next().ok_or("--scheme needs a value")?;
                    parsed.scheme = scheme_by_name(&s)?;
                }
                "--threads" => {
                    let t = args.next().ok_or("--threads needs a value")?;
                    parsed.threads = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
                }
                "--json" => parsed.json = true,
                "--stable" => parsed.stable_only = true,
                "--replay" => {
                    let p = args.next().ok_or("--replay needs a file path")?;
                    parsed.replay = Some(std::path::PathBuf::from(p));
                }
                "--help" | "-h" => return Err(DOCTOR_USAGE.to_string()),
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`\n{DOCTOR_USAGE}"))
                }
                spec if !spec_set => {
                    circuit_by_spec(spec)?; // validate early for a clean error
                    parsed.spec = spec.to_string();
                    spec_set = true;
                }
                extra => return Err(format!("unexpected argument `{extra}`\n{DOCTOR_USAGE}")),
            }
        }
        Ok(parsed)
    }

    /// The deterministic report title for this invocation.
    pub fn title(&self) -> String {
        match &self.replay {
            Some(p) => format!("replay {}", p.display()),
            None => format!("{}, {} x{}", self.spec, self.scheme, self.threads),
        }
    }
}

/// Executes a parsed invocation end to end and returns the rendered report.
///
/// # Errors
///
/// Returns a message when a replay file cannot be read or parsed.
pub fn run_doctor(args: &DoctorArgs) -> Result<String, String> {
    let title = args.title();
    let (analysis, snapshot) = match &args.replay {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let events = wavepipe_telemetry::jsonl::parse_jsonl(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            (analyze(&events), None)
        }
        None => {
            let b = circuit_by_spec(&args.spec)?;
            let run = run_instrumented(&b, args.scheme, args.threads);
            (analyze(&run.events), Some(run.snapshot))
        }
    };
    Ok(if args.json {
        doctor_json(&title, &analysis, snapshot.as_ref(), args.stable_only)
    } else {
        doctor_text(&title, &analysis, snapshot.as_ref(), args.stable_only)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> impl Iterator<Item = String> {
        parts.iter().map(ToString::to_string).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn specs_parse_with_and_without_sizes() {
        assert_eq!(circuit_by_spec("rc_ladder:12").unwrap().name, "rc_ladder(12)");
        assert_eq!(circuit_by_spec("power_grid:3,4").unwrap().name, "power_grid(3x4)");
        assert!(circuit_by_spec("diode_rectifier").is_ok());
        assert!(circuit_by_spec("power_grid:3").is_err());
        assert!(circuit_by_spec("no_such_circuit").is_err());
        assert!(circuit_by_spec("rc_ladder:abc").is_err());
    }

    #[test]
    fn args_parse_flags_and_reject_junk() {
        let a = DoctorArgs::parse(argv(&[
            "rc_ladder:6",
            "--scheme",
            "backward",
            "--threads",
            "2",
            "--stable",
            "--json",
        ]))
        .unwrap();
        assert_eq!(a.spec, "rc_ladder:6");
        assert_eq!(a.scheme, wavepipe_core::Scheme::Backward);
        assert_eq!(a.threads, 2);
        assert!(a.stable_only && a.json);
        assert_eq!(a.title(), "rc_ladder:6, backward x2");
        assert!(DoctorArgs::parse(argv(&["--scheme", "sideways"])).is_err());
        assert!(DoctorArgs::parse(argv(&["--no-such-flag"])).is_err());
        assert!(DoctorArgs::parse(argv(&["rc_ladder:6", "extra"])).is_err());
    }

    #[test]
    fn instrumented_run_populates_events_and_metrics() {
        let b = generators::rc_ladder(6);
        let run = run_instrumented(&b, Scheme::Backward, 2);
        assert!(run.report.result.len() > 5);
        assert!(!run.events.is_empty());
        assert!(run.snapshot.counter("points_accepted") > 0);
        assert!(run.snapshot.counter("solves") > 0);
        let a = analyze(&run.events);
        assert_eq!(a.counts.points_accepted, run.snapshot.counter("points_accepted"));
    }

    #[test]
    fn report_sections_respect_stable_flag() {
        let b = generators::rc_ladder(6);
        let run = run_instrumented(&b, Scheme::Backward, 2);
        let a = analyze(&run.events);
        let stable = doctor_text("t", &a, Some(&run.snapshot), true);
        assert!(stable.contains("== stable"));
        assert!(!stable.contains("== timing"));
        let full = doctor_text("t", &a, Some(&run.snapshot), false);
        assert!(full.contains("== timing"));
        let json_doc = doctor_json("t", &a, Some(&run.snapshot), true);
        let parsed = wavepipe_telemetry::json::parse(&json_doc).expect("doctor json parses");
        assert!(parsed.get("analysis").is_some());
        assert!(parsed.get("metrics").is_some());
    }

    #[test]
    fn replay_round_trips_through_jsonl() {
        let b = generators::rc_ladder(6);
        let run = run_instrumented(&b, Scheme::Backward, 2);
        let mut buf = Vec::new();
        wavepipe_telemetry::jsonl::write_jsonl(&run.events, &mut buf).unwrap();
        let dir = std::env::temp_dir().join("wavepipe_doctor_replay_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, &buf).unwrap();
        let args = DoctorArgs {
            spec: String::new(),
            scheme: Scheme::Backward,
            threads: 2,
            json: false,
            stable_only: true,
            replay: Some(path.clone()),
        };
        let live = analyze(&run.events);
        let replayed = run_doctor(&args).unwrap();
        assert_eq!(replayed, doctor_text(&args.title(), &live, None, true));
        std::fs::remove_file(&path).ok();
    }
}
