//! Criterion bench regenerating Table 3 (forward pipelining): wall-clock
//! cost of serial vs forward pipelining at 2 threads.

use criterion::{criterion_group, criterion_main, Criterion};
use wavepipe_circuit::generators;
use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe_engine::{run_transient, SimOptions};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_forward");
    group.sample_size(10);
    for b in [generators::amp_chain(2), generators::diode_rectifier()] {
        group.bench_function(format!("{}/serial", b.name), |bch| {
            bch.iter(|| {
                run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap()
            })
        });
        group.bench_function(format!("{}/forward_x2", b.name), |bch| {
            let opts = WavePipeOptions::new(Scheme::Forward, 2);
            bch.iter(|| run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
