//! Zero-overhead-when-disabled instrumentation for WavePipe.
//!
//! The simulation layers (`wavepipe-engine`, `wavepipe-core`) emit typed
//! [`EventKind`]s through a [`ProbeHandle`] carried on their options structs.
//! With no probe attached (the default) an emit is a single branch; with a
//! [`RecordingProbe`] attached every event is stamped with a per-run
//! nanosecond timestamp, the pipelined round id, and the logical solver
//! lane, and can then be consumed three ways:
//!
//! * [`jsonl`] — one JSON object per event, for machine analysis;
//! * [`chrome`] — Chrome trace-event JSON (`chrome://tracing` / Perfetto)
//!   rendering rounds and point-solves as per-lane duration spans, making
//!   pipelining overlap visible;
//! * [`TelemetrySummary`] — in-process histograms (Newton iterations per
//!   solve, step-size distribution, round critical-path breakdown) that
//!   `WavePipeReport` embeds.
//!
//! Telemetry never feeds back into the simulation: probes only observe, so
//! a recorded run is bit-identical to an unrecorded one.
//!
//! # Example
//!
//! ```
//! use wavepipe_telemetry::{EventKind, ProbeHandle, RecordingProbe};
//!
//! let probe = RecordingProbe::shared();
//! let handle = ProbeHandle::new(probe.clone());
//! handle.emit(0.0, EventKind::RoundStart { width: 2 });
//! handle.with_lane(1).emit(1e-9, EventKind::SolveStart { h: 1e-9 });
//! handle.with_lane(1).emit(1e-9, EventKind::SolveEnd { iterations: 3, converged: true });
//! handle.emit(0.0, EventKind::RoundEnd { committed: 1 });
//!
//! let events = probe.events();
//! assert_eq!(events.len(), 4);
//! let jsonl = events.iter().map(wavepipe_telemetry::jsonl::event_to_json)
//!     .collect::<Vec<_>>().join("\n");
//! assert!(jsonl.contains("\"kind\":\"solve_end\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod chrome;
mod event;
mod histogram;
pub mod json;
pub mod jsonl;
pub mod metrics;
mod probe;
mod summary;

pub use analyze::{analyze, TraceAnalysis};
pub use event::{DiscardReason, Event, EventKind};
pub use histogram::Histogram;
pub use metrics::{
    Counter, Family, Gauge, LabeledValue, MetricsHandle, MetricsRegistry, Series, Snapshot,
};
pub use probe::{NullProbe, Probe, ProbeHandle, RecordingProbe};
pub use summary::TelemetrySummary;
