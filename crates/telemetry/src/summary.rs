//! Aggregation of a recorded event stream into run-level statistics.

use crate::event::{Event, EventKind};
use crate::histogram::Histogram;
use std::collections::HashMap;
use std::fmt;

/// In-process roll-up of a telemetry stream: histograms plus the counters a
/// report wants to print. Built by [`TelemetrySummary::from_events`] or via
/// `Probe::summary` on a recording probe.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Events summarised.
    pub events: usize,
    /// Highest round id seen.
    pub rounds: u64,
    /// Newton iterations per point-solve (from `SolveEnd`).
    pub newton_iters: Histogram,
    /// Integration strides of accepted points, seconds.
    pub step_sizes: Histogram,
    /// Wall duration of each round, nanoseconds.
    pub round_wall_ns: Histogram,
    /// Per-lane sum of point-solve wall time, nanoseconds (index = lane).
    pub lane_busy_ns: Vec<u64>,
    /// Sum over rounds of the *longest* concurrent solve — the solve part of
    /// the critical path.
    pub critical_solve_ns: u64,
    /// Sum over rounds of *all* concurrent solves — the machine work.
    pub total_solve_ns: u64,
    /// Accepted points.
    pub points_accepted: u64,
    /// LTE rejections.
    pub lte_rejects: u64,
    /// Numeric factorization passes of any kind.
    pub factorizations: u64,
    /// Frozen-pivot refactorizations (a subset of `factorizations`).
    pub refactorizations: u64,
    /// Chord/modified-Newton iterations that reused the previous LU factors.
    pub jacobian_reuses: u64,
    /// Nonlinear device evaluations skipped by the SPICE3-style bypass
    /// (summed over `BypassedDevices` events).
    pub bypassed_devices: u64,
    /// Linear-stamp assemblies replayed from the step-size-keyed companion
    /// cache.
    pub companion_hits: u64,
    /// Backward leads committed.
    pub lead_accepted: u64,
    /// Backward leads discarded.
    pub lead_discarded: u64,
    /// Forward speculations committed.
    pub speculation_accepted: u64,
    /// Forward speculations discarded.
    pub speculation_discarded: u64,
    /// Discard reasons across leads and speculations, descending by count.
    pub discard_reasons: Vec<(String, u64)>,
    /// Stamp color groups accumulated by the parallel stamp path.
    pub stamp_color_groups: u64,
    /// Wall time inside stamp-color spans, nanoseconds (all lanes summed).
    pub stamp_span_ns: u64,
    /// Worker threads (pool lanes or stamp workers) lost to panics.
    pub workers_lost: u64,
    /// Serial-fallback transitions taken by parallel components.
    pub serial_fallbacks: u64,
    /// Wall-clock budget expirations observed.
    pub deadline_hits: u64,
    /// Convergence recovery ladders engaged.
    pub recovery_attempts: u64,
    /// Recovery rungs that produced a converged point.
    pub recovery_rescues: u64,
    /// Solver-cache invalidations forced by the recovery ladder.
    pub cache_rollbacks: u64,
    /// Linear solves that went through the Krylov (GMRES) path.
    pub krylov_solves: u64,
    /// GMRES iterations summed over those solves.
    pub krylov_iterations: u64,
    /// Preconditioner (re)builds on the Krylov path.
    pub precond_refreshes: u64,
    /// Krylov solves completed by the direct-LU fallback.
    pub solver_fallbacks: u64,
}

impl TelemetrySummary {
    /// Builds the summary from an event stream (in record order).
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = TelemetrySummary {
            events: events.len(),
            rounds: 0,
            newton_iters: Histogram::integer(20),
            step_sizes: Histogram::log10(-15, 0, 2),
            round_wall_ns: Histogram::log10(2, 10, 2),
            lane_busy_ns: Vec::new(),
            critical_solve_ns: 0,
            total_solve_ns: 0,
            points_accepted: 0,
            lte_rejects: 0,
            factorizations: 0,
            refactorizations: 0,
            jacobian_reuses: 0,
            bypassed_devices: 0,
            companion_hits: 0,
            lead_accepted: 0,
            lead_discarded: 0,
            speculation_accepted: 0,
            speculation_discarded: 0,
            discard_reasons: Vec::new(),
            stamp_color_groups: 0,
            stamp_span_ns: 0,
            workers_lost: 0,
            serial_fallbacks: 0,
            deadline_hits: 0,
            recovery_attempts: 0,
            recovery_rescues: 0,
            cache_rollbacks: 0,
            krylov_solves: 0,
            krylov_iterations: 0,
            precond_refreshes: 0,
            solver_fallbacks: 0,
        };
        // Open solve span per lane, open round start, per-round (max, sum).
        let mut open_solve: HashMap<u32, u64> = HashMap::new();
        let mut open_stamp: HashMap<u32, u64> = HashMap::new();
        let mut open_round: Option<u64> = None;
        let mut round_spans: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut reasons: HashMap<&'static str, u64> = HashMap::new();
        for ev in events {
            s.rounds = s.rounds.max(ev.round);
            match ev.kind {
                EventKind::RoundStart { .. } => open_round = Some(ev.ts_ns),
                EventKind::RoundEnd { .. } => {
                    if let Some(start) = open_round.take() {
                        s.round_wall_ns.observe(ev.ts_ns.saturating_sub(start) as f64);
                    }
                }
                EventKind::SolveStart { .. } => {
                    // Last start wins (unlike the Chrome exporter): a worker
                    // task's lane is stamped at dispatch and again at
                    // execution start, and busy-time accounting must not
                    // count the queue wait in between.
                    open_solve.insert(ev.lane, ev.ts_ns);
                }
                EventKind::SolveEnd { .. } => {
                    if let Some(start) = open_solve.remove(&ev.lane) {
                        let dur = ev.ts_ns.saturating_sub(start);
                        let lane = ev.lane as usize;
                        if s.lane_busy_ns.len() <= lane {
                            s.lane_busy_ns.resize(lane + 1, 0);
                        }
                        s.lane_busy_ns[lane] += dur;
                        let (mx, sum) = round_spans.entry(ev.round).or_insert((0, 0));
                        *mx = (*mx).max(dur);
                        *sum += dur;
                    }
                    if let EventKind::SolveEnd { iterations, .. } = ev.kind {
                        s.newton_iters.observe(iterations as f64);
                    }
                }
                EventKind::NewtonIter { .. } => {}
                EventKind::Factorization => s.factorizations += 1,
                EventKind::Refactorization => s.refactorizations += 1,
                EventKind::JacobianReuse => s.jacobian_reuses += 1,
                EventKind::BypassedDevices { devices } => {
                    s.bypassed_devices += u64::from(devices);
                }
                EventKind::CompanionHit => s.companion_hits += 1,
                EventKind::LteReject { .. } => s.lte_rejects += 1,
                EventKind::StepSizeChosen { .. } => {}
                EventKind::PointAccepted { h } => {
                    s.points_accepted += 1;
                    s.step_sizes.observe(h);
                }
                EventKind::LeadAccepted => s.lead_accepted += 1,
                EventKind::LeadDiscarded { reason } => {
                    s.lead_discarded += 1;
                    *reasons.entry(reason.name()).or_insert(0) += 1;
                }
                EventKind::SpeculationAccepted => s.speculation_accepted += 1,
                EventKind::SpeculationDiscarded { reason } => {
                    s.speculation_discarded += 1;
                    *reasons.entry(reason.name()).or_insert(0) += 1;
                }
                EventKind::AdaptiveChoice { .. } => {}
                EventKind::StampColorStart { .. } => {
                    open_stamp.insert(ev.lane, ev.ts_ns);
                }
                EventKind::StampColorEnd { .. } => {
                    s.stamp_color_groups += 1;
                    if let Some(start) = open_stamp.remove(&ev.lane) {
                        s.stamp_span_ns += ev.ts_ns.saturating_sub(start);
                    }
                }
                EventKind::WorkerLost { .. } => s.workers_lost += 1,
                EventKind::FallbackSerial => s.serial_fallbacks += 1,
                EventKind::DeadlineHit => s.deadline_hits += 1,
                EventKind::RecoveryAttempt { .. } => s.recovery_attempts += 1,
                EventKind::RecoveryRung { success, .. } => {
                    if success {
                        s.recovery_rescues += 1;
                    }
                }
                EventKind::CachePoisonRollback => s.cache_rollbacks += 1,
                EventKind::KrylovSolve { iterations, precond_refreshes, fallback, .. } => {
                    s.krylov_solves += 1;
                    s.krylov_iterations += u64::from(iterations);
                    s.precond_refreshes += u64::from(precond_refreshes);
                    if fallback {
                        s.solver_fallbacks += 1;
                    }
                }
            }
        }
        for (mx, sum) in round_spans.values() {
            s.critical_solve_ns += mx;
            s.total_solve_ns += sum;
        }
        let mut reasons: Vec<(String, u64)> =
            reasons.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        reasons.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        s.discard_reasons = reasons;
        s
    }

    /// Achieved solve concurrency: machine solve time over critical-path
    /// solve time (1.0 = no overlap, `p` = perfect `p`-wide pipelining).
    pub fn solve_overlap(&self) -> f64 {
        if self.critical_solve_ns == 0 {
            return 1.0;
        }
        self.total_solve_ns as f64 / self.critical_solve_ns as f64
    }

    /// Number of lanes that did any solve work.
    pub fn active_lanes(&self) -> usize {
        self.lane_busy_ns.iter().filter(|&&ns| ns > 0).count()
    }
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "telemetry: {} events, {} rounds, {} lanes active, solve overlap {:.2}x",
            self.events,
            self.rounds,
            self.active_lanes(),
            self.solve_overlap()
        )?;
        writeln!(
            f,
            "  points {} accepted / {} lte-rejected; factor {} / refactor {}",
            self.points_accepted, self.lte_rejects, self.factorizations, self.refactorizations
        )?;
        if self.jacobian_reuses > 0 || self.bypassed_devices > 0 || self.companion_hits > 0 {
            writeln!(
                f,
                "  solver caches: {} jacobian reuses, {} bypassed device evals, {} companion hits",
                self.jacobian_reuses, self.bypassed_devices, self.companion_hits
            )?;
        }
        writeln!(
            f,
            "  leads {}+/{}-; speculation {}+/{}-",
            self.lead_accepted,
            self.lead_discarded,
            self.speculation_accepted,
            self.speculation_discarded
        )?;
        if self.stamp_color_groups > 0 {
            writeln!(
                f,
                "  stamp colors: {} groups, {:.3} ms in spans",
                self.stamp_color_groups,
                self.stamp_span_ns as f64 / 1e6
            )?;
        }
        if self.workers_lost > 0 || self.serial_fallbacks > 0 || self.deadline_hits > 0 {
            writeln!(
                f,
                "  faults: {} workers lost, {} serial fallbacks, {} deadline hits",
                self.workers_lost, self.serial_fallbacks, self.deadline_hits
            )?;
        }
        if self.krylov_solves > 0 {
            writeln!(
                f,
                "  krylov: {} solves, {} iterations, {} precond refreshes, {} fallbacks",
                self.krylov_solves,
                self.krylov_iterations,
                self.precond_refreshes,
                self.solver_fallbacks
            )?;
        }
        if self.recovery_attempts > 0 || self.cache_rollbacks > 0 {
            writeln!(
                f,
                "  recovery: {} ladders engaged, {} points rescued, {} cache rollbacks",
                self.recovery_attempts, self.recovery_rescues, self.cache_rollbacks
            )?;
        }
        if !self.discard_reasons.is_empty() {
            write!(f, "  discards:")?;
            for (name, n) in &self.discard_reasons {
                write!(f, " {name}={n}")?;
            }
            writeln!(f)?;
        }
        for (lane, ns) in self.lane_busy_ns.iter().enumerate() {
            writeln!(f, "  lane {lane}: busy {:.3} ms", *ns as f64 / 1e6)?;
        }
        writeln!(f, "  newton iterations / solve:")?;
        write!(f, "{}", self.newton_iters)?;
        writeln!(f, "  accepted step sizes (s):")?;
        write!(f, "{}", self.step_sizes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DiscardReason;

    fn ev(ts_ns: u64, round: u64, lane: u32, kind: EventKind) -> Event {
        Event { ts_ns, round, lane, t_sim: 0.0, kind }
    }

    #[test]
    fn spans_and_counters_aggregate() {
        let events = vec![
            ev(0, 1, 0, EventKind::RoundStart { width: 2 }),
            ev(10, 1, 0, EventKind::SolveStart { h: 1e-9 }),
            ev(12, 1, 1, EventKind::SolveStart { h: 2e-9 }),
            ev(50, 1, 0, EventKind::SolveEnd { iterations: 3, converged: true }),
            ev(80, 1, 1, EventKind::SolveEnd { iterations: 5, converged: true }),
            ev(90, 1, 0, EventKind::PointAccepted { h: 1e-9 }),
            ev(95, 1, 0, EventKind::LeadDiscarded { reason: DiscardReason::LteRejected }),
            ev(100, 1, 0, EventKind::RoundEnd { committed: 1 }),
        ];
        let s = TelemetrySummary::from_events(&events);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.points_accepted, 1);
        assert_eq!(s.lead_discarded, 1);
        assert_eq!(s.discard_reasons, vec![("lte_rejected".to_string(), 1)]);
        assert_eq!(s.lane_busy_ns, vec![40, 68]);
        assert_eq!(s.critical_solve_ns, 68);
        assert_eq!(s.total_solve_ns, 108);
        assert!((s.solve_overlap() - 108.0 / 68.0).abs() < 1e-12);
        assert_eq!(s.active_lanes(), 2);
        assert_eq!(s.newton_iters.count(), 2);
        assert_eq!(s.round_wall_ns.count(), 1);
        let text = s.to_string();
        assert!(text.contains("2 lanes active"));
        assert!(text.contains("lte_rejected=1"));
    }

    #[test]
    fn stamp_color_spans_aggregate() {
        let events = vec![
            ev(10, 1, 0, EventKind::StampColorStart { color: 0 }),
            ev(25, 1, 0, EventKind::StampColorEnd { color: 0, devices: 8 }),
            ev(25, 1, 0, EventKind::StampColorStart { color: 1 }),
            ev(30, 1, 0, EventKind::StampColorEnd { color: 1, devices: 2 }),
        ];
        let s = TelemetrySummary::from_events(&events);
        assert_eq!(s.stamp_color_groups, 2);
        assert_eq!(s.stamp_span_ns, 20);
        assert!(s.to_string().contains("stamp colors: 2 groups"));
    }

    #[test]
    fn fault_events_aggregate_and_print() {
        let events = vec![
            ev(5, 1, 2, EventKind::WorkerLost { lane: 2 }),
            ev(6, 1, 0, EventKind::FallbackSerial),
            ev(7, 1, 0, EventKind::DeadlineHit),
            ev(8, 2, 1, EventKind::WorkerLost { lane: 1 }),
        ];
        let s = TelemetrySummary::from_events(&events);
        assert_eq!(s.workers_lost, 2);
        assert_eq!(s.serial_fallbacks, 1);
        assert_eq!(s.deadline_hits, 1);
        assert!(s.to_string().contains("2 workers lost"));
        // A fault-free stream prints no fault line.
        let clean = TelemetrySummary::from_events(&[]);
        assert!(!clean.to_string().contains("workers lost"));
    }

    #[test]
    fn solver_cache_events_aggregate_and_print() {
        let events = vec![
            ev(1, 1, 0, EventKind::JacobianReuse),
            ev(2, 1, 0, EventKind::BypassedDevices { devices: 7 }),
            ev(3, 1, 0, EventKind::BypassedDevices { devices: 2 }),
            ev(4, 1, 0, EventKind::CompanionHit),
        ];
        let s = TelemetrySummary::from_events(&events);
        assert_eq!(s.jacobian_reuses, 1);
        assert_eq!(s.bypassed_devices, 9);
        assert_eq!(s.companion_hits, 1);
        assert!(s.to_string().contains("9 bypassed device evals"));
        // A cache-free stream prints no solver-cache line.
        let clean = TelemetrySummary::from_events(&[]);
        assert!(!clean.to_string().contains("solver caches"));
    }

    #[test]
    fn recovery_events_aggregate_and_print() {
        let events = vec![
            ev(5, 1, 0, EventKind::RecoveryAttempt { h: 1e-15 }),
            ev(6, 1, 0, EventKind::CachePoisonRollback),
            ev(7, 1, 0, EventKind::RecoveryRung { rung: 1, success: false }),
            ev(8, 1, 0, EventKind::RecoveryRung { rung: 2, success: true }),
        ];
        let s = TelemetrySummary::from_events(&events);
        assert_eq!(s.recovery_attempts, 1);
        assert_eq!(s.recovery_rescues, 1);
        assert_eq!(s.cache_rollbacks, 1);
        assert!(s.to_string().contains("1 ladders engaged"));
        // A recovery-free stream prints no recovery line.
        let clean = TelemetrySummary::from_events(&[]);
        assert!(!clean.to_string().contains("recovery:"));
    }

    #[test]
    fn krylov_events_aggregate_and_print() {
        let events = vec![
            ev(
                1,
                1,
                0,
                EventKind::KrylovSolve {
                    iterations: 12,
                    restarts: 1,
                    precond_refreshes: 1,
                    fallback: false,
                },
            ),
            ev(
                2,
                1,
                0,
                EventKind::KrylovSolve {
                    iterations: 30,
                    restarts: 3,
                    precond_refreshes: 0,
                    fallback: true,
                },
            ),
        ];
        let s = TelemetrySummary::from_events(&events);
        assert_eq!(s.krylov_solves, 2);
        assert_eq!(s.krylov_iterations, 42);
        assert_eq!(s.precond_refreshes, 1);
        assert_eq!(s.solver_fallbacks, 1);
        assert!(s.to_string().contains("krylov: 2 solves, 42 iterations"));
        // A direct-solver stream prints no krylov line.
        let clean = TelemetrySummary::from_events(&[]);
        assert!(!clean.to_string().contains("krylov:"));
    }

    #[test]
    fn empty_stream_summarises_to_zeroes() {
        let s = TelemetrySummary::from_events(&[]);
        assert_eq!(s.events, 0);
        assert_eq!(s.rounds, 0);
        assert_eq!(s.solve_overlap(), 1.0);
        assert_eq!(s.active_lanes(), 0);
    }
}
