//! Solver-caching layers end to end: device bypass, chord Newton with LU
//! reuse, and companion caching must speed the hot path up *without* moving
//! the waveform beyond LTE-scale noise, and must compose with the fault
//! ladder — a panic inside a bypassed-then-revalidated device still degrades
//! to serial stamping bit-identically.

use wavepipe::circuit::generators;
use wavepipe::engine::{run_transient, FaultPlan, SimOptions, SolverHandle, TransientResult};

/// Knobs pinned explicitly: the CI caches-off leg flips the env defaults,
/// and these tests must assert the same thing on every leg. The empty fault
/// plan overrides `WAVEPIPE_FAULT_SEED`, keeping counter and bit-identity
/// assertions deterministic on the chaos leg too. The solver is pinned to
/// direct LU for the same reason (the `WAVEPIPE_SOLVER=gmres` leg would
/// otherwise widen the off-vs-on grid drift this suite bounds); iterative
/// -vs-direct agreement has its own suite, `tests/solver_equivalence.rs`.
fn caches_off() -> SimOptions {
    SimOptions::default()
        .with_bypass(false)
        .with_chord_newton(false)
        .with_companion_cache(false)
        .with_stamp_workers(0)
        .with_faults(FaultPlan::new())
        .with_solver(SolverHandle::direct())
}

fn caches_on() -> SimOptions {
    SimOptions::default()
        .with_bypass(true)
        .with_chord_newton(true)
        .with_companion_cache(true)
        .with_stamp_workers(0)
        .with_faults(FaultPlan::new())
        .with_solver(SolverHandle::direct())
}

#[test]
fn cached_waveform_stays_within_lte_scale_of_uncached() {
    // Chord Newton converges linearly, so its final iterate carries an error
    // bounded by the convergence tolerance rather than plain Newton's
    // quadratically tiny one; bypass freezes device linearizations inside a
    // voltage tolerance. Both effects must stay below the truncation-error
    // scale the step controller already accepts.
    for b in [generators::inverter_chain(8), generators::diode_rectifier()] {
        let base = run_transient(&b.circuit, b.tstep, b.tstop, &caches_off())
            .unwrap_or_else(|e| panic!("{} uncached: {e}", b.name));
        let fast = run_transient(&b.circuit, b.tstep, b.tstop, &caches_on())
            .unwrap_or_else(|e| panic!("{} cached: {e}", b.name));
        for probe in &b.probes {
            let u = base.unknown_of(probe).unwrap_or_else(|| panic!("probe {probe}"));
            let dev = base.max_deviation(&fast, u);
            // Relative to the probe's swing: sampling across two differently
            // accepted grids turns tiny edge-timing shifts into millivolts on
            // a rail-to-rail node, so the bound scales with the signal.
            let tol = 5e-3 * base.peak(u).max(1.0);
            assert!(
                dev < tol,
                "{} probe {probe}: deviation {dev:e} above LTE scale {tol:e}",
                b.name
            );
        }
    }
}

#[test]
fn chord_newton_halves_factorizations_and_bypass_fires() {
    // The acceptance criterion of the caching work: on an inverter chain the
    // chord path must cut full factorization passes by at least 2x, and the
    // bypass must find quiescent MOSFETs to skip.
    let b = generators::inverter_chain(20);
    let cold = run_transient(&b.circuit, b.tstep, b.tstop, &caches_off()).unwrap();
    let warm = run_transient(&b.circuit, b.tstep, b.tstop, &caches_on()).unwrap();
    let (sc, sw) = (cold.stats(), warm.stats());
    assert_eq!(sc.jacobian_reuses, 0, "chord disabled must never reuse");
    assert_eq!(sc.bypass_hits, 0, "bypass disabled must never skip");
    assert!(sw.jacobian_reuses > 0, "chord enabled never reused a factorization");
    assert!(sw.bypass_hits > 0, "bypass enabled never skipped a device");
    assert!(sw.companion_hits > 0, "companion cache never hit on a repeated step size");
    assert!(
        sw.factorizations * 2 <= sc.factorizations,
        "factorizations only dropped from {} to {}",
        sc.factorizations,
        sw.factorizations
    );
    // Cheaper in the abstract cost model too, not just by one counter.
    assert!(sw.work_units() < sc.work_units(), "{} !< {}", sw.work_units(), sc.work_units());
}

#[test]
fn counters_are_dark_when_knobs_are_off() {
    let b = generators::diode_rectifier();
    let res = run_transient(&b.circuit, b.tstep, b.tstop, &caches_off()).unwrap();
    let s = res.stats();
    assert_eq!(s.bypass_hits, 0);
    assert_eq!(s.jacobian_reuses, 0);
    assert_eq!(s.companion_hits, 0);
}

fn assert_bit_identical(a: &TransientResult, b: &TransientResult, what: &str) {
    assert_eq!(a.times(), b.times(), "{what}: time grids differ");
    for k in 0..a.len() {
        assert_eq!(a.solution(k), b.solution(k), "{what}: solutions differ at point {k}");
    }
}

#[test]
fn stamp_worker_panic_with_bypass_active_still_degrades_identically() {
    // PR3 ladder under the caching layers: a worker panic mid-run (after the
    // caches have warmed up and devices have been bypassed and revalidated)
    // breaks the executor permanently and all later stamps run serially. The
    // bypass mask is computed on the master and device caches live in the
    // workspace, so the degraded run must stay bit-identical to a serial run
    // with the same knobs — on a MOSFET circuit where bypass actually fires.
    let b = generators::inverter_chain(6);
    let serial = run_transient(&b.circuit, b.tstep, b.tstop, &caches_on()).unwrap();
    let faulted = run_transient(
        &b.circuit,
        b.tstep,
        b.tstop,
        &caches_on().with_stamp_workers(2).with_faults(FaultPlan::new().with_stamp_panic(0, 5)),
    )
    .unwrap();
    assert!(serial.stats().bypass_hits > 0, "test premise: bypass must fire on this circuit");
    assert_bit_identical(&serial, &faulted, "degraded cached stamping vs serial cached");
}
