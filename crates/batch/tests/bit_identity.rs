//! Property-based bit-identity: every instance of a [`BatchSim`] run must be
//! **bitwise identical** — same time grid, same solution vectors, down to the
//! last ulp — to running the classic single-run API on the same patched
//! circuit, with every determinism-sensitive cache enabled, at one worker
//! and at four.
//!
//! This is the batched engine's version of the repo-wide invariant that
//! every parallel or cached path is pinned bit-identical to the serial
//! engine: sharing the compiled pattern, slot table, stamp plan, and
//! symbolic ordering across instances must not perturb a single bit of any
//! instance's waveform.

use proptest::prelude::*;
use wavepipe_batch::{BatchSim, ParamKind};
use wavepipe_circuit::{Circuit, Element, MosModel, Waveform};
use wavepipe_engine::{run_transient, SimOptions, SolverHandle};

const VDD: f64 = 3.3;
const TSTEP: f64 = 0.02e-9;
const TSTOP: f64 = 2e-9;

/// Two-stage CMOS inverter chain with load caps — small enough to fuzz,
/// nonlinear enough to exercise Newton, the chord cache, bypass, and the
/// companion cache.
fn inverter2() -> Circuit {
    let mut ckt = Circuit::new("prop inverter x2");
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(VDD)).expect("vdd");
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, VDD, 0.1e-9, 0.05e-9, 0.05e-9, 0.8e-9, 1.8e-9),
    )
    .expect("vin");
    let mut prev = inp;
    for i in 0..2 {
        let out = ckt.node(&format!("s{i}"));
        let nmos = MosModel { kp: 1e-4, w: 20e-6, l: 1e-6, ..MosModel::nmos() };
        let pmos = MosModel { kp: 5e-5, w: 40e-6, l: 1e-6, ..MosModel::pmos() };
        ckt.add_mosfet(&format!("Mp{i}"), out, prev, vdd, pmos).expect("pmos");
        ckt.add_mosfet(&format!("Mn{i}"), out, prev, Circuit::GROUND, nmos).expect("nmos");
        ckt.add_capacitor(&format!("Cl{i}"), out, Circuit::GROUND, 20e-15).expect("load");
        prev = out;
    }
    ckt
}

/// One fuzzed corner: per-stage device parameters for the chain.
#[derive(Debug, Clone)]
struct Corner {
    kp_n: f64,
    vt0_p: f64,
    cl: f64,
}

fn corner() -> impl Strategy<Value = Corner> {
    (0.7e-4..1.3e-4f64, 0.5..0.9f64, 10e-15..40e-15f64).prop_map(|(kp_n, vt0_mag, cl)| Corner {
        kp_n,
        vt0_p: -vt0_mag,
        cl,
    })
}

/// Every determinism-sensitive cache pinned ON, independent of the
/// `WAVEPIPE_*` environment overrides a CI leg may set. The solver is
/// pinned to direct LU: the batch engine always solves through the shared
/// batched direct backend, so the single-run reference must not drift onto
/// the iterative path under `WAVEPIPE_SOLVER=gmres`.
fn pinned_opts() -> SimOptions {
    SimOptions::default()
        .with_bypass(true)
        .with_chord_newton(true)
        .with_companion_cache(true)
        .with_stamp_workers(0)
        .with_solver(SolverHandle::direct())
}

/// Classic single-run reference: patch the circuit by hand, recompile from
/// scratch, solve with the default (unshared) direct solver.
fn reference(corner: &Corner) -> wavepipe_engine::TransientResult {
    let mut ckt = inverter2();
    if let Some(Element::Mosfet { model, .. }) = ckt.element_mut("Mn0") {
        model.kp = corner.kp_n;
    }
    if let Some(Element::Mosfet { model, .. }) = ckt.element_mut("Mp1") {
        model.vt0 = corner.vt0_p;
    }
    if let Some(Element::Capacitor { capacitance, .. }) = ckt.element_mut("Cl1") {
        *capacitance = corner.cl;
    }
    run_transient(&ckt, TSTEP, TSTOP, &pinned_opts()).expect("reference run")
}

fn batch_sim(corners: &[Corner], threads: usize) -> BatchSim {
    let mut batch = BatchSim::compile(&inverter2(), TSTEP, TSTOP)
        .expect("compile")
        .with_threads(threads)
        .with_sim(pinned_opts());
    batch.param("Mn0", ParamKind::MosKp).expect("kp column");
    batch.param("Mp1", ParamKind::MosVt0).expect("vt0 column");
    batch.param("Cl1", ParamKind::Capacitance).expect("cl column");
    for c in corners {
        batch.add_instance(&[c.kp_n, c.vt0_p, c.cl]).expect("instance");
    }
    batch
}

fn batch_for(corners: &[Corner], threads: usize) -> Vec<wavepipe_engine::TransientResult> {
    batch_sim(corners, threads).run().expect("batch run").into_results()
}

fn assert_bitwise_equal(
    got: &wavepipe_engine::TransientResult,
    want: &wavepipe_engine::TransientResult,
    what: &str,
) {
    assert_eq!(got.times(), want.times(), "{what}: time grids diverged");
    for k in 0..want.len() {
        let g = got.solution(k);
        let w = want.solution(k);
        assert_eq!(g, w, "{what}: solution vectors diverged at point {k}");
        for (a, b) in g.iter().zip(w) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: ulp-level divergence at point {k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batched_instances_are_bitwise_identical_to_single_runs(
        corners in proptest::collection::vec(corner(), 2..4)
    ) {
        let refs: Vec<_> = corners.iter().map(reference).collect();
        for workers in [1usize, 4] {
            let got = batch_for(&corners, workers);
            prop_assert_eq!(got.len(), refs.len());
            for (i, (g, w)) in got.iter().zip(&refs).enumerate() {
                assert_bitwise_equal(g, w, &format!("workers={workers} instance={i}"));
            }
        }
    }

    /// The SIMD tier at every supported lane width stays bit-identical to
    /// the classic single runs — with the chord, bypass, and companion
    /// caches all live. Width 1 exercises the lane-tier control flow with
    /// no actual packing; width 4 packs a full group. (On the forced-scalar
    /// `WAVEPIPE_SIMD=0` CI leg every width degenerates to the classic
    /// path, which trivially satisfies the property.)
    #[test]
    fn simd_lane_widths_are_bitwise_identical(
        corners in proptest::collection::vec(corner(), 3..5)
    ) {
        let refs: Vec<_> = corners.iter().map(reference).collect();
        for lane_width in [1usize, 2, 4] {
            let got = batch_sim(&corners, 1)
                .with_simd(true)
                .with_lane_width(lane_width)
                .run()
                .expect("batch run")
                .into_results();
            prop_assert_eq!(got.len(), refs.len());
            for (i, (g, w)) in got.iter().zip(&refs).enumerate() {
                assert_bitwise_equal(g, w, &format!("lane_width={lane_width} instance={i}"));
            }
        }
    }
}

/// A poisoned instance in the middle of a lane group must be ejected and
/// quarantined through the classic path while its lane-mates' waveforms
/// stay bit-identical — lane compaction must not perturb survivors.
#[test]
fn quarantined_instance_mid_group_keeps_survivors_bit_identical() {
    let corners = vec![
        Corner { kp_n: 1e-4, vt0_p: -0.7, cl: 20e-15 },
        Corner { kp_n: 1.1e-4, vt0_p: -0.65, cl: 25e-15 },
        Corner { kp_n: 0.9e-4, vt0_p: -0.75, cl: f64::NAN }, // poisoned
        Corner { kp_n: 1.2e-4, vt0_p: -0.6, cl: 30e-15 },
    ];
    let refs: Vec<_> =
        corners.iter().enumerate().filter(|(i, _)| *i != 2).map(|(_, c)| reference(c)).collect();
    for lane_width in [2usize, 4] {
        let out = batch_sim(&corners, 1)
            .with_simd(true)
            .with_lane_width(lane_width)
            .run_outcome()
            .expect("batch dispatch");
        let qidx: Vec<usize> = out.quarantined().iter().map(|q| q.index).collect();
        assert_eq!(qidx, vec![2], "lane_width={lane_width}: only the poisoned instance fails");
        let survivors: Vec<_> = out.completed().map(|(i, r)| (i, r.clone())).collect();
        assert_eq!(survivors.len(), 3);
        for ((i, got), want) in survivors.iter().zip(&refs) {
            assert_bitwise_equal(got, want, &format!("lane_width={lane_width} survivor={i}"));
        }
    }
}

/// The non-fuzzed smoke version of the same property, so a plain
/// `cargo test` failure names the invariant directly.
#[test]
fn nominal_corner_is_bitwise_identical() {
    let corners = vec![
        Corner { kp_n: 1e-4, vt0_p: -0.7, cl: 20e-15 },
        Corner { kp_n: 1.2e-4, vt0_p: -0.6, cl: 30e-15 },
    ];
    let refs: Vec<_> = corners.iter().map(reference).collect();
    for workers in [1usize, 4] {
        let got = batch_for(&corners, workers);
        for (g, w) in got.iter().zip(&refs) {
            assert_bitwise_equal(g, w, &format!("workers={workers}"));
        }
    }
}
