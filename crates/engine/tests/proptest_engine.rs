//! Property-based tests of the transient engine: step-control invariants,
//! analytic agreement on randomized linear circuits, and method consistency.

use proptest::prelude::*;
use wavepipe_circuit::{Circuit, Waveform};
use wavepipe_engine::{run_transient, Method, SimOptions};

/// A randomized single-pole RC circuit with its analytic time constant.
#[derive(Debug, Clone)]
struct RcCase {
    r: f64,
    c: f64,
    v: f64,
}

fn rc_case() -> impl Strategy<Value = RcCase> {
    (10.0f64..100e3, 1e-12f64..1e-8, 0.5f64..10.0).prop_map(|(r, c, v)| RcCase { r, c, v })
}

fn build_rc(case: &RcCase) -> Circuit {
    let mut ckt = Circuit::new("prop rc");
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::pulse(0.0, case.v, 0.0, 1e-15, 1e-15, 1e3, 0.0),
    )
    .expect("vsource");
    ckt.add_resistor("R1", a, b, case.r).expect("resistor");
    ckt.add_capacitor("C1", b, Circuit::GROUND, case.c).expect("capacitor");
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rc_step_matches_analytic_for_any_parameters(case in rc_case()) {
        let ckt = build_rc(&case);
        let tau = case.r * case.c;
        let tstop = 5.0 * tau;
        let res = run_transient(&ckt, tau / 50.0, tstop, &SimOptions::default()).expect("run");
        let b = res.unknown_of("b").expect("node");
        // Compare at a handful of fractions of tau.
        for frac in [0.5, 1.0, 2.0, 4.0] {
            let t = frac * tau;
            let exact = case.v * (1.0 - (-t / tau).exp());
            let got = res.sample(b, t);
            prop_assert!(
                (got - exact).abs() < 0.01 * case.v,
                "tau={tau:e} t={t:e}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn accepted_times_strictly_increase_and_stay_in_range(case in rc_case()) {
        let ckt = build_rc(&case);
        let tau = case.r * case.c;
        let tstop = 3.0 * tau;
        let opts = SimOptions::default();
        let res = run_transient(&ckt, tau / 20.0, tstop, &opts).expect("run");
        let times = res.times();
        prop_assert_eq!(times[0], 0.0);
        for w in times.windows(2) {
            prop_assert!(w[1] > w[0]);
            let h = w[1] - w[0];
            prop_assert!(h <= opts.hmax(tstop) * 1.0001, "step {h:e} over hmax");
        }
        let last = *times.last().expect("non-empty");
        prop_assert!((last - tstop).abs() <= 1e-6 * tstop);
    }

    #[test]
    fn all_methods_agree_on_random_rc(case in rc_case()) {
        let ckt = build_rc(&case);
        let tau = case.r * case.c;
        let mut finals = Vec::new();
        for m in [Method::BackwardEuler, Method::Trapezoidal, Method::Gear2] {
            let res = run_transient(&ckt, tau / 50.0, 3.0 * tau, &SimOptions::default().with_method(m))
                .expect("run");
            let b = res.unknown_of("b").expect("node");
            finals.push(res.sample(b, 3.0 * tau));
        }
        for f in &finals[1..] {
            prop_assert!((f - finals[0]).abs() < 0.02 * case.v, "{finals:?}");
        }
    }

    #[test]
    fn tighter_tolerance_takes_more_steps(case in rc_case()) {
        let ckt = build_rc(&case);
        let tau = case.r * case.c;
        let loose = SimOptions { reltol: 1e-2, ..SimOptions::default() };
        let tight = SimOptions { reltol: 1e-5, lte_abstol: 1e-9, ..SimOptions::default() };
        let rl = run_transient(&ckt, tau / 20.0, 3.0 * tau, &loose).expect("loose");
        let rt = run_transient(&ckt, tau / 20.0, 3.0 * tau, &tight).expect("tight");
        prop_assert!(
            rt.len() >= rl.len(),
            "tight {} pts vs loose {} pts",
            rt.len(),
            rl.len()
        );
    }

    #[test]
    fn divider_under_any_source_follows_instantaneously(
        r1 in 100.0f64..10e3,
        r2 in 100.0f64..10e3,
        freq in 1e5f64..1e7,
    ) {
        // A purely resistive divider must track the source with no dynamics.
        let mut ckt = Circuit::new("divider");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::sin(0.0, 1.0, freq)).expect("v");
        ckt.add_resistor("R1", a, b, r1).expect("r1");
        ckt.add_resistor("R2", b, Circuit::GROUND, r2).expect("r2");
        let tstop = 3.0 / freq;
        let res = run_transient(&ckt, tstop / 300.0, tstop, &SimOptions::default()).expect("run");
        let bi = res.unknown_of("b").expect("node");
        let gain = r2 / (r1 + r2);
        for &(t, v) in res.trace(bi).iter().step_by(7) {
            let exact = gain * (2.0 * std::f64::consts::PI * freq * t).sin();
            prop_assert!((v - exact).abs() < 2e-3, "t={t:e}: {v} vs {exact}");
        }
    }
}
