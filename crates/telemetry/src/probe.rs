//! The probe trait and its two standard implementations.

use crate::event::{Event, EventKind};
use crate::summary::TelemetrySummary;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An event sink. Implementations must be cheap and thread-safe: probes are
/// shared across all solver lanes and called from hot loops.
///
/// The probe — not the emitter — stamps the wall-clock timestamp and the
/// round id, so disabled runs pay nothing for either.
pub trait Probe: Send + Sync + fmt::Debug {
    /// Records one event emitted on `lane` at simulated time `t_sim`.
    fn record(&self, lane: u32, t_sim: f64, kind: EventKind);

    /// A summary of everything recorded so far, if this probe keeps one.
    fn summary(&self) -> Option<TelemetrySummary> {
        None
    }
}

/// A probe that drops everything. Exists so code can be written against a
/// probe unconditionally; [`ProbeHandle`] short-circuits before even calling
/// it, so the disabled path is a single `Option` check.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn record(&self, _lane: u32, _t_sim: f64, _kind: EventKind) {}
}

/// An in-memory recorder: every event is stamped with nanoseconds since the
/// probe's creation and the current round id, then pushed under a mutex.
///
/// The lock is held only for the push (the buffer is pre-grown), which keeps
/// contention negligible next to a sparse factorization.
#[derive(Debug)]
pub struct RecordingProbe {
    epoch: Instant,
    round: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl RecordingProbe {
    /// A fresh recorder whose epoch is *now*.
    pub fn new() -> Self {
        RecordingProbe {
            epoch: Instant::now(),
            round: AtomicU64::new(0),
            events: Mutex::new(Vec::with_capacity(4096)),
        }
    }

    /// Convenience: a new recorder already wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Snapshot of every event recorded so far, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("telemetry buffer poisoned").clone()
    }

    /// Drains the recorded events, leaving the probe empty (epoch and round
    /// counter are kept).
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("telemetry buffer poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("telemetry buffer poisoned").len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for RecordingProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl Probe for RecordingProbe {
    fn record(&self, lane: u32, t_sim: f64, kind: EventKind) {
        // Rounds are strictly sequential (the round executor joins all lanes
        // before returning), so a relaxed counter is race-free in practice:
        // every in-round event is recorded between its RoundStart and the
        // next one.
        let round = match kind {
            EventKind::RoundStart { .. } => self.round.fetch_add(1, Ordering::Relaxed) + 1,
            _ => self.round.load(Ordering::Relaxed),
        };
        let ev = Event {
            ts_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            round,
            lane,
            t_sim,
            kind,
        };
        self.events.lock().expect("telemetry buffer poisoned").push(ev);
    }

    fn summary(&self) -> Option<TelemetrySummary> {
        Some(TelemetrySummary::from_events(&self.events.lock().expect("telemetry buffer poisoned")))
    }
}

/// A cloneable, lane-tagged handle to an optional probe.
///
/// This is the type carried by `SimOptions`: `ProbeHandle::none()` (the
/// default) makes every emit a single branch; an attached probe receives
/// events tagged with this handle's lane. Cloning is an `Arc` bump.
#[derive(Clone, Default)]
pub struct ProbeHandle {
    probe: Option<Arc<dyn Probe>>,
    lane: u32,
}

impl ProbeHandle {
    /// The disabled handle (no probe attached).
    pub fn none() -> Self {
        ProbeHandle::default()
    }

    /// A handle delivering to `probe`, initially on lane 0.
    pub fn new(probe: Arc<dyn Probe>) -> Self {
        ProbeHandle { probe: Some(probe), lane: 0 }
    }

    /// The same probe, tagged with a different lane. Used when handing a
    /// solver to a worker thread.
    pub fn with_lane(&self, lane: u32) -> Self {
        ProbeHandle { probe: self.probe.clone(), lane }
    }

    /// This handle's lane tag.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Whether a probe is attached (i.e. emits are observable).
    pub fn enabled(&self) -> bool {
        self.probe.is_some()
    }

    /// Emits one event. With no probe attached this is a branch and nothing
    /// else — no timestamp, no allocation, no lock.
    #[inline]
    pub fn emit(&self, t_sim: f64, kind: EventKind) {
        if let Some(p) = &self.probe {
            p.record(self.lane, t_sim, kind);
        }
    }

    /// The attached probe's summary, if any.
    pub fn summary(&self) -> Option<TelemetrySummary> {
        self.probe.as_ref().and_then(|p| p.summary())
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeHandle")
            .field("enabled", &self.enabled())
            .field("lane", &self.lane)
            .finish()
    }
}

/// Handles compare equal when they point at the *same* probe (or both at
/// none) on the same lane — options equality stays meaningful without
/// requiring probes themselves to be comparable.
impl PartialEq for ProbeHandle {
    fn eq(&self, other: &Self) -> bool {
        self.lane == other.lane
            && match (&self.probe, &other.probe) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_emits_nothing_and_compares_equal() {
        let h = ProbeHandle::none();
        assert!(!h.enabled());
        h.emit(0.0, EventKind::Factorization); // must be a no-op
        assert_eq!(h, ProbeHandle::default());
        assert!(h.summary().is_none());
    }

    #[test]
    fn recording_probe_stamps_rounds_and_lanes() {
        let rec = RecordingProbe::shared();
        let h = ProbeHandle::new(rec.clone());
        h.emit(0.0, EventKind::Factorization); // pre-round
        h.emit(0.0, EventKind::RoundStart { width: 2 });
        h.with_lane(1).emit(1e-9, EventKind::NewtonIter { iteration: 1 });
        h.emit(0.0, EventKind::RoundEnd { committed: 1 });
        h.emit(0.0, EventKind::RoundStart { width: 1 });
        let evs = rec.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].round, 0);
        assert_eq!(evs[1].round, 1);
        assert_eq!(evs[2].round, 1);
        assert_eq!(evs[2].lane, 1);
        assert_eq!(evs[3].round, 1);
        assert_eq!(evs[4].round, 2);
        // Timestamps are monotone non-decreasing in record order.
        for w in evs.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn handle_equality_is_pointer_identity() {
        let a = RecordingProbe::shared();
        let b = RecordingProbe::shared();
        let ha = ProbeHandle::new(a.clone());
        assert_eq!(ha, ha.clone());
        assert_ne!(ha, ProbeHandle::new(b));
        assert_ne!(ha, ha.with_lane(3));
        assert_ne!(ha, ProbeHandle::none());
    }

    #[test]
    fn take_events_drains() {
        let rec = RecordingProbe::new();
        rec.record(0, 0.0, EventKind::Factorization);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.take_events().len(), 1);
        assert!(rec.is_empty());
    }
}
