//! Determinism pins for the `wavepipe-doctor` stable report: two identical
//! runs (same circuit, scheme, thread count) must render byte-identical
//! stable sections. The stable section is count-derived only — timestamps
//! never enter it — so any diff here means a scheduling decision leaked
//! into the simulation, which would also break the serial-equivalence
//! accuracy guarantee.

use wavepipe_bench::doctor::{circuit_by_spec, doctor_json, doctor_text, run_instrumented};
use wavepipe_core::Scheme;
use wavepipe_telemetry::analyze;

fn stable_doctor(spec: &str, scheme: Scheme, threads: usize) -> (String, String) {
    let b = circuit_by_spec(spec).expect("known spec");
    let run = run_instrumented(&b, scheme, threads);
    let analysis = analyze(&run.events);
    let title = format!("{spec}, {scheme} x{threads}");
    (
        doctor_text(&title, &analysis, Some(&run.snapshot), true),
        doctor_json(&title, &analysis, Some(&run.snapshot), true),
    )
}

/// The ISSUE acceptance scenario: `inverter_chain(120)`, combined scheme,
/// byte-stable across two identical seeded runs.
#[test]
fn inverter_chain_combined_doctor_is_byte_stable() {
    let (text_a, json_a) = stable_doctor("inverter_chain:120", Scheme::Combined, 4);
    let (text_b, json_b) = stable_doctor("inverter_chain:120", Scheme::Combined, 4);
    assert!(text_a.contains("points accepted"), "report looks empty:\n{text_a}");
    assert_eq!(text_a, text_b, "stable doctor text diverged between identical runs");
    assert_eq!(json_a, json_b, "stable doctor JSON diverged between identical runs");
}

/// Every scheme stays byte-stable on a smaller circuit (fast guard that
/// runs on each scheme's distinct commit paths).
#[test]
fn every_scheme_doctor_is_byte_stable_on_power_grid() {
    for scheme in
        [Scheme::Serial, Scheme::Backward, Scheme::Forward, Scheme::Combined, Scheme::Adaptive]
    {
        let (a, _) = stable_doctor("power_grid:4,4", scheme, 3);
        let (b, _) = stable_doctor("power_grid:4,4", scheme, 3);
        assert_eq!(a, b, "{scheme}: stable doctor text diverged");
    }
}

/// The timing section exists but is excluded from the stable bytes.
#[test]
fn timing_section_is_outside_the_stable_report() {
    let b = circuit_by_spec("rc_ladder:8").unwrap();
    let run = run_instrumented(&b, Scheme::Backward, 2);
    let analysis = analyze(&run.events);
    let stable = doctor_text("t", &analysis, Some(&run.snapshot), true);
    let full = doctor_text("t", &analysis, Some(&run.snapshot), false);
    assert!(!stable.contains("== timing"));
    assert!(full.contains("== timing"));
    assert!(full.starts_with(&stable), "full report must extend the stable prefix");
}
