//! SPICE rawfile export (ASCII), compatible with ngspice's viewers and the
//! usual waveform tooling (`gwave`, `gaw`, Python's `spicelib`, ...).

use crate::ac::AcResult;
use crate::result::TransientResult;
use std::io::{self, Write};

/// Writes a transient result as an ASCII SPICE rawfile.
///
/// Node voltages are exported as `v(<node>)` and branch currents (when the
/// result carries branch names) as `i(<element>)`; the first variable is
/// `time` per rawfile convention.
///
/// # Errors
///
/// Propagates I/O errors from the writer (a `&mut` reference can be passed).
pub fn write_transient<W: Write>(
    result: &TransientResult,
    title: &str,
    mut w: W,
) -> io::Result<()> {
    let n_nodes = result.node_count();
    // Variables: time, node voltages, named branch currents.
    let mut vars: Vec<(String, &str, Option<usize>)> = vec![("time".to_string(), "time", None)];
    for u in 0..n_nodes {
        let name = node_name_of(result, u);
        vars.push((format!("v({name})"), "voltage", Some(u)));
    }
    for u in n_nodes..result.n_unknowns() {
        if let Some(name) = branch_name_of(result, u) {
            vars.push((format!("i({name})"), "current", Some(u)));
        }
    }

    writeln!(w, "Title: {title}")?;
    writeln!(w, "Date: (unrecorded)")?;
    writeln!(w, "Plotname: Transient Analysis")?;
    writeln!(w, "Flags: real")?;
    writeln!(w, "No. Variables: {}", vars.len())?;
    writeln!(w, "No. Points: {}", result.len())?;
    writeln!(w, "Variables:")?;
    for (i, (name, kind, _)) in vars.iter().enumerate() {
        writeln!(w, "\t{i}\t{name}\t{kind}")?;
    }
    writeln!(w, "Values:")?;
    for k in 0..result.len() {
        let t = result.times()[k];
        writeln!(w, " {k}\t{t:.15e}")?;
        let x = result.solution(k);
        for (_, _, idx) in vars.iter().skip(1) {
            let u = idx.expect("data variables carry an index");
            writeln!(w, "\t{:.15e}", x[u])?;
        }
    }
    Ok(())
}

/// Writes an AC sweep result as an ASCII SPICE rawfile (complex values).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ac<W: Write>(result: &AcResult, title: &str, mut w: W) -> io::Result<()> {
    let freqs = result.frequencies();
    let n = result_unknowns(result);
    writeln!(w, "Title: {title}")?;
    writeln!(w, "Date: (unrecorded)")?;
    writeln!(w, "Plotname: AC Analysis")?;
    writeln!(w, "Flags: complex")?;
    writeln!(w, "No. Variables: {}", n + 1)?;
    writeln!(w, "No. Points: {}", freqs.len())?;
    writeln!(w, "Variables:")?;
    writeln!(w, "\t0\tfrequency\tfrequency")?;
    for u in 0..n {
        writeln!(w, "\t{}\tv({})\tvoltage", u + 1, ac_name_of(result, u))?;
    }
    writeln!(w, "Values:")?;
    for (k, &f) in freqs.iter().enumerate() {
        writeln!(w, " {k}\t{f:.15e},0.0")?;
        for u in 0..n {
            let p = result.phasor(u, k);
            writeln!(w, "\t{:.15e},{:.15e}", p.re, p.im)?;
        }
    }
    Ok(())
}

// The result types expose name lookup by name->index; the rawfile needs the
// reverse. Small linear scans are fine at export time.
fn node_name_of(result: &TransientResult, u: usize) -> String {
    // unknown_of is injective over node names.
    result
        .node_names_iter()
        .enumerate()
        .find(|&(i, _)| i == u)
        .map(|(_, n)| n.to_string())
        .unwrap_or_else(|| format!("n{u}"))
}

fn branch_name_of(result: &TransientResult, u: usize) -> Option<String> {
    result.branch_names_iter().find(|(_, idx)| *idx == u).map(|(n, _)| n)
}

fn ac_name_of(result: &AcResult, u: usize) -> String {
    result
        .node_names_iter()
        .enumerate()
        .find(|&(i, _)| i == u)
        .map(|(_, n)| n.to_string())
        .unwrap_or_else(|| format!("u{u}"))
}

fn result_unknowns(result: &AcResult) -> usize {
    result.n_unknowns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_ac, run_transient, SimOptions};
    use wavepipe_circuit::{Circuit, Waveform};

    fn rc() -> Circuit {
        let mut ckt = Circuit::new("raw rc");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::dc(1.0), 1.0).unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        ckt
    }

    #[test]
    fn transient_rawfile_structure() {
        let res = run_transient(&rc(), 1e-7, 5e-6, &SimOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_transient(&res, "raw rc", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Plotname: Transient Analysis"));
        assert!(text.contains("Flags: real"));
        assert!(text.contains("\tv(a)\tvoltage"));
        assert!(text.contains("\tv(b)\tvoltage"));
        assert!(text.contains("\ti(V1)\tcurrent"));
        assert!(text.contains(&format!("No. Points: {}", res.len())));
        // Point blocks: one ` k\t` marker per point.
        let markers = text.lines().filter(|l| l.starts_with(' ')).count();
        assert_eq!(markers, res.len());
        // Each point block carries one line per variable.
        let value_lines = text.lines().skip_while(|l| *l != "Values:").skip(1).count();
        assert_eq!(value_lines, res.len() * 4); // time + v(a) + v(b) + i(V1)
    }

    #[test]
    fn ac_rawfile_is_complex() {
        let res = run_ac(&rc(), &[1e3, 1e5, 1e7], &SimOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_ac(&res, "raw rc", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Flags: complex"));
        assert!(text.contains("frequency"));
        assert!(text.contains("No. Points: 3"));
        // Complex values are comma-separated pairs.
        assert!(text.lines().any(|l| l.trim_start().matches(',').count() == 1
            && l.contains('e')
            && l.starts_with('\t')));
    }

    #[test]
    fn rawfile_values_round_trip_first_point() {
        let res = run_transient(&rc(), 1e-7, 2e-6, &SimOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_transient(&res, "t", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // First point block: time then v(a) = 1.0 at t=0 (DC source).
        let mut lines = text.lines().skip_while(|l| *l != "Values:").skip(1);
        let t0: f64 = lines.next().unwrap().split('\t').nth(1).unwrap().parse().unwrap();
        let va: f64 = lines.next().unwrap().trim().parse().unwrap();
        assert_eq!(t0, 0.0);
        assert!((va - 1.0).abs() < 1e-9);
    }
}
