//! Digital scenario: a CMOS ring oscillator — the workload the paper's
//! introduction motivates for digital ICs (autonomous switching, step sizes
//! varying by orders of magnitude between edges and plateaus).
//!
//! Measures the oscillation period from the serial run, verifies the
//! WavePipe runs reproduce it, and prints the speedup picture.
//!
//! Run with: `cargo run --release --example ring_oscillator`

use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{run_transient, SimOptions, TransientResult};

/// Estimates the oscillation period from mid-supply crossings of a node.
fn period_of(result: &TransientResult, node: &str, vmid: f64) -> Option<f64> {
    let idx = result.unknown_of(node)?;
    let trace = result.trace(idx);
    let mut rising: Vec<f64> = Vec::new();
    for w in trace.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        if v0 < vmid && v1 >= vmid {
            // Linear interpolation of the crossing instant.
            rising.push(t0 + (t1 - t0) * (vmid - v0) / (v1 - v0));
        }
    }
    // Ignore the startup transient: average the last few full periods.
    if rising.len() < 4 {
        return None;
    }
    let tail = &rising[rising.len() - 4..];
    Some((tail[3] - tail[0]) / 3.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = generators::ring_oscillator(5);
    println!("circuit: {}", bench.circuit.summary());

    let serial = run_transient(&bench.circuit, bench.tstep, bench.tstop, &SimOptions::default())?;
    let vmid = generators::VDD / 2.0;
    let period = period_of(&serial, &bench.probes[0], vmid)
        .ok_or("oscillator did not start — check the kick source")?;
    println!(
        "serial   : {} points, oscillation period {:.3} ns ({:.1} MHz)",
        serial.len(),
        period * 1e9,
        1e-3 / period / 1e6 * 1e3
    );

    for (scheme, threads) in [(Scheme::Backward, 2), (Scheme::Combined, 4)] {
        let opts = WavePipeOptions::new(scheme, threads);
        let report = run_wavepipe(&bench.circuit, bench.tstep, bench.tstop, &opts)?;
        let p = period_of(&report.result, &bench.probes[0], vmid)
            .ok_or("wavepipe run lost the oscillation")?;
        let period_err = (p - period).abs() / period;
        println!(
            "{:<9}: {} points, modeled speedup {:.2}x, period {:.3} ns (err {:.2}%)",
            scheme.to_string(),
            report.result.len(),
            report.modeled_speedup(serial.stats()),
            p * 1e9,
            period_err * 100.0
        );
        assert!(period_err < 0.05, "period disagrees by more than 5%");
    }
    Ok(())
}
