//! End-to-end integration: SPICE deck text -> parser -> engine -> WavePipe,
//! validated against hand-computable circuit behaviour.

use wavepipe::circuit::parse_netlist;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{run_transient, SimOptions};

#[test]
fn deck_rc_charging_matches_analytic() {
    let deck = "\
rc charge
V1 in 0 PULSE(0 1 0 1p 1p 1 1)
R1 in out 1k
C1 out 0 1n
.tran 10n 5u
.end";
    let parsed = parse_netlist(deck).expect("parse");
    let tran = parsed.tran.expect("tran");
    let res = run_transient(&parsed.circuit, tran.tstep, tran.tstop, &SimOptions::default())
        .expect("simulate");
    let out = res.unknown_of("out").expect("node");
    let tau = 1e-6_f64;
    for &t in &[0.5e-6_f64, 1e-6, 2e-6, 4e-6] {
        let exact = 1.0 - (-t / tau).exp();
        let got = res.sample(out, t);
        assert!((got - exact).abs() < 5e-3, "t={t:e}: {got} vs {exact}");
    }
}

#[test]
fn deck_diode_rectifier_produces_dc_level() {
    let deck = "\
half-wave rectifier
Vac in 0 SIN(0 5 1meg)
D1 in out DR
Cf out 0 2n
Rl out 0 5k
.model DR D (IS=1e-12 N=1.5)
.tran 5n 8u
.end";
    let parsed = parse_netlist(deck).expect("parse");
    let tran = parsed.tran.expect("tran");
    let res = run_transient(&parsed.circuit, tran.tstep, tran.tstop, &SimOptions::default())
        .expect("simulate");
    let out = res.unknown_of("out").expect("node");
    // After several cycles the filter holds a positive DC level a diode
    // drop or so below the 5 V peak, with limited ripple.
    let late: Vec<f64> =
        res.trace(out).iter().filter(|&&(t, _)| t > 5e-6).map(|&(_, v)| v).collect();
    let mean = late.iter().sum::<f64>() / late.len() as f64;
    let min = late.iter().copied().fold(f64::INFINITY, f64::min);
    let max = late.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(mean > 3.0 && mean < 5.0, "dc level {mean}");
    assert!(max - min < 1.5, "ripple {}", max - min);
}

#[test]
fn deck_runs_under_every_scheme() {
    let deck = "\
cmos inverter into load
Vdd vdd 0 3.3
Vin in 0 PULSE(0 3.3 1n 0.2n 0.2n 4n 10n)
Mp out in vdd P1
Mn out in 0 N1
CL out 0 50f
.model P1 PMOS (VTO=-0.7 KP=50u W=40u L=1u)
.model N1 NMOS (VTO=0.7 KP=100u W=20u L=1u)
.tran 0.05n 20n
.end";
    let parsed = parse_netlist(deck).expect("parse");
    let tran = parsed.tran.expect("tran");
    for scheme in [Scheme::Serial, Scheme::Backward, Scheme::Forward, Scheme::Combined] {
        let opts = WavePipeOptions::new(scheme, 3);
        let rep = run_wavepipe(&parsed.circuit, tran.tstep, tran.tstop, &opts)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        let out = rep.result.unknown_of("out").expect("node");
        // The inverter must swing (nearly) rail to rail in both directions.
        let trace = rep.result.trace(out);
        let hi = trace.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
        let lo = trace.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
        assert!(hi > 3.1, "{scheme}: high level {hi}");
        assert!(lo < 0.2, "{scheme}: low level {lo}");
        // Output is inverted: low while input is high (mid-pulse, t=3n).
        assert!(rep.result.sample(out, 3e-9) < 0.3, "{scheme}: not inverting");
    }
}

#[test]
fn deck_with_inductor_oscillates() {
    let deck = "\
series rlc ring
V1 in 0 PULSE(0 1 0 1p 1p 1 1)
R1 in a 2
L1 a b 1u
C1 b 0 1n
.tran 1n 2u
.end";
    let parsed = parse_netlist(deck).expect("parse");
    let tran = parsed.tran.expect("tran");
    let res = run_transient(&parsed.circuit, tran.tstep, tran.tstop, &SimOptions::default())
        .expect("simulate");
    let b = res.unknown_of("b").expect("node");
    // Underdamped: output overshoots 1 V.
    assert!(res.peak(b) > 1.3, "peak = {}", res.peak(b));
    // Inductor branch current is recorded as an unknown.
    assert_eq!(res.n_unknowns(), res.node_count() + 2); // V1 + L1 branches
}

#[test]
fn malformed_decks_report_lines() {
    for (deck, expected_line) in [
        ("t\nR1 a 0\n.end", 2),
        ("t\nR1 a 0 1k\nD1 a 0 NOMODEL\n.end", 3),
        ("t\nR1 a 0 1k\n.bogus\n.end", 3),
    ] {
        let err = parse_netlist(deck).expect_err("must fail");
        assert_eq!(err.line(), expected_line, "deck: {deck:?} -> {err}");
    }
}

#[test]
fn deck_drives_ac_and_dc_analyses() {
    let deck = "\
full-deck analysis e2e
V1 in 0 DC 1 AC 1
R1 in out 1k
C1 out 0 1n
.dc V1 0 2 0.25
.ac dec 4 1k 10meg
.tran 10n 3u
.end";
    let parsed = parse_netlist(deck).expect("parse");
    // DC sweep through the facade.
    let dc = parsed.dc.as_ref().expect("dc spec");
    let sweep = wavepipe::engine::run_dc_sweep(
        &parsed.circuit,
        &dc.source,
        &dc.values(),
        &Default::default(),
    )
    .expect("dc sweep");
    let out = sweep.unknown_of("out").expect("node");
    for (v, vo) in sweep.trace(out) {
        assert!((vo - v).abs() < 1e-9, "dc: caps open, out follows in");
    }
    // AC sweep: -3 dB corner at 1/(2 pi RC) ~ 159 kHz.
    let ac = parsed.ac.as_ref().expect("ac spec");
    let res = wavepipe::engine::run_ac(&parsed.circuit, &ac.frequencies(), &Default::default())
        .expect("ac");
    let out_ac = res.unknown_of("out").expect("node");
    let fc = res.corner_frequency(out_ac).expect("corner inside sweep");
    assert!((fc - 159.2e3).abs() / 159.2e3 < 0.1, "fc = {fc:e}");
}

#[test]
fn subcircuit_deck_simulates_under_wavepipe() {
    let deck = "\
subckt rc e2e
.subckt RCSEC a b
R1 a b 200
C1 b 0 2p
.ends
Vin in 0 PULSE(0 1 0 0.5n 0.5n 40n 100n)
X1 in m1 RCSEC
X2 m1 m2 RCSEC
X3 m2 out RCSEC
.tran 0.1n 60n
.end";
    let parsed = parse_netlist(deck).expect("parse");
    let tran = parsed.tran.expect("tran");
    let serial = run_transient(&parsed.circuit, tran.tstep, tran.tstop, &SimOptions::default())
        .expect("serial");
    let rep = run_wavepipe(
        &parsed.circuit,
        tran.tstep,
        tran.tstop,
        &WavePipeOptions::new(Scheme::Backward, 2),
    )
    .expect("wavepipe");
    let o_s = serial.unknown_of("out").expect("node");
    assert!(serial.sample(o_s, 40e-9) > 0.95, "3-section ladder settles high");
    let dev = serial.max_deviation(&rep.result, o_s);
    assert!(dev < 0.02, "subckt deck equivalence: {dev}");
}

#[test]
fn uic_deck_honors_capacitor_ic() {
    let deck = "\
uic e2e
C1 a 0 1n IC=3
R1 a 0 2k
.tran 10n 6u
.end";
    let parsed = parse_netlist(deck).expect("parse");
    let tran = parsed.tran.expect("tran");
    let opts = SimOptions::default().with_use_ic(true);
    let res = run_transient(&parsed.circuit, tran.tstep, tran.tstop, &opts).expect("uic run");
    let a = res.unknown_of("a").expect("node");
    assert!((res.sample(a, 0.0) - 3.0).abs() < 1e-2);
    let tau = 2e-6;
    let v1 = res.sample(a, tau);
    assert!((v1 - 3.0 * (-1.0f64).exp()).abs() < 0.03, "one tau: {v1}");
}

#[test]
fn sensitivity_via_facade() {
    let deck = "divider\nV1 a 0 10\nR1 a b 2k\nR2 b 0 3k\n.end";
    let parsed = parse_netlist(deck).expect("parse");
    let res = wavepipe::engine::run_dc_sensitivity(&parsed.circuit, "b", &Default::default())
        .expect("sens");
    assert!((res.value - 6.0).abs() < 1e-6);
    assert_eq!(res.ranked()[0].element, "v1");
}
