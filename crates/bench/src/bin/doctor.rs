//! `wavepipe-doctor` — run (or replay) an instrumented simulation and print
//! the bottleneck report. All logic lives in [`wavepipe_bench::doctor`];
//! this wrapper only parses `argv` and sets the exit code.

fn main() {
    let args = match wavepipe_bench::doctor::DoctorArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match wavepipe_bench::doctor::run_doctor(&args) {
        Ok(report) => println!("{report}"),
        Err(msg) => {
            eprintln!("wavepipe-doctor: {msg}");
            std::process::exit(1);
        }
    }
}
