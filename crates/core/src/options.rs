//! WavePipe configuration.

use wavepipe_engine::SimOptions;

/// Which waveform-pipelining scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Plain serial simulation (the baseline; single thread).
    Serial,
    /// Backward pipelining: concurrent solves at the leading point and the
    /// backward intermediate points, enlarging the per-round time stride.
    #[default]
    Backward,
    /// Forward pipelining: speculative Newton at future points from
    /// predicted history, refined once the true history lands.
    Forward,
    /// Backward pipelining plus one forward speculative point.
    Combined,
    /// Per-round choice between backward and forward pipelining, driven by
    /// their measured efficiency (extension beyond the paper's fixed
    /// schemes).
    Adaptive,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Serial => write!(f, "serial"),
            Scheme::Backward => write!(f, "backward"),
            Scheme::Forward => write!(f, "forward"),
            Scheme::Combined => write!(f, "combined"),
            Scheme::Adaptive => write!(f, "adaptive"),
        }
    }
}

/// Options controlling a WavePipe run.
///
/// The embedded [`SimOptions`] are shared verbatim with the serial baseline,
/// which is what makes the accuracy-equivalence property meaningful: every
/// scheme applies the same Newton tolerances and LTE test to every accepted
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct WavePipeOptions {
    /// Pipelining scheme.
    pub scheme: Scheme,
    /// Total thread budget (including the coordinating thread). Clamped to
    /// at least 1; `Serial` ignores it for lane-level parallelism but still
    /// honours [`WavePipeOptions::stamp_workers`].
    pub threads: usize,
    /// Stamp workers *per lane* for intra-step parallel device evaluation
    /// (`0` = serial stamping, the default). When set, the thread budget is
    /// split two-level: `threads / stamp_workers` pipeline lanes, each
    /// driving `stamp_workers` device-evaluation workers — e.g. `threads: 4,
    /// stamp_workers: 2` is a 2×2 split. See [`WavePipeOptions::lanes`].
    pub stamp_workers: usize,
    /// Forward pipelining: pre-filter — multiplier on the Newton tolerance
    /// (node voltages only) above which a prediction is considered hopeless
    /// and the speculative solve is discarded without a refinement attempt.
    /// Predictions at LTE-chosen steps are routinely 10–50x the Newton
    /// tolerance, so this is deliberately loose; the *real* gate is
    /// [`WavePipeOptions::fp_refine_iters`]. Default `200.0`.
    pub fp_accept_factor: f64,
    /// Forward pipelining: Newton iteration budget for refining a
    /// speculative solve against the true history. If the warm start cannot
    /// converge within this budget it was not close enough to pay off, and
    /// the speculation is discarded. Default `4`.
    pub fp_refine_iters: usize,
    /// Forward pipelining: ratio of the speculative stride to the current
    /// stride. `1.0` (default) speculates at the same step size; values up
    /// to `rmax` speculate more aggressively.
    pub fp_stride_factor: f64,
    /// Backward pipelining: use the recent LTE growth prediction to place
    /// the leading point (`true`, default) instead of always stretching by
    /// the full `rmax`.
    pub bp_adaptive_lead: bool,
    /// Backward pipelining: minimum predicted growth factor below which
    /// lead points are not launched. The default `0.0` disables the gate:
    /// measured across the benchmark suite, launching leads even at low
    /// accept rates is a net win (a rejected lead only stretches the round's
    /// critical path by the lead/base cost difference, while an accepted one
    /// saves a whole serial step). Kept as an ablation knob — see Figure D2.
    pub bp_growth_gate: f64,
    /// Backward pipelining: slack multiplier on the LTE stride budget when
    /// deciding how many lead tasks to launch. `1.0` launches only leads
    /// predicted to pass; larger values also buy "lottery" leads whose
    /// rejection costs nothing but critical-path stretch. Default
    /// `infinity` (always launch the full ladder) — see Figure D2 for the
    /// measured trade-off.
    pub bp_budget_slack: f64,
    /// How many times a lost pool worker (panicked solve) may be respawned
    /// before its lane is retired for good and rounds run narrower. All
    /// pool tasks are speculative, so worker loss never affects results —
    /// this only bounds how much respawn churn a persistently-faulting
    /// lane may cause. Default `1`.
    pub worker_respawns: usize,
    /// Engine options (tolerances, method, step limits).
    pub sim: SimOptions,
}

impl Default for WavePipeOptions {
    fn default() -> Self {
        // Inherit the engine-level default (which honours the
        // `WAVEPIPE_STAMP_WORKERS` environment override) so the env var
        // reaches wavepipe runs too; `lane_sim()` re-applies this field on
        // top of `sim`, so it must start out consistent.
        let sim = SimOptions::default();
        WavePipeOptions {
            scheme: Scheme::default(),
            threads: 2,
            stamp_workers: sim.stamp_workers,
            fp_accept_factor: 200.0,
            fp_refine_iters: 4,
            fp_stride_factor: 1.0,
            bp_adaptive_lead: true,
            bp_growth_gate: 0.0,
            bp_budget_slack: f64::INFINITY,
            worker_respawns: 1,
            sim,
        }
    }
}

impl WavePipeOptions {
    /// Convenience constructor for a scheme at a thread count.
    pub fn new(scheme: Scheme, threads: usize) -> Self {
        WavePipeOptions { scheme, threads: threads.max(1), ..WavePipeOptions::default() }
    }

    /// Sets the pipelining scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the total thread budget (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-lane stamp worker count (`0` disables intra-step
    /// parallelism). See [`WavePipeOptions::stamp_workers`].
    #[must_use]
    pub fn with_stamp_workers(mut self, workers: usize) -> Self {
        self.stamp_workers = workers;
        self
    }

    /// Replaces the embedded engine options.
    #[must_use]
    pub fn with_sim(mut self, sim: SimOptions) -> Self {
        self.sim = sim;
        self
    }

    /// Attaches a telemetry probe to the embedded engine options.
    #[must_use]
    pub fn with_probe(mut self, probe: wavepipe_engine::ProbeHandle) -> Self {
        self.sim.probe = probe;
        self
    }

    /// Attaches a live metrics registry to the embedded engine options.
    /// Every lane publishes into the same registry (the handle is retagged
    /// per lane), so a snapshot taken mid-run sees the whole pipeline.
    #[must_use]
    pub fn with_metrics(mut self, metrics: wavepipe_engine::MetricsHandle) -> Self {
        self.sim.metrics = metrics;
        self
    }

    /// Sets the forward-pipelining acceptance pre-filter factor.
    #[must_use]
    pub fn with_fp_accept_factor(mut self, factor: f64) -> Self {
        self.fp_accept_factor = factor;
        self
    }

    /// Sets the forward-pipelining refinement iteration budget.
    #[must_use]
    pub fn with_fp_refine_iters(mut self, iters: usize) -> Self {
        self.fp_refine_iters = iters;
        self
    }

    /// Sets the forward-pipelining stride factor.
    #[must_use]
    pub fn with_fp_stride_factor(mut self, factor: f64) -> Self {
        self.fp_stride_factor = factor;
        self
    }

    /// Enables or disables LTE-adaptive lead placement for backward
    /// pipelining.
    #[must_use]
    pub fn with_bp_adaptive_lead(mut self, adaptive: bool) -> Self {
        self.bp_adaptive_lead = adaptive;
        self
    }

    /// Sets the backward-pipelining growth gate.
    #[must_use]
    pub fn with_bp_growth_gate(mut self, gate: f64) -> Self {
        self.bp_growth_gate = gate;
        self
    }

    /// Sets the backward-pipelining stride budget slack.
    #[must_use]
    pub fn with_bp_budget_slack(mut self, slack: f64) -> Self {
        self.bp_budget_slack = slack;
        self
    }

    /// Sets the per-worker respawn budget after a panicked solve
    /// (`0` retires a lost lane immediately).
    #[must_use]
    pub fn with_worker_respawns(mut self, respawns: usize) -> Self {
        self.worker_respawns = respawns;
        self
    }

    /// Gives the run a wall-clock deadline (armed when stepping starts, after
    /// the DC solve). See [`SimOptions::with_deadline`].
    #[must_use]
    pub fn with_deadline(mut self, budget: std::time::Duration) -> Self {
        self.sim = self.sim.with_deadline(budget);
        self
    }

    /// Attaches a cooperative cancellation token checked at round boundaries
    /// and inside Newton. See [`SimOptions::with_cancel_token`].
    #[must_use]
    pub fn with_cancel_token(mut self, token: wavepipe_engine::CancelToken) -> Self {
        self.sim = self.sim.with_cancel_token(token);
        self
    }

    /// Installs a deterministic fault-injection plan (testing aid). See
    /// [`SimOptions::with_faults`].
    #[must_use]
    pub fn with_faults(mut self, plan: wavepipe_engine::FaultPlan) -> Self {
        self.sim = self.sim.with_faults(plan);
        self
    }

    /// Enables or disables SPICE3-style device bypass in every lane's
    /// solver. See [`SimOptions::with_bypass`].
    #[must_use]
    pub fn with_bypass(mut self, on: bool) -> Self {
        self.sim = self.sim.with_bypass(on);
        self
    }

    /// Enables or disables chord/modified-Newton LU reuse in every lane's
    /// solver. See [`SimOptions::with_chord_newton`].
    #[must_use]
    pub fn with_chord_newton(mut self, on: bool) -> Self {
        self.sim = self.sim.with_chord_newton(on);
        self
    }

    /// Enables or disables the step-size-keyed companion (linear-stamp)
    /// cache. See [`SimOptions::with_companion_cache`].
    #[must_use]
    pub fn with_companion_cache(mut self, on: bool) -> Self {
        self.sim = self.sim.with_companion_cache(on);
        self
    }

    /// Number of pipeline lanes the thread budget affords: `threads` when
    /// stamping is serial, `threads / stamp_workers` (at least 1) under the
    /// two-level split.
    pub fn lanes(&self) -> usize {
        let threads = self.threads.max(1);
        match threads.checked_div(self.stamp_workers) {
            None => threads,
            Some(lanes) => lanes.max(1),
        }
    }

    /// Engine options for one pipeline lane: the embedded [`SimOptions`]
    /// with the per-lane stamp worker count applied.
    pub fn lane_sim(&self) -> SimOptions {
        let mut sim = self.sim.clone();
        sim.stamp_workers = self.stamp_workers;
        sim
    }

    /// Number of concurrent point-solves a round may issue.
    pub fn width(&self) -> usize {
        match self.scheme {
            Scheme::Serial => 1,
            _ => self.lanes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_backward_two_threads() {
        let o = WavePipeOptions::default();
        assert_eq!(o.scheme, Scheme::Backward);
        assert_eq!(o.threads, 2);
    }

    #[test]
    fn new_clamps_threads() {
        let o = WavePipeOptions::new(Scheme::Forward, 0);
        assert_eq!(o.threads, 1);
    }

    #[test]
    fn width_is_one_for_serial() {
        // `with_stamp_workers(0)` pins the tests against the ambient
        // `WAVEPIPE_STAMP_WORKERS` override, which `default()` inherits.
        let o = WavePipeOptions::new(Scheme::Serial, 8).with_stamp_workers(0);
        assert_eq!(o.width(), 1);
        assert_eq!(WavePipeOptions::new(Scheme::Backward, 3).with_stamp_workers(0).width(), 3);
    }

    #[test]
    fn thread_budget_splits_into_lanes_and_stamp_workers() {
        let o = WavePipeOptions::new(Scheme::Backward, 4).with_stamp_workers(0);
        assert_eq!(o.lanes(), 4);
        let o = o.with_stamp_workers(2);
        assert_eq!(o.lanes(), 2, "4 threads = 2 lanes x 2 stamp workers");
        assert_eq!(o.width(), 2);
        assert_eq!(o.lane_sim().stamp_workers, 2);
        // Oversubscribed stamp workers still leave one lane.
        assert_eq!(WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(8).lanes(), 1);
    }

    #[test]
    fn builders_chain() {
        let o = WavePipeOptions::default()
            .with_scheme(Scheme::Forward)
            .with_threads(6)
            .with_stamp_workers(3)
            .with_fp_refine_iters(7)
            .with_bp_adaptive_lead(false);
        assert_eq!(o.scheme, Scheme::Forward);
        assert_eq!(o.threads, 6);
        assert_eq!(o.lanes(), 2);
        assert_eq!(o.fp_refine_iters, 7);
        assert!(!o.bp_adaptive_lead);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::Backward.to_string(), "backward");
        assert_eq!(Scheme::Combined.to_string(), "combined");
    }
}
