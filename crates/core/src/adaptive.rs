//! Adaptive scheme selection — the "new avenues" extension the paper's
//! conclusion points at.
//!
//! Backward and forward pipelining pay off in different workload phases:
//! backward ladders compound step growth after discontinuities, forward
//! speculation hides Newton latency on smooth stretches. Neither dominates
//! everywhere, so this scheduler measures each scheme's recent *efficiency*
//! (committed points per unit of critical-path work) with an exponential
//! moving average and plays the better one, probing the loser periodically
//! so a regime change is noticed.
//!
//! Because both round implementations commit through the same
//! serial-equivalent tests, switching between them mid-run cannot affect
//! accuracy — only the schedule of which points are attempted concurrently.

use crate::backward::backward_round;
use crate::forward::forward_round;
use crate::options::{Scheme, WavePipeOptions};
use crate::pipeline::Driver;
use crate::report::{RunOutcome, WavePipeReport};
use wavepipe_circuit::Circuit;
use wavepipe_engine::Result;
use wavepipe_telemetry::{EventKind, Family};

/// How strongly new rounds update the efficiency estimate.
const EMA_ALPHA: f64 = 0.25;
/// Probe the currently-losing scheme every this many rounds.
const PROBE_PERIOD: usize = 8;

/// Runs a transient analysis that alternates between backward and forward
/// pipelining based on their measured efficiency.
///
/// # Errors
///
/// Same failure modes as the serial engine
/// ([`wavepipe_engine::run_transient`]).
pub fn run_adaptive(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<WavePipeReport> {
    run_adaptive_recoverable(circuit, tstep, tstop, wp)?.into_result()
}

/// Fault-tolerant variant of [`run_adaptive`]: a mid-run failure (deadline,
/// cancellation, lead-solver loss) yields the report over the accepted
/// prefix alongside the error.
///
/// # Errors
///
/// Pre-run failures only (bad parameters, compile, DC operating point).
pub fn run_adaptive_recoverable(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<RunOutcome> {
    let mut drv = Driver::new(circuit, tstep, tstop, wp)?;
    let width = wp.width();
    // Efficiency estimates: committed points per 1000 critical work units.
    // Start equal so the first probes decide.
    let mut eff = [1.0_f64, 1.0];
    let mut round_idx = 0usize;
    let mut error = None;

    while !drv.done() {
        if let Err(e) = drv.check_budget() {
            error = Some(e);
            break;
        }
        let forward_better = eff[1] > eff[0];
        let probe = round_idx % PROBE_PERIOD == PROBE_PERIOD - 1;
        // Normally play the winner; on probe rounds, play the loser.
        let use_forward = forward_better != probe;
        drv.wp.sim.probe.emit(drv.hw.t(), EventKind::AdaptiveChoice { forward: use_forward });
        let choice = if use_forward { "adaptive_forward" } else { "adaptive_backward" };
        drv.wp.sim.metrics.add_labeled(Family::RoundsByScheme, choice, 1);

        let w = drv.round_width(width);
        let cw0 = drv.critical_work;
        let outcome =
            if use_forward { forward_round(&mut drv, w) } else { backward_round(&mut drv, w) };
        let committed = match outcome {
            Ok(c) => c,
            Err(e) => {
                error = Some(e);
                break;
            }
        };
        let dcw = (drv.critical_work - cw0).max(1);
        let e = committed as f64 * 1000.0 / dcw as f64;
        let idx = usize::from(use_forward);
        eff[idx] = (1.0 - EMA_ALPHA) * eff[idx] + EMA_ALPHA * e;
        round_idx += 1;
    }

    Ok(RunOutcome { report: drv.finish(Scheme::Adaptive), error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use wavepipe_circuit::generators;
    use wavepipe_engine::{run_transient, SimOptions};

    #[test]
    fn adaptive_matches_serial_accuracy() {
        for b in [generators::rc_ladder(8), generators::power_grid(4, 4)] {
            let serial =
                run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
            let wp = WavePipeOptions::new(Scheme::Adaptive, 2);
            let rep = run_adaptive(&b.circuit, b.tstep, b.tstop, &wp).unwrap();
            let eq = verify::compare(&serial, &rep.result);
            assert!(eq.rms_rel() < 0.02, "{}: rms dev {}", b.name, eq.rms_rel());
            assert_eq!(rep.scheme, Scheme::Adaptive);
        }
    }

    #[test]
    fn adaptive_is_competitive_with_the_better_pure_scheme() {
        // On the growth-heavy power grid, adaptive must land near backward's
        // speedup (its measured winner), not near forward's.
        let b = generators::power_grid(4, 4);
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        let bwd = crate::backward::run_backward(
            &b.circuit,
            b.tstep,
            b.tstop,
            &WavePipeOptions::new(Scheme::Backward, 2),
        )
        .unwrap()
        .modeled_speedup(serial.stats());
        let ada =
            run_adaptive(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(Scheme::Adaptive, 2))
                .unwrap()
                .modeled_speedup(serial.stats());
        assert!(
            ada > 0.8 * bwd,
            "adaptive {ada:.2} should track backward {bwd:.2} on a growth-heavy workload"
        );
    }

    #[test]
    fn adaptive_exercises_both_schemes() {
        // Probing guarantees both lead and speculation statistics appear on
        // a long enough run.
        let b = generators::diode_rectifier();
        // Pin serial stamping so the `WAVEPIPE_STAMP_WORKERS` override cannot
        // collapse the two lanes this test needs.
        let opts = WavePipeOptions::new(Scheme::Adaptive, 2).with_stamp_workers(0);
        let rep = run_adaptive(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
        let bp_attempts = rep.lead_accepted + rep.lead_rejected;
        let fp_attempts = rep.speculation_accepted + rep.speculation_rejected;
        assert!(bp_attempts > 0, "no backward rounds were played");
        assert!(fp_attempts > 0, "no forward rounds were played");
    }
}
