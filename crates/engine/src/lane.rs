//! The lane-packed batch execution tier: up to [`MAX_LANES`] transient
//! instances advanced together, sharing one pass over the LU index structure
//! per linear solve while every instance keeps its **own** scalar controller.
//!
//! # How it stays bit-identical
//!
//! The classic per-instance path is `run_transient_recoverable_compiled`:
//! DC solve, then a step loop of predict → stamp → factor/solve → converge →
//! LTE-accept. This module re-implements only the *orchestration* of that
//! loop; every numeric kernel is either the identical function
//! ([`MnaSystem::stamp_lane`] — the monomorphized, bitwise-identical twin of
//! [`MnaSystem::stamp_with`] — [`lte_step_control`], [`HistoryWindow`]
//! predict/accept, [`MnaSystem::cap_currents_after`]) or a lane-packed kernel
//! proven bit-equal to its scalar counterpart
//! ([`LanePackedLu::refactor_lanes`] / [`LanePackedLu::solve_lanes`] vs
//! [`SparseLu::refactor`] / `solve_with_scratch` — see
//! [`wavepipe_sparse::lanes`]). Each lane keeps private step size, history
//! window, Newton iterate, chord key, and LTE streak, so control flow per
//! lane replays the classic loop decision-for-decision; lanes only
//! *synchronize* on bulk kernels, never on decisions.
//!
//! Two escape hatches preserve identity on the paths this module does not
//! mirror:
//!
//! * a lane whose frozen pivot *structure* diverges from the pack (threshold
//!   pivoting is value-dependent) runs its linear algebra through a private
//!   [`SparseLu`] inside the same tick loop — packed stamping, scalar
//!   solves;
//! * a lane that reaches any unmirrored path — the recovery ladder
//!   (`h < hmin`), numerical blowup, a failed DC solve — is **ejected**: the
//!   batch layer reruns it through the classic path from scratch, which *is*
//!   the reference. Ejection can cost wall-clock, never bits.

use std::sync::Arc;
use std::time::Instant;

use wavepipe_sparse::lanes::{LanePackedLu, LaneSolve, MAX_LANES};
use wavepipe_sparse::vector::{all_finite, norm_inf};
use wavepipe_sparse::{CscMatrix, LuOptions, Permutation, SparseError, SparseLu};
use wavepipe_telemetry::Counter;

use crate::integrate::{IntegCoeffs, Method};
use crate::lte::lte_step_control;
use crate::mna::{LinKey, MnaSystem, MnaWorkspace, StampInput};
use crate::options::{CacheCtl, SimOptions};
use crate::result::TransientResult;
use crate::stats::SimStats;
use crate::transient::{state_coeffs, HistoryWindow, PointSolution, PointSolver};

/// Engine-facing name for the lane-packed direct backend: K instances'
/// numeric LU factors interleaved over one shared symbolic structure, with
/// the factorization and triangular-solve inner loops shared across lanes.
/// See [`wavepipe_sparse::lanes`] for the kernel and its bit-identity
/// contract; [`run_lane_group`] is the driver that feeds it.
pub use wavepipe_sparse::lanes::LanePackedLu as SimdBatchedLu;

/// Per-instance outcome of [`run_lane_group`].
#[derive(Debug)]
pub enum LaneOutcome {
    /// The lane ran cleanly to `tstop`; the result is bit-identical to the
    /// classic single-instance run.
    Completed(Box<TransientResult>),
    /// The lane hit a path the packed tier does not mirror (failed DC,
    /// recovery-ladder entry, numerical blowup). The caller must rerun the
    /// instance through the classic path, which reproduces the exact classic
    /// behaviour — including its error.
    Ejected,
}

/// Where a lane's current LU factors live.
enum Factors {
    /// Values adopted into the shared [`LanePackedLu`] at this lane's slot.
    Packed,
    /// Private factors (pivot structure diverged from the pack).
    Scalar(Box<SparseLu>),
    /// Unfactored (mirror of an invalidated backend).
    None,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Propose the next time point (or finish).
    Begin,
    /// Mid-Newton on the current point.
    Iter,
    /// Clean run to `tstop`.
    Finished,
    /// Handed back to the classic path.
    Ejected,
}

/// Per-tick role in the shared linear phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Off,
    /// Stamped, waiting for the linear phase.
    Stamped,
    /// Chord-eligible, factors in the pack.
    ChordPacked,
    /// Chord-eligible, private factors.
    ChordScalar,
    /// Needs a (re)factorization this iteration.
    Refactor,
    /// Packed refactor succeeded; solve through the pack.
    PackedRefOk,
    /// Scalar refactor / fresh factor succeeded; solve through `Scalar`.
    ScalarRefOk,
    /// Linear phase finished for this tick (`x_new` valid iff solved).
    Done {
        solved: bool,
    },
}

struct Lane {
    sys: Arc<MnaSystem>,
    ws: MnaWorkspace,
    hw: HistoryWindow,
    result: TransientResult,
    stats: SimStats,
    /// Stats snapshot taken after DC: the classic DC path publishes its own
    /// live metrics, so the group-end aggregate publishes only the delta.
    dc_stats: SimStats,
    factors: Factors,
    key: Option<LinKey>,
    last_dx: Option<f64>,
    /// Current Newton iterate.
    x: Vec<f64>,
    x_new: Vec<f64>,
    scratch: Vec<f64>,
    resid: Vec<f64>,
    rowsum: Vec<f64>,
    bps: Vec<f64>,
    next_bp: usize,
    h: f64,
    lte_streak: usize,
    phase: Phase,
    // Current point.
    t_new: f64,
    hit_bp: bool,
    method: Method,
    coeffs: IntegCoeffs,
    it: usize,
    tick_key: LinKey,
    /// Whether the current iteration's factorization was fresh (pivot
    /// re-search) — controls the verify-retry, mirroring `factor_and_solve`.
    fresh: bool,
}

impl Lane {
    fn factored(&self) -> bool {
        !matches!(self.factors, Factors::None)
    }

    /// Mirror of the classic `EngineError::Linear` arm of `solve_point`:
    /// drop the (possibly poisoned) factorization and report the point
    /// unconverged so the step controller backs off.
    fn linear_error(&mut self, pack: &mut Option<LanePackedLu>, idx: usize) {
        if matches!(self.factors, Factors::Packed) {
            if let Some(p) = pack.as_mut() {
                p.evict(idx);
            }
        }
        self.factors = Factors::None;
        self.key = None;
        self.last_dx = None;
    }

    /// Installs freshly pivoted factors: back into the pack when the
    /// structure still matches, else as private scalar factors.
    fn install_fresh(&mut self, lu: SparseLu, pack: &mut Option<LanePackedLu>, idx: usize) {
        let adopted = pack.as_mut().is_some_and(|p| p.adopt(idx, &lu));
        self.factors = if adopted { Factors::Packed } else { Factors::Scalar(Box::new(lu)) };
    }
}

/// Shared per-group context (identical across lanes by construction — the
/// batch layer hands every instance the same options).
struct GroupCtx {
    opts: SimOptions,
    ctl: CacheCtl,
    lu_opts: LuOptions,
    ordering: Arc<Permutation>,
    tstep: f64,
    tstop: f64,
    hmin: f64,
    hmax: f64,
}

/// Runs up to [`MAX_LANES`] compiled instances to `tstop` through the
/// lane-packed tier. `systems` share one MNA pattern (the batch compile
/// guarantees this); `ordering` is the shared fill-reducing ordering the
/// batched solver handle was built from.
///
/// Returns one [`LaneOutcome`] per instance, in order. Completed lanes are
/// bit-identical to the classic single run; ejected lanes must be rerun
/// classically by the caller (see the [module docs](self)).
///
/// The caller is responsible for eligibility: no probe, no fault injection,
/// no deadline/cancel token, no UIC, serial stamping. Metrics are supported
/// (scalar counters are published as exact aggregates at group end; series,
/// gauges, and labeled families are not mirrored by this tier).
///
/// # Panics
///
/// Panics if `systems` is empty or holds more than [`MAX_LANES`] entries.
pub fn run_lane_group(
    systems: &[Arc<MnaSystem>],
    tstep: f64,
    tstop: f64,
    opts: &SimOptions,
    ordering: &Arc<Permutation>,
) -> Vec<LaneOutcome> {
    let k = systems.len();
    assert!((1..=MAX_LANES).contains(&k), "lane group of {k} outside 1..={MAX_LANES}");
    debug_assert!(!opts.probe.enabled(), "lane tier does not mirror probe events");
    debug_assert!(!opts.faults.enabled(), "lane tier does not mirror fault injection");
    debug_assert_eq!(opts.stamp_workers, 0, "lane tier stamps serially");
    if !(tstop > 0.0 && tstop.is_finite() && tstep > 0.0 && tstep.is_finite()) {
        // The classic path rejects these with `BadParameter`; let the rerun
        // produce that exact error.
        return (0..k).map(|_| LaneOutcome::Ejected).collect();
    }
    let group_start = Instant::now();
    let g = GroupCtx {
        opts: opts.clone(),
        ctl: opts.cache_ctl(),
        lu_opts: LuOptions::default(),
        ordering: Arc::clone(ordering),
        tstep,
        tstop,
        hmin: opts.hmin(tstop),
        hmax: opts.hmax(tstop),
    };

    // --- DC phase: the classic solver IS the DC path (bit-identity for
    // free); afterwards each lane inherits its workspace, factors, chord
    // key, and buffers, exactly as the classic loop would have.
    let mut lanes: Vec<Option<Lane>> = Vec::with_capacity(k);
    let mut pack: Option<LanePackedLu> = None;
    let mut ejected = 0u64;
    let mut packed_solves = 0u64;
    for sys in systems {
        let mut stats = SimStats::new();
        let mut solver = PointSolver::new(Arc::clone(sys), g.opts.clone());
        let x0 = match solver.initial_state(&mut stats) {
            Ok(x0) => x0,
            Err(_) => {
                lanes.push(None);
                ejected += 1;
                continue;
            }
        };
        let (ws, cache) = solver.into_lane_parts();
        let (lu, key, last_dx, x_new, scratch, resid) = cache.into_lane_seed();
        let Some(lu) = lu else {
            // Backend without extractable direct factors: not lane-packable.
            lanes.push(None);
            ejected += 1;
            continue;
        };
        let node_names: Vec<String> =
            (0..sys.n_nodes()).map(|i| sys.node_name_of(i).to_string()).collect();
        let mut result = TransientResult::new(sys.n_unknowns(), node_names);
        result.set_branch_names(sys.branch_names().to_vec());
        result.push(0.0, &x0);
        let n = sys.n_unknowns();
        let hw = HistoryWindow::start(x0, sys.cap_state_count());
        let h = tstep.min(g.hmax).min(tstop / 100.0).max(g.hmin);
        let mut lane = Lane {
            sys: Arc::clone(sys),
            ws,
            hw,
            result,
            stats,
            dc_stats: SimStats::new(),
            factors: Factors::Scalar(Box::new(lu)),
            key,
            last_dx,
            x: Vec::new(),
            x_new,
            scratch,
            resid,
            rowsum: Vec::new(),
            bps: sys.breakpoints(tstop),
            next_bp: 0,
            h,
            lte_streak: 0,
            phase: Phase::Begin,
            t_new: 0.0,
            hit_bp: false,
            method: g.opts.method,
            coeffs: IntegCoeffs::new(g.opts.method, h, h),
            it: 0,
            tick_key: LinKey::of(&StampInput {
                time: 0.0,
                coeffs: None,
                x_prev: &[],
                x_prev2: &[],
                cap_currents: &[],
                gmin: 0.0,
                gshunt: 0.0,
                source_scale: 1.0,
                ic_mode: false,
            }),
            fresh: false,
        };
        lane.x_new.resize(n, 0.0);
        lane.scratch.resize(n, 0.0);
        lane.resid.resize(n, 0.0);
        lane.dc_stats = lane.stats;
        lanes.push(Some(lane));
    }
    // Seed the pack from the first live lane's DC factors; lanes whose pivot
    // structure diverged stay scalar.
    for (i, slot) in lanes.iter_mut().enumerate() {
        let Some(lane) = slot else { continue };
        let Factors::Scalar(lu) = std::mem::replace(&mut lane.factors, Factors::None) else {
            continue;
        };
        if pack.is_none() {
            pack = Some(LanePackedLu::from_structure(k, &lu));
        }
        lane.install_fresh(*lu, &mut pack, i);
    }

    // --- The tick loop: one Newton iteration per live lane per tick.
    while lanes.iter().flatten().any(|l| matches!(l.phase, Phase::Begin | Phase::Iter)) {
        packed_solves += tick(&mut lanes, &mut pack, &g);
    }

    // --- Metrics: exact scalar-counter aggregates for completed lanes plus
    // the lane-occupancy counters (ejected lanes are republished in full by
    // their classic rerun, so their transient portion is not counted here).
    let wall = group_start.elapsed().as_nanos();
    for slot in lanes.iter().flatten() {
        if slot.phase == Phase::Ejected {
            ejected += 1;
        }
    }
    if g.opts.metrics.enabled() {
        let m = &g.opts.metrics;
        m.inc(Counter::LaneGroups);
        m.add(Counter::LanePackedSolves, packed_solves);
        m.add(Counter::LaneEjections, ejected);
        for slot in lanes.iter().flatten() {
            if slot.phase != Phase::Finished {
                continue;
            }
            let (s, b) = (&slot.stats, &slot.dc_stats);
            let d = |tot: usize, base: usize| (tot - base) as u64;
            m.add(Counter::NewtonIterations, d(s.newton_iterations, b.newton_iterations));
            m.add(Counter::DeviceEvals, d(s.device_evals, b.device_evals));
            m.add(Counter::BypassedDevices, d(s.bypass_hits, b.bypass_hits));
            m.add(Counter::CompanionHits, d(s.companion_hits, b.companion_hits));
            m.add(Counter::Factorizations, d(s.factorizations, b.factorizations));
            m.add(Counter::Refactorizations, d(s.refactorizations, b.refactorizations));
            m.add(Counter::JacobianReuses, d(s.jacobian_reuses, b.jacobian_reuses));
            m.add(Counter::PointsAccepted, d(s.steps_accepted, b.steps_accepted));
            m.add(Counter::LteRejects, d(s.steps_rejected_lte, b.steps_rejected_lte));
            m.add(Counter::NewtonRejects, d(s.steps_rejected_newton, b.steps_rejected_newton));
            // One classic point-solve per accepted or rejected step.
            m.add(
                Counter::Solves,
                d(s.steps_accepted, b.steps_accepted)
                    + d(s.steps_rejected_lte, b.steps_rejected_lte)
                    + d(s.steps_rejected_newton, b.steps_rejected_newton),
            );
        }
    }

    lanes
        .into_iter()
        .map(|slot| match slot {
            Some(mut lane) if lane.phase == Phase::Finished => {
                // Lanes run interleaved, so per-lane wall clock is the group
                // wall clock; stamp_ns stays 0 (no timers in the hot path).
                lane.stats.wall_ns = wall;
                lane.result.set_stats(lane.stats);
                LaneOutcome::Completed(Box::new(lane.result))
            }
            _ => LaneOutcome::Ejected,
        })
        .collect()
}

/// One tick: every live lane advances exactly one Newton iteration (lanes in
/// `Begin` first propose their next point, mirroring the classic loop head).
/// Returns the number of lane-solves served by packed sweeps this tick.
fn tick(lanes: &mut [Option<Lane>], pack: &mut Option<LanePackedLu>, g: &GroupCtx) -> u64 {
    let mut packed_solves = 0u64;
    let mut role = [Role::Off; MAX_LANES];

    // Phase 0: point proposal (classic loop head + solve_point head).
    for lane in lanes.iter_mut().flatten() {
        if lane.phase == Phase::Begin {
            begin_point(lane, g);
        }
    }

    // Phase 1: stamp one Newton iteration per iterating lane.
    for (i, slot) in lanes.iter_mut().enumerate() {
        let Some(lane) = slot else { continue };
        if lane.phase != Phase::Iter {
            continue;
        }
        lane.it += 1;
        lane.stats.newton_iterations += 1;
        let x_prev2: &[f64] = if lane.hw.solutions().len() >= 2 {
            &lane.hw.solutions()[1]
        } else {
            &lane.hw.solutions()[0]
        };
        let input = StampInput {
            time: lane.t_new,
            coeffs: Some(lane.coeffs),
            x_prev: lane.hw.x(),
            x_prev2,
            cap_currents: lane.hw.cap_currents(),
            gmin: g.opts.gmin,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        };
        lane.tick_key = LinKey::of(&input);
        let sres = lane.sys.stamp_lane(&mut lane.ws, &input, &lane.x, &g.ctl, lane.it == 1);
        lane.stats.device_evals += sres.evals;
        lane.stats.bypass_hits += sres.bypassed;
        if sres.companion_hit {
            lane.stats.companion_hits += 1;
        }
        role[i] = if all_finite(&lane.ws.rhs) {
            Role::Stamped
        } else {
            // Non-finite excitation: give up on this point (classic Newton
            // returns unconverged before touching the matrix).
            Role::Done { solved: false }
        };
    }

    // Phase 2: chord attempt (factor_and_solve's reuse path). Eligibility
    // and the residual are per lane; the triangular solve is packed for
    // pack-resident lanes.
    for (i, slot) in lanes.iter_mut().enumerate() {
        let Some(lane) = slot else { continue };
        if role[i] != Role::Stamped {
            continue;
        }
        let eligible = g.opts.chord_newton
            && !lane.ws.limited
            && lane.factored()
            && lane.key == Some(lane.tick_key);
        if !eligible {
            role[i] = Role::Refactor;
            continue;
        }
        if lane.ws.matrix.residual_into(&lane.x, &lane.ws.rhs, &mut lane.resid).is_err() {
            lane.linear_error(pack, i);
            role[i] = Role::Done { solved: false };
            continue;
        }
        role[i] = match lane.factors {
            Factors::Packed => Role::ChordPacked,
            Factors::Scalar(_) => Role::ChordScalar,
            Factors::None => unreachable!("factored() checked"),
        };
    }
    if role.contains(&Role::ChordPacked) {
        let p = pack.as_mut().expect("packed lanes imply a pack");
        let kk = p.lane_count();
        let mut reqs: [Option<LaneSolve<'_>>; MAX_LANES] = core::array::from_fn(|_| None);
        for (i, slot) in lanes.iter_mut().enumerate() {
            if let Some(lane) = slot {
                if role[i] == Role::ChordPacked {
                    reqs[i] = Some(LaneSolve { b: &lane.resid, x: &mut lane.x_new });
                }
            }
        }
        packed_solves += reqs.iter().flatten().count() as u64;
        p.solve_lanes(&mut reqs[..kk]);
    }
    for (i, slot) in lanes.iter_mut().enumerate() {
        let Some(lane) = slot else { continue };
        if role[i] == Role::ChordScalar {
            let Factors::Scalar(lu) = &lane.factors else { unreachable!() };
            if lu.solve_with_scratch(&lane.resid, &mut lane.x_new, &mut lane.scratch).is_err() {
                lane.linear_error(pack, i);
                role[i] = Role::Done { solved: false };
                continue;
            }
        }
        if matches!(role[i], Role::ChordPacked | Role::ChordScalar) {
            lane.stats.solves += 1;
            let dxn = norm_inf(&lane.x_new);
            let contracting = match lane.last_dx {
                None => true,
                Some(prev) => dxn <= g.opts.chord_theta * prev,
            };
            if dxn.is_finite() && contracting {
                for (xn, &xi) in lane.x_new.iter_mut().zip(&lane.x) {
                    *xn += xi;
                }
                lane.last_dx = Some(dxn);
                lane.stats.jacobian_reuses += 1;
                role[i] = Role::Done { solved: true };
            } else {
                // Contraction stalled: pay for a factorization this tick.
                role[i] = Role::Refactor;
            }
        }
    }

    // Phase 3: (re)factorization attempt 0. Pack-resident lanes refactor in
    // one packed sweep; scalar and unfactored lanes go through their own
    // factors. Per-lane fallout (degraded pivots → fresh pivot search,
    // other errors → the classic Linear arm) is handled individually.
    let any_packed_ref = lanes.iter().enumerate().any(|(i, slot)| {
        matches!(slot, Some(lane) if role[i] == Role::Refactor && matches!(lane.factors, Factors::Packed))
    });
    let mut ref_errs: [Option<SparseError>; MAX_LANES] = core::array::from_fn(|_| None);
    if any_packed_ref {
        let p = pack.as_mut().expect("packed lanes imply a pack");
        let kk = p.lane_count();
        let mut mats: [Option<&CscMatrix>; MAX_LANES] = [None; MAX_LANES];
        for (i, slot) in lanes.iter().enumerate() {
            if let Some(lane) = slot {
                if role[i] == Role::Refactor && matches!(lane.factors, Factors::Packed) {
                    mats[i] = Some(&lane.ws.matrix);
                }
            }
        }
        p.refactor_lanes(&mats[..kk], &mut ref_errs[..kk]);
    }
    for (i, slot) in lanes.iter_mut().enumerate() {
        let Some(lane) = slot else { continue };
        if role[i] != Role::Refactor {
            continue;
        }
        lane.fresh = false;
        match &mut lane.factors {
            Factors::Packed => match ref_errs[i].take() {
                None => {
                    lane.stats.factorizations += 1;
                    lane.stats.refactorizations += 1;
                    role[i] = Role::PackedRefOk;
                }
                Some(SparseError::PivotDegraded { .. }) => {
                    // refactor_lanes already evicted the lane.
                    lane.factors = Factors::None;
                    role[i] = fresh_factor(lane, pack, i, g);
                }
                Some(_) => {
                    lane.factors = Factors::None;
                    lane.linear_error(pack, i);
                    role[i] = Role::Done { solved: false };
                }
            },
            Factors::Scalar(lu) => match lu.refactor(&lane.ws.matrix) {
                Ok(()) => {
                    lane.stats.factorizations += 1;
                    lane.stats.refactorizations += 1;
                    role[i] = Role::ScalarRefOk;
                }
                Err(SparseError::PivotDegraded { .. }) => {
                    role[i] = fresh_factor(lane, pack, i, g);
                }
                Err(_) => {
                    lane.linear_error(pack, i);
                    role[i] = Role::Done { solved: false };
                }
            },
            Factors::None => {
                role[i] = fresh_factor(lane, pack, i, g);
            }
        }
    }
    // Packed solve sweep for the lanes whose packed refactor succeeded.
    if role.contains(&Role::PackedRefOk) {
        let p = pack.as_mut().expect("packed lanes imply a pack");
        let kk = p.lane_count();
        let mut reqs: [Option<LaneSolve<'_>>; MAX_LANES] = core::array::from_fn(|_| None);
        for (i, slot) in lanes.iter_mut().enumerate() {
            if let Some(lane) = slot {
                if role[i] == Role::PackedRefOk {
                    reqs[i] = Some(LaneSolve { b: &lane.ws.rhs, x: &mut lane.x_new });
                }
            }
        }
        packed_solves += reqs.iter().flatten().count() as u64;
        p.solve_lanes(&mut reqs[..kk]);
    }
    // Scalar solves, verification, and the verify-fail retry.
    for (i, slot) in lanes.iter_mut().enumerate() {
        let Some(lane) = slot else { continue };
        match role[i] {
            Role::ScalarRefOk => {
                let Factors::Scalar(lu) = &lane.factors else { unreachable!() };
                if lu.solve_with_scratch(&lane.ws.rhs, &mut lane.x_new, &mut lane.scratch).is_err()
                {
                    lane.linear_error(pack, i);
                    role[i] = Role::Done { solved: false };
                    continue;
                }
            }
            Role::PackedRefOk => {}
            _ => continue,
        }
        lane.stats.solves += 1;
        role[i] = Role::Done { solved: verify_or_retry(lane, pack, i, g) };
    }

    // Phase 4: Newton convergence test and point tail.
    for (i, slot) in lanes.iter_mut().enumerate() {
        let Some(lane) = slot else { continue };
        let solved = match role[i] {
            Role::Done { solved } => solved,
            Role::Off => continue,
            other => unreachable!("unresolved lane role {other:?}"),
        };
        let mut point_done: Option<bool> = None;
        if !solved || !all_finite(&lane.x_new) {
            point_done = Some(false);
        } else {
            let n_nodes = lane.sys.n_nodes();
            let mut converged = !lane.ws.limited;
            for (kk, (&xn, &xo)) in lane.x_new.iter().zip(&lane.x).enumerate() {
                if !converged {
                    break;
                }
                let tol = if kk < n_nodes {
                    g.opts.vntol + g.opts.reltol * xn.abs().max(xo.abs())
                } else {
                    g.opts.abstol + g.opts.reltol * xn.abs().max(xo.abs())
                };
                if (xn - xo).abs() > tol {
                    converged = false;
                    break;
                }
            }
            lane.x.copy_from_slice(&lane.x_new);
            if converged {
                point_done = Some(true);
            } else if lane.it >= g.opts.max_newton_iters {
                point_done = Some(false);
            }
        }
        if let Some(converged) = point_done {
            finish_point(lane, converged, g);
        }
    }
    packed_solves
}

/// Fresh pivot search for one lane (the classic `backend.factor` fallback),
/// mirroring `BatchedDirectLu::factor`. On success the factors are
/// re-adopted into the pack when the new structure matches, else kept
/// scalar. Returns the lane's next role.
fn fresh_factor(
    lane: &mut Lane,
    pack: &mut Option<LanePackedLu>,
    idx: usize,
    g: &GroupCtx,
) -> Role {
    lane.fresh = true;
    match SparseLu::factor_with_ordering(&lane.ws.matrix, &g.lu_opts, (*g.ordering).clone()) {
        Ok(lu) => {
            lane.stats.factorizations += 1;
            lane.install_fresh(lu, pack, idx);
            match lane.factors {
                Factors::Packed => Role::PackedRefOk,
                _ => Role::ScalarRefOk,
            }
        }
        Err(_) => {
            lane.linear_error(pack, idx);
            Role::Done { solved: false }
        }
    }
}

/// Backward-error verification of `x_new`, with the classic one-shot retry:
/// a failed verify after a frozen-pivot refactor pays for a fresh pivot
/// search and re-verifies; a failed verify after a fresh factorization is
/// final (`Ok(false)` in the classic code — point unconverged).
fn verify_or_retry(
    lane: &mut Lane,
    pack: &mut Option<LanePackedLu>,
    idx: usize,
    g: &GroupCtx,
) -> bool {
    for attempt in 0..2 {
        if lane.ws.matrix.residual_into(&lane.x_new, &lane.ws.rhs, &mut lane.resid).is_err() {
            lane.linear_error(pack, idx);
            return false;
        }
        let scale = lane.ws.matrix.norm_inf_with_scratch(&mut lane.rowsum) * norm_inf(&lane.x_new)
            + norm_inf(&lane.ws.rhs);
        let r = norm_inf(&lane.resid);
        if r.is_finite() && r <= 1e-8 * scale.max(f64::MIN_POSITIVE) {
            lane.key = Some(lane.tick_key);
            let mut dxn = 0.0f64;
            for (&xn, &xi) in lane.x_new.iter().zip(&lane.x) {
                dxn = dxn.max((xn - xi).abs());
            }
            lane.last_dx = dxn.is_finite().then_some(dxn);
            return true;
        }
        if lane.fresh || attempt > 0 {
            lane.key = None;
            return false;
        }
        // Retry with a fresh factorization (classic attempt 1). Solve
        // through the local factors before installing them — the packed and
        // scalar solves are bit-identical, so placement doesn't matter.
        match SparseLu::factor_with_ordering(&lane.ws.matrix, &g.lu_opts, (*g.ordering).clone()) {
            Ok(lu) => {
                lane.stats.factorizations += 1;
                if lu.solve_with_scratch(&lane.ws.rhs, &mut lane.x_new, &mut lane.scratch).is_err()
                {
                    lane.linear_error(pack, idx);
                    return false;
                }
                lane.stats.solves += 1;
                lane.fresh = true;
                lane.install_fresh(lu, pack, idx);
            }
            Err(_) => {
                lane.linear_error(pack, idx);
                return false;
            }
        }
    }
    lane.key = None;
    false
}

/// Classic step-loop head + `solve_point` head: finish/eject checks, step
/// clamping, breakpoint snapping, integration coefficients, predictor.
fn begin_point(lane: &mut Lane, g: &GroupCtx) {
    // Written as the negation of the classic loop-head guard
    // (`while t < tstop - hmin/2`) so the two agree on every input,
    // NaN included.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(lane.hw.t() < g.tstop - 0.5 * g.hmin) {
        lane.phase = Phase::Finished;
        return;
    }
    if !lane.h.is_finite() {
        // Classic: NumericalBlowup — not mirrored; rerun classically.
        lane.phase = Phase::Ejected;
        return;
    }
    lane.h = lane.h.clamp(g.hmin, g.hmax);
    let mut t_new = lane.hw.t() + lane.h;
    let mut hit_bp = false;
    while lane.next_bp < lane.bps.len() && lane.bps[lane.next_bp] <= lane.hw.t() + 0.5 * g.hmin {
        lane.next_bp += 1;
    }
    if lane.next_bp < lane.bps.len() && t_new >= lane.bps[lane.next_bp] - 0.5 * g.hmin {
        t_new = lane.bps[lane.next_bp];
        hit_bp = true;
    }
    if t_new > g.tstop {
        t_new = g.tstop;
    }
    let h = t_new - lane.hw.t();
    let method = lane.hw.effective_method(g.opts.method);
    let h_prev = lane.hw.h_prev().unwrap_or(h);
    lane.coeffs = IntegCoeffs::new(method, h, h_prev);
    lane.method = method;
    lane.t_new = t_new;
    lane.hit_bp = hit_bp;
    lane.x = lane.hw.predict(t_new);
    lane.it = 0;
    lane.last_dx = None; // begin_solve()
    lane.phase = Phase::Iter;
}

/// Classic `solve_point` tail + step-loop tail: cap-current propagation,
/// rejection bookkeeping, LTE control, accept, breakpoint restart.
fn finish_point(lane: &mut Lane, converged: bool, g: &GroupCtx) {
    let t_new = lane.t_new;
    let h_attempt = t_new - lane.hw.t();
    if !converged {
        // note_rejection(): chord reuse must re-qualify.
        lane.key = None;
        lane.last_dx = None;
        lane.stats.steps_rejected_newton += 1;
        lane.h = h_attempt * g.opts.nr_shrink;
        if lane.h < g.hmin {
            // Classic: recovery ladder (or TimestepTooSmall) — not
            // mirrored; the classic rerun reproduces it exactly.
            lane.phase = Phase::Ejected;
            return;
        }
        lane.phase = Phase::Begin;
        return;
    }
    let x_prev2: &[f64] = if lane.hw.solutions().len() >= 2 {
        &lane.hw.solutions()[1]
    } else {
        &lane.hw.solutions()[0]
    };
    let sc = state_coeffs(&lane.hw, t_new);
    let cap_currents =
        lane.sys.cap_currents_after(&sc, &lane.x, lane.hw.x(), x_prev2, lane.hw.cap_currents());
    if !all_finite(&lane.x) {
        // Classic: NumericalBlowup.
        lane.phase = Phase::Ejected;
        return;
    }
    let needed = lane.method.order() + 1;
    if lane.hw.usable_for_lte() >= needed {
        let refs: Vec<&[f64]> =
            lane.hw.solutions()[..needed].iter().map(|v| v.as_slice()).collect();
        let d = lte_step_control(
            lane.method,
            t_new,
            &lane.x,
            h_attempt,
            &lane.hw.times()[..needed],
            &refs,
            &g.opts,
        );
        if !d.accept && h_attempt > g.hmin * 1.01 {
            lane.stats.steps_rejected_lte += 1;
            lane.lte_streak += 1;
            let crawling = h_attempt < g.hmin * 1e3;
            if lane.lte_streak >= 3 || crawling {
                lane.hw.mark_discontinuity();
                lane.lte_streak = 0;
                lane.h = h_attempt;
            } else {
                lane.h = d.h_new;
            }
            lane.phase = Phase::Begin;
            return;
        }
        lane.lte_streak = 0;
        lane.h = d.h_new;
    } else {
        lane.h = h_attempt * g.opts.rmax;
    }
    let sol = PointSolution {
        t: t_new,
        x: lane.x.clone(),
        method: lane.method,
        coeffs: lane.coeffs,
        converged: true,
        iterations: lane.it,
        cap_currents,
        stats: SimStats::new(),
    };
    lane.hw.accept(&sol);
    lane.result.push(t_new, &sol.x);
    lane.stats.steps_accepted += 1;
    if lane.hit_bp {
        lane.next_bp += 1;
        lane.hw.mark_discontinuity();
        let to_next =
            lane.bps.get(lane.next_bp).map_or(g.tstop - lane.hw.t(), |&b| b - lane.hw.t());
        lane.h = lane.h.min(g.tstep * 0.25).min((to_next * 0.25).max(g.hmin));
    }
    lane.phase = Phase::Begin;
}
