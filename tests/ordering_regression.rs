//! Ordering regression pins on the *real* MNA patterns the generators
//! compile to — not synthetic stand-ins.
//!
//! The bake-off facts this suite freezes (fill counts are deterministic,
//! so every bound is exact-at-pin rather than tolerance-banded):
//!
//! * On the band-structured classes (`rc_ladder`, `rlc_line`) RCM matches
//!   min-degree's fill and crushes natural ordering — band matrices are
//!   RCM's home turf and regressions there are pure loss.
//! * On the 2-D `power_grid` mesh min-degree wins, and RCM's deficit must
//!   stay inside a pinned ratio — if RCM's tie-breaking drifts and the
//!   deficit grows, the `WAVEPIPE_ORDERING=rcm` escape hatch quietly rots.

use wavepipe::circuit::generators;
use wavepipe::engine::MnaSystem;
use wavepipe::sparse::{CooMatrix, CscMatrix, LuOptions, OrderingKind, SparseLu};

/// Gives the structural pattern plausible conductance-like values: strong
/// diagonal, mildly varied off-diagonals (so value-driven pivoting cannot
/// mask a pattern-level ordering regression).
fn valued(pattern: &CscMatrix) -> CscMatrix {
    let n = pattern.ncols();
    let mut t = CooMatrix::new(n, n);
    for c in 0..n {
        for k in pattern.col_ptr()[c]..pattern.col_ptr()[c + 1] {
            let r = pattern.row_idx()[k];
            let v = if r == c { 8.0 } else { -1.0 + 0.01 * (r % 7) as f64 };
            t.push(r, c, v).unwrap();
        }
    }
    t.to_csc()
}

fn fill_counts(circuit: &wavepipe::circuit::Circuit) -> (usize, usize, usize) {
    let sys = MnaSystem::compile(circuit).expect("compile");
    let a = valued(sys.pattern());
    let fill = |kind| {
        let lu = SparseLu::factor(&a, &LuOptions { ordering: kind, ..LuOptions::default() })
            .expect("factor");
        lu.nnz_l() + lu.nnz_u()
    };
    (
        fill(OrderingKind::Natural),
        fill(OrderingKind::MinDegree),
        fill(OrderingKind::ReverseCuthillMcKee),
    )
}

#[test]
fn rcm_matches_min_degree_on_band_structured_circuits() {
    for b in [generators::rc_ladder(30), generators::rlc_line(20)] {
        let (natural, mindeg, rcm) = fill_counts(&b.circuit);
        // Parity band: within one fill entry per ~30 of min-degree's count.
        assert!(
            rcm * 30 <= mindeg * 31,
            "{}: RCM fill {rcm} regressed past min-degree {mindeg} (natural {natural})",
            b.name
        );
        assert!(
            rcm * 4 <= natural * 3,
            "{}: RCM fill {rcm} no longer crushes natural {natural}",
            b.name
        );
    }
    // Recorded counts for the pinned generators; an ordering change moves
    // these before it moves anything else.
    let (_, mindeg, rcm) = fill_counts(&generators::rc_ladder(30).circuit);
    assert_eq!((mindeg, rcm), (94, 95), "rc_ladder(30) fill counts moved");
    let (_, mindeg, rcm) = fill_counts(&generators::rlc_line(20).circuit);
    assert_eq!((mindeg, rcm), (126, 126), "rlc_line(20) fill counts moved");
}

#[test]
fn rcm_deficit_on_power_grid_stays_pinned() {
    // Min-degree is the right default on 2-D meshes; RCM trails by ~15-20%.
    // Pin the deficit at 30% so a tie-breaking drift cannot silently turn
    // the rcm knob into a fill bomb.
    for b in [generators::power_grid(6, 6), generators::power_grid(8, 8)] {
        let (natural, mindeg, rcm) = fill_counts(&b.circuit);
        assert!(
            rcm * 10 <= mindeg * 13,
            "{}: RCM fill {rcm} beyond 1.3x min-degree {mindeg} (natural {natural})",
            b.name
        );
        assert!(mindeg < natural, "{}: min-degree {mindeg} vs natural {natural}", b.name);
    }
    let (_, mindeg, rcm) = fill_counts(&generators::power_grid(8, 8).circuit);
    assert_eq!((mindeg, rcm), (680, 816), "power_grid(8,8) fill counts moved");
}
