//! Operator and preconditioner abstractions for Krylov methods.
//!
//! Iterative solvers never need the entries of the system matrix — only the
//! action `y = A·x` — so [`SparseOperator`] captures exactly that, letting
//! [`gmres()`](fn@crate::gmres) run against an assembled [`CscMatrix`], a matrix-free
//! stencil, or a product of operators without caring which. The companion
//! [`Preconditioner`] trait captures the approximate-inverse action
//! `z = M⁻¹·r`; both a dropped-fill [`crate::ilu::Ilu0`] factorization and a
//! full (possibly stale) [`SparseLu`] factorization satisfy it, which is how
//! the engine reuses frozen chord-Newton LU factors as a Krylov
//! preconditioner.

use crate::csc::CscMatrix;
use crate::error::{Result, SparseError};
use crate::lu::SparseLu;

/// The action of a square linear operator: `y = A·x`.
///
/// Implementations must be deterministic — the same `x` always produces the
/// bitwise-same `y` — because the Krylov solvers built on top are part of
/// WavePipe's bit-reproducibility contract.
pub trait SparseOperator {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A·x` into the caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x` or `y` is not of
    /// length [`dim`](SparseOperator::dim).
    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<()>;
}

impl SparseOperator for CscMatrix {
    fn dim(&self) -> usize {
        self.ncols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        self.matvec_into(x, y)
    }
}

/// The action of an approximate inverse: `z = M⁻¹·r`.
///
/// The same determinism requirement as [`SparseOperator`] applies. `scratch`
/// is caller-provided intermediate storage of length
/// [`dim`](Preconditioner::dim) so repeated applications allocate nothing.
pub trait Preconditioner {
    /// Dimension `n` of the (square) preconditioner.
    fn dim(&self) -> usize;

    /// Computes `z = M⁻¹·r` into the caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when any buffer length
    /// disagrees with [`dim`](Preconditioner::dim).
    fn apply(&self, r: &[f64], z: &mut [f64], scratch: &mut [f64]) -> Result<()>;
}

/// The do-nothing preconditioner `M = I`, for running unpreconditioned
/// Krylov iterations through the same code path.
#[derive(Debug, Clone, Copy)]
pub struct IdentityPrecond {
    n: usize,
}

impl IdentityPrecond {
    /// An identity preconditioner of dimension `n`.
    pub fn new(n: usize) -> Self {
        IdentityPrecond { n }
    }
}

impl Preconditioner for IdentityPrecond {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64], _scratch: &mut [f64]) -> Result<()> {
        if r.len() != self.n {
            return Err(SparseError::DimensionMismatch { expected: self.n, found: r.len() });
        }
        if z.len() != self.n {
            return Err(SparseError::DimensionMismatch { expected: self.n, found: z.len() });
        }
        z.copy_from_slice(r);
        Ok(())
    }
}

/// A complete LU factorization is the strongest preconditioner of all: one
/// application solves the (possibly stale) system exactly. This is the
/// chord-Newton reuse path — frozen factors of a nearby Jacobian.
impl Preconditioner for SparseLu {
    fn dim(&self) -> usize {
        self.dim()
    }

    fn apply(&self, r: &[f64], z: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        self.solve_with_scratch(r, z, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::lu::LuOptions;

    fn sample() -> CscMatrix {
        let mut t = CooMatrix::new(3, 3);
        for &(r, c, v) in &[(0, 0, 2.0), (1, 1, 3.0), (2, 2, 5.0), (0, 2, 1.0), (2, 0, 4.0)] {
            t.push(r, c, v).unwrap();
        }
        t.to_csc()
    }

    #[test]
    fn csc_operator_is_matvec() {
        let a = sample();
        let x = [1.0, -1.0, 2.0];
        let mut y = vec![0.0; 3];
        a.apply(&x, &mut y).unwrap();
        assert_eq!(y, a.matvec(&x).unwrap());
        assert_eq!(SparseOperator::dim(&a), 3);
    }

    #[test]
    fn identity_precond_copies() {
        let m = IdentityPrecond::new(3);
        let r = [1.0, 2.0, 3.0];
        let mut z = vec![0.0; 3];
        let mut s = vec![0.0; 3];
        m.apply(&r, &mut z, &mut s).unwrap();
        assert_eq!(z, r);
        assert!(m.apply(&r[..2], &mut z, &mut s).is_err());
    }

    #[test]
    fn sparse_lu_precond_solves_exactly() {
        let a = sample();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let x = [1.0, 2.0, -3.0];
        let b = a.matvec(&x).unwrap();
        let mut z = vec![0.0; 3];
        let mut s = vec![0.0; 3];
        Preconditioner::apply(&lu, &b, &mut z, &mut s).unwrap();
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-12);
        }
    }
}
