//! Engine error types.

use std::fmt;
use std::time::Duration;
use wavepipe_sparse::SparseError;

/// One rung of the transient convergence recovery ladder (see
/// `crate::recovery`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryRung {
    /// Rung 1: retry with the solver caches invalidated and disabled
    /// (bypass masks, chord LU key, companion cache).
    CacheRollback,
    /// Rung 2: cut the step below the LTE controller's floor.
    DeepCut,
    /// Rung 3: local gmin/gshunt continuation ramp at the failing point.
    GminRamp,
}

impl RecoveryRung {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryRung::CacheRollback => "cache_rollback",
            RecoveryRung::DeepCut => "deep_cut",
            RecoveryRung::GminRamp => "gmin_ramp",
        }
    }
}

/// Forensic detail attached to [`EngineError::NoConvergence`]: where the
/// residual was worst when Newton gave up, how the iteration budget was
/// spent, and which recovery rungs were tried before the error escaped.
///
/// Boxed inside the error so the happy path never pays for its size.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergenceReport {
    /// Name of the unknown with the largest final residual magnitude.
    pub worst_node: Option<String>,
    /// Final residual infinity norm at that unknown.
    pub residual: Option<f64>,
    /// Newton iterations spent per attempt: the original failing solve
    /// first, then one entry per recovery-ladder solve.
    pub iterations_history: Vec<usize>,
    /// Recovery rungs tried before giving up, in order.
    pub rungs_tried: Vec<RecoveryRung>,
}

impl fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.worst_node, self.residual) {
            (Some(node), Some(r)) => write!(f, "worst residual {r:.3e} at node {node}")?,
            (Some(node), None) => write!(f, "worst residual at node {node}")?,
            (None, Some(r)) => write!(f, "worst residual {r:.3e}")?,
            (None, None) => write!(f, "no residual detail")?,
        }
        if !self.rungs_tried.is_empty() {
            write!(f, "; rungs tried:")?;
            for rung in &self.rungs_tried {
                write!(f, " {}", rung.name())?;
            }
        }
        Ok(())
    }
}

/// Error produced by DC or transient analysis.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a fallthrough
/// arm so new failure modes (worker loss, budgets, ...) are not semver
/// breaks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The linear solver failed (singular matrix, dimension bug, ...).
    Linear(SparseError),
    /// Newton–Raphson did not converge within the iteration limit even after
    /// every continuation strategy (gmin stepping, source stepping).
    NoConvergence {
        /// Analysis time at which convergence failed (0 for DC).
        time: f64,
        /// Iterations spent in the final attempt.
        iterations: usize,
        /// Forensic detail: worst-residual node, iteration history, and the
        /// recovery rungs tried before the error escaped.
        report: Box<ConvergenceReport>,
    },
    /// The transient step size collapsed below the minimum: the local
    /// truncation error could not be controlled.
    TimestepTooSmall {
        /// Time at which the step collapsed.
        time: f64,
        /// The step that was rejected.
        step: f64,
        /// The minimum allowed step.
        hmin: f64,
    },
    /// The circuit failed structural validation.
    Circuit(wavepipe_circuit::CircuitError),
    /// An invalid analysis parameter (e.g. `tstop <= 0`).
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A non-finite value appeared in the solution vector.
    NumericalBlowup {
        /// Time at which the blowup occurred.
        time: f64,
    },
    /// An analysis referenced an independent source that does not exist.
    UnknownSource {
        /// The missing source name.
        name: String,
    },
    /// A pool or stamp worker died (panicked or disappeared) while holding a
    /// task. The runtime drains the round, retires the worker, and continues
    /// on the surviving lanes; this error only escapes when the *lead* lane
    /// is the one that died.
    WorkerLost {
        /// Lane (0 = lead/serial, 1.. = pool workers) that was lost.
        lane: u32,
        /// Stringified panic payload, or a description of the disappearance.
        cause: String,
    },
    /// The wall-clock budget set via `SimOptions::with_deadline` expired.
    /// The accepted prefix of the waveform is recoverable through the
    /// `*_recoverable` entry points.
    DeadlineExceeded {
        /// Simulated time reached when the budget ran out.
        time: f64,
        /// The budget that was configured.
        budget: Duration,
    },
    /// The run was cancelled through its `CancelToken`.
    Cancelled {
        /// Simulated time reached when cancellation was observed.
        time: f64,
    },
    /// An internal scheduling invariant was violated — a scheme-logic bug,
    /// reported as a typed error instead of a release-mode panic.
    Internal {
        /// Description of the violated invariant.
        context: String,
    },
    /// A circuit offered for value-only recompilation
    /// (`MnaSystem::with_values_from`) does not share the frozen topology:
    /// differing node/device counts, kinds, or connectivity.
    TopologyMismatch {
        /// What differed between the compiled system and the new circuit.
        context: String,
    },
}

impl EngineError {
    /// True for the cooperative-budget errors ([`EngineError::Cancelled`],
    /// [`EngineError::DeadlineExceeded`]): retry ladders must propagate
    /// these immediately instead of trying another strategy — the caller
    /// asked the run to stop.
    pub fn is_budget(&self) -> bool {
        matches!(self, EngineError::Cancelled { .. } | EngineError::DeadlineExceeded { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Linear(e) => write!(f, "linear solve failed: {e}"),
            EngineError::NoConvergence { time, iterations, report } => {
                write!(
                    f,
                    "newton failed to converge at t={time:.3e} after {iterations} iterations"
                )?;
                if report.worst_node.is_some() || report.residual.is_some() {
                    write!(f, " ({report})")?;
                }
                Ok(())
            }
            EngineError::TimestepTooSmall { time, step, hmin } => {
                write!(f, "timestep {step:.3e} below minimum {hmin:.3e} at t={time:.3e}")
            }
            EngineError::Circuit(e) => write!(f, "invalid circuit: {e}"),
            EngineError::BadParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            EngineError::NumericalBlowup { time } => {
                write!(f, "non-finite solution at t={time:.3e}")
            }
            EngineError::UnknownSource { name } => {
                write!(f, "no independent source named {name}")
            }
            EngineError::WorkerLost { lane, cause } => {
                write!(f, "worker on lane {lane} lost: {cause}")
            }
            EngineError::DeadlineExceeded { time, budget } => {
                write!(f, "deadline of {budget:?} exceeded at t={time:.3e}")
            }
            EngineError::Cancelled { time } => {
                write!(f, "run cancelled at t={time:.3e}")
            }
            EngineError::Internal { context } => {
                write!(f, "internal invariant violated: {context}")
            }
            EngineError::TopologyMismatch { context } => {
                write!(f, "circuit topology differs from the compiled system: {context}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Linear(e) => Some(e),
            EngineError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for EngineError {
    fn from(e: SparseError) -> Self {
        EngineError::Linear(e)
    }
}

impl From<wavepipe_circuit::CircuitError> for EngineError {
    fn from(e: wavepipe_circuit::CircuitError) -> Self {
        EngineError::Circuit(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_time() {
        let e = EngineError::NoConvergence { time: 1e-9, iterations: 50, report: Box::default() };
        assert!(e.to_string().contains("1.000e-9"));
    }

    #[test]
    fn convergence_report_enriches_display() {
        let report = ConvergenceReport {
            worst_node: Some("out".to_string()),
            residual: Some(2.5e-3),
            iterations_history: vec![40, 40],
            rungs_tried: vec![RecoveryRung::CacheRollback, RecoveryRung::GminRamp],
        };
        let e = EngineError::NoConvergence { time: 1e-9, iterations: 40, report: Box::new(report) };
        let msg = e.to_string();
        assert!(msg.contains("node out"), "{msg}");
        assert!(msg.contains("2.500e-3"), "{msg}");
        assert!(msg.contains("cache_rollback"), "{msg}");
        assert!(msg.contains("gmin_ramp"), "{msg}");
        // An empty report leaves the classic message untouched.
        let bare =
            EngineError::NoConvergence { time: 1e-9, iterations: 40, report: Box::default() };
        assert!(!bare.to_string().contains('('), "{bare}");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<EngineError>();
    }

    #[test]
    fn from_sparse_error() {
        let e: EngineError = SparseError::Singular { column: 2 }.into();
        assert!(matches!(e, EngineError::Linear(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn fault_tolerance_variants_format_usefully() {
        let samples = [
            EngineError::WorkerLost { lane: 3, cause: "boom".into() },
            EngineError::DeadlineExceeded { time: 1e-9, budget: Duration::from_millis(5) },
            EngineError::Cancelled { time: 2e-9 },
            EngineError::Internal { context: "too many tasks".into() },
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
        let e = EngineError::WorkerLost { lane: 3, cause: "boom".into() };
        assert!(e.to_string().contains("lane 3"));
        assert!(e.to_string().contains("boom"));
    }
}
