//! Solver-equivalence harness: the GMRES backend behind the
//! `SolverBackend` seam must be a drop-in for direct LU.
//!
//! Two contracts, in increasing strictness:
//!
//! * **LTE-scale agreement.** With the iterative path live (default
//!   tolerances) and every solver-caching layer on, waveforms must stay
//!   within the truncation-error scale of the direct reference on every
//!   benchmark class — GMRES at `tol = 1e-10` perturbs the Newton iterate
//!   below what the step controller already accepts.
//! * **Forced-fallback bit-identity.** When every solve falls back to the
//!   inner direct backend (`max_iters = 0`, or a tolerance no iteration can
//!   meet), the backend must replay the exact call sequence the reference
//!   `DirectLu` would have seen — frozen-factor chord solves included — and
//!   produce bitwise-identical waveforms.
//!
//! Knobs are pinned explicitly (solver handle included) so the assertions
//! hold unchanged on the CI env-matrix legs, `WAVEPIPE_SOLVER=gmres`
//! included.

use proptest::prelude::*;
use wavepipe::circuit::generators::{self, Benchmark};
use wavepipe::engine::{
    run_transient, FaultPlan, GmresConfig, SimOptions, SolverHandle, TransientResult,
};

/// The four benchmark classes the issue pins: two band-structured circuits,
/// a MOSFET chain that exercises bypass + chord Newton, and the 2-D mesh
/// the iterative path exists for.
fn suite() -> [Benchmark; 4] {
    [
        generators::rc_ladder(10),
        generators::rlc_line(6),
        generators::inverter_chain(8),
        generators::power_grid(4, 4),
    ]
}

/// All PR-4 caching layers on, env influence pinned off.
fn caches_on(solver: SolverHandle) -> SimOptions {
    SimOptions::default()
        .with_bypass(true)
        .with_chord_newton(true)
        .with_companion_cache(true)
        .with_stamp_workers(0)
        .with_faults(FaultPlan::new())
        .with_solver(solver)
}

fn run(b: &Benchmark, opts: &SimOptions) -> TransientResult {
    run_transient(&b.circuit, b.tstep, b.tstop, opts).unwrap_or_else(|e| panic!("{}: {e}", b.name))
}

fn assert_lte_scale(b: &Benchmark, reference: &TransientResult, gmres: &TransientResult) {
    for probe in &b.probes {
        let u = reference.unknown_of(probe).unwrap_or_else(|| panic!("probe {probe}"));
        let dev = reference.max_deviation(gmres, u);
        // Same band as the caching-equivalence suite: tiny edge-timing
        // shifts across two independently accepted grids scale with the
        // probe's swing.
        let tol = 5e-3 * reference.peak(u).max(1.0);
        assert!(
            dev < tol,
            "{} probe {probe}: gmres deviates {dev:e} from direct, above LTE scale {tol:e}",
            b.name
        );
    }
}

fn assert_bit_identical(a: &TransientResult, b: &TransientResult, what: &str) {
    assert_eq!(a.times(), b.times(), "{what}: time grids differ");
    for k in 0..a.len() {
        assert_eq!(a.solution(k), b.solution(k), "{what}: solutions differ at point {k}");
    }
}

#[test]
fn gmres_waveforms_stay_within_lte_scale_of_direct_on_all_classes() {
    for b in suite() {
        let reference = run(&b, &caches_on(SolverHandle::direct()));
        let opts = caches_on(SolverHandle::gmres(GmresConfig::default()));
        let iterative = run(&b, &opts);
        assert_lte_scale(&b, &reference, &iterative);
    }
}

#[test]
fn gmres_path_actually_iterates_on_the_power_grid() {
    // Guards the premise of the whole suite: agreement is vacuous if the
    // backend silently falls back on every solve.
    let b = generators::power_grid(4, 4);
    let res = run(&b, &caches_on(SolverHandle::gmres(GmresConfig::default())));
    let s = res.stats();
    assert!(s.krylov_iterations > 0, "no Krylov iterations recorded — backend never engaged");
    // ILU(0) breaks down on the voltage-source branch rows, so the very
    // first solve completes direct and donates its factors as the standing
    // preconditioner; after that the iterative path must carry the run.
    assert!(
        s.solver_fallbacks * 10 <= s.solves,
        "fallback took {} of {} solves — the Krylov path is not carrying the run",
        s.solver_fallbacks,
        s.solves
    );
}

#[test]
fn forced_fallback_is_bit_identical_on_all_classes() {
    // max_iters = 0: GMRES never runs, every solve replays the pending
    // factor/refactor sequence against the inner DirectLu.
    for b in suite() {
        let reference = run(&b, &caches_on(SolverHandle::direct()));
        let forced = GmresConfig { max_iters: 0, ..GmresConfig::default() };
        let fallback = run(&b, &caches_on(SolverHandle::gmres(forced)));
        assert_bit_identical(&reference, &fallback, &format!("{} forced fallback", b.name));
        assert!(
            fallback.stats().solver_fallbacks > 0,
            "{}: forced config never took the fallback path",
            b.name
        );
    }
}

#[test]
fn unreachable_tolerance_forces_fallback_bit_identically() {
    // The other way to force the fallback: a tolerance no finite-precision
    // iteration can meet, so GMRES burns its budget, stagnates, and every
    // solve completes on the direct path.
    let b = generators::power_grid(4, 4);
    let reference = run(&b, &caches_on(SolverHandle::direct()));
    let forced = GmresConfig { tol: 0.0, max_iters: 8, restart: 4, ..GmresConfig::default() };
    let fallback = run(&b, &caches_on(SolverHandle::gmres(forced)));
    assert_bit_identical(&reference, &fallback, "tolerance-forced fallback");
    assert!(fallback.stats().solver_fallbacks > 0, "tolerance never forced the fallback");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Fuzzed version of the LTE-scale contract: any sane GMRES tuning, on
    // any benchmark class, stays equivalent to the direct reference.
    #[test]
    fn any_sane_gmres_tuning_stays_equivalent(
        circuit_ix in 0usize..4,
        restart in 2usize..40,
        tol_exp in 8u32..12,
        max_iters in 50usize..300,
    ) {
        let b = &suite()[circuit_ix];
        let reference = run(b, &caches_on(SolverHandle::direct()));
        let cfg = GmresConfig {
            restart,
            tol: 10f64.powi(-(tol_exp as i32)),
            max_iters,
            ..GmresConfig::default()
        };
        let iterative = run(b, &caches_on(SolverHandle::gmres(cfg)));
        assert_lte_scale(b, &reference, &iterative);
    }
}
