//! Bit-identity of colored parallel stamping against the serial path.
//!
//! The parallel stamp executor must produce *exactly* the same matrix
//! values, RHS, junction state, and limiting flag as [`MnaSystem::stamp`] —
//! not merely numerically close — at every worker count. These tests enforce
//! that at the single-stamp level (randomized iterates, property-based) and
//! at the whole-waveform level (full transient runs over the generator
//! suite).

use proptest::prelude::*;
use std::sync::Arc;
use wavepipe_circuit::generators;
use wavepipe_engine::{
    run_transient_compiled, FaultHandle, MetricsHandle, MnaSystem, ProbeHandle, SimOptions,
    SimStats, StampExecutor, StampInput,
};

/// Deterministic pseudo-random iterate: enough structure to push junctions
/// into different regions without platform-dependent RNG state.
fn iterate(n: usize, seed: f64) -> Vec<f64> {
    (0..n).map(|i| seed * (0.7 * i as f64 + seed).sin()).collect()
}

fn dc_input<'a>(zeros: &'a [f64], caps: &'a [f64], gshunt: f64) -> StampInput<'a> {
    StampInput {
        time: 0.0,
        coeffs: None,
        x_prev: zeros,
        x_prev2: zeros,
        cap_currents: caps,
        gmin: 1e-12,
        gshunt,
        source_scale: 1.0,
        ic_mode: false,
    }
}

/// Stamps a sequence of iterates serially and through an executor with the
/// device-bypass and companion caches enabled, asserting bitwise identity
/// after each stamp. The sequence deliberately exercises the caches: later
/// iterates repeat and then barely perturb an earlier one, so some stamps
/// replay every nonlinear device from cache and some replay a mix.
fn assert_stamps_bit_identical(b: &generators::Benchmark, seed: f64, gshunt: f64, workers: usize) {
    let sys = Arc::new(MnaSystem::compile(&b.circuit).expect("compile"));
    let n = sys.n_unknowns();
    let zeros = vec![0.0; n];
    let caps = vec![0.0; sys.cap_state_count()];
    let input = dc_input(&zeros, &caps, gshunt);
    // Pinned on (the CI caches-off leg flips the env defaults): bit-identity
    // must hold with bypass and companion replay active.
    let ctl = SimOptions::default().with_bypass(true).with_companion_cache(true).cache_ctl();

    let mut ws_ser = sys.new_workspace();
    let mut ws_par = sys.new_workspace();
    let Some(mut exec) = StampExecutor::new(&sys, workers, &FaultHandle::none()) else {
        return; // no devices: nothing to compare
    };
    let probe = ProbeHandle::none();
    let metrics = MetricsHandle::none();
    let mut stats = SimStats::new();

    let x0 = iterate(n, seed);
    let x1 = iterate(n, seed + 1.0);
    // Identical to x1: every valid nonlinear device bypasses.
    let x2 = x1.clone();
    // Mixed: even unknowns move within the bypass tolerance, odd ones far
    // outside it.
    let x3: Vec<f64> =
        x1.iter().enumerate().map(|(i, v)| v + if i % 2 == 0 { 1e-9 } else { 1e-2 }).collect();
    for (step, x) in [x0, x1, x2, x3].iter().enumerate() {
        let res_ser = sys.stamp_with(&mut ws_ser, &input, x, &ctl);
        let res_par = exec.stamp(&mut ws_par, &input, x, &ctl, &probe, &metrics, &mut stats);
        let ctx = format!("{} step {step} workers {workers}", b.name);
        assert_eq!(res_ser, res_par, "{ctx}: stamp result");
        assert_eq!(ws_ser.limited, ws_par.limited, "{ctx}: limited flag");
        for (i, (a, p)) in ws_ser.matrix.values().iter().zip(ws_par.matrix.values()).enumerate() {
            assert_eq!(a.to_bits(), p.to_bits(), "{ctx}: matrix value {i}: {a:e} vs {p:e}");
        }
        for (i, (a, p)) in ws_ser.rhs.iter().zip(&ws_par.rhs).enumerate() {
            assert_eq!(a.to_bits(), p.to_bits(), "{ctx}: rhs {i}: {a:e} vs {p:e}");
        }
        for (i, (a, p)) in ws_ser.junction_state.iter().zip(&ws_par.junction_state).enumerate() {
            assert_eq!(a.to_bits(), p.to_bits(), "{ctx}: junction {i}: {a:e} vs {p:e}");
        }
    }
}

/// Runs a full transient serially and with `workers` stamp workers and
/// asserts the accepted times and every solution vector are bit-identical.
fn assert_waveforms_bit_identical(b: &generators::Benchmark, workers: usize) {
    let sys = Arc::new(MnaSystem::compile(&b.circuit).expect("compile"));
    // Caches pinned on: degradation to serial must stay exact even while
    // bypass and chord reuse are active.
    let serial =
        SimOptions::default().with_stamp_workers(0).with_bypass(true).with_chord_newton(true);
    let par =
        SimOptions::default().with_stamp_workers(workers).with_bypass(true).with_chord_newton(true);
    let r0 = run_transient_compiled(&sys, b.tstep, b.tstop, &serial).expect("serial run");
    let rw = run_transient_compiled(&sys, b.tstep, b.tstop, &par).expect("parallel run");
    assert_eq!(r0.times(), rw.times(), "{} x{workers}: accepted times differ", b.name);
    for k in 0..r0.len() {
        for (i, (a, p)) in r0.solution(k).iter().zip(rw.solution(k)).enumerate() {
            assert_eq!(
                a.to_bits(),
                p.to_bits(),
                "{} x{workers}: point {k} unknown {i}: {a:e} vs {p:e}",
                b.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stamps_bit_identical_across_suite(
        seed in -2.0f64..2.0,
        gshunt_idx in 0usize..3,
        workers in 1usize..=4,
    ) {
        let gshunt = [0.0f64, 1e-6, 1e-2][gshunt_idx];
        for b in generators::small_suite() {
            assert_stamps_bit_identical(&b, seed, gshunt, workers);
        }
    }

    #[test]
    fn transient_waveforms_bit_identical(
        bench in 0usize..16,
        workers in 1usize..=4,
    ) {
        let suite = generators::small_suite();
        let b = &suite[bench % suite.len()];
        assert_waveforms_bit_identical(b, workers);
    }
}

#[test]
fn every_generator_circuit_is_bit_identical_at_two_workers() {
    // Deterministic sweep of the full suite (the proptests sample it): the
    // canonical 2-worker configuration must be exact on every circuit.
    for b in generators::small_suite() {
        assert_waveforms_bit_identical(&b, 2);
    }
}

#[test]
fn executor_declines_zero_workers_and_empty_systems() {
    let b = generators::rc_ladder(3);
    let sys = Arc::new(MnaSystem::compile(&b.circuit).unwrap());
    assert!(StampExecutor::new(&sys, 0, &FaultHandle::none()).is_none());
    assert!(StampExecutor::new(&sys, 2, &FaultHandle::none()).is_some());
}
