//! Independent-source waveforms.
//!
//! Every independent voltage/current source carries a [`Waveform`] describing
//! its value over time. Besides evaluation, waveforms expose their
//! *breakpoints* — instants where the value or its derivative is
//! discontinuous — which the transient engine must land on exactly to keep
//! local-truncation-error estimates meaningful.

/// Time-dependent value of an independent source.
///
/// All time parameters are in seconds, values in volts or amperes according
/// to the owning source.
///
/// ```
/// use wavepipe_circuit::Waveform;
///
/// let pulse = Waveform::pulse(0.0, 5.0, 1e-9, 1e-9, 1e-9, 5e-9, 20e-9);
/// assert_eq!(pulse.value(0.0), 0.0);
/// assert_eq!(pulse.value(3e-9), 5.0);  // after rise, during pulse width
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE `PULSE(v1 v2 td tr tf pw per)` — periodic trapezoidal pulse.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first rising edge.
        td: f64,
        /// Rise time (0 is coerced to a 1 ps minimum at evaluation).
        tr: f64,
        /// Fall time (0 is coerced like `tr`).
        tf: f64,
        /// Pulse width at `v2`.
        pw: f64,
        /// Period (0 disables repetition).
        per: f64,
    },
    /// SPICE `SIN(vo va freq td theta)` — damped sine starting at `td`.
    Sin {
        /// Offset.
        vo: f64,
        /// Amplitude.
        va: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Delay.
        td: f64,
        /// Damping factor (1/s).
        theta: f64,
    },
    /// Piecewise-linear `(time, value)` points; constant extrapolation
    /// outside the range. Points must be sorted by time.
    Pwl(Vec<(f64, f64)>),
    /// SPICE `SFFM(vo va fc mdi fs)` — single-frequency FM:
    /// `vo + va * sin(2 pi fc t + mdi * sin(2 pi fs t))`.
    Sffm {
        /// Offset.
        vo: f64,
        /// Amplitude.
        va: f64,
        /// Carrier frequency (Hz).
        fc: f64,
        /// Modulation index.
        mdi: f64,
        /// Signal (modulating) frequency (Hz).
        fs: f64,
    },
    /// SPICE `EXP(v1 v2 td1 tau1 td2 tau2)` — double exponential.
    Exp {
        /// Initial value.
        v1: f64,
        /// Target value of the first exponential.
        v2: f64,
        /// Start of the rising exponential.
        td1: f64,
        /// Rise time constant.
        tau1: f64,
        /// Start of the falling exponential.
        td2: f64,
        /// Fall time constant.
        tau2: f64,
    },
}

/// Smallest edge time substituted for a zero rise/fall in `PULSE`.
const MIN_EDGE: f64 = 1e-12;

impl Waveform {
    /// Convenience constructor for a DC value.
    pub fn dc(v: f64) -> Self {
        Waveform::Dc(v)
    }

    /// Convenience constructor for `PULSE(v1 v2 td tr tf pw per)`.
    pub fn pulse(v1: f64, v2: f64, td: f64, tr: f64, tf: f64, pw: f64, per: f64) -> Self {
        Waveform::Pulse { v1, v2, td, tr, tf, pw, per }
    }

    /// Convenience constructor for `SIN(vo va freq)` with no delay/damping.
    pub fn sin(vo: f64, va: f64, freq: f64) -> Self {
        Waveform::Sin { vo, va, freq, td: 0.0, theta: 0.0 }
    }

    /// Convenience constructor for a piecewise-linear waveform.
    ///
    /// # Panics
    ///
    /// Panics if the points are not sorted by strictly increasing time.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "pwl points must have strictly increasing times");
        }
        Waveform::Pwl(points)
    }

    /// Evaluates the waveform at time `t` (t < 0 behaves like t = 0).
    pub fn value(&self, t: f64) -> f64 {
        let t = t.max(0.0);
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Pulse { v1, v2, td, tr, tf, pw, per } => {
                if t < td {
                    return v1;
                }
                let tr = tr.max(MIN_EDGE);
                let tf = tf.max(MIN_EDGE);
                let mut tl = t - td;
                if per > 0.0 {
                    tl %= per;
                }
                if tl < tr {
                    v1 + (v2 - v1) * tl / tr
                } else if tl < tr + pw {
                    v2
                } else if tl < tr + pw + tf {
                    v2 + (v1 - v2) * (tl - tr - pw) / tf
                } else {
                    v1
                }
            }
            Waveform::Sin { vo, va, freq, td, theta } => {
                if t < td {
                    vo
                } else {
                    let arg = 2.0 * std::f64::consts::PI * freq * (t - td);
                    let damp = if theta != 0.0 { (-(t - td) * theta).exp() } else { 1.0 };
                    vo + va * damp * arg.sin()
                }
            }
            Waveform::Pwl(ref pts) => {
                if pts.is_empty() {
                    return 0.0;
                }
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                if t >= pts[pts.len() - 1].0 {
                    return pts[pts.len() - 1].1;
                }
                // Binary search for the segment containing t.
                let k = pts.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = pts[k - 1];
                let (t1, v1) = pts[k];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
            Waveform::Sffm { vo, va, fc, mdi, fs } => {
                let tau = std::f64::consts::TAU;
                vo + va * (tau * fc * t + mdi * (tau * fs * t).sin()).sin()
            }
            Waveform::Exp { v1, v2, td1, tau1, td2, tau2 } => {
                let mut v = v1;
                if t >= td1 && tau1 > 0.0 {
                    v += (v2 - v1) * (1.0 - (-(t - td1) / tau1).exp());
                }
                if t >= td2 && tau2 > 0.0 {
                    v += (v1 - v2) * (1.0 - (-(t - td2) / tau2).exp());
                }
                v
            }
        }
    }

    /// Returns the slope-discontinuity instants in `[0, tstop]`, sorted.
    ///
    /// The transient engine forces a time point at each breakpoint so the
    /// integration never straddles a corner of the input.
    pub fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        let mut bp = Vec::new();
        match *self {
            Waveform::Dc(_) | Waveform::Sin { .. } | Waveform::Sffm { .. } => {}
            Waveform::Pulse { td, tr, tf, pw, per, .. } => {
                let tr = tr.max(MIN_EDGE);
                let tf = tf.max(MIN_EDGE);
                let cycle = [0.0, tr, tr + pw, tr + pw + tf];
                let mut base = td;
                loop {
                    let mut any = false;
                    for &c in &cycle {
                        let t = base + c;
                        if t <= tstop {
                            bp.push(t);
                            any = true;
                        }
                    }
                    if per <= 0.0 || !any {
                        break;
                    }
                    base += per;
                    if base > tstop {
                        break;
                    }
                }
            }
            Waveform::Pwl(ref pts) => {
                bp.extend(pts.iter().map(|&(t, _)| t).filter(|&t| t >= 0.0 && t <= tstop));
            }
            Waveform::Exp { td1, td2, .. } => {
                for t in [td1, td2] {
                    if t >= 0.0 && t <= tstop {
                        bp.push(t);
                    }
                }
            }
        }
        bp.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
        bp.dedup();
        bp
    }

    /// The value at `t = 0`, used for the DC operating point.
    pub fn dc_value(&self) -> f64 {
        self.value(0.0)
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Dc(0.0)
    }
}

impl From<f64> for Waveform {
    fn from(v: f64) -> Self {
        Waveform::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(3.3);
        assert_eq!(w.value(0.0), 3.3);
        assert_eq!(w.value(1.0), 3.3);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn pulse_phases() {
        let w = Waveform::pulse(0.0, 5.0, 1e-9, 1e-9, 2e-9, 4e-9, 0.0);
        assert_eq!(w.value(0.5e-9), 0.0); // before delay
        assert!((w.value(1.5e-9) - 2.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(3e-9), 5.0); // during pw
        assert!((w.value(7e-9) - 2.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(10e-9), 0.0); // after fall
    }

    #[test]
    fn pulse_periodic_repeats() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 3e-9, 10e-9);
        assert_eq!(w.value(2e-9), 1.0);
        assert_eq!(w.value(12e-9), 1.0); // one period later
        assert_eq!(w.value(8e-9), 0.0);
        assert_eq!(w.value(18e-9), 0.0);
    }

    #[test]
    fn pulse_zero_edges_coerced() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 1e-9, 0.0);
        assert_eq!(w.value(0.5e-9), 1.0);
        assert!(w.value(0.0) <= 1.0);
    }

    #[test]
    fn sin_basics() {
        let w = Waveform::sin(1.0, 2.0, 1e6);
        assert!((w.value(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value(0.25e-6) - 3.0).abs() < 1e-9); // quarter period peak
    }

    #[test]
    fn sin_delay_and_damping() {
        let w = Waveform::Sin { vo: 0.0, va: 1.0, freq: 1e3, td: 1e-3, theta: 1000.0 };
        assert_eq!(w.value(0.5e-3), 0.0); // held before td
        let peak = w.value(1e-3 + 0.25e-3);
        assert!(peak > 0.0 && peak < 1.0, "damped peak {peak}");
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, -2.0)]);
        assert_eq!(w.value(0.5), 1.0);
        assert_eq!(w.value(2.0), 0.0);
        assert_eq!(w.value(5.0), -2.0); // clamp right
        assert_eq!(w.value(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pwl_rejects_unsorted() {
        let _ = Waveform::pwl(vec![(1.0, 0.0), (0.5, 1.0)]);
    }

    #[test]
    fn sffm_bounded_and_modulated() {
        let w = Waveform::Sffm { vo: 1.0, va: 2.0, fc: 1e6, mdi: 5.0, fs: 1e5 };
        for k in 0..200 {
            let t = k as f64 * 1e-7;
            let v = w.value(t);
            assert!((-1.0..=3.0).contains(&v), "t={t:e}: {v}");
        }
        // Modulation changes zero-crossing spacing: compare two adjacent
        // carrier periods of an FM-heavy signal against a pure carrier.
        let pure = Waveform::sin(1.0, 2.0, 1e6);
        let mut differs = false;
        for k in 0..50 {
            let t = k as f64 * 5e-8;
            if (w.value(t) - pure.value(t)).abs() > 0.2 {
                differs = true;
                break;
            }
        }
        assert!(differs, "modulation must alter the waveform");
        assert!(w.breakpoints(1e-5).is_empty(), "smooth waveform has no corners");
    }

    #[test]
    fn exp_rises_toward_v2() {
        let w = Waveform::Exp { v1: 0.0, v2: 1.0, td1: 0.0, tau1: 1e-9, td2: 1e-6, tau2: 1e-9 };
        assert!(w.value(0.0) < 1e-12);
        assert!((w.value(10e-9) - 1.0).abs() < 1e-4);
        assert!(w.value(1e-6 + 10e-9) < 1e-3); // fallen back
    }

    #[test]
    fn pulse_breakpoints_cover_edges() {
        let w = Waveform::pulse(0.0, 1.0, 1e-9, 1e-9, 1e-9, 2e-9, 10e-9);
        let bp = w.breakpoints(12e-9);
        let has = |t: f64| bp.iter().any(|&b| (b - t).abs() < 1e-17);
        assert!(has(1e-9));
        assert!(has(2e-9)); // end of rise
        assert!(has(4e-9)); // start of fall
        assert!(has(5e-9)); // end of fall
        assert!(has(11e-9)); // second period rise
        for w2 in bp.windows(2) {
            assert!(w2[0] < w2[1]);
        }
    }

    #[test]
    fn pwl_breakpoints_are_its_knots() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(w.breakpoints(1.5), vec![0.0, 1.0]);
    }

    #[test]
    fn breakpoints_respect_tstop() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 2e-9, 8e-9);
        for &b in &w.breakpoints(5e-9) {
            assert!(b <= 5e-9);
        }
    }

    #[test]
    fn from_f64_gives_dc() {
        let w: Waveform = 2.5.into();
        assert_eq!(w, Waveform::Dc(2.5));
    }
}
