//! Additional AC-analysis integration tests: phase behaviour, high-pass
//! topology, BJT small-signal gain against hand analysis, and consistency
//! between AC and transient responses.

use wavepipe_circuit::{BjtModel, Circuit, Waveform};
use wavepipe_engine::{run_ac, run_transient, SimOptions};

fn log_freqs(fstart: f64, fstop: f64, per_decade: usize) -> Vec<f64> {
    let decades = (fstop / fstart).log10();
    let n = (decades * per_decade as f64).ceil() as usize;
    (0..=n).map(|k| fstart * 10f64.powf(decades * k as f64 / n as f64)).collect()
}

#[test]
fn rc_lowpass_phase_is_minus_45_at_corner() {
    let mut ckt = Circuit::new("rc");
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::dc(0.0), 1.0).unwrap();
    ckt.add_resistor("R1", a, b, 1e3).unwrap();
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
    let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e-6);
    let res = run_ac(&ckt, &[fc], &SimOptions::default()).unwrap();
    let out = res.unknown_of("b").unwrap();
    let p = res.phasor(out, 0);
    assert!((p.phase_deg() + 45.0).abs() < 0.5, "phase {}", p.phase_deg());
    assert!((p.magnitude() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
}

#[test]
fn cr_highpass_blocks_dc_and_passes_high() {
    let mut ckt = Circuit::new("cr");
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::dc(0.0), 1.0).unwrap();
    ckt.add_capacitor("C1", a, b, 1e-9).unwrap();
    ckt.add_resistor("R1", b, Circuit::GROUND, 1e3).unwrap();
    let freqs = log_freqs(1e2, 1e9, 3);
    let res = run_ac(&ckt, &freqs, &SimOptions::default()).unwrap();
    let out = res.unknown_of("b").unwrap();
    assert!(res.phasor(out, 0).magnitude() < 1e-3, "low f blocked");
    let last = freqs.len() - 1;
    assert!(res.phasor(out, last).magnitude() > 0.999, "high f passes");
    // Phase leads at low frequency (+90 deg limit).
    assert!(res.phasor(out, 0).phase_deg() > 85.0);
}

#[test]
fn bjt_ce_small_signal_gain_matches_gm_rc() {
    // CE stage biased through a large base resistor; emitter grounded.
    let mut ckt = Circuit::new("ce ac");
    let vcc = ckt.node("vcc");
    let b = ckt.node("b");
    let c = ckt.node("c");
    ckt.add_vsource("Vcc", vcc, Circuit::GROUND, Waveform::dc(12.0)).unwrap();
    // Base driven by DC bias + AC through the same source (source drives
    // through a series resistor so the AC sees the base divider).
    let sig = ckt.node("sig");
    ckt.add_vsource_ac("Vb", sig, Circuit::GROUND, Waveform::dc(0.8), 1.0).unwrap();
    ckt.add_resistor("Rb", sig, b, 100.0).unwrap();
    ckt.add_bjt("Q1", c, b, Circuit::GROUND, BjtModel::default()).unwrap();
    ckt.add_resistor("Rc", vcc, c, 1e3).unwrap();
    let res = run_ac(&ckt, &[1e4], &SimOptions::default()).unwrap();
    let out = res.unknown_of("c").unwrap();
    let gain = res.phasor(out, 0).magnitude();
    // gm = Ic/VT; Ic from the OP. Sanity band: the stage must amplify
    // strongly and invert.
    assert!(gain > 20.0, "gain {gain}");
    assert!((res.phasor(out, 0).phase_deg().abs() - 180.0).abs() < 5.0);
}

#[test]
fn ac_magnitude_scales_linearly() {
    // Small-signal analysis is linear in the source magnitude.
    let build = |mag: f64| {
        let mut ckt = Circuit::new("lin");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::dc(0.0), mag).unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        ckt
    };
    let opts = SimOptions::default();
    let r1 = run_ac(&build(1.0), &[1e5], &opts).unwrap();
    let r2 = run_ac(&build(2.5), &[1e5], &opts).unwrap();
    let u = r1.unknown_of("b").unwrap();
    let m1 = r1.phasor(u, 0).magnitude();
    let m2 = r2.phasor(u, 0).magnitude();
    assert!((m2 / m1 - 2.5).abs() < 1e-9, "ratio {}", m2 / m1);
}

#[test]
fn ac_agrees_with_transient_steady_state() {
    // Drive the RC filter with a transient sine at one frequency and
    // compare the settled amplitude against the AC prediction.
    let f = 300e3;
    let mut ckt = Circuit::new("xcheck");
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource_ac("V1", a, Circuit::GROUND, Waveform::sin(0.0, 1.0, f), 1.0).unwrap();
    ckt.add_resistor("R1", a, b, 1e3).unwrap();
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
    let opts = SimOptions::default();
    let ac = run_ac(&ckt, &[f], &opts).unwrap();
    let mag_ac = ac.phasor(ac.unknown_of("b").unwrap(), 0).magnitude();

    let tr = run_transient(&ckt, 1.0 / f / 60.0, 8.0 / f, &opts).unwrap();
    let bi = tr.unknown_of("b").unwrap();
    let late: Vec<f64> =
        tr.trace(bi).into_iter().filter(|&(t, _)| t > 5.0 / f).map(|(_, v)| v).collect();
    let amp_tr = 0.5
        * (late.iter().copied().fold(f64::MIN, f64::max)
            - late.iter().copied().fold(f64::MAX, f64::min));
    assert!((amp_tr - mag_ac).abs() < 0.02, "transient amplitude {amp_tr} vs AC {mag_ac}");
}
