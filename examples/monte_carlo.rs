//! Monte Carlo timing analysis: rebuild an inverter chain many times with
//! randomly perturbed device parameters (process spread), simulate each
//! sample under backward pipelining, and report the propagation-delay
//! distribution — the bread-and-butter statistical flow WavePipe's speedup
//! multiplies across.
//!
//! Run with: `cargo run --release --example monte_carlo [-- <samples>]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavepipe::circuit::{Circuit, MosModel, Waveform};
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::measure;

const VDD: f64 = 3.3;
const STAGES: usize = 8;

/// Builds the chain with per-device multiplicative parameter spread.
fn build(rng: &mut StdRng, sigma: f64) -> Result<Circuit, Box<dyn std::error::Error>> {
    let mut jitter = |nominal: f64| -> f64 {
        // Uniform +-3 sigma spread, cheap stand-in for a Gaussian.
        nominal * (1.0 + sigma * rng.gen_range(-3.0..3.0))
    };
    let mut ckt = Circuit::new("mc inverter chain");
    let vdd = ckt.node("vdd");
    ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(VDD))?;
    let inp = ckt.node("in");
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, VDD, 1e-9, 0.15e-9, 0.15e-9, 10e-9, 0.0),
    )?;
    let mut prev = inp;
    for i in 0..STAGES {
        let out = ckt.node(&format!("s{i}"));
        let nmos = MosModel {
            kp: jitter(1e-4),
            vt0: jitter(0.7),
            w: 20e-6,
            l: 1e-6,
            cgs: 5e-15,
            cgd: 5e-15,
            ..MosModel::nmos()
        };
        let pmos = MosModel {
            kp: jitter(5e-5),
            vt0: -jitter(0.7),
            w: 40e-6,
            l: 1e-6,
            cgs: 5e-15,
            cgd: 5e-15,
            ..MosModel::pmos()
        };
        ckt.add_mosfet(&format!("Mp{i}"), out, prev, vdd, pmos)?;
        ckt.add_mosfet(&format!("Mn{i}"), out, prev, Circuit::GROUND, nmos)?;
        ckt.add_capacitor(&format!("Cl{i}"), out, Circuit::GROUND, jitter(20e-15))?;
        prev = out;
    }
    Ok(ckt)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args().nth(1).map_or(Ok(40), |s| s.parse())?;
    let mut rng = StdRng::seed_from_u64(0xC1AC0);
    let opts = WavePipeOptions::new(Scheme::Backward, 2);
    let last = format!("s{}", STAGES - 1);
    let vmid = VDD / 2.0;

    let mut delays = Vec::with_capacity(samples);
    let mut total_cp = 0u64;
    for k in 0..samples {
        let ckt = build(&mut rng, 0.05)?;
        let rep = run_wavepipe(&ckt, 0.02e-9, 12e-9, &opts)?;
        total_cp += rep.critical_work;
        let res = &rep.result;
        let inp = res.unknown_of("in").expect("in");
        let out = res.unknown_of(&last).expect("last stage");
        let d = measure::delay(
            &res.trace(inp),
            vmid,
            measure::Edge::Rising,
            &res.trace(out),
            vmid,
            measure::Edge::Rising, // even number of stages
            0,
        )
        .ok_or_else(|| format!("sample {k}: no output edge"))?;
        delays.push(d);
    }

    delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = delays.iter().sum::<f64>() / delays.len() as f64;
    let var = delays.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / delays.len() as f64;
    let pct = |p: f64| delays[((delays.len() - 1) as f64 * p) as usize];
    println!("{samples} Monte Carlo samples of a {STAGES}-stage chain (5% parameter spread)");
    println!("chain delay: mean {:.1} ps, sigma {:.1} ps", mean * 1e12, var.sqrt() * 1e12);
    println!(
        "             min {:.1} / p50 {:.1} / p95 {:.1} / max {:.1} ps",
        delays[0] * 1e12,
        pct(0.5) * 1e12,
        pct(0.95) * 1e12,
        delays[delays.len() - 1] * 1e12
    );
    println!("critical-path work across all samples: {total_cp} units");
    assert!(var.sqrt() > 0.0, "spread must show up in the delays");
    Ok(())
}
