//! Sparse linear algebra substrate for the WavePipe circuit simulator.
//!
//! A SPICE-class transient simulator spends most of its time assembling and
//! solving the sparse modified-nodal-analysis (MNA) system, so this crate
//! provides exactly the kernels that loop needs — written from scratch, with
//! the split that matters for Newton iteration:
//!
//! * [`CooMatrix`] — triplet assembly with MNA "stamping" semantics
//!   (duplicates are summed, cancelled entries stay in the pattern).
//! * [`CscMatrix`] — compressed sparse column storage, matvec/residual
//!   kernels, pattern queries.
//! * [`SparseLu`] — Gilbert–Peierls LU with threshold partial pivoting and a
//!   KLU-style numeric-only [`SparseLu::refactor`] fast path that replays the
//!   recorded pivot order and elimination pattern.
//! * [`ordering`] — minimum-degree and reverse Cuthill–McKee fill-reducing
//!   orderings.
//! * [`operator`] — the matrix-free [`SparseOperator`] / [`Preconditioner`]
//!   abstractions Krylov methods iterate against.
//! * [`gmres()`](fn@crate::gmres) — restarted GMRES(m) with Givens-rotation least-squares and
//!   right preconditioning.
//! * [`ilu`] — the zero-fill ILU(0) preconditioner.
//! * [`DenseMatrix`] — dense LU used as a correctness oracle and for tiny
//!   systems.
//! * [`vector`] — dense vector kernels including the weighted-RMS error norm
//!   used by local-truncation-error control.
//!
//! # Example
//!
//! ```
//! use wavepipe_sparse::{CooMatrix, LuOptions, SparseLu};
//!
//! # fn main() -> Result<(), wavepipe_sparse::SparseError> {
//! // Assemble a small conductance matrix by stamping.
//! let mut g = CooMatrix::new(3, 3);
//! for i in 0..3 {
//!     g.push(i, i, 2.0)?;
//! }
//! g.push(0, 1, -1.0)?;
//! g.push(1, 0, -1.0)?;
//! g.push(1, 2, -1.0)?;
//! g.push(2, 1, -1.0)?;
//! let a = g.to_csc();
//!
//! // Factor once, then solve (and refactor cheaply when values change).
//! let lu = SparseLu::factor(&a, &LuOptions::default())?;
//! let x = lu.solve(&[1.0, 0.0, 0.0])?;
//! assert!((a.matvec(&x)?[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod coo;
mod csc;
mod dense;
mod error;
pub mod gmres;
pub mod ilu;
pub mod lanes;
mod lu;
pub mod operator;
pub mod ordering;
pub mod vector;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use dense::DenseMatrix;
pub use error::{Result, SparseError};
pub use gmres::{gmres, GmresOptions, GmresOutcome};
pub use ilu::Ilu0;
pub use lanes::{LanePackedLu, LaneSolve, MAX_LANES};
pub use lu::{LuOptions, SparseLu};
pub use operator::{IdentityPrecond, Preconditioner, SparseOperator};
pub use ordering::{OrderingKind, Permutation};
