//! Determinism and reporting invariants of the parallel schemes.

use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::run_transient;

#[test]
fn wavepipe_runs_are_bitwise_deterministic() {
    // Real threads, but commits are ordered: two runs must agree exactly.
    let b = generators::power_grid(4, 4);
    for scheme in [Scheme::Backward, Scheme::Forward, Scheme::Combined] {
        let opts = WavePipeOptions::new(scheme, 3);
        let r1 = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
        let r2 = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
        assert_eq!(r1.result.times(), r2.result.times(), "{scheme}: time grids differ");
        for k in 0..r1.result.len() {
            assert_eq!(r1.result.solution(k), r2.result.solution(k), "{scheme}: point {k} differs");
        }
        assert_eq!(r1.rounds, r2.rounds);
        assert_eq!(r1.lead_accepted, r2.lead_accepted);
        assert_eq!(r1.speculation_accepted, r2.speculation_accepted);
    }
}

#[test]
fn serial_scheme_equals_engine_run() {
    let b = generators::rc_ladder(8);
    let opts = WavePipeOptions::new(Scheme::Serial, 1);
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    let eng = run_transient(&b.circuit, b.tstep, b.tstop, &opts.sim).unwrap();
    assert_eq!(rep.result.times(), eng.times());
    assert_eq!(rep.critical_work, eng.stats().work_units());
}

#[test]
fn critical_path_never_exceeds_total_work() {
    for b in [generators::rc_ladder(8), generators::inverter_chain(3)] {
        for (scheme, threads) in [(Scheme::Backward, 3), (Scheme::Forward, 2), (Scheme::Combined, 4)] {
            let rep =
                run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(scheme, threads))
                    .unwrap();
            assert!(
                rep.critical_work <= rep.total.work_units(),
                "{}: {scheme} critical {} > total {}",
                b.name,
                rep.critical_work,
                rep.total.work_units()
            );
            assert!(rep.rounds > 0);
            assert!(rep.accept_rate() >= 0.0 && rep.accept_rate() <= 1.0);
        }
    }
}

#[test]
fn reports_count_all_accepted_points() {
    let b = generators::amp_chain(1);
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(Scheme::Backward, 2))
        .unwrap();
    // Points = accepted steps + the DC operating point.
    assert_eq!(rep.result.len(), rep.total.steps_accepted + 1);
    // Time grid is strictly increasing and ends at tstop.
    let times = rep.result.times();
    for w in times.windows(2) {
        assert!(w[0] < w[1]);
    }
    let last = *times.last().unwrap();
    assert!((last - b.tstop).abs() < 1e-3 * b.tstop, "ends at {last:e}, want {:e}", b.tstop);
}
