//! Property-based serial-equivalence: for randomized circuits and scheme
//! configurations, WavePipe must agree with the serial engine within the
//! integration-tolerance band — the paper's central claim, fuzzed.

use proptest::prelude::*;
use wavepipe_circuit::{Circuit, Waveform};
use wavepipe_core::{run_wavepipe, verify, Scheme, WavePipeOptions};
use wavepipe_engine::{run_transient, SimOptions};

#[derive(Debug, Clone)]
struct LadderCase {
    sections: usize,
    r: f64,
    c: f64,
    period: f64,
    threads: usize,
    scheme_pick: u8,
}

fn ladder_case() -> impl Strategy<Value = LadderCase> {
    (2usize..8, 50.0f64..5e3, 1e-13f64..1e-11, 5e-9f64..50e-9, 2usize..4, 0u8..4).prop_map(
        |(sections, r, c, period, threads, scheme_pick)| LadderCase {
            sections,
            r,
            c,
            period,
            threads,
            scheme_pick,
        },
    )
}

fn build(case: &LadderCase) -> Circuit {
    let mut ckt = Circuit::new("prop ladder");
    let inp = ckt.node("in");
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::pulse(
            0.0,
            1.0,
            0.0,
            case.period / 20.0,
            case.period / 20.0,
            case.period * 0.45,
            case.period,
        ),
    )
    .expect("vsource");
    let mut prev = inp;
    for i in 0..case.sections {
        let node = ckt.node(&format!("l{i}"));
        ckt.add_resistor(&format!("R{i}"), prev, node, case.r).expect("resistor");
        ckt.add_capacitor(&format!("C{i}"), node, Circuit::GROUND, case.c).expect("capacitor");
        prev = node;
    }
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_scheme_matches_serial_on_random_ladders(case in ladder_case()) {
        let ckt = build(&case);
        let tstop = 2.5 * case.period;
        let tstep = case.period / 100.0;
        let serial = run_transient(&ckt, tstep, tstop, &SimOptions::default()).expect("serial");
        let scheme = match case.scheme_pick {
            0 => Scheme::Backward,
            1 => Scheme::Forward,
            2 => Scheme::Combined,
            _ => Scheme::Adaptive,
        };
        let opts = WavePipeOptions::new(scheme, case.threads);
        let rep = run_wavepipe(&ckt, tstep, tstop, &opts).expect("wavepipe");
        let eq = verify::compare(&serial, &rep.result);
        prop_assert!(
            eq.rms_rel() < 0.02,
            "{:?} x{} on {:?}: rms {}",
            scheme,
            case.threads,
            case,
            eq.rms_rel()
        );
        // Time grids terminate identically.
        let t_end = *rep.result.times().last().expect("non-empty");
        prop_assert!((t_end - tstop).abs() < 1e-6 * tstop);
    }

    #[test]
    fn speedup_reports_are_sane(case in ladder_case()) {
        let ckt = build(&case);
        let tstop = 1.5 * case.period;
        let tstep = case.period / 60.0;
        let serial = run_transient(&ckt, tstep, tstop, &SimOptions::default()).expect("serial");
        let rep = run_wavepipe(&ckt, tstep, tstop, &WavePipeOptions::new(Scheme::Backward, case.threads))
            .expect("wavepipe");
        let s = rep.modeled_speedup(serial.stats());
        prop_assert!(s.is_finite() && s > 0.2 && s < 8.0, "speedup {}", s);
        prop_assert!(rep.critical_work <= rep.total.work_units());
        prop_assert!(rep.result.len() >= 3);
    }
}
