//! Forward pipelining.
//!
//! While thread T1 solves the point at `t_1`, thread T2 *speculatively*
//! starts Newton at `t_2 = t_1 + h_2` — its integration history contains a
//! polynomial **prediction** of `x(t_1)` instead of the (not yet known)
//! solution. Chains deeper than two speculate on every intermediate point.
//!
//! When the true `x(t_1)` lands:
//!
//! * if the prediction was close (within `fp_accept_factor` of the Newton
//!   tolerance), the speculative iterate is an excellent warm start: the
//!   point is *re-solved against the true history* starting from it, which
//!   typically converges in 1–2 iterations instead of a cold solve. Only
//!   that short refinement sits on the critical path.
//! * if the prediction was off, the speculative work is discarded entirely
//!   and the point is solved later as usual.
//!
//! Accuracy is never compromised: every committed point is the converged
//! solution of the true equations with the true history, and passes the same
//! LTE test as the serial engine.

use crate::options::{Scheme, WavePipeOptions};
use crate::pipeline::{drive, usable_prefix, Commit, Driver, Task};
use crate::report::{RunOutcome, WavePipeReport};
use wavepipe_circuit::Circuit;
use wavepipe_engine::{HistoryWindow, PointSolution, Result};
use wavepipe_sparse::vector::wrms_norm;
use wavepipe_telemetry::{Counter, DiscardReason, EventKind};

/// Emits one [`EventKind::SpeculationDiscarded`] for the broken link `i` with
/// its own `reason`, plus [`DiscardReason::ChainBroken`] for every deeper link
/// it invalidated — so the event stream mirrors the `spec_rejected` counter
/// exactly.
fn emit_chain_discard(drv: &Driver, solutions: &[PointSolution], i: usize, reason: DiscardReason) {
    drv.wp.sim.probe.emit(solutions[i].t, EventKind::SpeculationDiscarded { reason });
    for sol in &solutions[i + 1..] {
        drv.wp
            .sim
            .probe
            .emit(sol.t, EventKind::SpeculationDiscarded { reason: DiscardReason::ChainBroken });
    }
    drv.wp.sim.metrics.add(Counter::SpeculationDiscarded, (solutions.len() - i) as u64);
}

/// Builds the speculative window for the next chain link: the current
/// (possibly already speculative) window advanced by a *predicted* point.
pub(crate) fn speculate_next(
    drv: &Driver,
    hw: &HistoryWindow,
    t: f64,
) -> (HistoryWindow, Vec<f64>) {
    let x_pred = hw.predict(t);
    let next = hw.speculate(&drv.sys, t, x_pred.clone());
    (next, x_pred)
}

/// Pre-filter: `true` if a prediction was close enough to the truth that a
/// warm-start refinement is worth attempting. Compares **node voltages
/// only** — the companion models read node voltages (capacitors) and
/// inductor branch currents, and the latter are continuous by physics, while
/// source branch currents can jump and carry no history information.
pub(crate) fn prediction_close(drv: &Driver, predicted: &[f64], truth: &[f64]) -> bool {
    let nn = drv.sys.n_nodes();
    let err: Vec<f64> = predicted[..nn].iter().zip(&truth[..nn]).map(|(&p, &t)| p - t).collect();
    let n = wrms_norm(&err, &truth[..nn], drv.wp.sim.reltol, drv.wp.sim.vntol);
    n <= drv.wp.fp_accept_factor
}

/// Runs a forward-pipelined transient analysis.
///
/// # Errors
///
/// Same failure modes as the serial engine
/// ([`wavepipe_engine::run_transient`]).
pub fn run_forward(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<WavePipeReport> {
    run_forward_recoverable(circuit, tstep, tstop, wp)?.into_result()
}

/// Fault-tolerant variant of [`run_forward`]: a mid-run failure (deadline,
/// cancellation, lead-solver loss) yields the report over the accepted
/// prefix alongside the error.
///
/// # Errors
///
/// Pre-run failures only (bad parameters, compile, DC operating point).
pub fn run_forward_recoverable(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<RunOutcome> {
    let mut drv = Driver::new(circuit, tstep, tstop, wp)?;
    let width = wp.width();
    let error = drive(&mut drv, width, forward_round);
    Ok(RunOutcome { report: drv.finish(Scheme::Forward), error })
}

/// One forward-pipelined round: solve the base point plus a speculative
/// chain concurrently, then validate/refine/commit. Returns the number of
/// committed points.
///
/// # Errors
///
/// Same failure modes as the serial engine.
pub(crate) fn forward_round(drv: &mut Driver, width: usize) -> Result<usize> {
    let wp = drv.wp.clone();
    {
        drv.h = drv.h.clamp(drv.hmin, drv.hmax);
        // Target ladder: follow the stride trajectory serial would take —
        // the recent LTE growth prediction — scaled by the ablation knob.
        let growth = (drv.last_growth.clamp(1.0, wp.sim.rmax) * wp.fp_stride_factor).max(0.1);
        let mut targets = Vec::with_capacity(width);
        let mut t = drv.hw.t();
        let mut gap = drv.h;
        for _ in 0..width {
            t += gap;
            targets.push(t);
            gap = (gap * growth).clamp(drv.hmin, drv.hmax);
        }
        let (targets, hit) = drv.clip_targets(&targets);
        wp.sim.probe.emit(drv.hw.t(), EventKind::RoundStart { width: targets.len() as u32 });

        // Build the speculative chain of windows.
        let mut tasks = Vec::with_capacity(targets.len());
        let mut predictions: Vec<Vec<f64>> = Vec::with_capacity(targets.len());
        let mut window = drv.hw.clone();
        for (i, &tt) in targets.iter().enumerate() {
            tasks.push(Task { hw: window.clone(), t: tt, guess: None });
            if i + 1 < targets.len() {
                let (next, pred) = speculate_next(drv, &window, tt);
                predictions.push(pred);
                window = next;
            }
        }

        let sols = drv.solve_round(tasks, wp.sim.max_newton_iters)?;
        // Chain slots past a lost worker are dropped (slots >= 1 are all
        // speculative here); the surviving prefix commits normally.
        let (solutions, truncated) = usable_prefix(drv, sols, 1)?;

        // Commit the base point under serial semantics.
        let base = &solutions[0];
        let h_attempt = base.coeffs.h;
        let mut truth = match drv.try_commit(base) {
            Commit::Accepted { h_next } => {
                drv.h = h_next;
                base.x.clone()
            }
            Commit::RejectedLte { h_retry } => {
                drv.spec_rejected += solutions.len() - 1;
                if solutions.len() > 1 {
                    emit_chain_discard(drv, &solutions, 1, DiscardReason::ChainBroken);
                }
                drv.base_lte_reject(h_attempt, h_retry);
                wp.sim.probe.emit(drv.hw.t(), EventKind::RoundEnd { committed: 0 });
                return Ok(0);
            }
            Commit::RejectedNewton => {
                drv.spec_rejected += solutions.len() - 1;
                if solutions.len() > 1 {
                    emit_chain_discard(drv, &solutions, 1, DiscardReason::ChainBroken);
                }
                let rescued = drv.newton_backoff(h_attempt, base.iterations)?;
                let committed = usize::from(rescued);
                wp.sim.probe.emit(drv.hw.t(), EventKind::RoundEnd { committed: committed as u32 });
                return Ok(committed);
            }
        };
        let mut committed = 1usize;
        let mut committed_all = !truncated;

        // Walk the speculative chain: validate prediction, refine, commit.
        for (i, spec_sol) in solutions.iter().enumerate().skip(1) {
            let predicted = &predictions[i - 1];
            if !spec_sol.converged || !prediction_close(drv, predicted, &truth) {
                drv.spec_rejected += solutions.len() - i;
                let reason = if spec_sol.converged {
                    DiscardReason::PredictionFar
                } else {
                    DiscardReason::Unconverged
                };
                emit_chain_discard(drv, &solutions, i, reason);
                committed_all = false;
                break;
            }
            // Refine against the TRUE history, warm-started from the
            // speculative iterate, under a short iteration budget — if the
            // warm start cannot converge within it, the speculation was not
            // close enough to pay off. Sequential: goes on the critical path.
            let refined = drv.refine_solve(spec_sol.t, &spec_sol.x, wp.fp_refine_iters)?;
            drv.account_sequential(&refined.stats);
            if !refined.converged {
                // Not an error and not a step problem: the point will be
                // solved cold as the next round's base at the current step.
                drv.spec_rejected += solutions.len() - i;
                emit_chain_discard(drv, &solutions, i, DiscardReason::RefineBudget);
                committed_all = false;
                break;
            }
            match drv.try_commit(&refined) {
                Commit::Accepted { h_next } => {
                    drv.spec_accepted += 1;
                    wp.sim.probe.emit(refined.t, EventKind::SpeculationAccepted);
                    wp.sim.metrics.inc(Counter::SpeculationAccepted);
                    committed += 1;
                    drv.h = h_next;
                    truth = refined.x.clone();
                }
                Commit::RejectedLte { h_retry } => {
                    drv.total.steps_rejected_lte += 1;
                    drv.spec_rejected += solutions.len() - i;
                    emit_chain_discard(drv, &solutions, i, DiscardReason::LteRejected);
                    drv.h = h_retry;
                    committed_all = false;
                    break;
                }
                Commit::RejectedNewton => {
                    drv.spec_rejected += solutions.len() - i;
                    emit_chain_discard(drv, &solutions, i, DiscardReason::NewtonRejected);
                    committed_all = false;
                    break;
                }
            }
        }

        if hit && committed_all {
            drv.handle_breakpoint_landing();
        }
        wp.sim.probe.emit(drv.hw.t(), EventKind::RoundEnd { committed: committed as u32 });
        Ok(committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::generators;
    use wavepipe_engine::{run_transient, SimOptions};

    fn wp(threads: usize) -> WavePipeOptions {
        // Pin serial stamping so the `WAVEPIPE_STAMP_WORKERS` override cannot
        // shrink the lane budget these tests assert against.
        WavePipeOptions::new(Scheme::Forward, threads).with_stamp_workers(0)
    }

    #[test]
    fn forward_matches_serial_on_rc_ladder() {
        let b = generators::rc_ladder(8);
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        let rep = run_forward(&b.circuit, b.tstep, b.tstop, &wp(2)).unwrap();
        let probe = serial.unknown_of(&b.probes[0]).unwrap();
        let dev = serial.max_deviation(&rep.result, probe);
        assert!(dev < 0.02, "deviation vs serial = {dev}");
    }

    #[test]
    fn forward_accepts_speculation_on_smooth_waveforms() {
        let b = generators::amp_chain(1);
        let rep = run_forward(&b.circuit, b.tstep, b.tstop, &wp(2)).unwrap();
        let total_spec = rep.speculation_accepted + rep.speculation_rejected;
        assert!(total_spec > 0, "no speculation attempted");
        assert!(
            rep.speculation_accepted as f64 / total_spec as f64 > 0.5,
            "accept rate too low: {}/{}",
            rep.speculation_accepted,
            total_spec
        );
    }

    #[test]
    fn forward_gains_on_newton_heavy_and_never_collapses() {
        // Forward pipelining pays in proportion to the Newton weight of a
        // cold point solve: on a linear circuit NR converges in ~2
        // iterations and the warm-start refinement costs the same, so the
        // best case is parity; on Newton-heavier nonlinear circuits the
        // refinement is cheaper than a cold solve and FP pulls ahead.
        let lin = generators::rc_ladder(8);
        let serial_lin =
            run_transient(&lin.circuit, lin.tstep, lin.tstop, &SimOptions::default()).unwrap();
        let rep_lin = run_forward(&lin.circuit, lin.tstep, lin.tstop, &wp(2)).unwrap();
        let s_lin = rep_lin.modeled_speedup(serial_lin.stats());
        assert!(s_lin > 0.80, "linear-circuit FP should stay near parity, got {s_lin:.3}");

        let amp = generators::amp_chain(1);
        let serial_amp =
            run_transient(&amp.circuit, amp.tstep, amp.tstop, &SimOptions::default()).unwrap();
        let rep_amp = run_forward(&amp.circuit, amp.tstep, amp.tstop, &wp(2)).unwrap();
        let s_amp = rep_amp.modeled_speedup(serial_amp.stats());
        assert!(s_amp > 1.0, "nonlinear-circuit FP speedup = {s_amp:.3}");
    }

    #[test]
    fn forward_handles_digital_switching() {
        let b = generators::inverter_chain(3);
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        let rep = run_forward(&b.circuit, b.tstep, b.tstop, &wp(2)).unwrap();
        let probe = serial.unknown_of(&b.probes[0]).unwrap();
        // Digital edges shift slightly between grids; compare peak behaviour
        // and a generous pointwise band rather than exact alignment.
        let peak_s = serial.peak(probe);
        let peak_w = rep.result.peak(rep.result.unknown_of(&b.probes[0]).unwrap());
        assert!((peak_s - peak_w).abs() < 0.2, "peaks differ: {peak_s} vs {peak_w}");
    }
}
