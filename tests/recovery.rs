//! Transient convergence recovery ladder: the rescue path must save runs
//! that previously died with `TimestepTooSmall`/`NoConvergence`, must stay
//! deterministic under forced-non-convergence chaos, and — the
//! zero-overhead invariant — must not perturb a single bit of any run that
//! never needed it.

use proptest::prelude::*;
use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{
    run_transient, EngineError, FaultKind, FaultPlan, MetricsHandle, MetricsRegistry, SimOptions,
    TransientResult,
};

/// Asserts two waveforms share the exact time grid and bit-identical
/// solution vectors.
fn assert_bit_identical(a: &TransientResult, b: &TransientResult, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: point counts differ");
    assert_eq!(a.times(), b.times(), "{what}: time grids differ");
    for k in 0..a.len() {
        let (xa, xb) = (a.solution(k), b.solution(k));
        assert_eq!(xa, xb, "{what}: solutions differ at point {k}");
        for (va, vb) in xa.iter().zip(xb) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}: ulp divergence at point {k}");
        }
    }
}

/// A fault plan forcing the first `n` point solves on lane 0 to report
/// non-convergence. The step controller shrinks through the whole range
/// (`nr_shrink = 0.125`, `hmin = 1e-10 * tstop`), collapses below the
/// floor, and must enter the recovery ladder; rescue solves are
/// fault-exempt, so rung 1 always lands.
fn nc_burst(n: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for seq in 0..n {
        plan = plan.with_solve_fault(0, Some(seq), FaultKind::ForceNonConvergence);
    }
    plan
}

#[test]
fn forced_nonconvergence_is_rescued_in_the_serial_engine() {
    let b = generators::rc_ladder(6);
    let clean =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();

    let registry = MetricsRegistry::shared();
    let opts = SimOptions::default()
        .with_stamp_workers(0)
        .with_faults(nc_burst(30))
        .with_metrics(MetricsHandle::new(registry.clone()));
    let rescued = run_transient(&b.circuit, b.tstep, b.tstop, &opts)
        .expect("the ladder must rescue a forced-non-convergence burst");
    for k in 0..rescued.len() {
        assert!(rescued.solution(k).iter().all(|v| v.is_finite()), "non-finite at point {k}");
    }

    // The ladder actually ran: attempts, rollbacks, and rescues all ticked.
    let snap = registry.snapshot();
    assert!(snap.counter("recovery_attempts") > 0, "no recovery attempts recorded");
    assert!(snap.counter("cache_rollbacks") > 0, "no cache rollbacks recorded");
    assert!(snap.counter("recovery_rescues") > 0, "no rescues recorded");

    // Rescued points crawl at the step floor near t=0, but the run must
    // stay accurate once the fault range is exhausted.
    let eq = wavepipe::core::verify::compare(&clean, &rescued);
    assert!(eq.rms_rel() < 0.05, "rms deviation after rescue = {}", eq.rms_rel());
}

#[test]
fn recovery_off_surfaces_timestep_too_small() {
    // The exact same burst with the ladder disabled is the classic death:
    // the controller shrinks to the floor and gives up.
    let b = generators::rc_ladder(6);
    let opts =
        SimOptions::default().with_stamp_workers(0).with_faults(nc_burst(30)).with_recovery(false);
    let err = run_transient(&b.circuit, b.tstep, b.tstop, &opts).unwrap_err();
    assert!(matches!(err, EngineError::TimestepTooSmall { .. }), "got {err}");
}

#[test]
fn stiff_diode_transient_completes_via_the_ladder() {
    // The acceptance fixture: a nonlinear rectifier whose solves are forced
    // unconverged long enough to previously abort, now completes.
    let b = generators::diode_rectifier();
    let clean =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    let opts = SimOptions::default().with_stamp_workers(0).with_faults(nc_burst(25));
    assert!(
        run_transient(&b.circuit, b.tstep, b.tstop, &opts.clone().with_recovery(false)).is_err(),
        "without the ladder this fixture must die"
    );
    let rescued = run_transient(&b.circuit, b.tstep, b.tstop, &opts).expect("ladder rescue");
    let eq = wavepipe::core::verify::compare(&clean, &rescued);
    assert!(eq.rms_rel() < 0.05, "rms deviation = {}", eq.rms_rel());
}

#[test]
fn every_scheme_survives_forced_nonconvergence_on_the_lead_lane() {
    // The Driver's `newton_backoff` mirrors the serial rescue-commit
    // sequence; all four pipelining schemes must absorb a lead-lane burst.
    let b = generators::rc_ladder(6);
    let clean =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    for scheme in [Scheme::Backward, Scheme::Forward, Scheme::Combined, Scheme::Adaptive] {
        let opts = WavePipeOptions::new(scheme, 3).with_stamp_workers(0).with_faults(nc_burst(30));
        let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts)
            .unwrap_or_else(|e| panic!("{scheme}: ladder failed to rescue: {e}"));
        let eq = wavepipe::core::verify::compare(&clean, &rep.result);
        assert!(eq.rms_rel() < 0.05, "{scheme}: rms deviation = {}", eq.rms_rel());
    }
}

#[test]
fn nonconvergence_chaos_is_deterministic_and_accurate() {
    // The CI chaos-NC leg in miniature: seeded forced-non-convergence
    // draws across the run must neither break completion, nor accuracy,
    // nor run-to-run bit determinism.
    let b = generators::power_grid(4, 4);
    let serial =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    let opts = WavePipeOptions::new(Scheme::Backward, 2)
        .with_stamp_workers(0)
        .with_faults(FaultPlan::seeded_with_nonconvergence(0xC0FFEE));
    let r1 = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    let r2 = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    assert_bit_identical(&r1.result, &r2.result, "nc-chaos determinism");
    let eq = wavepipe::core::verify::compare(&serial, &r1.result);
    assert!(eq.rms_rel() < 0.02, "rms deviation under nc chaos = {}", eq.rms_rel());
}

// Zero-overhead invariant, fuzzed: a clean run (no faults, no failures)
// must be bit-identical with the recovery ladder armed or disarmed, for
// the serial engine and every pipelining scheme.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn clean_runs_ignore_the_recovery_flag(stages in 3usize..8, scheme_ix in 0usize..5) {
        let b = generators::rc_ladder(stages);
        let scheme = [
            Scheme::Serial,
            Scheme::Backward,
            Scheme::Forward,
            Scheme::Combined,
            Scheme::Adaptive,
        ][scheme_ix];
        let base = WavePipeOptions::new(scheme, 2).with_stamp_workers(0);
        let on = base.clone().with_sim(
            SimOptions::default().with_stamp_workers(0).with_recovery(true),
        );
        let off = base.with_sim(
            SimOptions::default().with_stamp_workers(0).with_recovery(false),
        );
        let r_on = run_wavepipe(&b.circuit, b.tstep, b.tstop, &on).unwrap();
        let r_off = run_wavepipe(&b.circuit, b.tstep, b.tstop, &off).unwrap();
        assert_bit_identical(
            &r_on.result,
            &r_off.result,
            &format!("{scheme} stages={stages} recovery on vs off"),
        );
    }
}

/// Non-fuzzed smoke version of the invariant, so a plain `cargo test`
/// failure names it directly: serial engine, recovery on vs off.
#[test]
fn clean_serial_run_is_bit_identical_with_recovery_on_or_off() {
    let b = generators::diode_rectifier();
    let on = run_transient(
        &b.circuit,
        b.tstep,
        b.tstop,
        &SimOptions::default().with_stamp_workers(0).with_recovery(true),
    )
    .unwrap();
    let off = run_transient(
        &b.circuit,
        b.tstep,
        b.tstop,
        &SimOptions::default().with_stamp_workers(0).with_recovery(false),
    )
    .unwrap();
    assert_bit_identical(&on, &off, "serial recovery on vs off");
}
