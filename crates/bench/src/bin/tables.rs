//! Prints Tables 1–4 of the WavePipe evaluation and writes the measured
//! numbers to `BENCH_tables.json` for machine tracking across commits.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin tables [-- --small]
//! [--trace <path>] [--trace-format jsonl|chrome]`
//!
//! `--trace` additionally performs one Combined-scheme demonstration run on
//! the first suite benchmark with a recording probe attached and writes the
//! telemetry stream to `<path>`.

use wavepipe_bench::{
    cases_to_json, run_traced, suite, table1, table2, table3, table4, table5, Scale, TraceArgs,
};
use wavepipe_core::Scheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (trace, args) = TraceArgs::parse(std::env::args().skip(1))?;
    let scale = if args.iter().any(|a| a == "--small") { Scale::Small } else { Scale::Full };
    println!("{}", table1(scale));
    let (t2, c2) = table2(scale);
    println!("{t2}");
    let (t3, c3) = table3(scale);
    println!("{t3}");
    let (t4, c4) = table4(scale);
    println!("{t4}");
    let (t5, c5) = table5(scale);
    println!("{t5}");
    println!("Speedups are modeled critical-path speedups (see DESIGN.md: this container");
    println!("has one core, so wall-clock parallel gains cannot manifest; the critical");
    println!("path is what an otherwise-idle multi-core machine realises).");

    let json = cases_to_json(&[
        ("table2_backward", &c2),
        ("table3_forward", &c3),
        ("table4_combined", &c4),
        ("table5_adaptive", &c5),
    ]);
    std::fs::write("BENCH_tables.json", json)?;
    println!("wrote BENCH_tables.json");

    if let Some(path) = &trace.path {
        let b = &suite(scale)[0];
        let (rep, events) = run_traced(b, Scheme::Combined, 4);
        trace.write(&events)?;
        println!(
            "wrote {} ({} events, traced {} on {})",
            path.display(),
            events.len(),
            rep.scheme,
            b.name
        );
    }
    Ok(())
}
