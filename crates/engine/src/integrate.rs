//! Numerical integration methods and their companion-model coefficients.
//!
//! Reactive elements are discretised per time step into a Norton companion:
//! a capacitor becomes `i = geq * u + ieq_terms(history)`, an inductor's
//! branch equation becomes `u - leq * i = rhs(history)`. The coefficients
//! depend on the method and the (possibly unequal) last two step sizes.

/// Implicit integration method used for the transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Backward Euler: order 1, L-stable, dissipative. Used automatically
    /// for the first step after a discontinuity.
    BackwardEuler,
    /// Trapezoidal rule: order 2, A-stable, energy-preserving. SPICE default.
    #[default]
    Trapezoidal,
    /// Second-order Gear (BDF2) with variable-step coefficients: order 2,
    /// L-stable, mildly dissipative.
    Gear2,
}

impl Method {
    /// Order of accuracy of the method.
    pub fn order(self) -> usize {
        match self {
            Method::BackwardEuler => 1,
            Method::Trapezoidal | Method::Gear2 => 2,
        }
    }

    /// Magnitude of the local-truncation-error constant in
    /// `LTE ~= C * h^(k+1) * x^(k+1)(xi)` (equal-step value).
    pub fn error_constant(self) -> f64 {
        match self {
            Method::BackwardEuler => 0.5,
            Method::Trapezoidal => 1.0 / 12.0,
            Method::Gear2 => 2.0 / 9.0,
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::BackwardEuler => write!(f, "be"),
            Method::Trapezoidal => write!(f, "trap"),
            Method::Gear2 => write!(f, "gear2"),
        }
    }
}

/// Discretisation coefficients for one transient step.
///
/// For a state derivative `dq/dt` at the new time point:
///
/// `dq/dt ~= a0*q_new + a1*q_prev + a2*q_prev2 + b1*dq_prev`
///
/// where `dq_prev` is the derivative at the previous point (used only by the
/// trapezoidal rule) and `q_prev2` only by Gear2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegCoeffs {
    /// The method these coefficients belong to.
    pub method: Method,
    /// Step being taken, `t_new - t_prev`.
    pub h: f64,
    /// Coefficient of the new state.
    pub a0: f64,
    /// Coefficient of the previous state.
    pub a1: f64,
    /// Coefficient of the state before that (Gear2 only, else 0).
    pub a2: f64,
    /// Coefficient of the previous derivative (trapezoidal only, else 0).
    pub b1: f64,
}

impl IntegCoeffs {
    /// Computes coefficients for a step of size `h` following a step of size
    /// `h_prev` (only Gear2 uses `h_prev`; pass `h` when no history exists).
    ///
    /// # Panics
    ///
    /// Panics if `h <= 0` or `h_prev <= 0`.
    pub fn new(method: Method, h: f64, h_prev: f64) -> Self {
        assert!(h > 0.0, "step must be positive, got {h}");
        assert!(h_prev > 0.0, "previous step must be positive, got {h_prev}");
        match method {
            Method::BackwardEuler => {
                IntegCoeffs { method, h, a0: 1.0 / h, a1: -1.0 / h, a2: 0.0, b1: 0.0 }
            }
            Method::Trapezoidal => {
                IntegCoeffs { method, h, a0: 2.0 / h, a1: -2.0 / h, a2: 0.0, b1: -1.0 }
            }
            Method::Gear2 => {
                // Variable-step BDF2:
                //   x'(t_new) ~= a0 x_new + a1 x_prev + a2 x_prev2
                // with tau = h, taup = h_prev:
                let tau = h;
                let taup = h_prev;
                let a0 = (2.0 * tau + taup) / (tau * (tau + taup));
                let a1 = -(tau + taup) / (tau * taup);
                let a2 = tau / (taup * (tau + taup));
                IntegCoeffs { method, h, a0, a1, a2, b1: 0.0 }
            }
        }
    }

    /// Evaluates the discretised derivative for the given state history.
    ///
    /// `q_new`, `q_prev`, `q_prev2` are the state at the new and previous two
    /// points; `dq_prev` is the derivative at the previous point.
    pub fn derivative(&self, q_new: f64, q_prev: f64, q_prev2: f64, dq_prev: f64) -> f64 {
        self.a0 * q_new + self.a1 * q_prev + self.a2 * q_prev2 + self.b1 * dq_prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders() {
        assert_eq!(Method::BackwardEuler.order(), 1);
        assert_eq!(Method::Trapezoidal.order(), 2);
        assert_eq!(Method::Gear2.order(), 2);
    }

    #[test]
    fn be_coefficients() {
        let c = IntegCoeffs::new(Method::BackwardEuler, 0.5, 0.5);
        assert_eq!(c.a0, 2.0);
        assert_eq!(c.a1, -2.0);
        assert_eq!(c.a2, 0.0);
        assert_eq!(c.b1, 0.0);
    }

    #[test]
    fn trap_coefficients() {
        let c = IntegCoeffs::new(Method::Trapezoidal, 0.25, 0.25);
        assert_eq!(c.a0, 8.0);
        assert_eq!(c.a1, -8.0);
        assert_eq!(c.b1, -1.0);
    }

    #[test]
    fn gear2_equal_steps_reduces_to_constant_bdf2() {
        let h = 0.1;
        let c = IntegCoeffs::new(Method::Gear2, h, h);
        assert!((c.a0 - 1.5 / h).abs() < 1e-12);
        assert!((c.a1 + 2.0 / h).abs() < 1e-12);
        assert!((c.a2 - 0.5 / h).abs() < 1e-12);
    }

    #[test]
    fn gear2_coefficients_annihilate_constants() {
        let c = IntegCoeffs::new(Method::Gear2, 0.3, 0.7);
        assert!((c.a0 + c.a1 + c.a2).abs() < 1e-12, "derivative of a constant must be 0");
    }

    #[test]
    fn gear2_exact_for_linear_states() {
        // x(t) = 3t + 1 sampled at unequal steps must give x' = 3 exactly.
        let (h, hp) = (0.2, 0.5);
        let t_new = 1.0;
        let t_prev = t_new - h;
        let t_prev2 = t_prev - hp;
        let x = |t: f64| 3.0 * t + 1.0;
        let c = IntegCoeffs::new(Method::Gear2, h, hp);
        let d = c.derivative(x(t_new), x(t_prev), x(t_prev2), 0.0);
        assert!((d - 3.0).abs() < 1e-10, "d = {d}");
    }

    #[test]
    fn gear2_exact_for_quadratics() {
        // BDF2 is order 2: exact derivative for x(t) = t^2 at the new point.
        let (h, hp) = (0.25, 0.4);
        let t_new = 2.0;
        let t_prev = t_new - h;
        let t_prev2 = t_prev - hp;
        let x = |t: f64| t * t;
        let c = IntegCoeffs::new(Method::Gear2, h, hp);
        let d = c.derivative(x(t_new), x(t_prev), x(t_prev2), 0.0);
        assert!((d - 2.0 * t_new).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn trap_derivative_matches_identity() {
        // Trapezoid: (q_new - q_prev) * 2/h - dq_prev.
        let c = IntegCoeffs::new(Method::Trapezoidal, 0.5, 0.5);
        let d = c.derivative(2.0, 1.0, 0.0, 3.0);
        assert!((d - (4.0 - 3.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = IntegCoeffs::new(Method::Trapezoidal, 0.0, 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Method::Trapezoidal.to_string(), "trap");
        assert_eq!(Method::Gear2.to_string(), "gear2");
        assert_eq!(Method::BackwardEuler.to_string(), "be");
    }
}
