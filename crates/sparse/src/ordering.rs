//! Fill-reducing and bandwidth-reducing orderings.
//!
//! SPICE matrices are extremely sparse but fill in badly under natural
//! ordering; a fill-reducing column permutation keeps the LU factors sparse.
//! This module provides a classic minimum-degree ordering and reverse
//! Cuthill–McKee, both operating on the symmetrized pattern of the matrix.

use crate::csc::CscMatrix;
use crate::error::{Result, SparseError};

/// A permutation of `0..n` with its inverse.
///
/// `perm[k]` is the original index placed at position `k`
/// (new-to-old); `inv[i]` is the position of original index `i` (old-to-new).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// Builds a permutation from a new-to-old mapping.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `perm` is not a
    /// permutation of `0..perm.len()`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (k, &p) in perm.iter().enumerate() {
            if p >= n || inv[p] != usize::MAX {
                return Err(SparseError::DimensionMismatch { expected: n, found: p });
            }
            inv[p] = k;
        }
        Ok(Permutation { perm, inv })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation { perm: (0..n).collect(), inv: (0..n).collect() }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Returns `true` if the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// New-to-old mapping: original index at position `k`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Old-to-new mapping: position of original index `i`.
    pub fn inv(&self) -> &[usize] {
        &self.inv
    }

    /// Applies the permutation to a vector: `out[k] = x[perm[k]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        self.perm.iter().map(|&p| x[p]).collect()
    }

    /// Applies the inverse permutation: `out[perm[k]] = x[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![0.0; x.len()];
        for (k, &p) in self.perm.iter().enumerate() {
            out[p] = x[k];
        }
        out
    }
}

/// Ordering strategy for the sparse LU column permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingKind {
    /// Keep the natural (input) order.
    Natural,
    /// Classic minimum-degree on the symmetrized pattern (default: best fill
    /// reduction for MNA matrices).
    #[default]
    MinDegree,
    /// Reverse Cuthill–McKee: bandwidth reduction, useful for banded
    /// ladder/line circuits.
    ReverseCuthillMcKee,
}

/// Computes a column ordering of `a` according to `kind`.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] if `a` is not square.
pub fn order(a: &CscMatrix, kind: OrderingKind) -> Result<Permutation> {
    match kind {
        OrderingKind::Natural => Ok(Permutation::identity(a.ncols())),
        OrderingKind::MinDegree => min_degree(a),
        OrderingKind::ReverseCuthillMcKee => reverse_cuthill_mckee(a),
    }
}

/// Minimum-degree ordering on the symmetrized pattern of `a`.
///
/// This is the textbook algorithm with explicit elimination-graph updates
/// (no supernodes / element absorption); adequate for the matrix sizes the
/// simulator targets (up to a few tens of thousands of unknowns).
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] if `a` is not square.
pub fn min_degree(a: &CscMatrix) -> Result<Permutation> {
    let adj = a.symmetric_adjacency()?;
    let n = adj.len();
    // Adjacency sets as sorted vecs; eliminated nodes get cleared.
    let mut adj: Vec<Vec<usize>> = adj;
    let mut eliminated = vec![false; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut perm = Vec::with_capacity(n);

    // Bucketed degree lists would be faster; a linear scan per step keeps the
    // code simple and is fine at our scale (n <= ~20k, avg degree small).
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && degree[v] < best_deg {
                best = v;
                best_deg = degree[v];
            }
        }
        debug_assert!(best != usize::MAX);
        let v = best;
        eliminated[v] = true;
        perm.push(v);
        // Connect all still-active neighbours of v pairwise (clique fill).
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            // Remove v from u's list; add the other neighbours.
            let lu = &mut adj[u];
            if let Ok(pos) = lu.binary_search(&v) {
                lu.remove(pos);
            }
            for &w in &nbrs {
                if w != u {
                    if let Err(pos) = adj[u].binary_search(&w) {
                        adj[u].insert(pos, w);
                    }
                }
            }
            degree[u] = adj[u].iter().filter(|&&x| !eliminated[x]).count();
        }
        adj[v].clear();
    }
    Permutation::from_vec(perm)
}

/// Reverse Cuthill–McKee ordering on the symmetrized pattern of `a`.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] if `a` is not square.
pub fn reverse_cuthill_mckee(a: &CscMatrix) -> Result<Permutation> {
    let adj = a.symmetric_adjacency()?;
    let n = adj.len();
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();

    // Process every connected component, starting from a minimum-degree node.
    loop {
        let start = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]);
        let Some(start) = start else { break };
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_unstable_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn tridiag(n: usize) -> CscMatrix {
        let mut t = CooMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                t.push(i, i + 1, -1.0).unwrap();
                t.push(i + 1, i, -1.0).unwrap();
            }
        }
        t.to_csc()
    }

    #[test]
    fn permutation_round_trip() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let x = [10.0, 20.0, 30.0];
        let y = p.apply(&x);
        assert_eq!(y, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.apply_inv(&y), x.to_vec());
    }

    #[test]
    fn invalid_permutation_rejected() {
        assert!(Permutation::from_vec(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_vec(vec![0, 3]).is_err());
    }

    #[test]
    fn identity_permutation_is_noop() {
        let p = Permutation::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.apply(&x), x.to_vec());
    }

    #[test]
    fn min_degree_returns_valid_permutation() {
        let a = tridiag(10);
        let p = min_degree(&a).unwrap();
        assert_eq!(p.len(), 10);
        let mut seen = [false; 10];
        for &v in p.perm() {
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn min_degree_starts_with_lowest_degree_node() {
        // On a star graph, the centre has the highest degree and must be last.
        let mut t = CooMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0).unwrap();
        }
        for leaf in 1..5 {
            t.push(0, leaf, 1.0).unwrap();
            t.push(leaf, 0, 1.0).unwrap();
        }
        let p = min_degree(&t.to_csc()).unwrap();
        // Leaves (degree 1) must be eliminated before the hub (degree 4);
        // once three leaves are gone the hub's degree ties with the last
        // leaf's, so the hub may appear at position 3 or 4 but never earlier.
        let hub_pos = p.perm().iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 3, "hub eliminated too early: position {hub_pos}");
    }

    #[test]
    fn rcm_returns_valid_permutation_over_components() {
        // Two disconnected tridiagonal blocks.
        let mut t = CooMatrix::new(6, 6);
        for i in 0..3 {
            t.push(i, i, 2.0).unwrap();
        }
        for i in 3..6 {
            t.push(i, i, 2.0).unwrap();
        }
        t.push(0, 1, -1.0).unwrap();
        t.push(1, 0, -1.0).unwrap();
        t.push(4, 5, -1.0).unwrap();
        t.push(5, 4, -1.0).unwrap();
        let p = reverse_cuthill_mckee(&t.to_csc()).unwrap();
        assert_eq!(p.len(), 6);
        let mut sorted = p.perm().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_restores_unit_bandwidth_on_scrambled_path_graph() {
        // A path graph 0-1-2-...-(n-1) whose vertex labels were scrambled:
        // the natural bandwidth is large, but RCM must renumber it back to
        // a chain (bandwidth exactly 1 — BFS from a degree-1 endpoint).
        let n = 16;
        // Deterministic scramble: multiply by 5 mod 16 (coprime with 16).
        let label = |i: usize| (i * 5) % n;
        let mut t = CooMatrix::new(n, n);
        for i in 0..n {
            t.push(label(i), label(i), 2.0).unwrap();
        }
        for i in 0..n - 1 {
            t.push(label(i), label(i + 1), -1.0).unwrap();
            t.push(label(i + 1), label(i), -1.0).unwrap();
        }
        let a = t.to_csc();
        let bandwidth = |p: &Permutation| {
            let inv = p.inv();
            let mut bw = 0usize;
            for (r, c, _) in a.iter() {
                bw = bw.max(inv[r].abs_diff(inv[c]));
            }
            bw
        };
        let natural = bandwidth(&Permutation::identity(n));
        assert!(natural > 1, "scramble failed to spread the path: bandwidth {natural}");
        let rcm = bandwidth(&reverse_cuthill_mckee(&a).unwrap());
        assert_eq!(rcm, 1, "RCM must recover the chain numbering, got bandwidth {rcm}");
    }

    #[test]
    fn order_dispatches_natural() {
        let a = tridiag(5);
        let p = order(&a, OrderingKind::Natural).unwrap();
        assert_eq!(p.perm(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn ordering_rejects_non_square() {
        let t = CooMatrix::new(2, 3).to_csc();
        assert!(min_degree(&t).is_err());
    }
}
