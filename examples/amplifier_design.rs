//! Analog design flow on one circuit: bias-point sweep, small-signal AC
//! response, adjoint DC sensitivity, and a WavePipe transient — the
//! analyses a designer runs on a common-source amplifier.
//!
//! Run with: `cargo run --release --example amplifier_design`

use wavepipe::circuit::{Circuit, MosModel, Waveform};
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{run_ac, run_dc_sensitivity, run_dc_sweep, SimOptions};

fn build_amp() -> Result<Circuit, Box<dyn std::error::Error>> {
    let mut ckt = Circuit::new("common-source amplifier");
    let vdd = ckt.node("vdd");
    let gate = ckt.node("g");
    let drain = ckt.node("d");
    ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(3.3))?;
    // Gate bias with small-signal drive: DC 0.9 V, AC magnitude 1,
    // transient 10 mV sine at 1 MHz on top of the bias.
    ckt.add_vsource_ac(
        "Vg",
        gate,
        Circuit::GROUND,
        Waveform::Sin { vo: 0.9, va: 0.01, freq: 1e6, td: 0.0, theta: 0.0 },
        1.0,
    )?;
    ckt.add_mosfet(
        "M1",
        drain,
        gate,
        Circuit::GROUND,
        MosModel { kp: 2e-4, w: 50e-6, l: 1e-6, lambda: 0.01, ..MosModel::nmos() },
    )?;
    ckt.add_resistor("Rd", vdd, drain, 5e3)?;
    ckt.add_capacitor("CL", drain, Circuit::GROUND, 10e-12)?;
    ckt.validate()?;
    Ok(ckt)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ckt = build_amp()?;
    let opts = SimOptions::default();
    println!("circuit: {}\n", ckt.summary());

    // --- 1. DC transfer curve: sweep the gate bias. ---
    let vals: Vec<f64> = (0..=33).map(|k| k as f64 * 0.1).collect();
    let sweep = run_dc_sweep(&ckt, "Vg", &vals, &opts)?;
    let d = sweep.unknown_of("d").expect("drain node");
    println!("DC sweep (gate bias -> drain voltage):");
    for &vg in &[0.5, 0.8, 0.9, 1.0, 1.3] {
        let vd = sweep
            .trace(d)
            .iter()
            .min_by(|a, b| (a.0 - vg).abs().partial_cmp(&(b.0 - vg).abs()).expect("finite"))
            .map(|&(_, v)| v)
            .expect("points");
        println!("  vg = {vg:.1} V  ->  vd = {vd:.3} V");
    }

    // --- 2. AC response at the chosen bias (0.9 V, set in the netlist). ---
    let freqs: Vec<f64> = (0..=24).map(|k| 1e4 * 10f64.powf(k as f64 / 4.0)).collect();
    let ac = run_ac(&ckt, &freqs, &opts)?;
    let d_ac = ac.unknown_of("d").expect("drain node");
    let dc_gain = ac.phasor(d_ac, 0);
    println!("\nAC response:");
    println!("  low-frequency gain : {:.2} ({:.1} dB)", dc_gain.magnitude(), dc_gain.db());
    println!("  phase              : {:.1} deg (inverting)", dc_gain.phase_deg());
    match ac.corner_frequency(d_ac) {
        Some(fc) => println!("  -3 dB corner       : {:.2} MHz", fc / 1e6),
        None => println!("  -3 dB corner       : beyond the sweep"),
    }

    // --- 3. Adjoint sensitivity: what sets the bias point? ---
    let sens = run_dc_sensitivity(&ckt, "d", &opts)?;
    println!("\nDC sensitivity of v(d) = {:.3} V (adjoint, one transpose solve):", sens.value);
    for s in sens.ranked().iter().take(3) {
        println!(
            "  {:<4} {:<11} dV/dp = {:+.4e}   ({:+.3} V per +100% change)",
            s.element, s.parameter, s.absolute, s.normalized
        );
    }

    // --- 4. Transient of the same deck under WavePipe. ---
    let rep = run_wavepipe(&ckt, 1e-9, 4e-6, &WavePipeOptions::new(Scheme::Backward, 2))?;
    let d_tr = rep.result.unknown_of("d").expect("drain node");
    // Output swing in steady state (skip the first cycle).
    let late: Vec<f64> =
        rep.result.trace(d_tr).iter().filter(|&&(t, _)| t > 2e-6).map(|&(_, v)| v).collect();
    let hi = late.iter().copied().fold(f64::MIN, f64::max);
    let lo = late.iter().copied().fold(f64::MAX, f64::min);
    let gain_tr = (hi - lo) / 2.0 / 0.01;
    println!("\nTransient (10 mV @ 1 MHz input, backward pipelining x2):");
    println!("  output swing       : {:.1} mV pk-pk", (hi - lo) * 1e3);
    println!("  large-signal gain  : {gain_tr:.2} (vs small-signal {:.2})", dc_gain.magnitude());
    println!("  points / summary   : {}", rep.summary());

    // Consistency check between the analyses.
    assert!(
        (gain_tr - dc_gain.magnitude()).abs() / dc_gain.magnitude() < 0.15,
        "transient and AC gain disagree"
    );
    Ok(())
}
