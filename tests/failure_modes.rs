//! Failure injection: the error surface must be informative and stable —
//! bad circuits and impossible analyses produce typed errors, not panics or
//! garbage results — and the fault-tolerant runtime must absorb worker
//! panics, deadlines, and injected faults without corrupting the waveform.

use std::time::Duration;
use wavepipe::circuit::{generators, Circuit, DiodeModel, Waveform};
use wavepipe::core::{run_wavepipe, run_wavepipe_recoverable, Scheme, WavePipeOptions};
use wavepipe::engine::{
    run_ac, run_dc_sweep, run_transient, run_transient_recoverable, CancelToken, EngineError,
    FaultKind, FaultPlan, SimOptions, TransientResult,
};

/// Asserts two waveforms share the exact time grid and bit-identical
/// solution vectors.
fn assert_bit_identical(a: &TransientResult, b: &TransientResult, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: point counts differ");
    assert_eq!(a.times(), b.times(), "{what}: time grids differ");
    for k in 0..a.len() {
        assert_eq!(a.solution(k), b.solution(k), "{what}: solutions differ at point {k}");
    }
}

#[test]
fn floating_node_is_rejected_before_simulation() {
    let mut ckt = Circuit::new("floating");
    let a = ckt.node("a");
    let f1 = ckt.node("f1");
    let f2 = ckt.node("f2");
    ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
    ckt.add_resistor("Rg", a, Circuit::GROUND, 1e3).unwrap();
    ckt.add_resistor("Rf", f1, f2, 1e3).unwrap();
    let err = run_transient(&ckt, 1e-9, 1e-6, &SimOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::Circuit(_)), "got {err}");
    assert!(err.to_string().contains("path to ground"), "{err}");
    // WavePipe surfaces the same error.
    let err2 =
        run_wavepipe(&ckt, 1e-9, 1e-6, &WavePipeOptions::new(Scheme::Backward, 2)).unwrap_err();
    assert!(matches!(err2, EngineError::Circuit(_)));
}

#[test]
fn parallel_voltage_sources_report_singular_matrix() {
    // Two ideal sources forcing different voltages on the same node pair.
    let mut ckt = Circuit::new("vloop");
    let a = ckt.node("a");
    ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
    ckt.add_vsource("V2", a, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    let err = run_transient(&ckt, 1e-9, 1e-6, &SimOptions::default()).unwrap_err();
    // Either a singular linear system or a convergence failure, never a
    // silent "answer".
    assert!(matches!(err, EngineError::Linear(_) | EngineError::NoConvergence { .. }), "got {err}");
}

#[test]
fn nonpositive_analysis_windows_are_rejected() {
    let mut ckt = Circuit::new("ok");
    let a = ckt.node("a");
    ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    for (tstep, tstop) in [(0.0, 1e-6), (1e-9, 0.0), (-1e-9, 1e-6), (1e-9, f64::NAN)] {
        let err = run_transient(&ckt, tstep, tstop, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::BadParameter { .. }), "({tstep},{tstop}): {err}");
    }
    assert!(run_ac(&ckt, &[0.0], &SimOptions::default()).is_err());
    assert!(run_ac(&ckt, &[], &SimOptions::default()).is_err());
    assert!(run_dc_sweep(&ckt, "V1", &[], &SimOptions::default()).is_err());
}

#[test]
fn empty_circuit_is_rejected() {
    let ckt = Circuit::new("empty");
    let err = run_transient(&ckt, 1e-9, 1e-6, &SimOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::Circuit(_)));
}

#[test]
fn antiparallel_diodes_with_huge_drive_still_converge_or_error_cleanly() {
    // A stress circuit: stiff source, antiparallel diodes, tiny resistor —
    // must either simulate or produce a typed error (no panic, no NaN).
    let mut ckt = Circuit::new("stress");
    let a = ckt.node("a");
    let d = ckt.node("d");
    ckt.add_vsource(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::pulse(-50.0, 50.0, 0.0, 1e-12, 1e-12, 1e-9, 2e-9),
    )
    .unwrap();
    ckt.add_resistor("R1", a, d, 0.1).unwrap();
    ckt.add_diode("D1", d, Circuit::GROUND, DiodeModel::default()).unwrap();
    ckt.add_diode("D2", Circuit::GROUND, d, DiodeModel::default()).unwrap();
    match run_transient(&ckt, 1e-12, 10e-9, &SimOptions::default()) {
        Ok(res) => {
            for k in 0..res.len() {
                assert!(
                    res.solution(k).iter().all(|v| v.is_finite()),
                    "non-finite value escaped at point {k}"
                );
            }
        }
        Err(e) => {
            assert!(
                matches!(
                    e,
                    EngineError::NoConvergence { .. }
                        | EngineError::TimestepTooSmall { .. }
                        | EngineError::NumericalBlowup { .. }
                ),
                "unexpected error kind: {e}"
            );
        }
    }
}

#[test]
fn persistent_worker_panics_collapse_to_serial_identical_waveform() {
    // Every pool lane panics on every solve, and keeps panicking after its
    // respawn: the pool exhausts its budget, the driver falls back to the
    // serial single-lane schedule, and — because pool tasks are speculative
    // by construction — the committed grid must be bit-identical to the
    // plain serial engine's.
    let b = generators::rc_ladder(8);
    let serial =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    let plan = FaultPlan::new().with_solve_fault(1, None, FaultKind::PanicWorker).with_solve_fault(
        2,
        None,
        FaultKind::PanicWorker,
    );
    let opts = WavePipeOptions::new(Scheme::Backward, 3).with_stamp_workers(0).with_faults(plan);
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    assert!(rep.workers_lost >= 2, "expected both pool lanes lost, got {}", rep.workers_lost);
    assert!(rep.summary().contains("workers lost"), "{}", rep.summary());
    assert_bit_identical(&serial.clone(), &rep.result, "panicking pool vs serial");
}

#[test]
fn soft_faults_on_leads_leave_the_grid_serial_identical() {
    // Singular factorizations and NaN solutions on the speculative lane are
    // absorbed by the existing commit tests (unconverged / non-finite →
    // discard); no worker dies and the accepted grid equals serial's.
    let b = generators::rc_ladder(8);
    let serial =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    for kind in [FaultKind::SingularMatrix, FaultKind::NanSolution] {
        let plan = FaultPlan::new().with_solve_fault(1, None, kind);
        let opts =
            WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0).with_faults(plan);
        let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
        assert_eq!(rep.workers_lost, 0, "{kind:?} must not kill a worker");
        assert_eq!(rep.lead_accepted, 0, "{kind:?}: every lead should be discarded");
        assert_bit_identical(&serial, &rep.result, "soft-faulted leads vs serial");
    }
}

#[test]
fn single_worker_panic_respawns_and_run_stays_accurate() {
    // A panic at the pool lane's 5th solve: the lane is lost and respawned;
    // the fresh solver's counter restarts, so its own 5th solve panics too
    // and the respawn budget retires the lane for good (2 losses total).
    // Either way the run completes with normal accuracy — worker loss only
    // ever discards speculative work.
    let b = generators::power_grid(4, 4);
    let serial =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    let plan = FaultPlan::new().with_solve_fault(1, Some(5), FaultKind::PanicWorker);
    let opts = WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0).with_faults(plan);
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    assert_eq!(rep.workers_lost, 2, "initial worker and its respawn both hit solve #5");
    assert!(rep.lead_accepted > 0, "solves before the fault should contribute leads");
    let eq = wavepipe::core::verify::compare(&serial, &rep.result);
    assert!(eq.rms_rel() < 0.02, "rms deviation after respawn = {}", eq.rms_rel());
}

#[test]
fn zero_deadline_keeps_the_dc_point_as_partial_result() {
    let b = generators::rc_ladder(6);
    // Engine level.
    let outcome = run_transient_recoverable(
        &b.circuit,
        b.tstep,
        b.tstop,
        &SimOptions::default().with_deadline(Duration::ZERO),
    )
    .unwrap();
    assert!(
        matches!(outcome.error, Some(EngineError::DeadlineExceeded { .. })),
        "{:?}",
        outcome.error
    );
    assert!(!outcome.result.is_empty(), "the t=0 point must survive a zero budget");
    assert_eq!(outcome.result.times()[0], 0.0);

    // WavePipe level, every parallel scheme.
    for scheme in [Scheme::Backward, Scheme::Forward, Scheme::Combined, Scheme::Adaptive] {
        let opts =
            WavePipeOptions::new(scheme, 3).with_stamp_workers(0).with_deadline(Duration::ZERO);
        let out = run_wavepipe_recoverable(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
        assert!(
            matches!(out.error, Some(EngineError::DeadlineExceeded { .. })),
            "{scheme}: {:?}",
            out.error
        );
        assert!(!out.report.result.is_empty(), "{scheme}: t=0 point missing");
        assert!(out.into_result().is_err(), "{scheme}: strict view must surface the error");
    }
}

#[test]
fn pre_cancelled_token_is_terminal_before_any_result() {
    // Cancelling before the run starts aborts inside the DC solve — there is
    // no partial result to keep, so the recoverable entry point reports it
    // as a pre-run failure.
    let b = generators::rc_ladder(4);
    let token = CancelToken::new();
    token.cancel();
    let opts =
        WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0).with_cancel_token(token);
    let err = run_wavepipe_recoverable(&b.circuit, b.tstep, b.tstop, &opts).unwrap_err();
    assert!(matches!(err, EngineError::Cancelled { .. }), "got {err}");
}

#[test]
fn mid_run_cancellation_keeps_the_accepted_prefix() {
    // A slow lead solve gives a background cancel a deterministic window:
    // the DC solve finishes in well under the 40 ms cancel delay, and the
    // first post-DC solve sleeps 200 ms, so Newton's budget check observes
    // the cancellation mid-solve.
    let b = generators::rc_ladder(4);
    let token = CancelToken::new();
    let plan = FaultPlan::new().with_solve_fault(0, None, FaultKind::SlowSolve { millis: 200 });
    let opts = WavePipeOptions::new(Scheme::Backward, 2)
        .with_stamp_workers(0)
        .with_cancel_token(token.clone())
        .with_faults(plan);
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        token.cancel();
    });
    let out = run_wavepipe_recoverable(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    canceller.join().unwrap();
    assert!(matches!(out.error, Some(EngineError::Cancelled { .. })), "{:?}", out.error);
    assert!(!out.report.result.is_empty(), "accepted prefix discarded on cancellation");
}

#[test]
fn stamp_worker_panic_degrades_to_serial_stamping_identically() {
    // A stamp worker panicking mid-run breaks the executor permanently; all
    // later stamps run serially. Chunks are accumulated in a fixed order
    // either way, so the waveform stays bit-identical to serial stamping.
    let b = generators::rc_ladder(8);
    let serial =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    let faulted = run_transient(
        &b.circuit,
        b.tstep,
        b.tstop,
        &SimOptions::default()
            .with_stamp_workers(2)
            .with_faults(FaultPlan::new().with_stamp_panic(0, 5)),
    )
    .unwrap();
    assert_bit_identical(&serial, &faulted, "degraded parallel stamping vs serial");
}

#[test]
fn chaos_seed_runs_complete_and_stay_accurate() {
    // The CI chaos leg in miniature: a seeded plan spraying soft faults
    // across the run must neither break completion nor accuracy.
    let b = generators::power_grid(4, 4);
    let serial =
        run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default().with_stamp_workers(0))
            .unwrap();
    let opts = WavePipeOptions::new(Scheme::Backward, 2)
        .with_stamp_workers(0)
        .with_faults(FaultPlan::seeded(0xC0FFEE));
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap();
    let eq = wavepipe::core::verify::compare(&serial, &rep.result);
    assert!(eq.rms_rel() < 0.02, "rms deviation under chaos = {}", eq.rms_rel());
}

#[test]
fn errors_format_usefully() {
    let samples: Vec<EngineError> = vec![
        EngineError::NoConvergence { time: 1e-9, iterations: 40, report: Box::default() },
        EngineError::TimestepTooSmall { time: 2e-9, step: 1e-20, hmin: 1e-18 },
        EngineError::BadParameter { name: "tstop", value: -1.0 },
        EngineError::NumericalBlowup { time: 3e-9 },
        EngineError::UnknownSource { name: "Vx".into() },
    ];
    for e in samples {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert_eq!(msg, msg.trim(), "no stray whitespace: {msg:?}");
        assert!(msg.chars().next().unwrap().is_lowercase(), "lowercase start: {msg}");
    }
}

#[test]
fn no_convergence_report_carries_forensics() {
    use wavepipe::engine::{ConvergenceReport, RecoveryRung};
    let report = ConvergenceReport {
        worst_node: Some("out".into()),
        residual: Some(3.2e-4),
        iterations_history: vec![40, 12, 12],
        rungs_tried: vec![RecoveryRung::CacheRollback, RecoveryRung::DeepCut],
    };
    let err = EngineError::NoConvergence { time: 1e-9, iterations: 40, report: Box::new(report) };
    let msg = err.to_string();
    assert!(msg.contains("worst residual"), "{msg}");
    assert!(msg.contains("out"), "{msg}");
    assert!(msg.contains("cache_rollback"), "{msg}");
    assert!(msg.contains("deep_cut"), "{msg}");
    // A report with no detail stays out of the headline message.
    let bare = EngineError::NoConvergence { time: 1e-9, iterations: 40, report: Box::default() };
    assert!(!bare.to_string().contains("residual"), "{bare}");
}
