//! Lane-packed numeric LU: refactor/solve up to [`MAX_LANES`] independent
//! matrices that share one symbolic factorization in a single sweep.
//!
//! The batch engine runs many transient instances whose MNA matrices share
//! the same pattern and (usually) the same frozen pivot sequence. A
//! [`LanePackedLu`] stores the factor *values* of up to `K` such instances
//! lane-interleaved (`vals[idx * K + lane]`), so one pass over the shared
//! index structure (`l_rows`, `u_rows`, column pointers, permutations)
//! refactors or solves all lanes at once. Index loads, pointer chasing, and
//! loop control are amortized across lanes; the per-lane floating-point work
//! is **exactly** the scalar sequence of [`SparseLu::refactor`] and
//! [`SparseLu::solve_with_scratch`]:
//!
//! * each lane performs the same adds/mults/divides on the same operands in
//!   the same order (IEEE-754 ops are deterministic; nothing is reassociated
//!   and no FMA contraction is introduced), and
//! * value-dependent branches (`if x != 0.0` sparsity skips, pivot-degradation
//!   checks) are evaluated **per lane**, so a lane's op sequence never depends
//!   on its neighbours.
//!
//! Consequently every lane's factor values and solve results are bit-equal to
//! what a private [`SparseLu`] would have produced — the property the batch
//! engine's bit-identity invariant rests on.
//!
//! Lanes join by *adopting* a scalar factorization whose structure (ordering,
//! pivot sequence, elimination pattern) matches the pack; lanes whose pivot
//! search diverged simply don't adopt and stay on the scalar path. Per-lane
//! failures (non-finite entries, degraded pivots) deactivate only that lane
//! for the remainder of the sweep and are reported per lane.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::lu::SparseLu;
use crate::ordering::Permutation;

/// Maximum number of lanes a [`LanePackedLu`] can hold.
pub const MAX_LANES: usize = 4;

/// Numeric LU factors for up to [`MAX_LANES`] same-structure matrices,
/// stored lane-interleaved. See the [module docs](self) for the layout and
/// determinism argument.
#[derive(Debug, Clone)]
pub struct LanePackedLu {
    k: usize,
    n: usize,
    pivot_floor: f64,
    q: Permutation,
    p: Vec<usize>,
    pinv: Vec<usize>,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    a_nnz: usize,
    /// `L` values, `[idx * k + lane]`.
    l_vals: Vec<f64>,
    /// `U` (strict upper) values, `[idx * k + lane]`.
    u_vals: Vec<f64>,
    /// Pivots, `[col * k + lane]`.
    u_diag: Vec<f64>,
    /// Dense per-column workspace for refactor, `[row * k + lane]`; kept
    /// all-zero between calls (mirroring the scalar gather/zero discipline).
    x: Vec<f64>,
    /// Solve scratch, `[pos * k + lane]`; fully overwritten each solve.
    y: Vec<f64>,
    present: [bool; MAX_LANES],
}

/// One lane's solve request for [`LanePackedLu::solve_lanes`].
pub struct LaneSolve<'a> {
    /// Right-hand side, length `dim()`.
    pub b: &'a [f64],
    /// Solution output, length `dim()`.
    pub x: &'a mut [f64],
}

impl LanePackedLu {
    /// Creates an empty pack of `k` lanes (`1..=MAX_LANES`) whose structure
    /// (ordering, pivot order, elimination pattern) is copied from `seed`.
    /// No lane holds values yet; use [`LanePackedLu::adopt`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > MAX_LANES`.
    pub fn from_structure(k: usize, seed: &SparseLu) -> Self {
        assert!((1..=MAX_LANES).contains(&k), "lane count {k} outside 1..={MAX_LANES}");
        let n = seed.n;
        LanePackedLu {
            k,
            n,
            pivot_floor: seed.opts.pivot_floor,
            q: seed.q.clone(),
            p: seed.p.clone(),
            pinv: seed.pinv.clone(),
            l_colptr: seed.l_colptr.clone(),
            l_rows: seed.l_rows.clone(),
            u_colptr: seed.u_colptr.clone(),
            u_rows: seed.u_rows.clone(),
            a_nnz: seed.a_nnz,
            l_vals: vec![0.0; seed.l_vals.len() * k],
            u_vals: vec![0.0; seed.u_vals.len() * k],
            u_diag: vec![0.0; n * k],
            x: vec![0.0; n * k],
            y: vec![0.0; n * k],
            present: [false; MAX_LANES],
        }
    }

    /// Number of lanes in the pack.
    pub fn lane_count(&self) -> usize {
        self.k
    }

    /// Dimension of the packed factors.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Whether `lane` currently holds adopted factors.
    pub fn is_present(&self, lane: usize) -> bool {
        self.present[lane]
    }

    /// True when `lu` has the same symbolic structure (dimension, ordering,
    /// pivot sequence, elimination pattern, pattern nnz, and pivot floor) as
    /// this pack, i.e. its numeric values can live in a lane.
    pub fn structure_matches(&self, lu: &SparseLu) -> bool {
        lu.n == self.n
            && lu.a_nnz == self.a_nnz
            && lu.opts.pivot_floor == self.pivot_floor
            && lu.q.perm() == self.q.perm()
            && lu.p == self.p
            && lu.pinv == self.pinv
            && lu.l_colptr == self.l_colptr
            && lu.l_rows == self.l_rows
            && lu.u_colptr == self.u_colptr
            && lu.u_rows == self.u_rows
    }

    /// Copies `lu`'s numeric values into `lane`. Returns `false` (without
    /// touching the pack) when the structure does not match.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lane_count()`.
    pub fn adopt(&mut self, lane: usize, lu: &SparseLu) -> bool {
        assert!(lane < self.k);
        if !self.structure_matches(lu) {
            return false;
        }
        let k = self.k;
        for (i, &v) in lu.l_vals.iter().enumerate() {
            self.l_vals[i * k + lane] = v;
        }
        for (i, &v) in lu.u_vals.iter().enumerate() {
            self.u_vals[i * k + lane] = v;
        }
        for (i, &v) in lu.u_diag.iter().enumerate() {
            self.u_diag[i * k + lane] = v;
        }
        self.present[lane] = true;
        true
    }

    /// Drops `lane`'s factors (the lane can later re-adopt).
    pub fn evict(&mut self, lane: usize) {
        self.present[lane] = false;
    }

    /// Numeric refactorization of every requested lane in one sweep over the
    /// shared structure, mirroring [`SparseLu::refactor`] per lane.
    ///
    /// `mats[l] = Some(a)` requests lane `l` (must be present); `None` skips
    /// it. Per-lane failures are reported in `errs[l]` exactly as the scalar
    /// path would have returned them ([`SparseError::NotFinite`] /
    /// [`SparseError::PivotDegraded`] / [`SparseError::DimensionMismatch`]);
    /// a failed lane is deactivated for the rest of the sweep, its factors
    /// are evicted, and its workspace column is re-zeroed, leaving the other
    /// lanes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `mats.len()` or `errs.len()` differs from `lane_count()`.
    // The `for l in 0..k` inner loops below are the lane kernels: lock-step
    // indexed traversal of several `idx * k + l`-interleaved arrays at once.
    // Iterator chains would hide that structure from both the reader and the
    // autovectorizer.
    #[allow(clippy::needless_range_loop)]
    pub fn refactor_lanes(
        &mut self,
        mats: &[Option<&CscMatrix>],
        errs: &mut [Option<SparseError>],
    ) {
        let k = self.k;
        let n = self.n;
        assert_eq!(mats.len(), k);
        assert_eq!(errs.len(), k);
        let mut active = [false; MAX_LANES];
        let mut failed = [false; MAX_LANES];
        for l in 0..k {
            errs[l] = None;
            if let Some(a) = mats[l] {
                debug_assert!(self.present[l], "refactor requested for an empty lane");
                if a.nrows() != n || a.ncols() != n {
                    errs[l] =
                        Some(SparseError::DimensionMismatch { expected: n, found: a.nrows() });
                } else if a.nnz() != self.a_nnz {
                    errs[l] = Some(SparseError::DimensionMismatch {
                        expected: self.a_nnz,
                        found: a.nnz(),
                    });
                } else {
                    active[l] = true;
                }
                if errs[l].is_some() {
                    failed[l] = true;
                }
            }
        }
        let mut xs = [0.0f64; MAX_LANES];
        let mut pivots = [0.0f64; MAX_LANES];
        for kk in 0..n {
            let j = self.q.perm()[kk];
            let (us, ue) = (self.u_colptr[kk], self.u_colptr[kk + 1]);
            let (ls, le) = (self.l_colptr[kk], self.l_colptr[kk + 1]);

            // Scatter A(:,j) per lane; the workspace columns are clean (the
            // gather loops below re-zero everything they touched).
            for l in 0..k {
                if !active[l] {
                    continue;
                }
                let (a_rows, a_vals) = mats[l].expect("active lane has a matrix").col(j);
                let mut bad = false;
                for (&r, &v) in a_rows.iter().zip(a_vals) {
                    if !v.is_finite() {
                        errs[l] = Some(SparseError::NotFinite {
                            context: "matrix entry during refactorization",
                        });
                        bad = true;
                        break;
                    }
                    self.x[r * k + l] = v;
                }
                if bad {
                    // Mirrors the scalar early return (which abandons its
                    // workspace mid-column): deactivate, clean up at the end.
                    active[l] = false;
                    failed[l] = true;
                }
            }
            // Replay the recorded update sequence. Per lane this is exactly
            // the scalar loop: read x at the pivot row, store into U, and —
            // only when that lane's value is nonzero — apply the column
            // update. The `xs` staging keeps each lane's value across the
            // shared inner loop without changing its op order.
            for up in us..ue {
                let t = self.u_rows[up];
                let pt = self.p[t] * k;
                let mut any = false;
                for l in 0..k {
                    if active[l] {
                        let xr = self.x[pt + l];
                        self.u_vals[up * k + l] = xr;
                        xs[l] = xr;
                        any |= xr != 0.0;
                    } else {
                        xs[l] = 0.0;
                    }
                }
                if any {
                    for pp in self.l_colptr[t]..self.l_colptr[t + 1] {
                        let r = self.l_rows[pp] * k;
                        let lv = pp * k;
                        for l in 0..k {
                            let xr = xs[l];
                            if xr != 0.0 {
                                self.x[r + l] -= self.l_vals[lv + l] * xr;
                            }
                        }
                    }
                }
            }
            let piv_row = self.p[kk];
            for l in 0..k {
                if !active[l] {
                    continue;
                }
                let pivot = self.x[piv_row * k + l];
                // Degradation check, same fold order as the scalar path.
                let mut col_max = pivot.abs();
                for up in us..ue {
                    col_max = col_max.max(self.u_vals[up * k + l].abs());
                }
                for lp in ls..le {
                    col_max = col_max.max(self.x[self.l_rows[lp] * k + l].abs());
                }
                if pivot.abs() < self.pivot_floor || pivot.abs() < 1e-10 * col_max {
                    errs[l] =
                        Some(SparseError::PivotDegraded { column: kk, magnitude: pivot.abs() });
                    active[l] = false;
                    failed[l] = true;
                    continue;
                }
                self.u_diag[kk * k + l] = pivot;
                pivots[l] = pivot;
            }
            // Gather (and zero) the L part, then zero the U part and pivot.
            for lp in ls..le {
                let r = self.l_rows[lp] * k;
                let lv = lp * k;
                for l in 0..k {
                    if active[l] {
                        self.l_vals[lv + l] = self.x[r + l] / pivots[l];
                        self.x[r + l] = 0.0;
                    }
                }
            }
            for up in us..ue {
                let pr = self.p[self.u_rows[up]] * k;
                for l in 0..k {
                    if active[l] {
                        self.x[pr + l] = 0.0;
                    }
                }
            }
            for l in 0..k {
                if active[l] {
                    self.x[piv_row * k + l] = 0.0;
                }
            }
        }
        // Failed lanes abandoned their workspace column mid-sweep; scrub it
        // so the pack is clean for the survivors' next refactor, and evict
        // their (now partially overwritten) factors.
        for l in 0..k {
            if failed[l] {
                for row in 0..n {
                    self.x[row * k + l] = 0.0;
                }
                self.present[l] = false;
            }
        }
    }

    /// Triangular solves for every requested lane in one sweep, mirroring
    /// [`SparseLu::solve_with_scratch`] per lane. `reqs[l] = Some(..)`
    /// solves lane `l` (which must be present and factored).
    ///
    /// # Panics
    ///
    /// Panics if `reqs.len() != lane_count()`, if a requested lane is not
    /// present, or if a buffer length differs from `dim()`.
    // Same lane-kernel shape as `refactor_lanes` — see the note there.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_lanes(&mut self, reqs: &mut [Option<LaneSolve<'_>>]) {
        let k = self.k;
        let n = self.n;
        assert_eq!(reqs.len(), k);
        let mut active = [false; MAX_LANES];
        for (l, req) in reqs.iter().enumerate() {
            if let Some(r) = req {
                assert!(self.present[l], "solve requested for an empty lane");
                assert_eq!(r.b.len(), n);
                assert_eq!(r.x.len(), n);
                active[l] = true;
            }
        }
        // Forward solve L y = P b (unit diagonal), in pivot coordinates.
        for kk in 0..n {
            let pk = self.p[kk];
            for l in 0..k {
                if active[l] {
                    self.y[kk * k + l] = reqs[l].as_ref().expect("active lane").b[pk];
                }
            }
        }
        let mut yks = [0.0f64; MAX_LANES];
        for kk in 0..n {
            let mut any = false;
            for l in 0..k {
                let yk = if active[l] { self.y[kk * k + l] } else { 0.0 };
                yks[l] = yk;
                any |= yk != 0.0;
            }
            if any {
                for pp in self.l_colptr[kk]..self.l_colptr[kk + 1] {
                    let t = self.pinv[self.l_rows[pp]] * k;
                    let lv = pp * k;
                    for l in 0..k {
                        let yk = yks[l];
                        if yk != 0.0 {
                            self.y[t + l] -= self.l_vals[lv + l] * yk;
                        }
                    }
                }
            }
        }
        // Backward solve U w = y (columns right-to-left).
        for kk in (0..n).rev() {
            let mut any = false;
            for l in 0..k {
                if active[l] {
                    let wk = self.y[kk * k + l] / self.u_diag[kk * k + l];
                    self.y[kk * k + l] = wk;
                    yks[l] = wk;
                    any |= wk != 0.0;
                } else {
                    yks[l] = 0.0;
                }
            }
            if any {
                for up in self.u_colptr[kk]..self.u_colptr[kk + 1] {
                    let t = self.u_rows[up] * k;
                    let uv = up * k;
                    for l in 0..k {
                        let wk = yks[l];
                        if wk != 0.0 {
                            self.y[t + l] -= self.u_vals[uv + l] * wk;
                        }
                    }
                }
            }
        }
        // Undo the column permutation: x[q[k]] = w[k].
        for kk in 0..n {
            let qk = self.q.perm()[kk];
            for l in 0..k {
                if active[l] {
                    reqs[l].as_mut().expect("active lane").x[qk] = self.y[kk * k + l];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::lu::LuOptions;

    /// Small asymmetric test matrix with lane-dependent values on a shared
    /// pattern.
    fn matrix(scale: f64) -> CscMatrix {
        let mut t = CooMatrix::new(4, 4);
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.3),
            (1, 1, 3.0),
            (1, 2, -0.5),
            (2, 1, -0.7),
            (2, 2, 5.0),
            (2, 3, -1.1),
            (3, 2, -0.2),
            (3, 3, 2.0),
        ];
        for (r, c, v) in entries {
            t.push(r, c, v * scale).unwrap();
        }
        t.to_csc()
    }

    #[test]
    fn packed_refactor_and_solve_are_bit_identical_to_scalar() {
        let opts = LuOptions::default();
        let base = matrix(1.0);
        let seed = SparseLu::factor(&base, &opts).unwrap();
        for k in [1usize, 2, 4] {
            let mut pack = LanePackedLu::from_structure(k, &seed);
            let scales: Vec<f64> = (0..k).map(|l| 1.0 + 0.37 * l as f64).collect();
            let mats: Vec<CscMatrix> = scales.iter().map(|&s| matrix(s)).collect();
            let mut scalars: Vec<SparseLu> = Vec::new();
            for (l, m) in mats.iter().enumerate() {
                let mut lu = seed.clone();
                lu.refactor(m).unwrap();
                assert!(pack.adopt(l, &seed), "structure must match its own seed");
                scalars.push(lu);
            }
            // Packed refactor vs scalar refactor.
            let mat_refs: Vec<Option<&CscMatrix>> = mats.iter().map(Some).collect();
            let mut errs: Vec<Option<SparseError>> = vec![None; k];
            pack.refactor_lanes(&mat_refs, &mut errs);
            assert!(errs.iter().all(Option::is_none), "{errs:?}");
            // Packed solve vs scalar solve, bit for bit.
            let b: Vec<f64> = (0..4).map(|i| 0.3 + i as f64).collect();
            let mut outs = vec![vec![0.0f64; 4]; k];
            {
                let mut reqs: Vec<Option<LaneSolve<'_>>> =
                    outs.iter_mut().map(|x| Some(LaneSolve { b: &b, x })).collect();
                pack.solve_lanes(&mut reqs);
            }
            for (l, lu) in scalars.iter().enumerate() {
                let want = lu.solve(&b).unwrap();
                for (a, w) in outs[l].iter().zip(&want) {
                    assert_eq!(a.to_bits(), w.to_bits(), "lane {l} of {k} diverged");
                }
            }
        }
    }

    #[test]
    fn failed_lane_is_deactivated_and_survivors_stay_exact() {
        let opts = LuOptions::default();
        let base = matrix(1.0);
        let seed = SparseLu::factor(&base, &opts).unwrap();
        let mut pack = LanePackedLu::from_structure(2, &seed);
        assert!(pack.adopt(0, &seed));
        assert!(pack.adopt(1, &seed));
        let good = matrix(2.0);
        let mut bad = matrix(1.0);
        bad.values_mut()[0] = f64::NAN;
        let mut errs: Vec<Option<SparseError>> = vec![None; 2];
        pack.refactor_lanes(&[Some(&good), Some(&bad)], &mut errs);
        assert!(errs[0].is_none());
        assert!(matches!(errs[1], Some(SparseError::NotFinite { .. })));
        assert!(pack.is_present(0));
        assert!(!pack.is_present(1));
        // Survivor solves bit-identically to a scalar refactor of the same
        // matrix, and a fresh refactor after the failure still works (the
        // failed lane's workspace was scrubbed).
        let mut lu = seed.clone();
        lu.refactor(&good).unwrap();
        let b = [1.0, -2.0, 0.5, 3.0];
        let mut x0 = vec![0.0f64; 4];
        {
            let mut reqs = vec![Some(LaneSolve { b: &b, x: &mut x0 }), None];
            pack.solve_lanes(&mut reqs);
        }
        let want = lu.solve(&b).unwrap();
        for (a, w) in x0.iter().zip(&want) {
            assert_eq!(a.to_bits(), w.to_bits());
        }
        let good2 = matrix(3.0);
        pack.refactor_lanes(&[Some(&good2), None], &mut errs);
        assert!(errs[0].is_none());
        let mut lu2 = seed.clone();
        lu2.refactor(&good2).unwrap();
        let mut x2 = vec![0.0f64; 4];
        {
            let mut reqs = vec![Some(LaneSolve { b: &b, x: &mut x2 }), None];
            pack.solve_lanes(&mut reqs);
        }
        let want2 = lu2.solve(&b).unwrap();
        for (a, w) in x2.iter().zip(&want2) {
            assert_eq!(a.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn adopt_rejects_mismatched_structure() {
        let opts = LuOptions::default();
        let seed = SparseLu::factor(&matrix(1.0), &opts).unwrap();
        let mut other_t = CooMatrix::new(4, 4);
        for i in 0..4 {
            other_t.push(i, i, 2.0).unwrap();
        }
        let other = SparseLu::factor(&other_t.to_csc(), &opts).unwrap();
        let mut pack = LanePackedLu::from_structure(2, &seed);
        assert!(!pack.adopt(0, &other));
        assert!(!pack.is_present(0));
    }
}
